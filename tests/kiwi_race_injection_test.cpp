// Race-window widening tests: install TestHooks at the paper's named race
// points and verify the protocols hold when the narrow windows are forced
// wide open.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/test_env.h"
#include "common/test_hooks.h"
#include "core/kiwi_map.h"

namespace kiwi::core {
namespace {

void YieldHook() { std::this_thread::yield(); }

// Widen the window between a put's PPA publication and its version CAS:
// every concurrent scan/get must help (paper Figure 2), and order must stay
// consistent.  The helping path is asserted via the puts_helped stat.
TEST(RaceInjection, ScansHelpStalledPuts) {
  TestHooks::Scoped install(TestHooks::put_before_version_cas, YieldHook);
  constexpr Key kKeys = 64;
  KiWiConfig config;
  config.chunk_capacity = 128;
  KiWiMap map(config);
  for (Key k = 0; k < kKeys; ++k) map.Put(k, 0);

  std::atomic<bool> stop{false};
  std::atomic<Value> rounds{0};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) map.Put(k, round);
      rounds.store(round, std::memory_order_release);
    }
  });
  std::vector<KiWiMap::Entry> out;
  const int iters = ScaledIters(400);
  for (int i = 0; i < iters || rounds.load(std::memory_order_acquire) < 3;
       ++i) {
    map.Scan(0, kKeys - 1, out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kKeys));
    Value previous = out.front().second;
    for (const auto& [key, value] : out) {
      ASSERT_LE(value, previous) << "torn scan with stalled puts";
      previous = value;
    }
    ASSERT_LE(out.front().second - out.back().second, 1);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
#if KIWI_OBS_ENABLED
  // Counters read zero in a KIWI_STATS=OFF build.
  EXPECT_GT(map.Stats().puts_helped, 0u)
      << "widened window but no put was ever helped by a reader";
#endif
}

// Same window against gets: a get racing the stalled put must either help
// it (and may see it) or order itself before — never deadlock or misorder
// with a later scan.
TEST(RaceInjection, GetsHelpStalledPuts) {
  TestHooks::Scoped install(TestHooks::put_before_version_cas, YieldHook);
  KiWiMap map;
  std::atomic<bool> stop{false};
  std::atomic<Value> published{-1};
  std::thread writer([&] {
    const Value iters = ScaledIters(20000);
    for (Value v = 0; v < iters; ++v) {
      map.Put(5, v);
      published.store(v, std::memory_order_seq_cst);
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Value floor = published.load(std::memory_order_seq_cst);
      if (floor < 0) continue;
      ASSERT_GE(map.Get(5).value_or(-1), floor);
    }
  });
  writer.join();
  reader.join();
#if KIWI_OBS_ENABLED
  EXPECT_GT(map.Stats().puts_helped, 0u);
#endif
}

// Widen freeze -> build: puts landing on frozen chunks must restart (not
// lose data), reads must keep being served from the frozen chunk.
TEST(RaceInjection, FrozenChunksServeReadsAndRestartPuts) {
  TestHooks::Scoped install(TestHooks::rebalance_after_freeze, YieldHook);
  KiWiConfig config;
  config.chunk_capacity = 16;  // constant rebalancing
  KiWiMap map(config);
  constexpr int kThreads = 4;
  // One scaled count drives both the per-thread key range and the final
  // size check, so KIWI_TEST_ITERS cannot desynchronize them.
  const int per_thread = ScaledIters(4000);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (Key k = 0; k < per_thread; ++k) {
        const Key key = t * static_cast<Key>(per_thread) + k;
        map.Put(key, key);
        ASSERT_EQ(map.Get(key).value_or(-1), key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.Size(), 4u * static_cast<std::size_t>(per_thread));
#if KIWI_OBS_ENABLED
  EXPECT_GT(map.Stats().put_restarts, 0u);
#endif
  map.CheckInvariants();
}

// Widen consensus -> splice: the window where old and replacement sections
// coexist.  Concurrent readers must see exactly one copy of the data.
TEST(RaceInjection, ReplaceWindowNeverDuplicatesData) {
  TestHooks::Scoped install(TestHooks::replace_before_splice, YieldHook);
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  for (Key k = 0; k < 500; ++k) map.Put(k, 1);
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      map.Put(static_cast<Key>(rng.NextBounded(500)), 1);
    }
  });
  std::vector<KiWiMap::Entry> out;
  const int iters = ScaledIters(500);
  for (int i = 0; i < iters; ++i) {
    map.Scan(0, 499, out);
    ASSERT_EQ(out.size(), 500u) << "scan lost or duplicated keys";
    Key previous = -1;
    for (const auto& [k, v] : out) {
      ASSERT_EQ(k, previous + 1) << "gap or duplicate at " << k;
      ASSERT_EQ(v, 1);
      previous = k;
    }
  }
  stop.store(true, std::memory_order_release);
  churner.join();
  map.CheckInvariants();
}

// All three hooks at once under a mixed workload (belt and braces).
TEST(RaceInjection, AllWindowsWidenedMixedWorkload) {
  TestHooks::Scoped a(TestHooks::put_before_version_cas, YieldHook);
  TestHooks::Scoped b(TestHooks::rebalance_after_freeze, YieldHook);
  TestHooks::Scoped c(TestHooks::replace_before_splice, YieldHook);
  KiWiConfig config;
  config.chunk_capacity = 24;
  KiWiMap map(config);
  constexpr int kThreads = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 13 + 1);
      std::vector<KiWiMap::Entry> out;
      const int iters = ScaledIters(8000);
      for (int i = 0; i < iters; ++i) {
        const Key key = static_cast<Key>(rng.NextBounded(800));
        switch (rng.NextBounded(5)) {
          case 0: case 1: map.Put(key, i); break;
          case 2: map.Remove(key); break;
          case 3: map.Get(key); break;
          default: {
            map.Scan(key, key + 50, out);
            Key previous = kMinKeySentinel;
            for (const auto& [k, v] : out) {
              ASSERT_GT(k, previous);
              previous = k;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  map.CheckInvariants();
}

}  // namespace
}  // namespace kiwi::core
