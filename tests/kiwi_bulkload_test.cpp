// Tests for bulk-load construction and the structural report.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/kiwi_map.h"

namespace kiwi::core {
namespace {

std::vector<KiWiMap::Entry> MakeSorted(std::size_t count, Key stride = 3) {
  std::vector<KiWiMap::Entry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    entries.emplace_back(static_cast<Key>(i) * stride,
                         static_cast<Value>(i) * 7);
  }
  return entries;
}

TEST(KiWiBulkLoad, EmptyInputYieldsEmptyMap) {
  KiWiMap map(std::span<const KiWiMap::Entry>{});
  EXPECT_EQ(map.Size(), 0u);
  map.CheckInvariants();
}

TEST(KiWiBulkLoad, LoadsAllEntries) {
  const auto entries = MakeSorted(10000);
  KiWiMap map(entries);
  EXPECT_EQ(map.Size(), entries.size());
  for (const auto& [k, v] : entries) {
    ASSERT_EQ(map.Get(k).value_or(-1), v);
  }
  // Absent keys between strides.
  EXPECT_FALSE(map.Get(1).has_value());
  EXPECT_FALSE(map.Get(4).has_value());
  map.CheckInvariants();
}

TEST(KiWiBulkLoad, ScansMatchInput) {
  const auto entries = MakeSorted(5000);
  KiWiMap map(entries);
  std::vector<KiWiMap::Entry> out;
  map.Scan(kMinUserKey, kMaxUserKey, out);
  ASSERT_EQ(out.size(), entries.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), entries.begin()));
}

TEST(KiWiBulkLoad, ChunksAreHalfFilled) {
  KiWiConfig config;
  config.chunk_capacity = 128;  // fill = 64
  const auto entries = MakeSorted(6400);
  KiWiMap map(entries, config);
  const auto report = map.Report();
  EXPECT_EQ(report.data_chunks, 100u);  // 6400 / 64
  EXPECT_NEAR(report.avg_fill, 0.5, 0.01);
  EXPECT_NEAR(report.avg_batched_ratio, 1.0, 1e-9);  // fully sorted
}

TEST(KiWiBulkLoad, MutationsAfterLoadWork) {
  KiWiConfig config;
  config.chunk_capacity = 64;
  const auto entries = MakeSorted(2000);
  KiWiMap map(entries, config);
  // Overwrite, insert between strides, delete.
  map.Put(0, 111);
  map.Put(1, 222);       // new key inside the first chunk's range
  map.Remove(3);
  for (Key k = 6000; k < 6300; ++k) map.Put(k, k);  // grow the tail
  EXPECT_EQ(map.Get(0).value_or(-1), 111);
  EXPECT_EQ(map.Get(1).value_or(-1), 222);
  EXPECT_FALSE(map.Get(3).has_value());
  EXPECT_EQ(map.Size(), 2000u - 1 + 1 + 300);
  map.CheckInvariants();
}

TEST(KiWiBulkLoad, RoundTripsABackup) {
  // Dump via scan, reload via bulk ctor: the canonical restore path.
  KiWiMap original(KiWiConfig{.chunk_capacity = 32});
  Xoshiro256 rng(8);
  for (int i = 0; i < 3000; ++i) {
    original.Put(static_cast<Key>(rng.NextBounded(10000)), i);
  }
  std::vector<KiWiMap::Entry> dump;
  original.Scan(kMinUserKey, kMaxUserKey, dump);
  KiWiMap restored(dump);
  EXPECT_EQ(restored.Size(), original.Size());
  std::vector<KiWiMap::Entry> redump;
  restored.Scan(kMinUserKey, kMaxUserKey, redump);
  EXPECT_EQ(redump, dump);
}

TEST(KiWiReport, TracksBatchedDecay) {
  KiWiConfig config;
  config.chunk_capacity = 256;
  config.rebalance_probability = 0.0;  // no probabilistic rebalances
  const auto entries = MakeSorted(1280);  // 10 chunks, fully batched
  KiWiMap map(entries, config);
  const double before = map.Report().avg_batched_ratio;
  // Random inserts between the strides create linked-list bypasses and
  // dilute the batched prefix.
  Xoshiro256 rng(4);
  for (int i = 0; i < 600; ++i) {
    map.Put(static_cast<Key>(rng.NextBounded(1280 * 3)), i);
  }
  const double after = map.Report().avg_batched_ratio;
  EXPECT_LT(after, before);
  EXPECT_GT(map.Report().allocated_cells, 1280u);
}

}  // namespace
}  // namespace kiwi::core
