// Unit tests for the chunk data structure: PPA word packing, batched-prefix
// binary search, intra-chunk list operations, versioned reads, freezing,
// helping, and harvest.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_registry.h"
#include "core/chunk.h"
#include "reclaim/pool.h"

namespace kiwi::core {
namespace {

using Item = Chunk::Item;

// Chunks are slab-allocated through a SlabPool; tests share one and own the
// result through a Destroy-ing unique_ptr.
using ChunkPtr = std::unique_ptr<Chunk, decltype(&Chunk::Destroy)>;

reclaim::SlabPool& TestPool() {
  static reclaim::SlabPool pool;
  return pool;
}

ChunkPtr MakeChunkWith(std::vector<Item> items, std::uint32_t capacity = 64) {
  return ChunkPtr(Chunk::Create(TestPool(), kMinUserKey, capacity, nullptr,
                                Chunk::Status::kNormal, items),
                  &Chunk::Destroy);
}

TEST(PpaWord, PackRoundTrips) {
  const std::uint64_t word = Chunk::PackPpa(0x123456789ABCull, 0x321);
  EXPECT_EQ(Chunk::PpaVer(word), 0x123456789ABCull);
  EXPECT_EQ(Chunk::PpaIdx(word), 0x321u);
}

TEST(PpaWord, SpecialValuesDistinct) {
  EXPECT_EQ(Chunk::PpaVer(Chunk::kPpaIdle), Chunk::kPpaVerBottom);
  EXPECT_EQ(Chunk::PpaIdx(Chunk::kPpaIdle), Chunk::kPpaNoIdx);
  EXPECT_NE(Chunk::kPpaVerFrozen, Chunk::kPpaVerBottom);
  EXPECT_GT(Chunk::kPpaVerFrozen, kMaxReadVersion);
}

TEST(ChunkBatched, ConstructorSeedsSortedPrefix) {
  std::vector<Item> items;
  for (int i = 0; i < 10; ++i) {
    items.push_back(Item{100 + i * 10, 1, 0, i});
  }
  ChunkPtr chunk_owner = MakeChunkWith(items);
  Chunk& chunk = *chunk_owner;
  EXPECT_EQ(chunk.batched_count, 10u);
  EXPECT_EQ(chunk.AllocatedCells(), 10u);
  // Walk the linked list: sequential 1..10 with correct payloads.
  std::int32_t curr = chunk.k[0].next.load();
  int seen = 0;
  while (curr != Chunk::kNullIdx) {
    EXPECT_EQ(chunk.k[curr].key, 100 + seen * 10);
    EXPECT_EQ(chunk.v[chunk.k[curr].val_ptr.load()], seen);
    curr = chunk.k[curr].next.load();
    ++seen;
  }
  EXPECT_EQ(seen, 10);
}

TEST(ChunkBatched, BinarySearchFindsStrictPredecessor) {
  std::vector<Item> items;
  for (int i = 0; i < 16; ++i) items.push_back(Item{10 * (i + 1), 1, 0, i});
  ChunkPtr chunk_owner = MakeChunkWith(items);
  Chunk& chunk = *chunk_owner;
  EXPECT_EQ(chunk.BatchedPredecessor(5), 0);     // sentinel
  EXPECT_EQ(chunk.BatchedPredecessor(10), 0);    // strict: 10 not < 10
  EXPECT_EQ(chunk.BatchedPredecessor(11), 1);
  EXPECT_EQ(chunk.BatchedPredecessor(100), 9);
  EXPECT_EQ(chunk.BatchedPredecessor(10000), 16);
}

TEST(ChunkBatched, VersionsDescendWithinKey) {
  // Two versions of key 50, newest first.
  std::vector<Item> items{{50, 7, 0, 700}, {50, 3, 1, 300}, {60, 1, 2, 600}};
  ChunkPtr chunk_owner = MakeChunkWith(items);
  Chunk& chunk = *chunk_owner;
  // Latest at unbounded read point: version 7.
  auto latest = chunk.FindLatest(50, kMaxReadVersion);
  ASSERT_TRUE(latest.found);
  EXPECT_EQ(latest.version, 7u);
  EXPECT_EQ(latest.value, 700);
  // A scan with read point 5 sees version 3.
  latest = chunk.FindLatest(50, 5);
  ASSERT_TRUE(latest.found);
  EXPECT_EQ(latest.version, 3u);
  EXPECT_EQ(latest.value, 300);
  // A scan with read point 2 sees nothing.
  EXPECT_FALSE(chunk.FindLatest(50, 2).found);
}

TEST(ChunkFind, ReportsInsertionPoint) {
  std::vector<Item> items{{10, 1, 0, 0}, {30, 1, 1, 0}};
  ChunkPtr chunk_owner = MakeChunkWith(items);
  Chunk& chunk = *chunk_owner;
  std::int32_t pred = -2, succ = -2;
  // Missing key between the two: pred = cell(10), succ = cell(30).
  EXPECT_EQ(chunk.FindCell(20, 1, &pred, &succ), Chunk::kNullIdx);
  EXPECT_EQ(chunk.k[pred].key, 10);
  EXPECT_EQ(chunk.k[succ].key, 30);
  // Exact {key, version} hit.
  const std::int32_t hit = chunk.FindCell(30, 1, &pred, &succ);
  ASSERT_NE(hit, Chunk::kNullIdx);
  EXPECT_EQ(chunk.k[hit].key, 30);
  // Same key, different version: miss, positioned after version 1?  A
  // *newer* version (5 > 1) belongs before the existing cell.
  EXPECT_EQ(chunk.FindCell(30, 5, &pred, &succ), Chunk::kNullIdx);
  EXPECT_EQ(chunk.k[pred].key, 10);
  EXPECT_EQ(chunk.k[succ].key, 30);
}

TEST(ChunkPpa, PendingPutVisibleThroughFindLatest) {
  ChunkPtr chunk_owner = MakeChunkWith({});
  Chunk& chunk = *chunk_owner;
  // Simulate the put protocol up to version acquisition: value + cell.
  chunk.v[0] = 4242;
  chunk.k[1].key = 77;
  chunk.k[1].val_ptr.store(0);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  chunk.ppa[slot].store(Chunk::PackPpa(9, 1));  // version 9, cell 1
  const auto latest = chunk.FindLatest(77, kMaxReadVersion);
  ASSERT_TRUE(latest.found);
  EXPECT_EQ(latest.value, 4242);
  EXPECT_EQ(latest.version, 9u);
  // Bounded read below the pending version misses it.
  EXPECT_FALSE(chunk.FindLatest(77, 8).found);
  chunk.ppa[slot].store(Chunk::kPpaIdle);
}

TEST(ChunkPpa, VersionlessEntryIgnoredByReadsButHelped) {
  GlobalVersion gv;
  ChunkPtr chunk_owner = MakeChunkWith({});
  Chunk& chunk = *chunk_owner;
  chunk.v[0] = 1;
  chunk.k[1].key = 55;
  chunk.k[1].val_ptr.store(0);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  chunk.ppa[slot].store(Chunk::PackPpa(Chunk::kPpaVerBottom, 1));
  // Unversioned pending puts are invisible (they ordered after us)...
  EXPECT_FALSE(chunk.FindLatest(55, kMaxReadVersion).found);
  // ...until helping installs the current GV.
  chunk.HelpPendingPuts(gv, 0, 100);
  const std::uint64_t word = chunk.ppa[slot].load();
  EXPECT_EQ(Chunk::PpaVer(word), gv.Load());
  EXPECT_TRUE(chunk.FindLatest(55, kMaxReadVersion).found);
  chunk.ppa[slot].store(Chunk::kPpaIdle);
}

TEST(ChunkPpa, HelpRespectsKeyRange) {
  GlobalVersion gv;
  ChunkPtr chunk_owner = MakeChunkWith({});
  Chunk& chunk = *chunk_owner;
  chunk.k[1].key = 500;
  chunk.k[1].val_ptr.store(0);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  chunk.ppa[slot].store(Chunk::PackPpa(Chunk::kPpaVerBottom, 1));
  chunk.HelpPendingPuts(gv, 0, 100);  // range misses key 500
  EXPECT_EQ(Chunk::PpaVer(chunk.ppa[slot].load()), Chunk::kPpaVerBottom);
  chunk.ppa[slot].store(Chunk::kPpaIdle);
}

TEST(ChunkPpa, FreezeBlocksVersionlessEntries) {
  ChunkPtr chunk_owner = MakeChunkWith({});
  Chunk& chunk = *chunk_owner;
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  // One versionless pending put and one already-versioned entry.
  chunk.ppa[slot].store(Chunk::PackPpa(Chunk::kPpaVerBottom, 3));
  const std::size_t other = (slot + 1) % kMaxThreads;
  chunk.ppa[other].store(Chunk::PackPpa(12, 4));
  chunk.FreezePpa();
  EXPECT_EQ(Chunk::PpaVer(chunk.ppa[slot].load()), Chunk::kPpaVerFrozen);
  EXPECT_EQ(Chunk::PpaVer(chunk.ppa[other].load()), 12u);  // untouched
  // A put's version CAS (⊥ -> gv) must now fail.
  std::uint64_t expected = Chunk::PackPpa(Chunk::kPpaVerBottom, 3);
  EXPECT_FALSE(chunk.ppa[slot].compare_exchange_strong(
      expected, Chunk::PackPpa(1, 3)));
  chunk.ppa[slot].store(Chunk::kPpaIdle);
  chunk.ppa[other].store(Chunk::kPpaIdle);
}

TEST(ChunkHarvest, CollectMergesListAndPpa) {
  std::vector<Item> items{{10, 2, 0, 100}, {20, 2, 1, 200}};
  ChunkPtr chunk_owner = MakeChunkWith(items);
  Chunk& chunk = *chunk_owner;
  // A versioned pending put for a new key 15.
  chunk.v[2] = 150;
  chunk.k[3].key = 15;
  chunk.k[3].val_ptr.store(2);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  chunk.ppa[slot].store(Chunk::PackPpa(5, 3));
  std::vector<Item> harvested;
  chunk.CollectItems(harvested);
  ASSERT_EQ(harvested.size(), 3u);
  EXPECT_EQ(harvested[0].key, 10);
  EXPECT_EQ(harvested[1].key, 15);
  EXPECT_EQ(harvested[1].version, 5u);
  EXPECT_EQ(harvested[1].value, 150);
  EXPECT_EQ(harvested[2].key, 20);
  chunk.ppa[slot].store(Chunk::kPpaIdle);
}

TEST(ChunkHarvest, DuplicateKeyVersionKeepsLargerValPtr) {
  // List holds {50, v3, valPtr 0}; PPA publishes {50, v3, valPtr 1}: the
  // larger location wins (paper's tie break), exactly once in the harvest.
  std::vector<Item> items{{50, 3, 0, 111}};
  ChunkPtr chunk_owner = MakeChunkWith(items);
  Chunk& chunk = *chunk_owner;
  chunk.v[1] = 222;
  chunk.k[2].key = 50;
  chunk.k[2].val_ptr.store(1);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  chunk.ppa[slot].store(Chunk::PackPpa(3, 2));
  std::vector<Item> harvested;
  chunk.CollectItems(harvested);
  ASSERT_EQ(harvested.size(), 1u);
  EXPECT_EQ(harvested[0].val_ptr, 1);
  EXPECT_EQ(harvested[0].value, 222);
  // FindLatest applies the same tie break.
  const auto latest = chunk.FindLatest(50, kMaxReadVersion);
  EXPECT_EQ(latest.value, 222);
  chunk.ppa[slot].store(Chunk::kPpaIdle);
}

TEST(ChunkGeometry, CoversKeyUsesNextMinKey) {
  ChunkPtr low_owner(Chunk::Create(TestPool(), kMinUserKey, 8, nullptr,
                                   Chunk::Status::kNormal),
                     &Chunk::Destroy);
  ChunkPtr high_owner(Chunk::Create(TestPool(), 1000, 8, nullptr,
                                    Chunk::Status::kNormal),
                      &Chunk::Destroy);
  Chunk& low = *low_owner;
  Chunk& high = *high_owner;
  low.next.Store(MarkedPtr<Chunk>(&high, false));
  EXPECT_TRUE(low.CoversKey(kMinUserKey));
  EXPECT_TRUE(low.CoversKey(999));
  EXPECT_FALSE(low.CoversKey(1000));
  EXPECT_TRUE(high.CoversKey(1000));
  EXPECT_TRUE(high.CoversKey(kMaxUserKey));
  EXPECT_FALSE(high.CoversKey(5));
  EXPECT_GT(low.MemoryFootprint(), 8 * sizeof(Chunk::Cell));
}

// ---- byte-layout arenas --------------------------------------------------

using ByteChunk = ChunkT<ByteLayout>;
using ByteItem = ByteChunk::Item;
using ByteChunkPtr = std::unique_ptr<ByteChunk, decltype(&ByteChunk::Destroy)>;

TEST(ByteChunkArena, MakePrefixOrderMatchesLexicographicOrder) {
  // The normalized prefix must order exactly like the first-8-byte
  // truncation of the key, on any host endianness (the >= 8 branch packs
  // via memcpy + conditional bswap; this cross-checks it against the
  // byte-at-a-time construction the short-key branch uses).
  const std::vector<std::string> keys = {
      std::string(1, '\0'), "a", "abcdefgh", "abcdefgi", "abcdefghzzz",
      "abcdefgh\x01", std::string("\x00\xff" "abcdef", 8),
      std::string(8, '\xff'), std::string(9, '\xff'), "zzzzzzz"};
  for (const std::string& a : keys) {
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(a.size(), 8); ++i) {
      expected |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(a[i]))
                  << (56 - 8 * i);
    }
    EXPECT_EQ(ByteLayout::MakePrefix(a), expected) << a;
    for (const std::string& b : keys) {
      const std::string ta = a.substr(0, 8);
      const std::string tb = b.substr(0, 8);
      if (ta < tb) {
        EXPECT_LT(ByteLayout::MakePrefix(a), ByteLayout::MakePrefix(b));
      } else if (ta == tb) {
        EXPECT_EQ(ByteLayout::MakePrefix(a), ByteLayout::MakePrefix(b));
      }
    }
  }
}

TEST(ByteChunkArena, ClaimsAreExclusiveAndBounded) {
  ByteChunkPtr owner(ByteChunk::Create(TestPool(), ByteLayout::MinUserKey(),
                                       8, nullptr, ByteChunk::Status::kNormal,
                                       {}, /*arena_capacity=*/64),
                     &ByteChunk::Destroy);
  ByteChunk& chunk = *owner;
  EXPECT_EQ(chunk.ArenaUsed(), 1u);  // the min_key ("\0") copy
  std::uint32_t a = 0, b = 0;
  ASSERT_TRUE(chunk.ClaimArena(30, &a));
  ASSERT_TRUE(chunk.ClaimArena(33, &b));  // 1 + 30 + 33 == 64 exactly
  EXPECT_NE(a, b);
  EXPECT_EQ(chunk.ArenaUsed(), 64u);
  std::uint32_t c = 0;
  EXPECT_FALSE(chunk.ClaimArena(1, &c)) << "arena exhausted";
  // The failed claim's dead reservation clamps in ArenaUsed.
  EXPECT_EQ(chunk.ArenaUsed(), 64u);
}

TEST(ByteChunkArena, BuildCopyCompactsDeadReservations) {
  // A source chunk whose arena is fragmented: live entries interleaved with
  // dead reservations (obsolete versions and a failed claim).
  ByteChunkPtr src_owner(
      ByteChunk::Create(TestPool(), ByteLayout::MinUserKey(), 16, nullptr,
                        ByteChunk::Status::kNormal, {}, 512),
      &ByteChunk::Destroy);
  ByteChunk& src = *src_owner;
  std::uint32_t waste = 0;
  ASSERT_TRUE(src.ClaimArena(100, &waste));  // dead: an abandoned claim
  // Install two live entries by hand at claimed offsets, linked via cell 1
  // and 2 (sorted order).
  const std::string_view keys[2] = {"alpha", "beta"};
  const std::string_view vals[2] = {"AAAA", "BBBBBBBB"};
  for (int i = 0; i < 2; ++i) {
    std::uint32_t off = 0;
    const std::uint32_t need =
        static_cast<std::uint32_t>(keys[i].size() + vals[i].size());
    ASSERT_TRUE(src.ClaimArena(need, &off));
    std::memcpy(src.a + off, keys[i].data(), keys[i].size());
    std::memcpy(src.a + off + keys[i].size(), vals[i].data(), vals[i].size());
    src.k[i + 1].key = ByteLayout::CellKey{
        ByteLayout::MakePrefix(keys[i]), off,
        static_cast<std::uint32_t>(keys[i].size())};
    src.k[i + 1].version = 1;
    src.k[i + 1].val_ptr.store(i);
    src.v[i] = ByteLayout::StoredValue{
        static_cast<std::uint32_t>(off + keys[i].size()),
        static_cast<std::uint32_t>(vals[i].size())};
  }
  src.k[0].next.store(1);
  src.k[1].next.store(2);
  src.k[2].next.store(ByteChunk::kNullIdx);
  src.k_counter.store(3);
  src.v_counter.store(2);
  const std::uint32_t fragmented = src.ArenaUsed();

  // Rebalance's build step: harvest and copy into a fresh chunk.  The copy
  // IS the compaction — dead reservations do not travel.
  std::vector<ByteItem> items;
  src.CollectItems(items);
  ASSERT_EQ(items.size(), 2u);
  ByteChunkPtr dst_owner(
      ByteChunk::Create(TestPool(), ByteLayout::MinUserKey(), 16, nullptr,
                        ByteChunk::Status::kInfant,
                        std::span<const ByteItem>(items), 512),
      &ByteChunk::Destroy);
  ByteChunk& dst = *dst_owner;
  const std::uint32_t live_bytes = static_cast<std::uint32_t>(
      1 +  // min_key "\0"
      keys[0].size() + vals[0].size() + keys[1].size() + vals[1].size());
  EXPECT_EQ(dst.ArenaUsed(), live_bytes);
  EXPECT_LT(dst.ArenaUsed(), fragmented) << "compaction reclaimed dead bytes";
  // The copied entries read back through the normal lookup path.
  const auto alpha = dst.FindLatest("alpha", kMaxReadVersion);
  ASSERT_TRUE(alpha.found);
  EXPECT_EQ(alpha.value, "AAAA");
  const auto beta = dst.FindLatest("beta", kMaxReadVersion);
  ASSERT_TRUE(beta.found);
  EXPECT_EQ(beta.value, "BBBBBBBB");
}

TEST(ByteChunkArena, TombstonesCarryNoArenaBytes) {
  std::vector<ByteItem> items;
  items.push_back(ByteItem{"gone", 2, 0, ByteLayout::TombstoneValue()});
  ByteChunkPtr owner(
      ByteChunk::Create(TestPool(), ByteLayout::MinUserKey(), 8, nullptr,
                        ByteChunk::Status::kNormal,
                        std::span<const ByteItem>(items), 128),
      &ByteChunk::Destroy);
  ByteChunk& chunk = *owner;
  EXPECT_EQ(chunk.ArenaUsed(), 1u + 4u);  // min_key + the key only
  const auto latest = chunk.FindLatest("gone", kMaxReadVersion);
  ASSERT_TRUE(latest.found);
  EXPECT_TRUE(latest.is_tombstone);
}

}  // namespace
}  // namespace kiwi::core
