// Tests for the snapshot-capable hash trie (Ctrie analogue): correctness,
// full-snapshot scans, COW behaviour, and concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "baselines/ctrie/hash_trie.h"
#include "common/random.h"

namespace kiwi::baselines {
namespace {

TEST(HashTrie, BasicPutGetRemove) {
  HashTrie trie;
  EXPECT_FALSE(trie.Get(1).has_value());
  trie.Put(1, 10);
  trie.Put(2, 20);
  trie.Put(1, 11);
  EXPECT_EQ(trie.Get(1).value(), 11);
  EXPECT_EQ(trie.Get(2).value(), 20);
  trie.Remove(1);
  EXPECT_FALSE(trie.Get(1).has_value());
  EXPECT_EQ(trie.Get(2).value(), 20);
  trie.Remove(999);  // absent: no-op
  EXPECT_EQ(trie.Size(), 1u);
}

TEST(HashTrie, DeepHashPathsResolve) {
  // Keys chosen densely force multi-level tries via their hashed bits.
  HashTrie trie;
  for (Key k = 0; k < 5000; ++k) trie.Put(k, k * 3);
  EXPECT_EQ(trie.Size(), 5000u);
  for (Key k = 0; k < 5000; ++k) ASSERT_EQ(trie.Get(k).value_or(-1), k * 3);
  for (Key k = 5000; k < 5100; ++k) ASSERT_FALSE(trie.Get(k).has_value());
}

TEST(HashTrie, MatchesOracle) {
  HashTrie trie;
  std::map<Key, Value> oracle;
  Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(1500));
    if (rng.NextBool(0.3)) {
      trie.Remove(key);
      oracle.erase(key);
    } else {
      trie.Put(key, i);
      oracle[key] = i;
    }
  }
  for (const auto& [k, v] : oracle) ASSERT_EQ(trie.Get(k).value_or(-1), v);
  std::vector<HashTrie::Entry> out;
  trie.Scan(0, 1500, out);
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);  // sorted ascending despite hash order
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

TEST(HashTrie, ScanFiltersRange) {
  HashTrie trie;
  for (Key k = 0; k < 1000; ++k) trie.Put(k, k);
  std::vector<HashTrie::Entry> out;
  EXPECT_EQ(trie.Scan(100, 199, out), 100u);
  EXPECT_EQ(out.front().first, 100);
  EXPECT_EQ(out.back().first, 199);
  EXPECT_EQ(trie.Scan(5000, 6000, out), 0u);
}

TEST(HashTrie, ScansAreAtomicUnderSweepWriter) {
  constexpr Key kKeys = 128;
  HashTrie trie;
  for (Key k = 0; k < kKeys; ++k) trie.Put(k, 0);
  std::atomic<bool> stop{false};
  std::atomic<Value> rounds_done{0};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) trie.Put(k, round);
      rounds_done.store(round, std::memory_order_release);
    }
  });
  std::vector<HashTrie::Entry> out;
  for (int i = 0; i < 300 || rounds_done.load(std::memory_order_acquire) < 5;
       ++i) {
    trie.Scan(0, kKeys - 1, out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kKeys));
    Value previous = out.front().second;
    for (const auto& [key, value] : out) {
      ASSERT_LE(value, previous) << "torn snapshot at key " << key;
      previous = value;
    }
    ASSERT_LE(out.front().second - out.back().second, 1);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(trie.CowClones(), 0u)
      << "writers under live snapshots must pay COW clones";
}

TEST(HashTrie, DisjointConcurrentWriters) {
  HashTrie trie;
  constexpr int kThreads = 6;
  constexpr Key kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (Key k = 0; k < kPerThread; ++k) trie.Put(t * kPerThread + k, k);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(trie.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (Key k = 0; k < kPerThread; k += 131) {
      ASSERT_EQ(trie.Get(t * kPerThread + k).value_or(-1), k);
    }
  }
}

TEST(HashTrie, ContendedSameKeysConverge) {
  HashTrie trie;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 9);
      for (int i = 0; i < 20000; ++i) {
        const Key key = static_cast<Key>(rng.NextBounded(64));
        if (rng.NextBool(0.3)) {
          trie.Remove(key);
        } else {
          trie.Put(key, t * 100000 + i);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Structure is consistent: every present key readable, scan agrees.
  std::vector<HashTrie::Entry> out;
  trie.Scan(0, 63, out);
  for (const auto& [k, v] : out) {
    ASSERT_EQ(trie.Get(k).value_or(-1), v);
  }
  EXPECT_EQ(trie.Size(), out.size());
}

TEST(HashTrie, MemoryFootprintGrows) {
  HashTrie trie;
  const std::size_t empty = trie.MemoryFootprint();
  for (Key k = 0; k < 5000; ++k) trie.Put(k, k);
  EXPECT_GT(trie.MemoryFootprint(), empty);
}

TEST(HashTrie, ExtremeKeysHashCleanly) {
  HashTrie trie;
  trie.Put(kMinUserKey, 1);
  trie.Put(kMaxUserKey, 2);
  trie.Put(0, 3);
  EXPECT_EQ(trie.Get(kMinUserKey).value(), 1);
  EXPECT_EQ(trie.Get(kMaxUserKey).value(), 2);
  std::vector<HashTrie::Entry> out;
  EXPECT_EQ(trie.Scan(kMinUserKey, kMaxUserKey, out), 3u);
  EXPECT_EQ(out[0].first, kMinUserKey);
  EXPECT_EQ(out[2].first, kMaxUserKey);
}

}  // namespace
}  // namespace kiwi::baselines
