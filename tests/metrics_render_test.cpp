// Tests for the CSV emission contract between the benches and
// scripts/render_results.py: the format is load-bearing for reproduction.
#include <gtest/gtest.h>

#include "harness/metrics.h"

namespace kiwi::harness {
namespace {

TEST(MetricsCsv, RowFormatIsStable) {
  ::testing::internal::CaptureStdout();
  EmitCsv("fig3get", "kiwi", 4, 5.25, "Mkeys/s");
  const std::string output = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(output, "csv,fig3get,kiwi,4,5.25,Mkeys/s\n");
}

TEST(MetricsCsv, LargeAndTinyValuesStayParseable) {
  ::testing::internal::CaptureStdout();
  EmitCsv("f", "s", 131072, 0.000123, "u");
  EmitCsv("f", "s", 2, 1.0e9, "u");
  const std::string output = ::testing::internal::GetCapturedStdout();
  // Six comma-separated fields per line, numeric x/y.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < output.size()) {
    const std::size_t end = output.find('\n', start);
    const std::string line = output.substr(start, end - start);
    std::size_t commas = 0;
    for (const char c : line) commas += (c == ',');
    EXPECT_EQ(commas, 5u) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(MetricsNote, PrefixedForFiltering) {
  ::testing::internal::CaptureStdout();
  Note("hello world");
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), "# hello world\n");
}

TEST(MetricsFormat, HumanReadableHelpers) {
  EXPECT_EQ(FormatMps(0.0), "0.000 M/s");
  EXPECT_EQ(FormatMps(123456789.0), "123.457 M/s");
  EXPECT_EQ(FormatMb(0), "0.00 MB");
  EXPECT_EQ(FormatMb(512 * 1024), "0.50 MB");
}

TEST(MetricsParse, ListEdgeCases) {
  std::vector<std::uint64_t> values;
  EXPECT_TRUE(ParseUintList("0", &values));
  EXPECT_EQ(values[0], 0u);
  EXPECT_TRUE(ParseUintList("18446744073709551615", &values));
  EXPECT_EQ(values[0], ~std::uint64_t{0});
  EXPECT_FALSE(ParseUintList(",1", &values));
  EXPECT_FALSE(ParseUintList("1,", &values));
  EXPECT_FALSE(ParseUintList("1 2", &values));
}

}  // namespace
}  // namespace kiwi::harness
