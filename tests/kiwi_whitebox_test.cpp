// White-box tests for KiWi's rebalance machinery: drives the rare races
// directly through internal state instead of hoping a scheduler produces
// them — the orphaned-engagement recovery, frozen-chunk put restarts, and
// the chunk life-cycle (infant -> normal -> frozen).
#include <gtest/gtest.h>

#include <vector>

#include "core/kiwi_map.h"
#include "reclaim/ebr.h"

namespace kiwi::core {

// Friend of KiWiMap (declared in kiwi_map.h): exposes internals to tests.
class KiWiTestPeer {
 public:
  explicit KiWiTestPeer(KiWiMap& map) : map_(map) {}

  Chunk* Sentinel() { return map_.sentinel_; }

  Chunk* Locate(Key key) {
    reclaim::EbrGuard guard(map_.ebr_);
    return map_.LocateChunk(key);
  }

  reclaim::Ebr& Ebr() { return map_.ebr_; }

  std::vector<Chunk::Status> Statuses() {
    reclaim::EbrGuard guard(map_.ebr_);
    std::vector<Chunk::Status> statuses;
    for (Chunk* c = map_.sentinel_; c != nullptr; c = c->Next()) {
      statuses.push_back(c->status.load(std::memory_order_acquire));
    }
    return statuses;
  }

  /// Manufacture the orphaned-engagement state on the chunk covering `key`:
  /// a *finished* rebalance object attached to a still-reachable chunk
  /// (DESIGN.md §2 deviation 7).  Freezes the chunk like the racing helper
  /// would have.
  void MakeOrphan(Key key) {
    reclaim::EbrGuard guard(map_.ebr_);
    Chunk* chunk = map_.LocateChunk(key);
    ASSERT_EQ(chunk->ro.load(std::memory_order_acquire), nullptr)
        << "test requires a chunk not already engaged";
    auto* ro = RebalanceObject::Create(map_.pool_, chunk, chunk->Next());
    // A finished rebalance: replacement agreed and splice done.
    ro->next.store(nullptr, std::memory_order_release);
    ro->replacement.store(chunk, std::memory_order_release);  // arbitrary
    ro->done.store(true, std::memory_order_release);
    // The chunk's `ro` pointer owns the object's initial reference; the
    // recovery path (or the chunk's destructor) releases it.
    chunk->ro.store(ro, std::memory_order_release);
    chunk->status.store(Chunk::Status::kFrozen, std::memory_order_release);
    chunk->FreezePpa();
  }

 private:
  KiWiMap& map_;
};

namespace {

TEST(KiWiWhitebox, ChunkLifecycleAfterLoad) {
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  for (Key k = 0; k < 2000; ++k) map.Put(k, k);
  KiWiTestPeer peer(map);
  const auto statuses = peer.Statuses();
  ASSERT_GT(statuses.size(), 2u);
  EXPECT_EQ(statuses.front(), Chunk::Status::kSentinel);
  // Quiescent map: every data chunk has been normalized (no stuck infants
  // or frozen chunks left in the list).
  for (std::size_t i = 1; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i], Chunk::Status::kNormal) << "chunk " << i;
  }
}

TEST(KiWiWhitebox, SentinelNeverEngagedOrReplaced) {
  KiWiConfig config;
  config.chunk_capacity = 16;
  KiWiMap map(config);
  KiWiTestPeer peer(map);
  Chunk* sentinel_before = peer.Sentinel();
  for (Key k = 0; k < 5000; ++k) map.Put(k, k);
  map.CompactAll();
  EXPECT_EQ(peer.Sentinel(), sentinel_before);
  EXPECT_EQ(peer.Sentinel()->status.load(), Chunk::Status::kSentinel);
  EXPECT_EQ(peer.Sentinel()->ro.load(), nullptr);
}

TEST(KiWiWhitebox, LocateFollowsListPastStaleIndex) {
  KiWiConfig config;
  config.chunk_capacity = 16;
  KiWiMap map(config);
  for (Key k = 0; k < 1000; ++k) map.Put(k, k);
  KiWiTestPeer peer(map);
  // Whatever the index returns, Locate must land on the covering chunk.
  for (Key k = 0; k < 1000; k += 37) {
    Chunk* chunk = peer.Locate(k);
    ASSERT_NE(chunk, nullptr);
    EXPECT_LE(chunk->min_key, k);
    Chunk* next = chunk->Next();
    if (next != nullptr) EXPECT_GT(next->min_key, k);
  }
}

TEST(KiWiWhitebox, OrphanedEngagementRecovers) {
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  for (Key k = 0; k < 50; ++k) map.Put(k, k);

  KiWiTestPeer peer(map);
  peer.MakeOrphan(25);

  // The chunk is frozen with a finished ro: without recovery this put would
  // restart forever (the paper's engagement race, DESIGN.md §2.7).
  map.Put(25, 999);
  EXPECT_EQ(map.Get(25).value_or(-1), 999);

  // No data lost through the recovery rebalance, and the list healed.
  for (Key k = 0; k < 50; ++k) {
    if (k == 25) continue;
    ASSERT_EQ(map.Get(k).value_or(-1), k) << k;
  }
  map.CheckInvariants();
  const auto statuses = peer.Statuses();
  for (std::size_t i = 1; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i], Chunk::Status::kNormal);
  }
}

TEST(KiWiWhitebox, OrphanRecoveryUnderGets) {
  // Gets must keep answering from the frozen orphan until it is replaced.
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  for (Key k = 0; k < 50; ++k) map.Put(k, k);
  KiWiTestPeer peer(map);
  peer.MakeOrphan(0);
  // Reads against the frozen chunk still work (wait-free reads never care
  // about chunk status)...
  for (Key k = 0; k < 50; ++k) ASSERT_EQ(map.Get(k).value_or(-1), k);
  // ...and a write triggers recovery.
  map.Put(7, 777);
  EXPECT_EQ(map.Get(7).value_or(-1), 777);
  map.CheckInvariants();
}

TEST(KiWiWhitebox, ScanThroughFrozenOrphan) {
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  for (Key k = 0; k < 50; ++k) map.Put(k, k);
  KiWiTestPeer peer(map);
  peer.MakeOrphan(25);
  std::vector<KiWiMap::Entry> out;
  ASSERT_EQ(map.Scan(0, 49, out), 50u);
  for (Key k = 0; k < 50; ++k) EXPECT_EQ(out[k].second, k);
}

TEST(KiWiWhitebox, ReclamationKeepsFrozenChunksForReaders) {
  KiWiConfig config;
  config.chunk_capacity = 16;
  KiWiMap map(config);
  KiWiTestPeer peer(map);
  for (Key k = 0; k < 500; ++k) map.Put(k, k);
  // Hold a guard (simulating a slow reader) and churn rebalances: pending
  // reclamation must accumulate instead of freeing under the reader.
  {
    reclaim::EbrGuard reader(peer.Ebr());
    const std::size_t before = peer.Ebr().PendingCount();
    for (Key k = 0; k < 500; ++k) map.Put(k, k + 1);
    map.CompactAll();
    EXPECT_GT(peer.Ebr().PendingCount(), before);
  }
  map.DrainReclamation();
  EXPECT_EQ(peer.Ebr().PendingCount(), 0u);
}

}  // namespace
}  // namespace kiwi::core
