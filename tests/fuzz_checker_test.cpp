// Tests for the fuzz history checker itself: synthetic histories with known
// verdicts, including multi-key scan-snapshot violations the per-key layer
// alone cannot see, and the windowed register search that replaced the old
// hard 63-op history cap.

#include <gtest/gtest.h>

#include "fuzz/checker.h"
#include "fuzz/history.h"
#include "harness/linearizability.h"

namespace kiwi::fuzz {
namespace {

using harness::FeasibleFinalStates;
using harness::IsLinearizableRegisterHistory;
using harness::LinOp;
using harness::RegisterState;

FuzzOp Put(Key key, Value value, std::uint64_t invoke, std::uint64_t resp) {
  FuzzOp op;
  op.kind = FuzzOp::Kind::kPut;
  op.key = key;
  op.value = value;
  op.invoke = invoke;
  op.response = resp;
  return op;
}

FuzzOp Remove(Key key, std::uint64_t invoke, std::uint64_t resp) {
  FuzzOp op;
  op.kind = FuzzOp::Kind::kRemove;
  op.key = key;
  op.invoke = invoke;
  op.response = resp;
  return op;
}

FuzzOp GetHit(Key key, Value value, std::uint64_t invoke,
              std::uint64_t resp) {
  FuzzOp op;
  op.kind = FuzzOp::Kind::kGet;
  op.key = key;
  op.value = value;
  op.found = true;
  op.invoke = invoke;
  op.response = resp;
  return op;
}

FuzzOp GetMiss(Key key, std::uint64_t invoke, std::uint64_t resp) {
  FuzzOp op;
  op.kind = FuzzOp::Kind::kGet;
  op.key = key;
  op.invoke = invoke;
  op.response = resp;
  return op;
}

FuzzOp Scan(Key from, Key to, std::uint64_t invoke, std::uint64_t resp,
            std::vector<std::pair<Key, Value>> result) {
  FuzzOp op;
  op.kind = FuzzOp::Kind::kScan;
  op.key = from;
  op.to_key = to;
  op.invoke = invoke;
  op.response = resp;
  op.scan_result = std::move(result);
  return op;
}

TEST(FuzzChecker, SequentialSingleKeyPasses) {
  History h;
  h.ops = {Put(1, 100, 1, 2), GetHit(1, 100, 3, 4), Remove(1, 5, 6),
           GetMiss(1, 7, 8)};
  EXPECT_TRUE(CheckHistory(h).ok);
}

TEST(FuzzChecker, StaleGetFails) {
  History h;
  h.ops = {Put(1, 100, 1, 2), Put(1, 200, 3, 4), GetHit(1, 100, 5, 6)};
  const CheckResult r = CheckHistory(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("key 1"), std::string::npos) << r.message;
}

TEST(FuzzChecker, ConcurrentOpsUseIntervalFreedom) {
  // The get overlaps both puts, so either value is linearizable.
  History h;
  h.ops = {Put(1, 100, 1, 10), Put(1, 200, 2, 11), GetHit(1, 100, 3, 9)};
  EXPECT_TRUE(CheckHistory(h).ok);
  h.ops.back() = GetHit(1, 200, 3, 9);
  EXPECT_TRUE(CheckHistory(h).ok);
}

TEST(FuzzChecker, IndependentKeysPass) {
  History h;
  h.initial = {{1, 11}, {2, 22}};
  h.ops = {Put(1, 100, 1, 2), GetHit(2, 22, 1, 2), GetHit(1, 100, 3, 4),
           Remove(2, 3, 4), GetMiss(2, 5, 6)};
  EXPECT_TRUE(CheckHistory(h).ok);
}

TEST(FuzzChecker, PreloadVisibleToReads) {
  History h;
  h.initial = {{7, 77}};
  h.ops = {GetHit(7, 77, 1, 2)};
  EXPECT_TRUE(CheckHistory(h).ok);
  h.ops = {GetMiss(7, 1, 2)};
  EXPECT_FALSE(CheckHistory(h).ok);
}

TEST(FuzzChecker, ConsistentScanPasses) {
  History h;
  h.initial = {{1, 11}, {2, 22}};
  h.ops = {Put(1, 100, 10, 11),
           Scan(1, 3, 20, 21, {{1, 100}, {2, 22}})};
  EXPECT_TRUE(CheckHistory(h).ok);
}

// The torn-cut case the scan layer exists for: each per-key observation is
// individually explainable, but no single tick explains both.  The scan
// sees key 1 from before put(1,100) [10,11] and key 2 from after
// put(2,200) [20,21] — the cut must be both <= 11 and >= 20.
TEST(FuzzChecker, TornScanCutFails) {
  History h;
  h.initial = {{1, 11}, {2, 22}};
  h.ops = {Put(1, 100, 10, 11), Put(2, 200, 20, 21),
           Scan(1, 2, 5, 30, {{1, 11}, {2, 200}})};
  const CheckResult r = CheckHistory(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("torn scan"), std::string::npos) << r.message;
}

// Same shape but the scan observes a consistent cut (both old or both new).
TEST(FuzzChecker, UntornScanCutPasses) {
  History h;
  h.initial = {{1, 11}, {2, 22}};
  h.ops = {Put(1, 100, 10, 11), Put(2, 200, 20, 21),
           Scan(1, 2, 5, 30, {{1, 11}, {2, 22}})};
  EXPECT_TRUE(CheckHistory(h).ok);
  h.ops.back() = Scan(1, 2, 5, 30, {{1, 100}, {2, 200}});
  EXPECT_TRUE(CheckHistory(h).ok);
}

// A scan missing a key that was surely present across its whole window.
TEST(FuzzChecker, ScanMissingPresentKeyFails) {
  History h;
  h.initial = {{3, 33}};
  // The only remove starts at 40; a scan over [10,20] must see key 3.
  h.ops = {Remove(3, 40, 50), Scan(3, 3, 10, 20, {})};
  EXPECT_FALSE(CheckHistory(h).ok);
  // After the remove it may legitimately be absent.
  h.ops = {Remove(3, 40, 50), Scan(3, 3, 60, 70, {})};
  EXPECT_TRUE(CheckHistory(h).ok);
}

TEST(FuzzChecker, ScanStructuralViolations) {
  History h;
  h.initial = {{1, 11}, {2, 22}};
  h.ops = {Scan(1, 2, 1, 2, {{5, 55}})};  // out of range
  EXPECT_FALSE(CheckHistory(h).ok);
  h.ops = {Scan(1, 2, 1, 2, {{2, 22}, {1, 11}})};  // descending
  EXPECT_FALSE(CheckHistory(h).ok);
  h.ops = {Scan(1, 2, 1, 2, {{1, 11}, {1, 11}})};  // duplicate
  EXPECT_FALSE(CheckHistory(h).ok);
}

// ---- windowed register search ------------------------------------------

// Long sequential histories exceed the old 63-op cap but contain no
// overlapping window, so they must pass (and fail when made inconsistent).
TEST(FuzzChecker, LongSequentialHistoryIsChecked) {
  std::vector<LinOp> ops;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::uint64_t t = 1 + i * 2;
    ops.push_back({LinOp::Kind::kWrite, static_cast<Value>(i), false, t,
                   t + 1});
  }
  EXPECT_TRUE(IsLinearizableRegisterHistory(ops));
  // A read of a long-overwritten value must fail even deep in the history.
  ops.push_back({LinOp::Kind::kRead, 5, true, 1000, 1001});
  EXPECT_FALSE(IsLinearizableRegisterHistory(ops));
  ops.back() = {LinOp::Kind::kRead, 299, true, 1000, 1001};
  EXPECT_TRUE(IsLinearizableRegisterHistory(ops));
}

// Feasible final states must thread across windows: after two concurrent
// writes, either order is feasible — but two later sequential reads cannot
// observe both orders.
TEST(FuzzChecker, FinalStatesThreadAcrossWindows) {
  std::vector<LinOp> ops = {
      {LinOp::Kind::kWrite, 1, false, 1, 10},
      {LinOp::Kind::kWrite, 2, false, 2, 11},
      {LinOp::Kind::kRead, 1, true, 20, 21},
  };
  EXPECT_TRUE(IsLinearizableRegisterHistory(ops));
  // The first read pinned the write order; a second read of the other value
  // has no explanation.
  ops.push_back({LinOp::Kind::kRead, 2, true, 22, 23});
  EXPECT_FALSE(IsLinearizableRegisterHistory(ops));
  // Re-reading the same value is fine.
  ops.back() = {LinOp::Kind::kRead, 1, true, 22, 23};
  EXPECT_TRUE(IsLinearizableRegisterHistory(ops));
}

TEST(FuzzChecker, FeasibleFinalStatesEnumeration) {
  const std::vector<LinOp> ops = {
      {LinOp::Kind::kWrite, 1, false, 1, 10},
      {LinOp::Kind::kWrite, 2, false, 2, 11},
  };
  const auto finals =
      FeasibleFinalStates(ops, {RegisterState{false, 0}});
  ASSERT_EQ(finals.size(), 2u);
  EXPECT_TRUE(finals[0].present);
  EXPECT_TRUE(finals[1].present);
  EXPECT_NE(finals[0].value, finals[1].value);
}

// A single window larger than kMaxOverlappingOps must abort loudly, never
// silently truncate the search.
TEST(FuzzCheckerDeathTest, OversizedOverlapWindowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<LinOp> ops;
  for (std::uint64_t i = 0; i < harness::kMaxOverlappingOps + 1; ++i) {
    // All intervals share tick 100, so they form one overlapping window.
    ops.push_back({LinOp::Kind::kWrite, static_cast<Value>(i), false, i + 1,
                   200 + i});
  }
  EXPECT_DEATH(IsLinearizableRegisterHistory(ops), "kMaxOverlappingOps");
}

}  // namespace
}  // namespace kiwi::fuzz
