// KiWiByteMap correctness: the byte-string instantiation against a
// std::map<std::string, std::string> oracle, plus targeted edge cases the
// arena scheme introduces — prefix-colliding keys (first 8 bytes equal, so
// lookups must fall through to the arena memcmp), empty values, duplicate
// puts, arena exhaustion triggering rebalance, snapshots, PutBatch and the
// bulk-load constructor.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/byte_map.h"
#include "common/random.h"
#include "obs/census.h"

namespace kiwi::api {
namespace {

using Entry = KiWiByteMap::Entry;

// Key material mixing three shapes: short keys (prefix decides alone),
// long keys sharing an 8+ byte prefix (every comparison memcmps the arena),
// and keys with embedded NULs / high bytes (memcmp order, not strcmp).
std::string MakeKey(Xoshiro256& rng) {
  switch (rng.NextBounded(4)) {
    case 0:  // short: fits entirely in the cell prefix
      return std::string(1 + rng.NextBounded(7), 'a' + rng.NextBounded(4));
    case 1: {  // shared long prefix + short suffix: prefix always ties
      std::string key = "sharedprefix!";
      key += static_cast<char>('a' + rng.NextBounded(6));
      if (rng.NextBounded(2)) key += static_cast<char>('0' + rng.NextBounded(3));
      return key;
    }
    case 2: {  // embedded NUL and high bytes
      std::string key = "nul";
      key += '\0';
      key += static_cast<char>(rng.NextBounded(256));
      return key;
    }
    default: {  // medium random
      std::string key(8 + rng.NextBounded(24), '\0');
      for (char& c : key) c = static_cast<char>('A' + rng.NextBounded(26));
      return key;
    }
  }
}

std::string MakeValue(Xoshiro256& rng, int i) {
  if (rng.NextBounded(8) == 0) return "";  // empty values are legal
  std::string value = "v" + std::to_string(i) + ":";
  value.append(rng.NextBounded(48), 'x');
  return value;
}

TEST(KiWiByteMap, RandomOpsAgreeWithStdMap) {
  core::KiWiConfig config;
  config.chunk_capacity = 64;             // stress rebalancing
  config.bytes.arena_bytes_per_cell = 48; // and arena exhaustion
  KiWiByteMap map(config);
  std::map<std::string, std::string> oracle;
  Xoshiro256 rng(20260808);
  std::vector<Entry> out;

  for (int i = 0; i < 12000; ++i) {
    const std::string key = MakeKey(rng);
    switch (rng.NextBounded(100)) {
      default: {  // 0-49: put
        const std::string value = MakeValue(rng, i);
        map.Put(key, value);
        oracle[key] = value;
        break;
      }
      case 50 ... 69:  // remove
        map.Remove(key);
        oracle.erase(key);
        break;
      case 70 ... 89: {  // get
        const auto got = map.Get(key);
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_FALSE(got.has_value()) << "phantom key " << key;
        } else {
          ASSERT_TRUE(got.has_value()) << "lost key " << key;
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 90 ... 99: {  // range scan [key, key + suffix]
        const std::string to = key + "zzzz";
        map.Scan(key, to, out);
        auto it = oracle.lower_bound(key);
        std::size_t index = 0;
        for (; it != oracle.end() && it->first <= to; ++it, ++index) {
          ASSERT_LT(index, out.size());
          ASSERT_EQ(out[index].first, it->first);
          ASSERT_EQ(out[index].second, it->second);
        }
        ASSERT_EQ(out.size(), index);
        break;
      }
    }
  }

  // Final full comparison through the unbounded scan.
  out.clear();
  map.ScanFrom(ByteMapMinKey(), [&out](std::string_view k, std::string_view v) {
    out.emplace_back(k, v);
  });
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
  map.CheckInvariants();
}

TEST(KiWiByteMap, PrefixCollidingKeysAreDistinct) {
  KiWiByteMap map;
  // All 26 keys share the same 12-byte prefix: every comparison ties on the
  // cell prefix and must resolve through the arena memcmp.
  for (char c = 'a'; c <= 'z'; ++c) {
    map.Put(std::string("sameprefix--") + c, std::string(1, c));
  }
  for (char c = 'a'; c <= 'z'; ++c) {
    const auto got = map.Get(std::string("sameprefix--") + c);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, std::string(1, c));
  }
  // A key that is a strict prefix of another sorts first.
  map.Put("sameprefix--", "bare");
  std::vector<Entry> out;
  map.Scan("sameprefix--", "sameprefix--b", out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, "sameprefix--");
  EXPECT_EQ(out[1].first, "sameprefix--a");
  EXPECT_EQ(out[2].first, "sameprefix--b");
}

TEST(KiWiByteMap, EmptyValueAndTombstoneAreDistinguished) {
  KiWiByteMap map;
  map.Put("k", "");
  auto got = map.Get("k");
  ASSERT_TRUE(got.has_value()) << "empty value must not read as absent";
  EXPECT_EQ(*got, "");
  map.Remove("k");
  EXPECT_FALSE(map.Get("k").has_value());
  map.Put("k", "back");
  EXPECT_EQ(map.Get("k").value_or(""), "back");
}

TEST(KiWiByteMap, ArenaExhaustionTriggersRebalance) {
  core::KiWiConfig config;
  config.chunk_capacity = 256;
  config.bytes.arena_bytes_per_cell = 16;  // tiny arena, roomy cell array
  KiWiByteMap map(config);
  // Values far above arena_bytes_per_cell: the arena fills long before the
  // cell array, so progress requires the arena-full rebalance trigger.
  const std::string fat(200, 'F');
  for (int i = 0; i < 2000; ++i) {
    map.Put("key" + std::to_string(i), fat);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto got = map.Get("key" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << "key" << i;
    ASSERT_EQ(*got, fat);
  }
  map.CheckInvariants();
}

TEST(KiWiByteMap, PutBatchShortRunsSurviveArenaExhaustion) {
  // Regression: a short PutBatch run whose first entry no longer fit the
  // chunk's remaining arena (while arena_used was still below capacity)
  // used to retry the per-op path forever — PutRunPerOp claimed nothing,
  // PutBatch's "full" check only fired at arena_used >= capacity, and with
  // a healthy batched prefix ShouldTrigger is deterministically false, so
  // no rebalance was ever dispatched.  Bulk-loading builds exactly that
  // healthy prefix; the fat puts then exhaust the arena bytes long before
  // the batched ratio turns unhealthy.
  core::KiWiConfig config;
  config.chunk_capacity = 64;              // bulk threshold 8 > run size 1
  config.bytes.arena_bytes_per_cell = 64;  // 4 KiB arena, 1 KiB max entry
  std::vector<Entry> seed;
  for (int i = 0; i < 64; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "k%02d", i);
    seed.emplace_back(buf, "v");  // 4 arena bytes each: cells fill first
  }
  KiWiByteMap map{std::span<const Entry>(seed), config};
  // Eight ~900-byte entries aimed at the first chunk: its arena (~129 of
  // 4096 bytes used, 32 batched cells) exhausts after four of them while
  // allocated cells are still far below both capacity and the unbalanced-
  // prefix threshold.
  const std::string fat(900, 'B');
  std::vector<Entry> batch;
  for (int i = 0; i < 8; ++i) {
    batch.assign({{"k0" + std::to_string(i) + "fat", fat}});
    map.PutBatch(batch);  // single-entry run: always the per-op path
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(map.Get("k0" + std::to_string(i) + "fat").value_or(""), fat)
        << i;
  }
  map.CheckInvariants();
}

TEST(KiWiByteMap, PinnedSnapshotRetainsOversizedVersionRun) {
  // Regression: with a snapshot pinning every later version of one key,
  // rebalance used to die on a fatal assert once the key's retained
  // version run outgrew a whole chunk's arena (a key run is never split
  // across chunks).  It now gives that one replacement chunk an oversized
  // arena instead.  The interleaved scans advance the global version so
  // every put lands at a distinct version — same-version overwrites are
  // superseded ties that compaction may (correctly) collapse.
  core::KiWiConfig config;
  config.chunk_capacity = 64;
  config.bytes.arena_bytes_per_cell = 64;  // 4 KiB arena, 1 KiB max entry
  KiWiByteMap map(config);
  map.Put("pinned", "v0");
  KiWiByteMap::Snapshot snap(map);
  // Each write adds a version the snapshot keeps alive; 12 x 900 bytes is
  // more than double one chunk's arena, so the arena-full rebalances along
  // the way must carry the whole run into a single oversized chunk.
  std::string last;
  for (int i = 0; i < 12; ++i) {
    last = std::string(900, static_cast<char>('a' + i));
    map.Put("pinned", last);
    map.Scan("pinned", "pinned~", [](std::string_view, std::string_view) {});
  }
  EXPECT_EQ(snap.Get("pinned").value_or(""), "v0");
  EXPECT_EQ(map.Get("pinned").value_or(""), last);
  map.CheckInvariants();
}

TEST(KiWiByteMap, PutBatchMatchesPutSemantics) {
  KiWiByteMap map;
  std::vector<Entry> batch;
  for (int i = 0; i < 3000; ++i) {
    batch.emplace_back("batch:" + std::to_string(i % 1000),
                       "v" + std::to_string(i));
  }
  map.PutBatch(batch);  // duplicates: last occurrence wins
  for (int k = 0; k < 1000; ++k) {
    const auto got = map.Get("batch:" + std::to_string(k));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "v" + std::to_string(2000 + k));
  }
  EXPECT_EQ(map.Size(), 1000u);
}

TEST(KiWiByteMap, BulkLoadConstructor) {
  std::vector<Entry> sorted;
  for (int i = 0; i < 5000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "key%06d", i);
    sorted.emplace_back(buf, "value" + std::to_string(i));
  }
  KiWiByteMap map{std::span<const Entry>(sorted)};
  EXPECT_EQ(map.Size(), sorted.size());
  EXPECT_EQ(map.Get("key000000").value_or(""), "value0");
  EXPECT_EQ(map.Get("key004999").value_or(""), "value4999");
  map.CheckInvariants();
}

TEST(KiWiByteMap, SnapshotIsolatesFromLaterWrites) {
  KiWiByteMap map;
  for (int i = 0; i < 100; ++i) {
    map.Put("s" + std::to_string(i), "old");
  }
  KiWiByteMap::Snapshot snap(map);
  for (int i = 0; i < 100; ++i) {
    map.Put("s" + std::to_string(i), "new");
  }
  map.Remove("s0");
  EXPECT_EQ(snap.Get("s0").value_or(""), "old");
  EXPECT_EQ(snap.Get("s99").value_or(""), "old");
  EXPECT_EQ(map.Get("s99").value_or(""), "new");
  std::vector<Entry> out;
  snap.Scan("s", "szzz", out);
  EXPECT_EQ(out.size(), 100u);
  for (const auto& [k, v] : out) EXPECT_EQ(v, "old");
}

TEST(KiWiByteMap, ConcurrentPutsAndScansStayConsistent) {
  core::KiWiConfig config;
  config.chunk_capacity = 128;
  KiWiByteMap map(config);
  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 800;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&map, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        map.Put("w" + std::to_string(w) + ":" + std::to_string(i),
                "payload-" + std::to_string(w * kKeysPerWriter + i));
      }
    });
  }
  // Concurrent scanner: every observed snapshot must be sorted and
  // duplicate-free (atomicity of the scan itself).
  threads.emplace_back([&map] {
    for (int round = 0; round < 20; ++round) {
      std::string prev;
      map.ScanFrom(ByteMapMinKey(),
                   [&prev](std::string_view k, std::string_view) {
                     ASSERT_LT(prev, std::string(k));
                     prev = std::string(k);
                   });
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.Size(),
            static_cast<std::size_t>(kWriters) * kKeysPerWriter);
  map.CheckInvariants();
}

TEST(KiWiByteMap, CensusReportsArenaColumns) {
  KiWiByteMap map;
  for (int i = 0; i < 500; ++i) {
    map.Put("census" + std::to_string(i), std::string(40, 'c'));
  }
  const obs::ChunkCensus census = map.Census();
  EXPECT_GT(census.arena_capacity_bytes, 0u);
  EXPECT_GT(census.arena_used_bytes, 0u);
  EXPECT_LE(census.arena_used_bytes, census.arena_capacity_bytes);
  std::uint64_t hist_total = 0;
  for (const auto bucket : census.arena_hist) hist_total += bucket;
  EXPECT_EQ(hist_total, census.chunks);
  EXPECT_NE(census.ToJson().find("\"arena_used_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace kiwi::api
