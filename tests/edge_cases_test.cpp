// Edge-case sweeps across modules: domain boundaries, capacity boundaries,
// thread-slot recycling with pending reclamation, degenerate configs.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/skiplist/skiplist.h"
#include "common/random.h"
#include "core/kiwi_map.h"
#include "reclaim/ebr.h"

namespace kiwi {
namespace {

using core::KiWiConfig;
using core::KiWiMap;

TEST(EdgeCases, MinimumChunkCapacity) {
  // capacity 2 forces a rebalance on almost every put.
  KiWiConfig config;
  config.chunk_capacity = 2;
  KiWiMap map(config);
  for (Key k = 0; k < 300; ++k) map.Put(k, k);
  EXPECT_EQ(map.Size(), 300u);
  for (Key k = 0; k < 300; ++k) ASSERT_EQ(map.Get(k).value_or(-1), k);
  map.CheckInvariants();
#if KIWI_OBS_ENABLED
  // Counters read zero in a KIWI_STATS=OFF build.
  EXPECT_GT(map.Stats().rebalances, 100u);
#endif
}

TEST(EdgeCases, SameKeyOverwrittenThousandsOfTimes) {
  KiWiConfig config;
  config.chunk_capacity = 8;
  KiWiMap map(config);
  for (Value v = 0; v < 5000; ++v) map.Put(1, v);
  EXPECT_EQ(map.Get(1).value_or(-1), 4999);
  EXPECT_EQ(map.Size(), 1u);
  // The structure must not bloat: compaction collapses the overwrites.
  map.CompactAll();
  EXPECT_LE(map.ChunkCount(), 3u);  // sentinel + 1-2 data chunks
}

TEST(EdgeCases, AlternatingInsertDeleteSameKey) {
  KiWiConfig config;
  config.chunk_capacity = 8;
  KiWiMap map(config);
  for (int i = 0; i < 3000; ++i) {
    map.Put(7, i);
    EXPECT_EQ(map.Get(7).value_or(-1), i);
    map.Remove(7);
    EXPECT_FALSE(map.Get(7).has_value());
  }
  EXPECT_EQ(map.Size(), 0u);
  map.CheckInvariants();
}

TEST(EdgeCases, ScanEntireDomain) {
  KiWiMap map;
  map.Put(kMinUserKey, 1);
  map.Put(0, 2);
  map.Put(kMaxUserKey, 3);
  std::vector<KiWiMap::Entry> out;
  // Bounds at the exact domain edges (to == INT64_MAX must not overflow).
  EXPECT_EQ(map.Scan(kMinUserKey, kMaxUserKey, out), 3u);
  EXPECT_EQ(map.Scan(kMaxUserKey, kMaxUserKey, out), 1u);
  EXPECT_EQ(out.front().second, 3);
  EXPECT_EQ(map.Scan(kMinUserKey, kMinUserKey, out), 1u);
  EXPECT_EQ(out.front().second, 1);
}

TEST(EdgeCases, ReverseSequentialInsertion) {
  // Descending key streams stress chunk-split boundaries from the left.
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  for (Key k = 5000; k-- > 0;) map.Put(k, k);
  EXPECT_EQ(map.Size(), 5000u);
  std::vector<KiWiMap::Entry> out;
  map.Scan(0, 4999, out);
  ASSERT_EQ(out.size(), 5000u);
  for (Key k = 0; k < 5000; ++k) ASSERT_EQ(out[k].first, k);
  map.CheckInvariants();
}

TEST(EdgeCases, ManyEmptyRangeScans) {
  KiWiConfig config;
  config.chunk_capacity = 16;
  KiWiMap map(config);
  for (Key k = 0; k < 1000; k += 100) map.Put(k, k);
  std::vector<KiWiMap::Entry> out;
  Xoshiro256 rng(6);
  for (int i = 0; i < 2000; ++i) {
    const Key from = static_cast<Key>(rng.NextBounded(1000));
    if (from % 100 == 0) continue;
    const Key to = from + static_cast<Key>(rng.NextBounded(99 - from % 100));
    if (to / 100 != from / 100) continue;  // stays between data points
    ASSERT_EQ(map.Scan(from, to, out), 0u);
  }
}

TEST(EdgeCases, EbrBuffersSurviveThreadExitAndSlotReuse) {
  // A thread retires objects and exits; its slot (and retire buffer) are
  // inherited by the next thread, and everything still drains.
  std::atomic<int> alive{0};
  struct Tracked {
    explicit Tracked(std::atomic<int>& c) : counter(c) { counter.fetch_add(1); }
    ~Tracked() { counter.fetch_sub(1); }
    std::atomic<int>& counter;
  };
  reclaim::Ebr ebr;
  for (int round = 0; round < 10; ++round) {
    std::thread([&] {
      reclaim::EbrGuard guard(ebr);
      for (int i = 0; i < 40; ++i) ebr.RetireObject(new Tracked(alive));
    }).join();
  }
  EXPECT_GT(alive.load(), 0);  // some pending
  ebr.CollectAllQuiescent();
  EXPECT_EQ(alive.load(), 0);
}

TEST(EdgeCases, SkipListHeightDistributionSane) {
  // Statistical check on tower heights via the footprint proxy: inserting n
  // keys costs ~n nodes; the structure must stay O(n) sized.
  baselines::SkipList list;
  const std::size_t before = list.MemoryFootprint();
  constexpr std::size_t kCount = 20000;
  for (Key k = 0; k < static_cast<Key>(kCount); ++k) list.Put(k, k);
  const std::size_t per_node =
      (list.MemoryFootprint() - before) / kCount;
  EXPECT_GT(per_node, sizeof(void*));          // holds towers
  EXPECT_LT(per_node, 64 * sizeof(void*));     // but not degenerate ones
}

TEST(EdgeCases, ConcurrentMapsDoNotInterfere) {
  // Two maps share the thread registry and nothing else.
  KiWiMap a(KiWiConfig{.chunk_capacity = 16});
  KiWiMap b(KiWiConfig{.chunk_capacity = 64});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (Key k = 0; k < 3000; ++k) {
        a.Put(k, k + t);
        b.Put(k, -k - t);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(a.Size(), 3000u);
  EXPECT_EQ(b.Size(), 3000u);
  for (Key k = 0; k < 3000; k += 97) {
    EXPECT_GE(a.Get(k).value_or(-1), k);
    EXPECT_LE(b.Get(k).value_or(1), -k);
  }
  a.CheckInvariants();
  b.CheckInvariants();
}

TEST(EdgeCases, StatsAreMonotoneAcrossOperations) {
  KiWiMap map(KiWiConfig{.chunk_capacity = 16});
  core::KiWiStats previous = map.Stats();
  for (int phase = 0; phase < 5; ++phase) {
    for (Key k = 0; k < 500; ++k) map.Put(k + phase * 500, k);
    const core::KiWiStats current = map.Stats();
    EXPECT_GE(current.rebalances, previous.rebalances);
    EXPECT_GE(current.chunks_created, previous.chunks_created);
    EXPECT_GE(current.put_restarts, previous.put_restarts);
    previous = current;
  }
}

}  // namespace
}  // namespace kiwi
