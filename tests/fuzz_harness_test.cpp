// End-to-end tests of the schedule fuzzer: clean rounds stay clean,
// schedules derive deterministically, known-bad mutants are caught, and the
// stale-index regression stays pinned to the fuzz seed that found it.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <iterator>
#include <thread>

#include "common/test_env.h"
#include "common/test_hooks.h"
#include "core/kiwi_map.h"
#include "fuzz/fuzzer.h"
#include "fuzz/scenario.h"
#include "fuzz/schedule.h"

namespace kiwi::fuzz {
namespace {

TEST(FuzzSchedule, DerivesDeterministically) {
  const Schedule a = Schedule::FromSeed(0xdeadbeef);
  const Schedule b = Schedule::FromSeed(0xdeadbeef);
  ASSERT_EQ(a.ActiveMask(), b.ActiveMask());
  EXPECT_EQ(a.Describe(), b.Describe());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].action, b.sites[i].action);
    EXPECT_EQ(a.sites[i].probability_pct, b.sites[i].probability_pct);
    EXPECT_EQ(a.sites[i].intensity, b.sites[i].intensity);
  }
  // Different seeds should (overwhelmingly) give different schedules.
  EXPECT_NE(a.Describe(), Schedule::FromSeed(0xdeadbee0).Describe());
}

TEST(FuzzSchedule, ActiveMaskRestriction) {
  const Schedule s = Schedule::FromSeed(7);
  const Schedule none = s.WithActiveMask(0);
  EXPECT_EQ(none.ActiveMask(), 0u);
  const Schedule same = s.WithActiveMask(~std::uint64_t{0});
  EXPECT_EQ(same.ActiveMask(), s.ActiveMask());
}

TEST(FuzzHarness, CleanRoundsHaveNoViolations) {
  const int rounds = ScaledIters(6);
  for (int i = 0; i < rounds; ++i) {
    RoundParams params;
    params.seed = 1 + static_cast<std::uint64_t>(i);
    const RoundResult r = RunRound(params);
    EXPECT_TRUE(r.ok) << "seed " << params.seed << ": " << r.message
                      << "\nschedule: " << r.schedule;
  }
}

// Same sweep with PutBatch ops in the mix (carved out of the scan share):
// every batch entry is recorded as an individual put over the batch's
// invoke/response window, so both checker layers (register histories and
// scan cuts) apply unchanged.  Batches hit the run splitter, the per-op run
// path, and — when a run covers a whole tiny chunk — the bulk-build path.
TEST(FuzzHarness, CleanRoundsWithBatchOpsHaveNoViolations) {
  const int rounds = ScaledIters(6);
  for (int i = 0; i < rounds; ++i) {
    RoundParams params;
    params.seed = 101 + static_cast<std::uint64_t>(i);
    params.batch_pct = 15;
    params.max_batch = 6;
    const RoundResult r = RunRound(params);
    EXPECT_TRUE(r.ok) << "seed " << params.seed << ": " << r.message
                      << "\nschedule: " << r.schedule;
  }
}

// The same sweep over KiWiByteMap: logical keys go through the fuzzer's
// order-preserving byte codec (one shared 8-byte prefix, so every key
// comparison takes the arena memcmp tie-break) and values through the
// 8-byte big-endian codec; the recorded history stays in the int64 domain,
// so both checker layers apply verbatim.
TEST(FuzzHarness, CleanByteKeyRoundsHaveNoViolations) {
  const int rounds = ScaledIters(6);
  for (int i = 0; i < rounds; ++i) {
    RoundParams params;
    params.seed = 201 + static_cast<std::uint64_t>(i);
    params.byte_keys = true;
    params.batch_pct = 10;
    const RoundResult r = RunRound(params);
    EXPECT_TRUE(r.ok) << "seed " << params.seed << ": " << r.message
                      << "\nschedule: " << r.schedule;
  }
}

// Regression: the lazy chunk index can return an already-spliced-out chunk;
// LocateChunk must not trust its dead next-chain (readers would miss every
// put that completed in the replacement section).  Found by this fuzzer at
// seed 74 with the default round parameters; keep that exact round green.
TEST(FuzzHarness, Regression_StaleIndexChunk_Seed74) {
  RoundParams params;
  params.seed = 74;
  const RoundResult r = RunRound(params);
  EXPECT_TRUE(r.ok) << r.message << "\nschedule: " << r.schedule;
}

// The harness must have teeth: deliberately re-broken behaviours (mutants)
// have to surface as checker violations within a bounded seed budget.
// These two mutants fail via the checker (not an assert), so they are safe
// to run in-process.  last_engaged_race needs a directed scenario (below);
// skip_get_help is observable only through the helping counters (below).
int SeedsUntilViolation(std::uint32_t mutants, const RoundParams& base,
                        int budget) {
  for (int i = 0; i < budget; ++i) {
    RoundParams params = base;
    params.seed = 1 + static_cast<std::uint64_t>(i);
    params.mutants = mutants;
    if (!RunRound(params).ok) return i + 1;
  }
  return -1;
}

TEST(FuzzHarness, DetectsSkipScanPublishMutant) {
  const int used =
      SeedsUntilViolation(TestHooks::kSkipScanPublish, RoundParams{},
                          ScaledIters(25));
  EXPECT_GT(used, 0) << "mutant not detected within seed budget";
}

TEST(FuzzHarness, DetectsSkipScanPublishMutantThroughBatchMix) {
  // The harness keeps its teeth when batches replace part of the mix: a
  // batch entry's recorded put window constrains scans exactly like a
  // plain put's, so the scan-publish mutant must still surface.
  RoundParams base;
  base.batch_pct = 15;
  base.max_batch = 6;
  const int used = SeedsUntilViolation(TestHooks::kSkipScanPublish, base,
                                       ScaledIters(25));
  EXPECT_GT(used, 0) << "mutant not detected within seed budget";
}

// Byte-key teeth: the scan-publish mutant must surface through the byte
// driver too — proof the byte translation layer does not launder the
// violation out of the recorded history.
TEST(FuzzHarness, DetectsSkipScanPublishMutantWithByteKeys) {
  RoundParams base;
  base.byte_keys = true;
  const int used = SeedsUntilViolation(TestHooks::kSkipScanPublish, base,
                                       ScaledIters(25));
  EXPECT_GT(used, 0) << "mutant not detected within seed budget";
}

TEST(FuzzHarness, DetectsEagerTombstonePurgeMutant) {
  // First detection lands anywhere in roughly the first 50 seeds (the
  // violating interleaving is probabilistic per seed), so the budget
  // carries a ~3x margin.
  const int used =
      SeedsUntilViolation(TestHooks::kEagerTombstonePurge, RoundParams{},
                          ScaledIters(150));
  EXPECT_GT(used, 0) << "mutant not detected within seed budget";
}

TEST(FuzzHarness, MinimizerShrinksAFailingSchedule) {
  // Find failing seeds under a checker-flavoured mutant and minimize the
  // first one whose failure re-fires.  A single failing seed may refuse to
  // reproduce (failures are probabilistic), so keep scanning until one
  // minimizes instead of pinning the test to the first hit.
  RoundParams failing;
  failing.mutants = TestHooks::kSkipScanPublish;
  MinimizeResult min;
  bool minimized = false;
  for (std::uint64_t seed = 1; seed <= 40 && !minimized; ++seed) {
    failing.seed = seed;
    if (RunRound(failing).ok) continue;
    min = Minimize(failing, /*retries=*/6, /*max_rounds=*/120);
    minimized = min.reproduced;
  }
  ASSERT_TRUE(minimized) << "no failing seed re-fired under minimization";
  // The minimized round must still fail (within a few retries).
  bool refails = false;
  for (int i = 0; i < 8 && !refails; ++i) {
    refails = !RunRound(min.params).ok;
  }
  EXPECT_TRUE(refails) << "minimized schedule no longer reproduces";
}

// The engage-straggler interleaving is too rare for a random sweep
// (~1 hit in 30k seeded rounds); the directed scenario pins it through the
// same hook sites.  Clean tree: the late-engaged chunk survives as an
// orphan.  Mutant: the splice winner retires it and a key vanishes.
TEST(FuzzScenario, EngageStragglerConsistentOnCleanTree) {
  const ScenarioResult r = RunEngageStragglerScenario();
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.message.empty()) << "scenario setup drifted: " << r.message;
}

TEST(FuzzScenario, DetectsLastEngagedRaceMutant) {
  TestHooks::ScopedMutants mutants(TestHooks::kLastEngagedRace);
  const ScenarioResult r = RunEngageStragglerScenario();
  EXPECT_FALSE(r.ok) << "mutant escaped the directed scenario";
  EXPECT_NE(r.message.find("lost"), std::string::npos) << r.message;
}

#if KIWI_OBS_ENABLED
// skip_get_help cannot produce a register-history violation (a put's
// response implies its own version CAS already landed, so any reader
// invoked after it sees the committed cell).  Its observable symptom is
// gets no longer helping stalled puts: prove the asymmetry via the
// helping counter, with the put->version window held open.
TEST(FuzzHarness, SkipGetHelpMutantObservableViaHelpingStats) {
  const auto helped_count = [](std::uint32_t mutant_mask) {
    TestHooks::ScopedMutants mutants(mutant_mask);
    TestHooks::Scoped stall(TestHooks::put_before_version_cas,
                            [] { std::this_thread::yield(); });
    core::KiWiMap map;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      const Value iters = ScaledIters(8000);
      for (Value v = 0; v < iters; ++v) map.Put(5, v);
      stop.store(true, std::memory_order_release);
    });
    std::thread reader([&] {
      while (!stop.load(std::memory_order_acquire)) map.Get(5);
    });
    writer.join();
    reader.join();
    return map.Stats().puts_helped;
  };
  EXPECT_GT(helped_count(0), 0u)
      << "clean gets never helped a stalled put";
  EXPECT_EQ(helped_count(TestHooks::kSkipGetHelp), 0u)
      << "mutant gets still helped — the mutant switch is dead";
}
#endif

TEST(FuzzHarness, FailureArtifactsAreWritten) {
  RoundParams failing;
  failing.mutants = TestHooks::kSkipScanPublish;
  RoundResult result;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    failing.seed = seed;
    result = RunRound(failing);
    if (!result.ok) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const std::string dir =
      ::testing::TempDir() + "kiwi_fuzz_artifact_test";
  const auto path = DumpFailureArtifacts(failing, result, dir);
  ASSERT_TRUE(path.has_value());
  std::ifstream in(*path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("KIWI_FUZZ_SEED="), std::string::npos);
  EXPECT_NE(contents.find("== history =="), std::string::npos);
  EXPECT_NE(contents.find("== debug report =="), std::string::npos);
}

}  // namespace
}  // namespace kiwi::fuzz
