// Flight recorder tests: ring wraparound semantics, multi-thread merge
// ordering, Perfetto JSON validity (including a scripts/ round-trip), and
// the crash post-mortem path driven by a real deviation-9 double-retire in
// a forked child.  The KIWI_TRACE=OFF zero-symbol guarantee is checked by
// CI with `nm` (mirroring the KIWI_STATS=OFF check), not here.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/assert.h"
#include "common/thread_registry.h"
#include "core/kiwi_map.h"
#include "obs/trace.h"

namespace kiwi::core {

// Friend of KiWiMap (declared in kiwi_map.h): reaches the private
// DiscardSection so the crash test can trip the real double-retire assert.
class KiWiTestPeer {
 public:
  static void Discard(Chunk* chunk) { KiWiMap::DiscardSection(chunk); }
};

}  // namespace kiwi::core

namespace kiwi::obs::trace {
namespace {

#if KIWI_TRACE_ENABLED

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string DumpToString() {
  char path[] = "/tmp/kiwi_trace_test_XXXXXX";
  const int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  ::close(fd);
  EXPECT_TRUE(DumpTraceToFile(path));
  std::string text = ReadFile(path);
  ::unlink(path);
  return text;
}

// Minimal strict JSON validator (same approach as obs_test.cpp).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    for (++pos_; pos_ < text_.size(); ++pos_) {
      if (text_[pos_] == '\\') { ++pos_; continue; }
      if (text_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') { ++pos_; while (std::isdigit(Peek())) ++pos_; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(text_[pos_ - 1]);
  }
  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (Peek() != *c) return false;
    }
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  ResetForTest();
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < kRingCapacity + extra; ++i) {
    Emit(Ev::kGetOp, /*a0=*/i, /*a1=*/0);
  }
  Ring& ring = Rings()[slot];
  EXPECT_EQ(ring.head.load(std::memory_order_relaxed), kRingCapacity + extra);
  EXPECT_EQ(LiveEventCount(), kRingCapacity);
  // Every live slot holds one of the newest kRingCapacity values; the
  // oldest `extra` were overwritten.
  std::uint64_t min_a0 = ~0ull, max_a0 = 0;
  for (std::size_t i = 0; i < kRingCapacity; ++i) {
    min_a0 = std::min(min_a0, ring.events[i].a0);
    max_a0 = std::max(max_a0, ring.events[i].a0);
  }
  EXPECT_EQ(min_a0, extra);
  EXPECT_EQ(max_a0, kRingCapacity + extra - 1);
  ResetForTest();
  EXPECT_EQ(LiveEventCount(), 0u);
}

TEST(TraceRing, EventNamesAreStable) {
  for (std::size_t id = 0; id < kEventKindCount; ++id) {
    const char* name = TraceEventName(static_cast<Ev>(id));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "event id " << id << " lacks a name";
  }
  EXPECT_STREQ(TraceEventName(Ev::kCount_), "?");
}

TEST(TraceDump, MultiThreadMergeIsTimestampOrdered) {
  ResetForTest();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  // ThreadRegistry recycles slots on thread exit, so every thread must stay
  // alive until all have emitted — otherwise they'd share one ring.
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&done] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Emit(Ev::kPutOp, i, 0);
      }
      done.fetch_add(1);
      while (done.load() < kThreads) std::this_thread::yield();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(LiveEventCount(), kThreads * kPerThread);

  const std::string json = DumpToString();
  // The export is sorted by timestamp: every "ts": value is non-decreasing.
  std::vector<double> stamps;
  std::size_t at = 0;
  while ((at = json.find("\"ts\":", at)) != std::string::npos) {
    stamps.push_back(std::strtod(json.c_str() + at + 5, nullptr));
    at += 5;
  }
  ASSERT_GE(stamps.size(), kThreads * kPerThread);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    ASSERT_LE(stamps[i - 1], stamps[i]) << "merge out of order at " << i;
  }
  // All four threads' rings contributed.
  int tids_seen = 0;
  for (int tid = 0; tid < 8; ++tid) {
    if (json.find("\"tid\":" + std::to_string(tid)) != std::string::npos) {
      ++tids_seen;
    }
  }
  EXPECT_GE(tids_seen, kThreads);
  ResetForTest();
}

TEST(TraceDump, RealWorkloadJsonParsesAndSummarizes) {
  ResetForTest();
  {
    // Small chunks force rebalances so the trace contains full spans.
    core::KiWiConfig config;
    config.chunk_capacity = 64;
    core::KiWiMap map(config);
    for (Key k = 1; k <= 4000; ++k) map.Put(k, k);
    std::vector<core::KiWiMap::Entry> out;
    map.Scan(1, 4000, out);
    EXPECT_EQ(out.size(), 4000u);
  }
  const std::string json = DumpToString();
  ASSERT_FALSE(json.empty());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << "trace export is not valid JSON";
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rebalance\""), std::string::npos);
  EXPECT_NE(json.find("reb_engage"), std::string::npos);
  EXPECT_NE(json.find("reb_normalize"), std::string::npos);

  // Round-trip through the operator tooling: trace_summary.py must accept
  // the file (it exits non-zero on malformed traces).
  if (std::system("python3 -c '' > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const char* path = "/tmp/kiwi_trace_test_summary.json";
  ASSERT_TRUE(DumpTraceToFile(path));
  const std::string command = std::string("python3 ") + KIWI_SOURCE_DIR +
                              "/scripts/trace_summary.py " + path +
                              " > /dev/null 2>&1";
  EXPECT_EQ(std::system(command.c_str()), 0);
  ::unlink(path);
  ResetForTest();
}

// A real deviation-9 double-retire in a forked child must produce a
// post-mortem on stderr: the KIWI_ASSERT message, the flight recorder tail,
// and the registered DebugReport — then die by SIGABRT.
TEST(TraceCrash, DoubleRetireProducesPostMortem) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);

  if (pid == 0) {
    // Child.  Route stderr into the pipe, arm the crash path, build some
    // history, then trip the double-retire guard.
    ::close(fds[0]);
    ::dup2(fds[1], 2);
    InstallCrashHandler();
    static core::KiWiMap map;
    SetCrashReportCallback(
        [](void* ctx, int fd) {
          // Fatal() is a synchronous abort, not a wild signal: ordinary
          // formatting is fine here.
          const std::string text =
              static_cast<core::KiWiMap*>(ctx)->DebugReport().ToText();
          ssize_t ignored = ::write(fd, text.data(), text.size());
          (void)ignored;
        },
        &map);
    for (Key k = 1; k <= 2000; ++k) map.Put(k, k);
    // A chunk EBR already retired being discarded again — the deviation-9
    // invariant DiscardSection aborts on.
    static reclaim::SlabPool crash_pool;
    auto* chunk = core::Chunk::Create(crash_pool, 1, 8, nullptr,
                                      core::Chunk::Status::kNormal);
    chunk->retired.store(true, std::memory_order_relaxed);
    core::KiWiTestPeer::Discard(chunk);
    ::_exit(0);  // not reached
  }

  ::close(fds[1]);
  std::string output;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buffer, sizeof(buffer))) > 0) {
    output.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child should die by signal; output:\n"
                                   << output;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  EXPECT_NE(output.find("KIWI_ASSERT failed"), std::string::npos) << output;
  EXPECT_NE(output.find("already retired"), std::string::npos) << output;
  EXPECT_NE(output.find("flight recorder post-mortem"), std::string::npos)
      << output;
  // The event tail holds recent history (2000 puts → ppa publishes at the
  // very least) ...
  EXPECT_NE(output.find("put"), std::string::npos) << output;
  EXPECT_NE(output.find("a0=0x"), std::string::npos) << output;
  // ... followed by the registered DebugReport.
  EXPECT_NE(output.find("KiWi DebugReport"), std::string::npos) << output;
  EXPECT_NE(output.find("end post-mortem"), std::string::npos) << output;
}

#else  // !KIWI_TRACE_ENABLED

TEST(Trace, DisabledBuildCompilesHooksAway) {
  // The macros must be valid no-op statements/expressions.
  KIWI_TRACE(kPutOp, 1, 2);
  const bool sampled = KIWI_TRACE_SAMPLED(kGetOp, 3, 4);
  EXPECT_FALSE(sampled);
}

#endif  // KIWI_TRACE_ENABLED

}  // namespace
}  // namespace kiwi::obs::trace
