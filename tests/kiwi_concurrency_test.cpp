// Concurrency tests for KiWiMap: linearizable-visibility checks, the atomic
// scan invariant the paper's analytics use case depends on, and mixed-op
// stress under forced rebalancing (tiny chunks).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/random.h"
#include "core/kiwi_map.h"

namespace kiwi::core {
namespace {

KiWiConfig TinyChunks(std::uint32_t capacity = 64, bool piggyback = false) {
  KiWiConfig config;
  config.chunk_capacity = capacity;
  config.enable_put_piggyback = piggyback;
  return config;
}

// A writer sweeps keys 0..N-1 in ascending order, stamping all of them with
// the round number.  At any instant the map holds round r on some prefix
// and r-1 on the suffix, so an ATOMIC scan must observe a non-increasing
// value sequence whose extremes differ by at most 1.  This is the
// analytics-consistency property (paper §1) in its sharpest testable form.
TEST(KiWiAtomicScan, SweepWriterInvariant) {
  constexpr Key kKeys = 256;
  constexpr int kScanners = 3;
  KiWiMap map(TinyChunks(32));
  for (Key k = 0; k < kKeys; ++k) map.Put(k, 0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans_done{0};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) map.Put(k, round);
    }
  });
  std::vector<std::thread> scanners;
  for (int s = 0; s < kScanners; ++s) {
    scanners.emplace_back([&] {
      std::vector<KiWiMap::Entry> out;
      while (scans_done.load(std::memory_order_relaxed) < 400) {
        map.Scan(0, kKeys - 1, out);
        ASSERT_EQ(out.size(), static_cast<std::size_t>(kKeys));
        Value previous = out.front().second;
        for (const auto& [key, value] : out) {
          ASSERT_LE(value, previous)
              << "scan saw round " << value << " after " << previous
              << " at key " << key << " — snapshot is torn";
          previous = value;
        }
        ASSERT_LE(out.front().second - out.back().second, 1)
            << "scan mixes more than two writer rounds";
        scans_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& scanner : scanners) scanner.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  map.CheckInvariants();
}

// Same invariant while the writer also deletes and re-inserts a rotating
// window, forcing tombstones through scans and rebalances.
TEST(KiWiAtomicScan, SurvivesDeletionsAndRebalance) {
  constexpr Key kKeys = 128;
  KiWiMap map(TinyChunks(16));
  for (Key k = 0; k < kKeys; ++k) map.Put(k, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(5);
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) map.Put(k, round);
      // Delete and restore one random key; a scan between the two ops may
      // legitimately miss it, but values must still be consistent.
      const Key victim = static_cast<Key>(rng.NextBounded(kKeys));
      map.Remove(victim);
      map.Put(victim, round);
    }
  });
  std::vector<KiWiMap::Entry> out;
  for (int i = 0; i < 300; ++i) {
    map.Scan(0, kKeys - 1, out);
    Value previous = out.empty() ? 0 : out.front().second;
    for (const auto& [key, value] : out) {
      ASSERT_LE(value, previous);
      previous = value;
    }
    if (!out.empty()) {
      ASSERT_LE(out.front().second - out.back().second, 1);
      ASSERT_GE(out.size(), static_cast<std::size_t>(kKeys) - 1);
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  map.CheckInvariants();
}

// Real-time visibility: once a put returns, every later get sees it (or a
// newer value).  A flag-passing pattern makes the ordering external.
TEST(KiWiVisibility, GetSeesCompletedPut) {
  KiWiMap map(TinyChunks(32));
  std::atomic<Value> published{-1};
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    for (Value v = 0; v < 30000; ++v) {
      map.Put(42, v);
      published.store(v, std::memory_order_seq_cst);
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Value expected = published.load(std::memory_order_seq_cst);
      if (expected < 0) continue;
      const Value got = map.Get(42).value_or(-1);
      ASSERT_GE(got, expected) << "get returned a value older than a put "
                                  "that completed before it started";
    }
  });
  producer.join();
  consumer.join();
}

// Scans must also be real-time: a completed put is visible to later scans.
TEST(KiWiVisibility, ScanSeesCompletedPut) {
  KiWiMap map(TinyChunks(32));
  std::atomic<Value> published{-1};
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    for (Value v = 0; v < 8000; ++v) {
      map.Put(v % 64, v);
      published.store(v, std::memory_order_seq_cst);
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread consumer([&] {
    std::vector<KiWiMap::Entry> out;
    while (!stop.load(std::memory_order_acquire)) {
      const Value expected = published.load(std::memory_order_seq_cst);
      if (expected < 0) continue;
      const Key key = expected % 64;
      map.Scan(key, key, out);
      ASSERT_FALSE(out.empty());
      ASSERT_GE(out.front().second, expected);
    }
  });
  producer.join();
  consumer.join();
}

// Disjoint-range writers + full verification: no put is ever lost across
// rebalances, splits and merges.
TEST(KiWiStress, DisjointWritersLoseNothing) {
  constexpr int kThreads = 6;
  constexpr Key kPerThread = 8000;
  KiWiMap map(TinyChunks(64));
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const Key base = t * kPerThread;
      for (Key k = 0; k < kPerThread; ++k) map.Put(base + k, base + k);
    });
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (Key k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_EQ(map.Get(k).value_or(-1), k);
  }
  map.CheckInvariants();
}

// Same key hammered by everyone: the final value must be one some thread
// wrote last (cannot verify which, but it must be a valid candidate), and
// per-thread monotone values must never appear to regress for gets racing
// a single writer (covered above); here we check convergence.
TEST(KiWiStress, SingleKeyContention) {
  constexpr int kThreads = 8;
  KiWiMap map(TinyChunks(16));
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::atomic<Value> last_written{-1};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.ArriveAndWait();
      for (int i = 0; i < 5000; ++i) {
        map.Put(1, t * 1000000 + i);
      }
      last_written.store(t, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();
  const Value final_value = map.Get(1).value_or(-1);
  EXPECT_GE(final_value, 0);
  EXPECT_EQ(final_value % 1000000, 4999);  // someone's last iteration
}

struct StressParam {
  std::uint32_t chunk_capacity;
  bool piggyback;
};

class KiWiMixedStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(KiWiMixedStress, MixedOpsKeepStructureSane) {
  const StressParam param = GetParam();
  KiWiMap map(TinyChunks(param.chunk_capacity, param.piggyback));
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 31 + 7);
      std::vector<KiWiMap::Entry> out;
      for (int i = 0; i < 20000; ++i) {
        const Key key = static_cast<Key>(rng.NextBounded(3000));
        switch (rng.NextBounded(10)) {
          case 0: case 1: case 2: case 3:
            map.Put(key, i);
            break;
          case 4: case 5:
            map.Remove(key);
            break;
          case 6: case 7: case 8:
            map.Get(key);
            break;
          default: {
            map.Scan(key, key + 100, out);
            Key previous = kMinKeySentinel;
            for (const auto& [k, v] : out) {
              ASSERT_GT(k, previous);  // sorted, no duplicates
              ASSERT_GE(k, key);
              ASSERT_LE(k, key + 100);
              previous = k;
            }
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  map.CheckInvariants();
  map.CompactAll();
  map.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KiWiMixedStress,
    ::testing::Values(StressParam{16, false}, StressParam{64, false},
                      StressParam{256, false}, StressParam{64, true}),
    [](const auto& info) {
      return "cap" + std::to_string(info.param.chunk_capacity) +
             (info.param.piggyback ? "_piggyback" : "");
    });

// Many concurrent scanners force version retention; afterwards compaction
// must shed the garbage and keep answers intact.
TEST(KiWiStress, ScannersForceVersionRetention) {
  KiWiMap map(TinyChunks(64));
  for (Key k = 0; k < 2000; ++k) map.Put(k, 0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  for (int s = 0; s < 4; ++s) {
    scanners.emplace_back([&] {
      std::vector<KiWiMap::Entry> out;
      while (!stop.load(std::memory_order_acquire)) {
        map.Scan(0, 1999, out);
        ASSERT_LE(out.size(), 2000u);
      }
    });
  }
  for (int round = 1; round <= 30; ++round) {
    for (Key k = 0; k < 2000; ++k) map.Put(k, round);
  }
  stop.store(true, std::memory_order_release);
  for (auto& scanner : scanners) scanner.join();
  map.CompactAll();
  map.DrainReclamation();
  EXPECT_EQ(map.Size(), 2000u);
  for (Key k = 0; k < 2000; ++k) ASSERT_EQ(map.Get(k).value_or(-1), 30);
}

}  // namespace
}  // namespace kiwi::core
