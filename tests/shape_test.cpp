// Integration "shape" tests: the paper's qualitative performance claims as
// assertions, with very conservative factors so they hold on any machine
// (including single-core CI).  These are the claims EXPERIMENTS.md tracks;
// the benches measure them precisely, this suite guards them in CI.
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "harness/workload.h"

namespace kiwi {
namespace {

harness::DriverOptions QuickOptions(std::uint64_t initial_size) {
  harness::DriverOptions options;
  options.warmup_ms = 40;
  options.iteration_ms = 150;
  options.iterations = 2;
  options.initial_size = initial_size;
  return options;
}

double ScanOnlyThroughput(api::MapKind kind, std::uint64_t dataset,
                          std::uint64_t scan_size) {
  auto map = api::MakeMap(kind);
  std::vector<harness::Role> roles{
      {"scan", 2, harness::WorkloadSpec::ScanOnly(dataset * 2, scan_size)}};
  return harness::RunWorkload(*map, roles, QuickOptions(dataset))
      .Role("scan")
      .KeysPerSec();
}

double OrderedPutThroughput(api::MapKind kind) {
  auto map = api::MakeMap(kind);
  // Ordered prefill to establish the degeneration, then measure.
  for (Key k = 0; k < 30000; ++k) map->Put(k - 30000, k);
  std::vector<harness::Role> roles{
      {"put", 2, harness::WorkloadSpec::OrderedPuts()}};
  return harness::RunWorkload(*map, roles, QuickOptions(0))
      .Role("put")
      .OpsPerSec();
}

// §1: "KiWi's atomic scans are two times faster than the non-atomic ones
// offered by the Java skiplist."  Conservative bound: 1.3x.
TEST(Shape, KiwiScansBeatSkiplistScans) {
  const double kiwi = ScanOnlyThroughput(api::MapKind::kKiWi, 30000, 8192);
  const double skiplist =
      ScanOnlyThroughput(api::MapKind::kSkipList, 30000, 8192);
  RecordProperty("kiwi_mkeys", static_cast<int>(kiwi / 1e6));
  RecordProperty("skiplist_mkeys", static_cast<int>(skiplist / 1e6));
  EXPECT_GT(kiwi, 1.3 * skiplist)
      << "kiwi " << kiwi << " vs skiplist " << skiplist;
}

// Fig. 3(c): KiWi's scans lead the k-ary tree.  Conservative bound: 1.2x.
TEST(Shape, KiwiScansBeatKaryScans) {
  const double kiwi = ScanOnlyThroughput(api::MapKind::kKiWi, 30000, 8192);
  const double kary =
      ScanOnlyThroughput(api::MapKind::kKaryTree, 30000, 8192);
  EXPECT_GT(kiwi, 1.2 * kary) << "kiwi " << kiwi << " vs kary " << kary;
}

// §6.2: the k-ary tree collapses under ordered insertion while KiWi keeps
// its rate.  Paper factor: 730x; conservative bound here: 3x.
TEST(Shape, OrderedInsertionCollapsesKaryNotKiwi) {
  const double kiwi = OrderedPutThroughput(api::MapKind::kKiWi);
  const double kary = OrderedPutThroughput(api::MapKind::kKaryTree);
  EXPECT_GT(kiwi, 3.0 * kary) << "kiwi " << kiwi << " vs kary " << kary;
}

// Fig. 4(d): SnapTree's puts starve under concurrent scans while KiWi's do
// not.  Conservative bound: 1.5x.
TEST(Shape, KiwiPutsBeatSnaptreePutsUnderScans) {
  const auto mixed = [](api::MapKind kind) {
    auto map = api::MakeMap(kind);
    std::vector<harness::Role> roles{
        {"scan", 2, harness::WorkloadSpec::ScanOnly(60000, 8192)},
        {"put", 2, harness::WorkloadSpec::PutOnly(60000)}};
    return harness::RunWorkload(*map, roles, QuickOptions(30000))
        .Role("put")
        .OpsPerSec();
  };
  const double kiwi = mixed(api::MapKind::kKiWi);
  const double snaptree = mixed(api::MapKind::kSnapTree);
  EXPECT_GT(kiwi, 1.5 * snaptree)
      << "kiwi " << kiwi << " vs snaptree " << snaptree;
}

// §2: Ctrie-style full snapshots make small range queries pay for the whole
// map.  Conservative bound: KiWi 5x faster on 128-key ranges.
TEST(Shape, PartialScansBeatFullSnapshotsOnSmallRanges) {
  const auto small_ranges = [](api::MapKind kind) {
    auto map = api::MakeMap(kind);
    std::vector<harness::Role> roles{
        {"scan", 1, harness::WorkloadSpec::ScanOnly(60000, 128)}};
    return harness::RunWorkload(*map, roles, QuickOptions(30000))
        .Role("scan")
        .OpsPerSec();
  };
  const double kiwi = small_ranges(api::MapKind::kKiWi);
  const double ctrie = small_ranges(api::MapKind::kCtrie);
  EXPECT_GT(kiwi, 5.0 * ctrie) << "kiwi " << kiwi << " vs ctrie " << ctrie;
}

}  // namespace
}  // namespace kiwi
