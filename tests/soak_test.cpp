// Heavier soak scenarios (each a few seconds): deterministic writer +
// concurrent readers with a final oracle comparison, and an oversubscribed
// all-ops stress at 16 threads (beyond the host's core count by design —
// preemption inside critical windows is the point).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "api/map_interface.h"
#include "common/random.h"
#include "common/test_env.h"
#include "core/kiwi_map.h"

namespace kiwi {
namespace {

// A single deterministic writer mutates; concurrent readers may not affect
// the outcome (reads are helpful but side-effect-free at the abstract
// level).  Afterwards the map must equal the oracle exactly — catches any
// case where helping (version installation) corrupts put ordering.
TEST(Soak, ReadersNeverPerturbWriterOutcome) {
  for (const api::MapKind kind :
       {api::MapKind::kKiWi, api::MapKind::kSkipList, api::MapKind::kKaryTree,
        api::MapKind::kSnapTree, api::MapKind::kCtrie}) {
    core::KiWiConfig config;
    config.chunk_capacity = 64;
    auto map = api::MakeMap(kind, config);
    std::map<Key, Value> oracle;
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&, r] {
        Xoshiro256 rng(900 + r);
        std::vector<api::IOrderedMap::Entry> out;
        while (!stop.load(std::memory_order_acquire)) {
          const Key key = static_cast<Key>(rng.NextBounded(2000));
          if (rng.NextBool(0.5)) {
            map->Get(key);
          } else {
            map->Scan(key, key + 64, out);
          }
        }
      });
    }
    Xoshiro256 rng(77);
    const int iters = ScaledIters(60000);
    for (int i = 0; i < iters; ++i) {
      const Key key = static_cast<Key>(rng.NextBounded(2000));
      if (rng.NextBool(0.3)) {
        map->Remove(key);
        oracle.erase(key);
      } else {
        map->Put(key, i);
        oracle[key] = i;
      }
    }
    stop.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();

    std::vector<api::IOrderedMap::Entry> out;
    map->Scan(kMinUserKey, kMaxUserKey, out);
    ASSERT_EQ(out.size(), oracle.size()) << map->Name();
    auto it = oracle.begin();
    for (const auto& [k, v] : out) {
      ASSERT_EQ(k, it->first) << map->Name();
      ASSERT_EQ(v, it->second) << map->Name();
      ++it;
    }
  }
}

// 16 threads on whatever cores exist: heavy preemption probability inside
// every window (publish-before-version, freeze-before-build, mark-before-
// splice).  Tiny chunks maximize rebalance traffic.
TEST(Soak, OversubscribedAllOps) {
  core::KiWiConfig config;
  config.chunk_capacity = 16;
  core::KiWiMap map(config);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> scan_keys{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 101 + 11);
      std::vector<core::KiWiMap::Entry> out;
      const int iters = ScaledIters(6000);
      for (int i = 0; i < iters; ++i) {
        const Key key = static_cast<Key>(rng.NextBounded(1500));
        switch (rng.NextBounded(8)) {
          case 0: case 1: case 2:
            map.Put(key, t * 1000000 + i);
            break;
          case 3:
            map.Remove(key);
            break;
          case 4: case 5:
            map.Get(key);
            break;
          case 6: {
            map.Scan(key, key + 80, out);
            Key previous = kMinKeySentinel;
            for (const auto& [k, v] : out) {
              ASSERT_GT(k, previous);
              previous = k;
            }
            scan_keys.fetch_add(out.size(), std::memory_order_relaxed);
            break;
          }
          default: {
            core::KiWiMap::Snapshot snapshot(map);
            snapshot.Get(key);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  map.CheckInvariants();
  map.CompactAll();
  map.DrainReclamation();
  map.CheckInvariants();
  EXPECT_GT(scan_keys.load(), 0u);
#if KIWI_OBS_ENABLED
  // Counters read zero in a KIWI_STATS=OFF build.
  EXPECT_GT(map.Stats().rebalances, 100u);
#endif
}

}  // namespace
}  // namespace kiwi
