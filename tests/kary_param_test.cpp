// Parameterized k-ary tree sweeps: the oracle property and structural
// behaviours across arities (the paper uses k = 64; correctness must hold
// for any k >= 2, and the degeneration factor varies with k).
#include <gtest/gtest.h>

#include <map>

#include "baselines/kary/kary_tree.h"
#include "common/random.h"

namespace kiwi::baselines {
namespace {

class KaryArity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KaryArity, OracleAgreement) {
  KaryTree tree(GetParam());
  std::map<Key, Value> oracle;
  Xoshiro256 rng(GetParam() * 1000003 + 5);
  for (int i = 0; i < 8000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(800));
    if (rng.NextBool(0.3)) {
      tree.Remove(key);
      oracle.erase(key);
    } else {
      tree.Put(key, i);
      oracle[key] = i;
    }
  }
  std::vector<KaryTree::Entry> out;
  tree.Scan(0, 800, out);
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

TEST_P(KaryArity, SplitChainsKeepAllKeys) {
  // Keys arriving in an order that repeatedly splits the same leaf.
  KaryTree tree(GetParam());
  constexpr Key kCount = 3000;
  for (Key k = 0; k < kCount; ++k) tree.Put(k, k + 1);
  EXPECT_EQ(tree.Size(), static_cast<std::size_t>(kCount));
  for (Key k = 0; k < kCount; k += 17) {
    ASSERT_EQ(tree.Get(k).value_or(-1), k + 1);
  }
}

TEST_P(KaryArity, DepthGrowsFasterWithSmallerArity) {
  KaryTree tree(GetParam());
  for (Key k = 0; k < 5000; ++k) tree.Put(k, k);
  // Ordered insertion: depth is ~n/k; verify the inverse relation loosely.
  const std::size_t depth = tree.Depth();
  EXPECT_GE(depth, 5000 / GetParam() / 4) << "suspiciously shallow";
  EXPECT_LE(depth, 5000 * 4 / GetParam() + 8) << "suspiciously deep";
}

TEST_P(KaryArity, EmptyAndSingletonEdgeCases) {
  KaryTree tree(GetParam());
  std::vector<KaryTree::Entry> out;
  EXPECT_EQ(tree.Scan(kMinUserKey, kMaxUserKey, out), 0u);
  EXPECT_EQ(tree.Size(), 0u);
  tree.Put(7, 70);
  EXPECT_EQ(tree.Scan(kMinUserKey, kMaxUserKey, out), 1u);
  tree.Remove(7);
  EXPECT_EQ(tree.Scan(kMinUserKey, kMaxUserKey, out), 0u);
  // Remove on empty tree and re-insert after emptying.
  tree.Remove(7);
  tree.Put(7, 71);
  EXPECT_EQ(tree.Get(7).value_or(-1), 71);
}

INSTANTIATE_TEST_SUITE_P(Arities, KaryArity,
                         ::testing::Values(2u, 4u, 16u, 64u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace kiwi::baselines
