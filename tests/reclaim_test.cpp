// Unit + stress tests for the reclamation backends (EBR, hazard pointers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/ebr.h"
#include "reclaim/hazard.h"

namespace kiwi::reclaim {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : alive(counter) {
    alive.fetch_add(1);
  }
  ~Tracked() { alive.fetch_sub(1); }
  std::atomic<int>& alive;
};

TEST(Ebr, RetiredObjectNotFreedUnderActiveGuard) {
  Ebr ebr;
  std::atomic<int> alive{0};
  auto* object = new Tracked(alive);
  {
    EbrGuard guard(ebr);
    ebr.RetireObject(object);
    // Force many collection attempts; our own guard pins the epoch, so at
    // most one advance can happen and the object must survive.
    for (int i = 0; i < 10; ++i) ebr.Collect();
    EXPECT_EQ(alive.load(), 1);
  }
  // After the guard drops, a few collects free it (needs +2 epochs).
  for (int i = 0; i < 4 && alive.load() > 0; ++i) {
    EbrGuard guard(ebr);
    ebr.Collect();
  }
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(ebr.PendingCount(), 0u);
}

TEST(Ebr, GuardsAreReentrant) {
  Ebr ebr;
  EbrGuard outer(ebr);
  {
    EbrGuard inner(ebr);
    EbrGuard innermost(ebr);
  }
  // Exiting inner guards must not deactivate the outer one: retire+collect
  // cannot free while we are still inside.
  std::atomic<int> alive{0};
  ebr.RetireObject(new Tracked(alive));
  for (int i = 0; i < 10; ++i) ebr.Collect();
  EXPECT_EQ(alive.load(), 1);
}

TEST(Ebr, DestructorDrainsEverything) {
  std::atomic<int> alive{0};
  {
    Ebr ebr;
    EbrGuard guard(ebr);
    for (int i = 0; i < 100; ++i) ebr.RetireObject(new Tracked(alive));
    EXPECT_GT(alive.load(), 0);
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, CollectAllQuiescentFreesImmediately) {
  Ebr ebr;
  std::atomic<int> alive{0};
  {
    EbrGuard guard(ebr);
    for (int i = 0; i < 50; ++i) ebr.RetireObject(new Tracked(alive));
  }
  EXPECT_EQ(ebr.CollectAllQuiescent(), 50u);
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, EpochAdvancesWhenQuiescent) {
  std::atomic<int> alive{0};
  Ebr ebr;  // destructs before `alive`
  const std::uint64_t before = ebr.GlobalEpoch();
  for (int i = 0; i < 3; ++i) {
    EbrGuard guard(ebr);
    ebr.RetireObject(new Tracked(alive));
    ebr.Collect();
  }
  EXPECT_GT(ebr.GlobalEpoch(), before);
}

// Readers chase a shared pointer while a writer keeps swapping and retiring
// the old target; ASan (run in CI config) catches any premature free.
TEST(Ebr, SwapAndReadStress) {
  Ebr ebr;
  std::atomic<int> alive{0};
  std::atomic<Tracked*> shared{new Tracked(alive)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EbrGuard guard(ebr);
        Tracked* current = shared.load(std::memory_order_acquire);
        // Touch the object: must still be alive.
        ASSERT_GE(current->alive.load(), 1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      EbrGuard guard(ebr);
      auto* fresh = new Tracked(alive);
      Tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
      ebr.RetireObject(old);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& reader : readers) reader.join();
  delete shared.load();
  // Everything else must drain by destruction (checked by Tracked count).
  ebr.CollectAllQuiescent();
  EXPECT_EQ(alive.load(), 0);
}

TEST(Hazard, ProtectedObjectSurvivesCollect) {
  HazardDomain domain;
  std::atomic<int> alive{0};
  auto* object = new Tracked(alive);
  std::atomic<Tracked*> source{object};
  HazardPointer hp(domain);
  Tracked* protected_ptr = hp.ProtectFrom(source);
  EXPECT_EQ(protected_ptr, object);
  domain.RetireObject(object);
  EXPECT_EQ(domain.Collect(), 0u);  // protected: must not free
  EXPECT_EQ(alive.load(), 1);
  hp.Clear();
  EXPECT_EQ(domain.Collect(), 1u);
  EXPECT_EQ(alive.load(), 0);
}

TEST(Hazard, ProtectFromRestartsOnMove) {
  HazardDomain domain;
  std::atomic<int> alive{0};
  auto* a = new Tracked(alive);
  auto* b = new Tracked(alive);
  std::atomic<Tracked*> source{a};
  HazardPointer hp(domain);
  // Single-threaded: ProtectFrom returns whatever is current.
  EXPECT_EQ(hp.ProtectFrom(source), a);
  source.store(b);
  EXPECT_EQ(hp.ProtectFrom(source), b);
  delete a;
  delete b;
}

TEST(Hazard, SlotsReleasedOnDestruction) {
  HazardDomain domain(2);
  for (int round = 0; round < 10; ++round) {
    HazardPointer first(domain);
    HazardPointer second(domain);
    // A third acquisition in the same scope would abort (2 per thread);
    // destruction at scope end must recycle both.
  }
  SUCCEED();
}

TEST(Hazard, SwapAndReadStress) {
  HazardDomain domain;
  std::atomic<int> alive{0};
  std::atomic<Tracked*> shared{new Tracked(alive)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      HazardPointer hp(domain);
      while (!stop.load(std::memory_order_acquire)) {
        Tracked* current = hp.ProtectFrom(shared);
        ASSERT_GE(current->alive.load(), 1);
        hp.Clear();
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      auto* fresh = new Tracked(alive);
      Tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
      domain.RetireObject(old);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& reader : readers) reader.join();
  delete shared.load();
}

}  // namespace
}  // namespace kiwi::reclaim
