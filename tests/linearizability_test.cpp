// Tests for the Wing-Gong register checker itself, followed by its
// application to every map in the repository: concurrent single-key
// histories recorded with real-time intervals must all be linearizable.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/map_interface.h"
#include "common/barrier.h"
#include "common/random.h"
#include "harness/linearizability.h"

namespace kiwi::harness {
namespace {

using Kind = LinOp::Kind;

LinOp Write(Value v, std::uint64_t invoke, std::uint64_t response) {
  return LinOp{Kind::kWrite, v, false, invoke, response};
}
LinOp Remove(std::uint64_t invoke, std::uint64_t response) {
  return LinOp{Kind::kRemove, 0, false, invoke, response};
}
LinOp ReadHit(Value v, std::uint64_t invoke, std::uint64_t response) {
  return LinOp{Kind::kRead, v, true, invoke, response};
}
LinOp ReadMiss(std::uint64_t invoke, std::uint64_t response) {
  return LinOp{Kind::kRead, 0, false, invoke, response};
}

TEST(Checker, EmptyAndSequentialHistories) {
  EXPECT_TRUE(IsLinearizableRegisterHistory({}));
  EXPECT_TRUE(IsLinearizableRegisterHistory({Write(1, 1, 2),
                                             ReadHit(1, 3, 4)}));
  EXPECT_TRUE(IsLinearizableRegisterHistory(
      {Write(1, 1, 2), Remove(3, 4), ReadMiss(5, 6)}));
}

TEST(Checker, SequentialViolationsRejected) {
  // Read of a value never written.
  EXPECT_FALSE(IsLinearizableRegisterHistory({Write(1, 1, 2),
                                              ReadHit(2, 3, 4)}));
  // Read-miss after a completed write with nothing else pending.
  EXPECT_FALSE(IsLinearizableRegisterHistory({Write(1, 1, 2),
                                              ReadMiss(3, 4)}));
  // Stale read: value overwritten before the read began.
  EXPECT_FALSE(IsLinearizableRegisterHistory(
      {Write(1, 1, 2), Write(2, 3, 4), ReadHit(1, 5, 6)}));
}

TEST(Checker, InitialStateRespected) {
  EXPECT_TRUE(IsLinearizableRegisterHistory({ReadHit(7, 1, 2)}, true, 7));
  EXPECT_FALSE(IsLinearizableRegisterHistory({ReadHit(7, 1, 2)}, false, 0));
  EXPECT_FALSE(IsLinearizableRegisterHistory({ReadMiss(1, 2)}, true, 7));
}

TEST(Checker, ConcurrencyPermitsEitherOrder) {
  // Write(1) and Write(2) overlap; a later read may see either...
  EXPECT_TRUE(IsLinearizableRegisterHistory(
      {Write(1, 1, 10), Write(2, 2, 9), ReadHit(1, 11, 12)}));
  EXPECT_TRUE(IsLinearizableRegisterHistory(
      {Write(1, 1, 10), Write(2, 2, 9), ReadHit(2, 11, 12)}));
  // ...but two sequential reads cannot see them in opposite orders.
  EXPECT_FALSE(IsLinearizableRegisterHistory(
      {Write(1, 1, 10), Write(2, 2, 9), ReadHit(1, 11, 12),
       ReadHit(2, 13, 14), ReadHit(1, 15, 16)}));
}

TEST(Checker, ConcurrentReadDuringWriteMaySeeOldOrNew) {
  EXPECT_TRUE(IsLinearizableRegisterHistory(
      {Write(1, 1, 2), Write(2, 3, 10), ReadHit(1, 4, 5)}));
  EXPECT_TRUE(IsLinearizableRegisterHistory(
      {Write(1, 1, 2), Write(2, 3, 10), ReadHit(2, 4, 5)}));
  // A read strictly after the write's response must see the new value.
  EXPECT_FALSE(IsLinearizableRegisterHistory(
      {Write(1, 1, 2), Write(2, 3, 4), ReadHit(1, 5, 6)}));
}

TEST(Checker, RealTimeOrderEnforcedAmongWrites) {
  // Two sequential writes; a read strictly after both must see the second.
  EXPECT_TRUE(IsLinearizableRegisterHistory(
      {Write(2, 1, 2), Write(1, 3, 4), ReadHit(1, 5, 6)}));
  EXPECT_FALSE(IsLinearizableRegisterHistory(
      {Write(2, 1, 2), Write(1, 3, 4), ReadHit(2, 5, 6)}));
}

// ---- application to the real maps ---------------------------------------

using MapParam = api::MapKind;

class MapLinearizability : public ::testing::TestWithParam<MapParam> {};

TEST_P(MapLinearizability, SingleKeyHistoriesLinearizable) {
  // Short bursts: 3 threads × 4 ops on one key, recorded and checked.
  // Many rounds explore many interleavings; the checker is exact per round.
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 4;
  constexpr int kRounds = 120;
  constexpr Key kTheKey = 42;

  auto map = api::MakeMap(GetParam());
  HistoryClock clock;

  for (int round = 0; round < kRounds; ++round) {
    // Reset to a known state: ensure absent.
    map->Remove(kTheKey);
    std::vector<std::vector<LinOp>> per_thread(kThreads);
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(round * 17 + t);
        barrier.ArriveAndWait();
        for (int i = 0; i < kOpsPerThread; ++i) {
          LinOp op;
          const std::uint64_t draw = rng.NextBounded(10);
          op.invoke = clock.Tick();
          if (draw < 4) {
            const Value v = t * 1000 + round * 10 + i + 1;
            map->Put(kTheKey, v);
            op.kind = Kind::kWrite;
            op.value = v;
          } else if (draw < 6) {
            map->Remove(kTheKey);
            op.kind = Kind::kRemove;
          } else {
            const auto got = map->Get(kTheKey);
            op.kind = Kind::kRead;
            op.found = got.has_value();
            op.value = got.value_or(0);
          }
          op.response = clock.Tick();
          per_thread[t].push_back(op);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    std::vector<LinOp> history;
    for (auto& ops : per_thread) {
      history.insert(history.end(), ops.begin(), ops.end());
    }
    ASSERT_TRUE(IsLinearizableRegisterHistory(history,
                                              /*initially_present=*/false))
        << map->Name() << " produced a non-linearizable single-key history "
        << "in round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMaps, MapLinearizability,
                         ::testing::Values(api::MapKind::kKiWi,
                                           api::MapKind::kSkipList,
                                           api::MapKind::kKaryTree,
                                           api::MapKind::kSnapTree,
                                           api::MapKind::kCtrie,
                                           api::MapKind::kLockedMap),
                         [](const auto& info) {
                           return api::KindName(info.param);
                         });

// A deliberately broken "map" to prove the harness catches violations: it
// buffers the last write per thread and exposes it to reads late.
TEST(MapLinearizability, HarnessCatchesABrokenMap) {
  // Sequential consistency violation in miniature: read returns a stale
  // value although a newer write completed strictly earlier.
  std::vector<LinOp> history{
      Write(1, 1, 2),      // completes
      Write(2, 3, 4),      // completes strictly after
      ReadHit(1, 5, 6),    // stale!
  };
  EXPECT_FALSE(IsLinearizableRegisterHistory(history));
}

}  // namespace
}  // namespace kiwi::harness
