// Unit tests for the global version counter and the pending scan array:
// scan-side protocol, rebalance-side helping, and the sequence-number ABA
// guard (paper §3.2 and §3.3.2 stage 3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/version.h"

namespace kiwi::core {
namespace {

TEST(GlobalVersion, StartsAtOneAndFetchIncrements) {
  GlobalVersion gv;
  EXPECT_EQ(gv.Load(), 1u);
  EXPECT_EQ(gv.FetchIncrement(), 1u);
  EXPECT_EQ(gv.Load(), 2u);
}

TEST(GlobalVersion, ConcurrentIncrementsAreUnique) {
  GlobalVersion gv;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::vector<Version>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) seen[t].push_back(gv.FetchIncrement());
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<Version> all;
  for (auto& versions : seen) all.insert(all.end(), versions.begin(), versions.end());
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(all.back(), kThreads * kPerThread);
}

TEST(PsaEntry, OwnerInstallWins) {
  PsaEntry entry;
  const std::uint64_t seq = entry.PublishPending(10, 20);
  EXPECT_EQ(entry.Load().ver, kPendingVersion);
  EXPECT_EQ(entry.From(), 10);
  EXPECT_EQ(entry.To(), 20);
  EXPECT_EQ(entry.InstallOwn(seq, 7), 7u);
  EXPECT_EQ(entry.Load().ver, 7u);
  entry.Clear(seq);
  EXPECT_EQ(entry.Load().ver, kNoVersion);
}

TEST(PsaEntry, HelperInstallAdopted) {
  PsaEntry entry;
  const std::uint64_t seq = entry.PublishPending(0, 100);
  // A rebalance helps before the scan's own CAS.
  EXPECT_TRUE(entry.HelpInstall(seq, 42));
  // The owner's install fails but adopts the helper's version.
  EXPECT_EQ(entry.InstallOwn(seq, 99), 42u);
  entry.Clear(seq);
}

TEST(PsaEntry, StaleHelperCannotTouchNewerScan) {
  PsaEntry entry;
  const std::uint64_t old_seq = entry.PublishPending(0, 10);
  EXPECT_EQ(entry.InstallOwn(old_seq, 5), 5u);
  entry.Clear(old_seq);
  // Second scan by the same thread.
  const std::uint64_t new_seq = entry.PublishPending(0, 10);
  EXPECT_NE(new_seq, old_seq);
  // A helper that stalled since the first scan: its CAS carries the old
  // sequence number and must fail (the paper's ABA guard).
  EXPECT_FALSE(entry.HelpInstall(old_seq, 3));
  EXPECT_EQ(entry.Load().ver, kPendingVersion);
  EXPECT_EQ(entry.InstallOwn(new_seq, 6), 6u);
  entry.Clear(new_seq);
}

TEST(PsaEntry, SequenceNumbersIncrease) {
  PsaEntry entry;
  std::uint64_t previous = 0;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t seq = entry.PublishPending(0, 1);
    EXPECT_GT(seq, previous);
    previous = seq;
    entry.InstallOwn(seq, i + 1);
    entry.Clear(seq);
  }
}

// Scans and helpers race on one entry; whatever version the entry ends up
// holding must be one of the candidates, never a mix.
TEST(PsaEntry, ConcurrentHelpersAgree) {
  GlobalVersion gv;
  PsaEntry entry;
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t seq = entry.PublishPending(0, 1000);
    std::atomic<Version> helper_installed{0};
    std::thread helper([&] {
      const Version version = gv.FetchIncrement();
      if (entry.HelpInstall(seq, version)) {
        helper_installed.store(version);
      }
    });
    const Version own = gv.FetchIncrement();
    const Version adopted = entry.InstallOwn(seq, own);
    helper.join();
    const Version by_helper = helper_installed.load();
    if (by_helper != 0) {
      EXPECT_EQ(adopted, by_helper);
    } else {
      EXPECT_EQ(adopted, own);
    }
    entry.Clear(seq);
  }
}

TEST(PsaArray, SlotsIndependent) {
  Psa psa;
  const std::uint64_t seq0 = psa.Slot(0).PublishPending(1, 2);
  const std::uint64_t seq1 = psa.Slot(1).PublishPending(3, 4);
  psa.Slot(0).InstallOwn(seq0, 11);
  EXPECT_EQ(psa.Slot(1).Load().ver, kPendingVersion);
  psa.Slot(1).InstallOwn(seq1, 12);
  EXPECT_EQ(psa.Slot(0).Load().ver, 11u);
  EXPECT_EQ(psa.Slot(1).Load().ver, 12u);
  psa.Slot(0).Clear(seq0);
  psa.Slot(1).Clear(seq1);
}

TEST(PsaEntry, LockFreedomReported) {
  // Informational: on x86-64 with -mcx16 this should be lock-free; the
  // protocol is correct either way, so only log the outcome.
  RecordProperty("psa_pair_lock_free", PsaPairIsLockFree() ? "yes" : "no");
  SUCCEED();
}

}  // namespace
}  // namespace kiwi::core
