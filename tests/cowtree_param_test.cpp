// Parameterized CowTree sweeps: oracle agreement and snapshot isolation
// across workload shapes (insert-heavy, delete-heavy, overwrite-heavy) —
// each stresses a different COW path (fresh nodes, tombstones, in-place
// value stores vs clones).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "baselines/snaptree/cow_tree.h"
#include "common/random.h"

namespace kiwi::baselines {
namespace {

struct Mix {
  const char* name;
  double put;
  double remove;
  double scan;
};

class CowTreeMix : public ::testing::TestWithParam<std::tuple<Mix, int>> {};

TEST_P(CowTreeMix, OracleAgreementUnderMix) {
  const auto [mix, seed] = GetParam();
  CowTree tree;
  std::map<Key, Value> oracle;
  Xoshiro256 rng(seed * 7919 + 3);
  std::vector<CowTree::Entry> out;
  for (int i = 0; i < 10000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(700));
    const double draw = rng.NextDouble();
    if (draw < mix.put) {
      tree.Put(key, i);
      oracle[key] = i;
    } else if (draw < mix.put + mix.remove) {
      tree.Remove(key);
      oracle.erase(key);
    } else {
      // Scan bumps the generation: subsequent writes exercise COW cloning.
      const Key to = key + static_cast<Key>(rng.NextBounded(100));
      tree.Scan(key, to, out);
      auto it = oracle.lower_bound(key);
      std::size_t index = 0;
      for (; it != oracle.end() && it->first <= to; ++it, ++index) {
        ASSERT_LT(index, out.size());
        ASSERT_EQ(out[index].first, it->first);
        ASSERT_EQ(out[index].second, it->second);
      }
      ASSERT_EQ(out.size(), index);
    }
  }
  tree.Scan(0, 700, out);
  ASSERT_EQ(out.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, CowTreeMix,
    ::testing::Combine(
        ::testing::Values(Mix{"insert_heavy", 0.8, 0.05, 0.15},
                          Mix{"delete_heavy", 0.4, 0.45, 0.15},
                          Mix{"scan_heavy", 0.3, 0.1, 0.6}),
        ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CowTreeClones, CloneCountScalesWithSnapshotFrequency) {
  // More snapshots between writes → more frozen paths → more clones.
  const auto clones_for = [](int scans_per_round) {
    CowTree tree;
    for (Key k = 0; k < 256; ++k) tree.Put(k, 0);
    std::vector<CowTree::Entry> out;
    for (int round = 0; round < 40; ++round) {
      for (int s = 0; s < scans_per_round; ++s) tree.Scan(0, 255, out);
      for (Key k = 0; k < 256; ++k) tree.Put(k, round);
    }
    return tree.CowClones();
  };
  const std::uint64_t rare = clones_for(0);
  const std::uint64_t frequent = clones_for(1);
  EXPECT_EQ(rare, 0u);  // no snapshots -> never a frozen node
  EXPECT_GT(frequent, 1000u);
}

}  // namespace
}  // namespace kiwi::baselines
