// Tests for the COW snapshot tree (SnapTree substitute): correctness,
// snapshot isolation of scans, and the copy-on-write cost writers pay while
// snapshots exist.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "baselines/snaptree/cow_tree.h"
#include "common/random.h"

namespace kiwi::baselines {
namespace {

TEST(CowTree, BasicPutGetRemove) {
  CowTree tree;
  EXPECT_FALSE(tree.Get(1).has_value());
  tree.Put(1, 10);
  tree.Put(2, 20);
  tree.Put(1, 11);
  EXPECT_EQ(tree.Get(1).value(), 11);
  tree.Remove(1);
  EXPECT_FALSE(tree.Get(1).has_value());
  tree.Put(1, 12);  // tombstone revival
  EXPECT_EQ(tree.Get(1).value(), 12);
  tree.Remove(12345);  // absent
}

TEST(CowTree, MatchesOracle) {
  CowTree tree;
  std::map<Key, Value> oracle;
  Xoshiro256 rng(321);
  for (int i = 0; i < 20000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(1500));
    if (rng.NextBool(0.3)) {
      tree.Remove(key);
      oracle.erase(key);
    } else {
      tree.Put(key, i);
      oracle[key] = i;
    }
    if (i % 4000 == 0) {
      std::vector<CowTree::Entry> out;
      tree.Scan(0, 1500, out);  // also exercises gen bumps mid-run
      ASSERT_EQ(out.size(), oracle.size());
    }
  }
  for (const auto& [k, v] : oracle) ASSERT_EQ(tree.Get(k).value_or(-1), v);
  std::vector<CowTree::Entry> out;
  tree.Scan(0, 1500, out);
  auto it = oracle.begin();
  ASSERT_EQ(out.size(), oracle.size());
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

TEST(CowTree, ScanRangeBounds) {
  CowTree tree;
  for (Key k = 0; k < 500; ++k) tree.Put(k * 2, k);
  std::vector<CowTree::Entry> out;
  EXPECT_EQ(tree.Scan(10, 20, out), 6u);
  EXPECT_EQ(out.front().first, 10);
  EXPECT_EQ(out.back().first, 20);
  EXPECT_EQ(tree.Scan(1001, 1001, out), 0u);
}

TEST(CowTree, ScansAreAtomicUnderSweepWriter) {
  constexpr Key kKeys = 128;
  CowTree tree;
  for (Key k = 0; k < kKeys; ++k) tree.Put(k, 0);
  std::atomic<bool> stop{false};
  std::atomic<Value> rounds_done{0};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) tree.Put(k, round);
      rounds_done.store(round, std::memory_order_release);
    }
  });
  std::vector<CowTree::Entry> out;
  // Interleave scans with genuine writer progress (on one CPU the writer
  // may otherwise never be scheduled inside the scanning loop).
  for (int i = 0; i < 300 || rounds_done.load(std::memory_order_acquire) < 5;
       ++i) {
    tree.Scan(0, kKeys - 1, out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kKeys));
    Value previous = out.front().second;
    for (const auto& [key, value] : out) {
      ASSERT_LE(value, previous) << "torn snapshot at key " << key;
      previous = value;
    }
    ASSERT_LE(out.front().second - out.back().second, 1);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(tree.CowClones(), 0u)
      << "writers under live snapshots must pay COW clones";
}

TEST(CowTree, WritersProceedWhileScanIterates) {
  // Snapshot acquisition drains writers but iteration must not block them.
  // The scanner parks itself mid-iteration until a put (issued after the
  // scan started) completes; if puts blocked on in-flight scans this would
  // deadlock (the 300s gtest timeout catches that).
  CowTree tree;
  for (Key k = 0; k < 10000; ++k) tree.Put(k, 0);
  std::atomic<bool> scan_started{false};
  std::atomic<bool> put_done{false};
  std::thread scanner([&] {
    std::size_t emitted = 0;
    tree.Scan(0, 9999, [&](Key, Value) {
      ++emitted;
      if (emitted == 100) {
        scan_started.store(true);
        while (!put_done.load()) std::this_thread::yield();
      }
    });
    EXPECT_EQ(emitted, 10000u);
  });
  while (!scan_started.load()) std::this_thread::yield();
  tree.Put(60000, 1);  // must complete while the scan is paused mid-flight
  put_done.store(true);
  scanner.join();
  EXPECT_EQ(tree.Get(60000).value(), 1);
}

TEST(CowTree, DisjointConcurrentWriters) {
  CowTree tree;
  constexpr int kThreads = 6;
  constexpr Key kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (Key k = 0; k < kPerThread; ++k) {
        // Shuffled-ish order keeps the unbalanced BST shallow.
        const Key key = t * kPerThread + (k * 2654435761u) % kPerThread;
        tree.Put(key, key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (Key k = 0; k < kPerThread; k += 101) {
      const Key key = t * kPerThread + (k * 2654435761u) % kPerThread;
      ASSERT_EQ(tree.Get(key).value_or(-1), key);
    }
  }
}

TEST(CowTree, ConcurrentScansAndWrites) {
  CowTree tree;
  for (Key k = 0; k < 1000; ++k) tree.Put(k, 0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(t + 40);
      while (!stop.load(std::memory_order_acquire)) {
        const Key key = static_cast<Key>(rng.NextBounded(1000));
        if (rng.NextBool(0.2)) {
          tree.Remove(key);
        } else {
          tree.Put(key, key + 1);
        }
      }
    });
  }
  std::vector<CowTree::Entry> out;
  for (int i = 0; i < 200; ++i) {
    tree.Scan(0, 999, out);
    Key previous = -1;
    for (const auto& [k, v] : out) {
      ASSERT_GT(k, previous);
      ASSERT_TRUE(v == 0 || v == k + 1);
      previous = k;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& writer : writers) writer.join();
}

}  // namespace
}  // namespace kiwi::baselines
