// Sequential semantics of KiWiMap, parameterized over chunk capacities so
// every size exercises different rebalance pressure (tiny chunks rebalance
// constantly; the paper's 1024 rarely, in these test sizes).
#include <gtest/gtest.h>

#include <map>

#include "core/kiwi_map.h"

namespace kiwi::core {
namespace {

TEST(KiWiBasics, EmptyMapBehaves) {
  KiWiMap map;
  EXPECT_FALSE(map.Get(1).has_value());
  EXPECT_EQ(map.Size(), 0u);
  std::vector<KiWiMap::Entry> out;
  EXPECT_EQ(map.Scan(kMinUserKey, kMaxUserKey, out), 0u);
  map.Remove(5);  // removing an absent key is a no-op
  EXPECT_EQ(map.Size(), 0u);
  map.CheckInvariants();
}

TEST(KiWiBasics, PutGetOverwrite) {
  KiWiMap map;
  map.Put(10, 100);
  EXPECT_EQ(map.Get(10).value(), 100);
  map.Put(10, 200);
  EXPECT_EQ(map.Get(10).value(), 200);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(KiWiBasics, RemoveThenReinsert) {
  KiWiMap map;
  map.Put(10, 100);
  map.Remove(10);
  EXPECT_FALSE(map.Get(10).has_value());
  EXPECT_EQ(map.Size(), 0u);
  map.Put(10, 300);
  EXPECT_EQ(map.Get(10).value(), 300);
}

TEST(KiWiBasics, ScanBoundsInclusive) {
  KiWiMap map;
  for (Key k = 1; k <= 10; ++k) map.Put(k * 10, k);
  std::vector<KiWiMap::Entry> out;
  EXPECT_EQ(map.Scan(20, 50, out), 4u);  // 20, 30, 40, 50
  EXPECT_EQ(out.front().first, 20);
  EXPECT_EQ(out.back().first, 50);
  // Empty range and reversed bounds.
  EXPECT_EQ(map.Scan(21, 29, out), 0u);
  EXPECT_EQ(map.Scan(50, 20, out), 0u);
  // Single key.
  EXPECT_EQ(map.Scan(30, 30, out), 1u);
}

TEST(KiWiBasics, ExtremeKeysWork) {
  KiWiMap map;
  map.Put(kMinUserKey, 1);
  map.Put(kMaxUserKey, 2);
  map.Put(0, 3);
  map.Put(-1000000, 4);
  EXPECT_EQ(map.Get(kMinUserKey).value(), 1);
  EXPECT_EQ(map.Get(kMaxUserKey).value(), 2);
  std::vector<KiWiMap::Entry> out;
  EXPECT_EQ(map.Scan(kMinUserKey, kMaxUserKey, out), 4u);
  EXPECT_EQ(out[0].first, kMinUserKey);
  EXPECT_EQ(out[1].first, -1000000);
  EXPECT_EQ(out[2].first, 0);
  EXPECT_EQ(out[3].first, kMaxUserKey);
}

TEST(KiWiBasics, NegativeValuesRoundTrip) {
  KiWiMap map;
  map.Put(1, -1);
  map.Put(2, std::numeric_limits<Value>::max());
  map.Put(3, kTombstoneValue + 1);  // most negative legal value
  EXPECT_EQ(map.Get(1).value(), -1);
  EXPECT_EQ(map.Get(2).value(), std::numeric_limits<Value>::max());
  EXPECT_EQ(map.Get(3).value(), kTombstoneValue + 1);
}

class KiWiChunkSizes : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  KiWiConfig Config() const {
    KiWiConfig config;
    config.chunk_capacity = GetParam();
    return config;
  }
};

TEST_P(KiWiChunkSizes, MatchesOracleUnderRandomOps) {
  KiWiMap map(Config());
  std::map<Key, Value> oracle;
  Xoshiro256 rng(GetParam() * 7919 + 13);
  for (int i = 0; i < 30000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(4000));
    if (rng.NextBool(0.3)) {
      map.Remove(key);
      oracle.erase(key);
    } else {
      const Value value = static_cast<Value>(rng.NextBounded(1u << 30));
      map.Put(key, value);
      oracle[key] = value;
    }
    if (i % 5000 == 4999) {
      // Full-scan equality with the oracle.
      std::vector<KiWiMap::Entry> out;
      map.Scan(kMinUserKey, kMaxUserKey, out);
      ASSERT_EQ(out.size(), oracle.size()) << "iteration " << i;
      auto it = oracle.begin();
      for (const auto& [k, v] : out) {
        ASSERT_EQ(k, it->first);
        ASSERT_EQ(v, it->second);
        ++it;
      }
    }
  }
  // Point reads for every oracle key and for a sample of absent keys.
  for (const auto& [k, v] : oracle) ASSERT_EQ(map.Get(k).value_or(-1), v);
  for (int i = 0; i < 1000; ++i) {
    const Key key = 4000 + static_cast<Key>(rng.NextBounded(1000));
    ASSERT_FALSE(map.Get(key).has_value());
  }
  map.CheckInvariants();
}

TEST_P(KiWiChunkSizes, PartialScansMatchOracle) {
  KiWiMap map(Config());
  std::map<Key, Value> oracle;
  Xoshiro256 rng(GetParam() + 99);
  for (int i = 0; i < 5000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(10000));
    map.Put(key, key * 2);
    oracle[key] = key * 2;
  }
  std::vector<KiWiMap::Entry> out;
  for (int i = 0; i < 200; ++i) {
    const Key from = static_cast<Key>(rng.NextBounded(10000));
    const Key to = from + static_cast<Key>(rng.NextBounded(500));
    map.Scan(from, to, out);
    auto it = oracle.lower_bound(from);
    std::size_t expected = 0;
    for (; it != oracle.end() && it->first <= to; ++it, ++expected) {
      ASSERT_LT(expected, out.size());
      ASSERT_EQ(out[expected].first, it->first);
      ASSERT_EQ(out[expected].second, it->second);
    }
    ASSERT_EQ(out.size(), expected);
  }
}

TEST_P(KiWiChunkSizes, SequentialInsertionStaysBalanced) {
  // The §6.2 scenario: monotonically increasing keys.  A balanced structure
  // keeps splitting; throughput (here: completion) must not degenerate and
  // the data must survive intact.
  KiWiMap map(Config());
  constexpr Key kCount = 20000;
  for (Key k = 0; k < kCount; ++k) map.Put(k, k);
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kCount));
  std::vector<KiWiMap::Entry> out;
  map.Scan(0, kCount - 1, out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kCount));
  for (Key k = 0; k < kCount; ++k) ASSERT_EQ(out[k].second, k);
  map.CheckInvariants();
  // Chunk count reflects the dataset, not the insertion order pathology.
  EXPECT_GT(map.ChunkCount(), kCount / Config().chunk_capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, KiWiChunkSizes,
                         ::testing::Values(8u, 32u, 128u, 1024u),
                         [](const auto& info) {
                           return "cap" + std::to_string(info.param);
                         });

TEST(KiWiRebalance, CompactionDropsObsoleteVersions) {
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  // Overwrite one key many times with scans absent: versions share GV and
  // overwrite in place, but interleave scans to force version retention.
  std::vector<KiWiMap::Entry> out;
  for (int i = 0; i < 500; ++i) {
    map.Put(7, i);
    if (i % 10 == 0) map.Scan(0, 100, out);  // bumps GV
  }
  EXPECT_EQ(map.Get(7).value(), 499);
  map.CompactAll();
  EXPECT_EQ(map.Get(7).value(), 499);
  EXPECT_EQ(map.Size(), 1u);
  map.CheckInvariants();
}

TEST(KiWiRebalance, CompactionPurgesTombstones) {
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  for (Key k = 0; k < 1000; ++k) map.Put(k, k);
  for (Key k = 0; k < 1000; k += 2) map.Remove(k);
  map.CompactAll();
  EXPECT_EQ(map.Size(), 500u);
  for (Key k = 1; k < 1000; k += 2) ASSERT_EQ(map.Get(k).value_or(-1), k);
  map.CheckInvariants();
}

TEST(KiWiRebalance, MergeShrinksChunkCount) {
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  for (Key k = 0; k < 5000; ++k) map.Put(k, k);
  // Deleting most data leaves many under-utilized chunks...
  for (Key k = 0; k < 5000; ++k) {
    if (k % 10 != 0) map.Remove(k);
  }
  map.CompactAll();
  const std::size_t after_first = map.ChunkCount();
  map.CompactAll();  // merges cascade over a couple of passes
  EXPECT_LE(map.ChunkCount(), after_first);
  EXPECT_EQ(map.Size(), 500u);
  map.CheckInvariants();
}

TEST(KiWiRebalance, StatsAccumulate) {
#if !KIWI_OBS_ENABLED
  GTEST_SKIP() << "counters compiled out (KIWI_STATS=OFF)";
#else
  KiWiConfig config;
  config.chunk_capacity = 16;
  KiWiMap map(config);
  for (Key k = 0; k < 2000; ++k) map.Put(k, k);
  const KiWiStats stats = map.Stats();
  EXPECT_GT(stats.rebalances, 0u);
  EXPECT_GT(stats.rebalance_wins, 0u);
  EXPECT_GT(stats.chunks_created, 0u);
  EXPECT_GT(stats.put_restarts, 0u);
  EXPECT_GE(stats.rebalances, stats.rebalance_wins);
#endif
}

TEST(KiWiRebalance, ReclamationDrains) {
  KiWiConfig config;
  config.chunk_capacity = 16;
  KiWiMap map(config);
  for (Key k = 0; k < 5000; ++k) map.Put(k, k);
  map.DrainReclamation();
  EXPECT_EQ(map.Reclaimer().PendingCount(), 0u);
#if KIWI_OBS_ENABLED
  // Retired chunk accounting is consistent with creations.
  const KiWiStats stats = map.Stats();
  EXPECT_GE(stats.chunks_created + 1, map.ChunkCount() - 1);
#endif
}

TEST(KiWiMemory, FootprintGrowsWithData) {
  KiWiMap map;
  const std::size_t empty = map.MemoryFootprint();
  for (Key k = 0; k < 50000; ++k) map.Put(k, k);
  map.DrainReclamation();
  const std::size_t loaded = map.MemoryFootprint();
  EXPECT_GT(loaded, empty);
  // Sanity: within an order of magnitude of entries * cell size.
  EXPECT_LT(loaded, 50000u * 200u + (1u << 22));
}

TEST(KiWiPiggyback, PutsCompleteInsideRebalance) {
  KiWiConfig config;
  config.chunk_capacity = 16;
  config.enable_put_piggyback = true;
  KiWiMap map(config);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(1234);
  for (int i = 0; i < 20000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(500));
    if (rng.NextBool(0.25)) {
      map.Remove(key);
      oracle.erase(key);
    } else {
      map.Put(key, i);
      oracle[key] = i;
    }
  }
  for (const auto& [k, v] : oracle) ASSERT_EQ(map.Get(k).value_or(-1), v);
  EXPECT_EQ(map.Size(), oracle.size());
#if KIWI_OBS_ENABLED
  // Counters read zero in a KIWI_STATS=OFF build.
  EXPECT_GT(map.Stats().puts_piggybacked, 0u);
#endif
  map.CheckInvariants();
}

}  // namespace
}  // namespace kiwi::core
