// Tests for the Snapshot view extension: multiple queries at one pinned
// read point, isolation from concurrent writers, interplay with rebalance
// compaction (a pinned version must block version eviction).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/kiwi_map.h"

namespace kiwi::core {
namespace {

TEST(KiWiSnapshot, SeesStateAtCreation) {
  KiWiMap map;
  for (Key k = 0; k < 100; ++k) map.Put(k, 1);
  KiWiMap::Snapshot snapshot(map);
  // Mutate after the snapshot: updates, deletes, inserts.
  for (Key k = 0; k < 100; ++k) map.Put(k, 2);
  map.Remove(50);
  map.Put(1000, 3);
  // The view is frozen...
  EXPECT_EQ(snapshot.Get(0).value_or(-1), 1);
  EXPECT_EQ(snapshot.Get(50).value_or(-1), 1);
  EXPECT_FALSE(snapshot.Get(1000).has_value());
  std::vector<KiWiMap::Entry> out;
  EXPECT_EQ(snapshot.Scan(0, 2000, out), 100u);
  for (const auto& [k, v] : out) EXPECT_EQ(v, 1);
  // ...while the live map moved on.
  EXPECT_EQ(map.Get(0).value_or(-1), 2);
  EXPECT_FALSE(map.Get(50).has_value());
  EXPECT_EQ(map.Get(1000).value_or(-1), 3);
}

TEST(KiWiSnapshot, MultipleQueriesShareOneLinearizationPoint) {
  // The whole point of the extension: two range reads through one snapshot
  // are mutually consistent even with a writer in between.
  constexpr Key kKeys = 200;
  KiWiMap map(KiWiConfig{.chunk_capacity = 32});
  for (Key k = 0; k < kKeys; ++k) map.Put(k, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) map.Put(k, round);
    }
  });
  for (int i = 0; i < 200; ++i) {
    KiWiMap::Snapshot snapshot(map);
    // Read the two halves separately, writer running in between.
    std::vector<KiWiMap::Entry> left;
    std::vector<KiWiMap::Entry> right;
    snapshot.Scan(0, kKeys / 2 - 1, left);
    snapshot.Scan(kKeys / 2, kKeys - 1, right);
    ASSERT_EQ(left.size() + right.size(), static_cast<std::size_t>(kKeys));
    // Concatenated halves must satisfy the sweep invariant ACROSS the two
    // separate queries — impossible without a shared read point.
    Value previous = left.front().second;
    for (const auto& [k, v] : left) {
      ASSERT_LE(v, previous);
      previous = v;
    }
    for (const auto& [k, v] : right) {
      ASSERT_LE(v, previous) << "snapshot halves disagree at key " << k;
      previous = v;
    }
    ASSERT_LE(left.front().second - right.back().second, 1);
    // Point reads agree with the ranges too.
    ASSERT_EQ(snapshot.Get(0).value_or(-1), left.front().second);
    ASSERT_EQ(snapshot.Get(kKeys - 1).value_or(-1), right.back().second);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(KiWiSnapshot, PinsVersionsAgainstCompaction) {
  KiWiMap map(KiWiConfig{.chunk_capacity = 32});
  for (Key k = 0; k < 500; ++k) map.Put(k, 1);
  KiWiMap::Snapshot snapshot(map);
  // Overwrite everything repeatedly and force full compactions: the
  // snapshot's versions must survive.
  for (Value round = 2; round <= 5; ++round) {
    for (Key k = 0; k < 500; ++k) map.Put(k, round);
    map.CompactAll();
  }
  std::vector<KiWiMap::Entry> out;
  ASSERT_EQ(snapshot.Scan(0, 499, out), 500u);
  for (const auto& [k, v] : out) {
    ASSERT_EQ(v, 1) << "compaction evicted a pinned version at key " << k;
  }
  EXPECT_EQ(map.Get(250).value_or(-1), 5);  // live side unaffected
}

TEST(KiWiSnapshot, ReleaseUnpinsCompaction) {
  KiWiMap map(KiWiConfig{.chunk_capacity = 32});
  for (Key k = 0; k < 200; ++k) map.Put(k, 1);
  {
    KiWiMap::Snapshot snapshot(map);
    for (Key k = 0; k < 200; ++k) map.Put(k, 2);
    map.CompactAll();
    // Both versions alive while pinned.
    EXPECT_EQ(snapshot.Get(0).value_or(-1), 1);
  }
  // Unpinned: compaction may now drop the old versions entirely.
  map.CompactAll();
  map.DrainReclamation();
  EXPECT_EQ(map.Get(0).value_or(-1), 2);
  EXPECT_EQ(map.Size(), 200u);
  map.CheckInvariants();
}

TEST(KiWiSnapshot, DeletionsRespectReadPoint) {
  KiWiMap map(KiWiConfig{.chunk_capacity = 16});
  for (Key k = 0; k < 100; ++k) map.Put(k, 7);
  KiWiMap::Snapshot before_delete(map);
  for (Key k = 0; k < 100; k += 2) map.Remove(k);
  KiWiMap::Snapshot after_delete(map);
  // Compaction must keep tombstones new enough for `before_delete`.
  map.CompactAll();
  std::vector<KiWiMap::Entry> out;
  EXPECT_EQ(before_delete.Scan(0, 99, out), 100u);
  EXPECT_EQ(after_delete.Scan(0, 99, out), 50u);
  for (const auto& [k, v] : out) EXPECT_EQ(k % 2, 1);
}

TEST(KiWiSnapshot, ScansDoNotDisplaceAnOpenSnapshot) {
  // The hazard a separate snapshot PSA prevents: a transient Scan by the
  // same thread must not clobber the snapshot's pinned version.
  KiWiMap map(KiWiConfig{.chunk_capacity = 32});
  for (Key k = 0; k < 300; ++k) map.Put(k, 1);
  KiWiMap::Snapshot snapshot(map);
  for (Key k = 0; k < 300; ++k) map.Put(k, 2);
  std::vector<KiWiMap::Entry> out;
  map.Scan(0, 299, out);  // same thread, live scan (uses the scan PSA)
  EXPECT_EQ(out.front().second, 2);
  map.CompactAll();  // would evict version 1 were the pin displaced
  EXPECT_EQ(snapshot.Scan(0, 299, out), 300u);
  for (const auto& [k, v] : out) ASSERT_EQ(v, 1);
}

TEST(KiWiSnapshot, UpToLimitSnapshotsPerThread) {
  KiWiMap map;
  map.Put(1, 10);
  // Each additional snapshot sees the state at its own creation.
  std::vector<std::unique_ptr<KiWiMap::Snapshot>> open;
  for (std::size_t i = 0; i < KiWiMap::kMaxSnapshotsPerThread; ++i) {
    open.push_back(std::make_unique<KiWiMap::Snapshot>(map));
    map.Put(1, 10 + static_cast<Value>(i) + 1);
  }
  for (std::size_t i = 0; i < open.size(); ++i) {
    EXPECT_EQ(open[i]->Get(1).value_or(-1),
              10 + static_cast<Value>(i));
  }
  // Releasing one frees its sub-slot for reuse.
  open.pop_back();
  KiWiMap::Snapshot fresh(map);
  EXPECT_EQ(fresh.Get(1).value_or(-1),
            10 + static_cast<Value>(KiWiMap::kMaxSnapshotsPerThread));
}

TEST(KiWiSnapshotDeathTest, ExceedingSnapshotLimitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  KiWiMap map;
  map.Put(1, 10);
  std::vector<std::unique_ptr<KiWiMap::Snapshot>> open;
  for (std::size_t i = 0; i < KiWiMap::kMaxSnapshotsPerThread; ++i) {
    open.push_back(std::make_unique<KiWiMap::Snapshot>(map));
  }
  EXPECT_DEATH({ KiWiMap::Snapshot one_too_many(map); },
               "kMaxSnapshotsPerThread");
}

TEST(KiWiSnapshot, PerThreadSnapshotsCoexist) {
  constexpr int kThreads = 4;
  KiWiMap map;
  for (Key k = 0; k < 100; ++k) map.Put(k, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KiWiMap::Snapshot snapshot(map);
      const Version point = snapshot.ReadPoint();
      for (int i = 0; i < 200; ++i) {
        map.Put(1000 + t, static_cast<Value>(point));  // churn out of range
        std::vector<KiWiMap::Entry> out;
        snapshot.Scan(0, 99, out);
        ASSERT_EQ(out.size(), 100u);
        for (const auto& [k, v] : out) {
          // All in-range data predates every snapshot in this test.
          ASSERT_EQ(v, 0);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace kiwi::core
