// SlabPool unit tests: size-class round trips, thread-cache bound + global
// spill, EBR-deferred recycling order (a retired chunk's slab must not be
// reissued before the grace period), and a multithreaded churn stress.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_registry.h"
#include "core/chunk.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace kiwi::reclaim {
namespace {

TEST(SlabPool, RoundedSizeIsCacheLineMultiple) {
  EXPECT_EQ(SlabPool::RoundedSize(1), SlabPool::kAlignment);
  EXPECT_EQ(SlabPool::RoundedSize(SlabPool::kAlignment),
            SlabPool::kAlignment);
  EXPECT_EQ(SlabPool::RoundedSize(SlabPool::kAlignment + 1),
            2 * SlabPool::kAlignment);
  EXPECT_EQ(SlabPool::RoundedSize(1000) % SlabPool::kAlignment, 0u);
  EXPECT_GE(SlabPool::RoundedSize(1000), 1000u);
}

TEST(SlabPool, SizeClassRoundTrip) {
  SlabPool pool;
  void* block = pool.Allocate(1000);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % SlabPool::kAlignment,
            0u);
  std::memset(block, 0xAB, 1000);  // must be writable
  SlabPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.live_bytes, SlabPool::RoundedSize(1000));

  pool.Deallocate(block, 1000);
  stats = pool.GetStats();
  EXPECT_EQ(stats.recycled, 1u);
  EXPECT_EQ(stats.live_bytes, 0u);
  EXPECT_EQ(stats.pooled_bytes, SlabPool::RoundedSize(1000));

  // Same size again: recycled from the thread cache (LIFO → same address).
  void* again = pool.Allocate(1000);
  EXPECT_EQ(again, block);
  stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.pooled_bytes, 0u);
  pool.Deallocate(again, 1000);
}

TEST(SlabPool, DistinctSizesLandInDistinctClasses) {
  SlabPool pool;
  void* small = pool.Allocate(64);
  void* large = pool.Allocate(4096);
  pool.Deallocate(small, 64);
  pool.Deallocate(large, 4096);
  // A request for the small size must not be served from the large slab.
  void* small_again = pool.Allocate(64);
  EXPECT_EQ(small_again, small);
  void* large_again = pool.Allocate(4096);
  EXPECT_EQ(large_again, large);
  pool.Deallocate(small_again, 64);
  pool.Deallocate(large_again, 4096);
}

TEST(SlabPool, ThreadCacheBoundSpillsToGlobalList) {
  constexpr std::uint32_t kBound = 2;
  SlabPool pool(kBound);
  constexpr std::size_t kSlabs = 6;
  constexpr std::size_t kBytes = 512;
  void* blocks[kSlabs];
  for (void*& b : blocks) b = pool.Allocate(kBytes);
  for (void* b : blocks) pool.Deallocate(b, kBytes);

  SlabPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.recycled, kSlabs);
  // Cache holds kBound; the rest overflowed to the global spill list.
  EXPECT_EQ(stats.spills, kSlabs - kBound);
  EXPECT_EQ(stats.pooled_bytes, kSlabs * SlabPool::RoundedSize(kBytes));

  // Reallocation drains the cache first, then refills from the spill —
  // every one of the original slabs comes back, none from the OS.
  std::set<void*> recycled;
  for (std::size_t i = 0; i < kSlabs; ++i) {
    recycled.insert(pool.Allocate(kBytes));
  }
  stats = pool.GetStats();
  EXPECT_EQ(stats.hits, kSlabs);
  EXPECT_EQ(stats.misses, kSlabs);  // only the initial cold allocations
  EXPECT_EQ(stats.pooled_bytes, 0u);
  EXPECT_EQ(recycled, std::set<void*>(blocks, blocks + kSlabs));
  for (void* b : recycled) pool.Deallocate(b, kBytes);
}

TEST(SlabPool, SizesBeyondClassTableGoUnpooled) {
  SlabPool pool;
  // Register kMaxSizeClasses distinct sizes...
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t i = 0; i < SlabPool::kMaxSizeClasses; ++i) {
    const std::size_t bytes = (i + 1) * SlabPool::kAlignment;
    blocks.emplace_back(pool.Allocate(bytes), bytes);
  }
  EXPECT_EQ(pool.GetStats().unpooled, 0u);
  // ...then one more: it overflows the table but must still work.
  const std::size_t extra =
      (SlabPool::kMaxSizeClasses + 1) * SlabPool::kAlignment;
  void* overflow = pool.Allocate(extra);
  ASSERT_NE(overflow, nullptr);
  std::memset(overflow, 0x5A, extra);
  pool.Deallocate(overflow, extra);
  EXPECT_EQ(pool.GetStats().unpooled, 2u);  // one alloc + one free
  for (auto [b, bytes] : blocks) pool.Deallocate(b, bytes);
  EXPECT_EQ(pool.GetStats().live_bytes, 0u);
}

TEST(SlabPool, TrimReleasesPooledStock) {
  SlabPool pool(2);
  constexpr std::size_t kSlabs = 5;
  void* blocks[kSlabs];
  for (void*& b : blocks) b = pool.Allocate(256);
  for (void* b : blocks) pool.Deallocate(b, 256);
  ASSERT_GT(pool.GetStats().pooled_bytes, 0u);

  EXPECT_EQ(pool.Trim(), kSlabs);
  SlabPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.pooled_bytes, 0u);
  EXPECT_EQ(stats.trims, kSlabs);
  // The pool still works after a trim.
  void* fresh = pool.Allocate(256);
  pool.Deallocate(fresh, 256);
}

// The contract the whole design rests on: a chunk retired through EBR only
// reaches the pool once the grace period has elapsed, so its slab cannot be
// reissued to a new chunk while a concurrent reader may still dereference
// the old one.
TEST(SlabPool, EbrDefersRecyclingUntilGracePeriod) {
  SlabPool pool;
  Ebr ebr;
  const std::uint32_t capacity = 64;
  const std::size_t slab_bytes = core::Chunk::SlabBytes(capacity);

  core::Chunk* chunk = core::Chunk::Create(pool, kMinUserKey, capacity,
                                           nullptr,
                                           core::Chunk::Status::kNormal);
  // A reader pins the current epoch on another thread and holds it.
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EbrGuard guard(ebr);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  {
    EbrGuard guard(ebr);
    ebr.Retire(chunk, [](void* p) {
      core::Chunk::Destroy(static_cast<core::Chunk*>(p));
    });
  }
  // The reader still holds its guard: collection must not free the chunk,
  // so an allocation of the same slab size cannot observe the old address.
  ebr.Collect();
  EXPECT_GT(ebr.PendingCount(), 0u);
  void* during = pool.Allocate(slab_bytes);
  EXPECT_NE(during, static_cast<void*>(chunk))
      << "slab reissued while a guard could still observe the old chunk";
  pool.Deallocate(during, slab_bytes);

  // Release the reader; after a quiescent collect the slab is pool stock.
  release.store(true, std::memory_order_release);
  reader.join();
  ebr.CollectAllQuiescent();
  EXPECT_EQ(ebr.PendingCount(), 0u);
  SlabPool::Stats stats = pool.GetStats();
  EXPECT_GT(stats.recycled, 0u);
  EXPECT_GT(stats.pooled_bytes, 0u);
}

TEST(SlabPoolStress, MultithreadedChurn) {
  constexpr std::uint32_t kBound = 4;  // small: force spill traffic
  SlabPool pool(kBound);
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  static constexpr std::size_t kSizes[] = {192, 1024, 3072};

  std::atomic<std::uint64_t> total_allocs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &total_allocs, t] {
      std::vector<std::pair<void*, std::size_t>> held;
      std::uint64_t rng = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t bytes = kSizes[(rng >> 33) % 3];
        void* block = pool.Allocate(bytes);
        // Touch the whole payload: ASAN flags any poisoned (still-pooled)
        // byte, and cross-thread reuse of a dirty slab must be benign.
        std::memset(block, static_cast<int>(rng), bytes);
        held.emplace_back(block, bytes);
        total_allocs.fetch_add(1, std::memory_order_relaxed);
        if (held.size() > 8 || (rng & 1)) {
          const std::size_t victim = (rng >> 17) % held.size();
          pool.Deallocate(held[victim].first, held[victim].second);
          held[victim] = held.back();
          held.pop_back();
        }
      }
      for (auto [block, bytes] : held) pool.Deallocate(block, bytes);
    });
  }
  for (std::thread& t : threads) t.join();

  const SlabPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, total_allocs.load());
  EXPECT_EQ(stats.live_bytes, 0u);  // everything returned
  EXPECT_GT(stats.hits, 0u);        // churn must actually recycle
  // Quiescent now: trimming releases exactly the pooled stock.
  const std::uint64_t pooled_before = stats.pooled_bytes;
  pool.Trim();
  EXPECT_EQ(pool.GetStats().pooled_bytes, 0u);
  EXPECT_GT(pooled_before, 0u);
}

}  // namespace
}  // namespace kiwi::reclaim
