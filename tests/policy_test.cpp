// Unit tests for the rebalance policy (paper §3.3.1, tuning §6.1).
#include <gtest/gtest.h>

#include "core/policy.h"

namespace kiwi::core {
namespace {

TEST(Policy, FullChunkAlwaysTriggers) {
  KiWiConfig config;
  config.chunk_capacity = 128;
  RebalancePolicy policy(config);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(policy.ShouldTrigger(128, 128, rng));
    EXPECT_TRUE(policy.ShouldTrigger(500, 0, rng));
  }
}

TEST(Policy, BalancedChunkNeverTriggers) {
  KiWiConfig config;
  config.chunk_capacity = 128;
  RebalancePolicy policy(config);
  Xoshiro256 rng(2);
  // Batched prefix covers >= 62.5% of allocated cells: never rebalance.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(policy.ShouldTrigger(100, 100, rng));
    EXPECT_FALSE(policy.ShouldTrigger(100, 63, rng));
  }
}

TEST(Policy, UnbalancedChunkTriggersProbabilistically) {
  KiWiConfig config;
  config.chunk_capacity = 1024;
  config.rebalance_probability = 0.15;
  RebalancePolicy policy(config);
  Xoshiro256 rng(3);
  int triggered = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    // Prefix is 10% of the list: well below the 0.625 threshold.
    triggered += policy.ShouldTrigger(1000, 100, rng);
  }
  EXPECT_NEAR(triggered, kTrials * 0.15, kTrials * 0.02);
}

TEST(Policy, EngageMergesUnderUtilizedNeighbors) {
  KiWiConfig config;
  config.chunk_capacity = 1024;  // new chunks hold 512
  RebalancePolicy policy(config);
  // One engaged chunk with 100 cells, neighbor with 100: one 200-cell chunk
  // replaces... projected = 1 <= 1 engaged: merge reduces count.
  EXPECT_TRUE(policy.ShouldEngageNext(1, 100, 100));
  // Neighbor nearly full: projected 2 chunks from 2 engaged — no gain, but
  // allowed (<=).  A clearly bad merge must be refused:
  EXPECT_FALSE(policy.ShouldEngageNext(1, 512, 512));  // 1024/512=2 > 1
}

TEST(Policy, EngageRespectsMaxWidth) {
  KiWiConfig config;
  config.max_engaged_chunks = 4;
  RebalancePolicy policy(config);
  EXPECT_FALSE(policy.ShouldEngageNext(4, 10, 10));
  EXPECT_TRUE(policy.ShouldEngageNext(3, 10, 10));
}

TEST(Policy, ConfigDefaultsMatchPaper) {
  const KiWiConfig config;
  EXPECT_EQ(config.chunk_capacity, 1024u);
  EXPECT_DOUBLE_EQ(config.rebalance_probability, 0.15);
  EXPECT_DOUBLE_EQ(config.batched_prefix_min_ratio, 0.625);
  EXPECT_DOUBLE_EQ(config.fill_ratio, 0.5);
  EXPECT_FALSE(config.enable_put_piggyback);  // §6.1: restarts instead
}

}  // namespace
}  // namespace kiwi::core
