// Tests for the lock-free skiplist baseline (Java CSLM analogue).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "baselines/skiplist/skiplist.h"
#include "common/random.h"

namespace kiwi::baselines {
namespace {

TEST(SkipList, BasicPutGetRemove) {
  SkipList list;
  EXPECT_FALSE(list.Get(1).has_value());
  list.Put(1, 10);
  list.Put(2, 20);
  EXPECT_EQ(list.Get(1).value(), 10);
  EXPECT_EQ(list.Get(2).value(), 20);
  list.Put(1, 11);  // overwrite
  EXPECT_EQ(list.Get(1).value(), 11);
  list.Remove(1);
  EXPECT_FALSE(list.Get(1).has_value());
  EXPECT_EQ(list.Get(2).value(), 20);
  list.Remove(999);  // absent: no-op
}

TEST(SkipList, ScanAscendingInclusive) {
  SkipList list;
  for (Key k = 0; k < 100; ++k) list.Put(k * 2, k);
  std::vector<SkipList::Entry> out;
  EXPECT_EQ(list.Scan(10, 20, out), 6u);  // 10,12,...,20
  EXPECT_EQ(out.front().first, 10);
  EXPECT_EQ(out.back().first, 20);
  EXPECT_EQ(list.Scan(11, 11, out), 0u);  // odd keys absent
  EXPECT_EQ(list.Size(), 100u);
}

TEST(SkipList, MatchesOracle) {
  SkipList list;
  std::map<Key, Value> oracle;
  Xoshiro256 rng(77);
  for (int i = 0; i < 30000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(2000));
    if (rng.NextBool(0.3)) {
      list.Remove(key);
      oracle.erase(key);
    } else {
      list.Put(key, i);
      oracle[key] = i;
    }
  }
  for (const auto& [k, v] : oracle) ASSERT_EQ(list.Get(k).value_or(-1), v);
  std::vector<SkipList::Entry> out;
  list.Scan(0, 2000, out);
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

TEST(SkipList, DisjointConcurrentWriters) {
  SkipList list;
  constexpr int kThreads = 6;
  constexpr Key kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (Key k = 0; k < kPerThread; ++k) {
        list.Put(t * kPerThread + k, k);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(list.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (Key k = 0; k < kPerThread; k += 97) {
      ASSERT_EQ(list.Get(t * kPerThread + k).value_or(-1), k);
    }
  }
}

TEST(SkipList, ConcurrentInsertRemoveSameRange) {
  SkipList list;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < 40000; ++i) {
        const Key key = static_cast<Key>(rng.NextBounded(512));
        if (rng.NextBool(0.5)) {
          list.Put(key, i);
        } else {
          list.Remove(key);
        }
      }
    });
  }
  std::thread reader([&] {
    std::vector<SkipList::Entry> out;
    while (!stop.load(std::memory_order_acquire)) {
      list.Scan(0, 511, out);
      Key previous = -1;
      for (const auto& [k, v] : out) {
        ASSERT_GT(k, previous);  // iterator sorted even under churn
        previous = k;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // Quiescent check: structure consistent, keys within domain.
  std::vector<SkipList::Entry> out;
  list.Scan(0, 511, out);
  std::set<Key> keys;
  for (const auto& [k, v] : out) EXPECT_TRUE(keys.insert(k).second);
}

TEST(SkipList, MemoryFootprintTracksNodes) {
  SkipList list;
  const std::size_t empty = list.MemoryFootprint();
  for (Key k = 0; k < 1000; ++k) list.Put(k, k);
  EXPECT_GT(list.MemoryFootprint(), empty);
  for (Key k = 0; k < 1000; ++k) list.Remove(k);
  // After removals the live-node count returns to ~0.
  EXPECT_LT(list.MemoryFootprint(), empty + 200 * sizeof(void*) * 26);
}

}  // namespace
}  // namespace kiwi::baselines
