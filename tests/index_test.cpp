// Unit tests for the lazy chunk index (lock-free lookups, locked
// conditional updates — the paper's semantic LL/SC API, §3.3.2 stage 6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "index/chunk_index.h"
#include "reclaim/ebr.h"

namespace kiwi::index {
namespace {

int g_markers[16];
void* Handle(int i) { return &g_markers[i]; }

class IndexTest : public ::testing::Test {
 protected:
  reclaim::Ebr ebr_;
  ChunkIndex index_{ebr_};
};

TEST_F(IndexTest, EmptyLookupReturnsNull) {
  EXPECT_EQ(index_.Lookup(0), nullptr);
  EXPECT_EQ(index_.Lookup(kMaxUserKey), nullptr);
}

TEST_F(IndexTest, LookupFindsFloorEntry) {
  index_.PutUnconditional(10, Handle(1));
  index_.PutUnconditional(20, Handle(2));
  index_.PutUnconditional(30, Handle(3));
  EXPECT_EQ(index_.Lookup(5), nullptr);    // below everything
  EXPECT_EQ(index_.Lookup(10), Handle(1)); // exact
  EXPECT_EQ(index_.Lookup(15), Handle(1)); // floor
  EXPECT_EQ(index_.Lookup(20), Handle(2));
  EXPECT_EQ(index_.Lookup(29), Handle(2));
  EXPECT_EQ(index_.Lookup(1000), Handle(3));
}

TEST_F(IndexTest, PutConditionalChecksPredecessor) {
  index_.PutUnconditional(10, Handle(1));
  // Correct prev: the floor of 20 is the entry at 10.
  EXPECT_TRUE(index_.PutConditional(20, Handle(1), Handle(2)));
  EXPECT_EQ(index_.Lookup(25), Handle(2));
  // Wrong prev: floor of 30 is now Handle(2), not Handle(1).
  EXPECT_FALSE(index_.PutConditional(30, Handle(1), Handle(3)));
  EXPECT_EQ(index_.Lookup(30), Handle(2));
}

TEST_F(IndexTest, PutConditionalReplacesInPlace) {
  index_.PutUnconditional(10, Handle(1));
  // Same key, prev == current mapping: replace.
  EXPECT_TRUE(index_.PutConditional(10, Handle(1), Handle(2)));
  EXPECT_EQ(index_.Lookup(10), Handle(2));
  EXPECT_EQ(index_.Size(), 1u);
}

TEST_F(IndexTest, DeleteConditionalMatchesHandle) {
  index_.PutUnconditional(10, Handle(1));
  index_.PutUnconditional(20, Handle(2));
  // Wrong handle: refused.
  EXPECT_FALSE(index_.DeleteConditional(10, Handle(2)));
  EXPECT_EQ(index_.Lookup(10), Handle(1));
  // Right handle: removed; floor queries fall through to the predecessor.
  EXPECT_TRUE(index_.DeleteConditional(20, Handle(2)));
  EXPECT_EQ(index_.Lookup(25), Handle(1));
  // Deleting an absent key is an idempotent success (rebalance retries).
  EXPECT_TRUE(index_.DeleteConditional(20, Handle(2)));
}

TEST_F(IndexTest, SizeTracksMutations) {
  EXPECT_EQ(index_.Size(), 0u);
  for (int i = 0; i < 100; ++i) index_.PutUnconditional(i * 10, Handle(1));
  EXPECT_EQ(index_.Size(), 100u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(index_.DeleteConditional(i * 10, Handle(1)));
  }
  EXPECT_EQ(index_.Size(), 50u);
  EXPECT_GT(index_.MemoryFootprint(), 0u);
}

TEST_F(IndexTest, ManyEntriesStaySorted) {
  for (int i = 999; i >= 0; --i) index_.PutUnconditional(i * 3, Handle(i % 16));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(index_.Lookup(i * 3), Handle(i % 16)) << i;
    EXPECT_EQ(index_.Lookup(i * 3 + 1), Handle(i % 16)) << i;
  }
}

// Readers run lock-free while a writer churns entries; EBR keeps unlinked
// nodes alive for in-flight readers.
TEST_F(IndexTest, ConcurrentLookupDuringChurn) {
  for (int i = 0; i < 64; ++i) index_.PutUnconditional(i * 100, Handle(0));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        reclaim::EbrGuard guard(ebr_);
        // The permanent entries bound every floor query.
        void* found = index_.Lookup(3150);
        ASSERT_NE(found, nullptr);
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 2000; ++round) {
      const Key key = 50 + (round % 64) * 100;  // between permanent entries
      void* prev = index_.Lookup(key);
      index_.PutConditional(key, prev, Handle(1));
      index_.DeleteConditional(key, Handle(1));
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& reader : readers) reader.join();
}

}  // namespace
}  // namespace kiwi::index
