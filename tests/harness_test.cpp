// Tests for the synchrobench-like harness: op mixes, key streams, prefill,
// and the multithreaded driver.
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "harness/metrics.h"
#include "harness/workload.h"

namespace kiwi::harness {
namespace {

TEST(Workload, MixFractionsRespected) {
  WorkloadSpec spec;
  spec.get_fraction = 0.6;
  spec.put_fraction = 0.2;
  spec.remove_fraction = 0.1;
  spec.scan_fraction = 0.1;
  OpStream stream(spec, 1, 0, 1);
  int counts[4] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<int>(stream.NextOp())];
  }
  EXPECT_NEAR(counts[0], kSamples * 0.6, kSamples * 0.02);
  EXPECT_NEAR(counts[1], kSamples * 0.2, kSamples * 0.02);
  EXPECT_NEAR(counts[2], kSamples * 0.1, kSamples * 0.02);
  EXPECT_NEAR(counts[3], kSamples * 0.1, kSamples * 0.02);
}

TEST(Workload, CannedMixesMatchPaper) {
  EXPECT_EQ(WorkloadSpec::GetOnly(100).get_fraction, 1.0);
  const WorkloadSpec puts = WorkloadSpec::PutOnly(100);
  EXPECT_EQ(puts.put_fraction, 0.5);  // half inserts/updates...
  EXPECT_EQ(puts.remove_fraction, 0.5);  // ...half deletes (§6.2)
  const WorkloadSpec scans = WorkloadSpec::ScanOnly(100, 32768);
  EXPECT_EQ(scans.scan_fraction, 1.0);
  EXPECT_EQ(scans.scan_size, 32768u);
  EXPECT_TRUE(WorkloadSpec::OrderedPuts().ordered_keys);
}

TEST(Workload, UniformKeysStayInRange) {
  WorkloadSpec spec = WorkloadSpec::GetOnly(1000);
  OpStream stream(spec, 7, 0, 1);
  for (int i = 0; i < 10000; ++i) {
    const Key key = stream.NextKey();
    EXPECT_GE(key, kMinUserKey);
    EXPECT_LT(key, kMinUserKey + 1000);
  }
}

TEST(Workload, OrderedStreamsPartitionByThread) {
  WorkloadSpec spec = WorkloadSpec::OrderedPuts();
  OpStream a(spec, 1, 0, 2);
  OpStream b(spec, 1, 1, 2);
  // Thread 0 emits 0,2,4..., thread 1 emits 1,3,5... — strictly increasing
  // and globally disjoint.
  EXPECT_EQ(a.NextKey(), kMinUserKey + 0);
  EXPECT_EQ(b.NextKey(), kMinUserKey + 1);
  EXPECT_EQ(a.NextKey(), kMinUserKey + 2);
  EXPECT_EQ(b.NextKey(), kMinUserKey + 3);
}

TEST(Workload, PrefillReachesExactSize) {
  auto map = api::MakeMap(api::MapKind::kLockedMap);
  WorkloadSpec spec = WorkloadSpec::GetOnly(5000);
  Prefill(*map, spec, 2000, 1);
  std::vector<api::IOrderedMap::Entry> out;
  map->Scan(kMinUserKey, kMaxUserKey, out);
  EXPECT_EQ(out.size(), 2000u);
}

TEST(Driver, RunsRolesAndCountsOps) {
  auto map = api::MakeMap(api::MapKind::kKiWi);
  std::vector<Role> roles;
  roles.push_back(Role{"putters", 2, WorkloadSpec::PutOnly(10000)});
  roles.push_back(Role{"scanners", 1, WorkloadSpec::ScanOnly(10000, 256)});
  DriverOptions options;
  options.warmup_ms = 30;
  options.iteration_ms = 60;
  options.iterations = 2;
  options.initial_size = 2000;
  options.measure_memory = true;
  const RunResult result = RunWorkload(*map, roles, options);
  ASSERT_EQ(result.roles.size(), 2u);
  const RoleResult& putters = result.Role("putters");
  const RoleResult& scanners = result.Role("scanners");
  EXPECT_GT(putters.ops, 0u);
  EXPECT_GT(scanners.ops, 0u);
  EXPECT_GT(scanners.keys, scanners.ops);  // scans touch many keys each
  EXPECT_GT(putters.OpsPerSec(), 0.0);
  EXPECT_GT(result.memory_bytes, 0u);
  EXPECT_NEAR(putters.seconds, 0.12, 0.08);
}

TEST(Driver, EnvOverridesParsed) {
  setenv("KIWI_BENCH_WARMUP_MS", "123", 1);
  setenv("KIWI_BENCH_ITER_MS", "456", 1);
  setenv("KIWI_BENCH_ITERS", "7", 1);
  const DriverOptions options = DriverOptions::FromEnv();
  EXPECT_EQ(options.warmup_ms, 123u);
  EXPECT_EQ(options.iteration_ms, 456u);
  EXPECT_EQ(options.iterations, 7u);
  unsetenv("KIWI_BENCH_WARMUP_MS");
  unsetenv("KIWI_BENCH_ITER_MS");
  unsetenv("KIWI_BENCH_ITERS");
}

TEST(Metrics, ParseUintList) {
  std::vector<std::uint64_t> values;
  EXPECT_TRUE(ParseUintList("1,2,32", &values));
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[2], 32u);
  EXPECT_TRUE(ParseUintList("7", &values));
  EXPECT_EQ(values.size(), 1u);
  EXPECT_FALSE(ParseUintList("", &values));
  EXPECT_FALSE(ParseUintList("1,,2", &values));
  EXPECT_FALSE(ParseUintList("1,x", &values));
}

TEST(Metrics, Formatting) {
  EXPECT_EQ(FormatMps(2500000.0), "2.500 M/s");
  EXPECT_EQ(FormatMb(1024 * 1024), "1.00 MB");
}

}  // namespace
}  // namespace kiwi::harness
