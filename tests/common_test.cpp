// Unit tests for the common substrate: RNG, marked pointers, thread
// registry, spin barrier, backoff.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/config.h"
#include "common/marked_ptr.h"
#include "common/random.h"
#include "common/thread_registry.h"

namespace kiwi {
namespace {

TEST(Random, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(Random, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Random, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  int histogram[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++histogram[rng.NextBounded(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(histogram[b], kSamples / kBuckets, kSamples / 50.0);
  }
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, BernoulliMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.15);
  EXPECT_NEAR(hits, 15000, 1200);
}

TEST(MarkedPtr, PackAndUnpack) {
  int value = 42;
  MarkedPtr<int> unmarked(&value, false);
  EXPECT_EQ(unmarked.Ptr(), &value);
  EXPECT_FALSE(unmarked.Mark());
  MarkedPtr<int> marked(&value, true);
  EXPECT_EQ(marked.Ptr(), &value);
  EXPECT_TRUE(marked.Mark());
  EXPECT_FALSE(unmarked == marked);
}

TEST(MarkedPtr, NullWorks) {
  MarkedPtr<int> null(nullptr, false);
  EXPECT_EQ(null.Ptr(), nullptr);
  MarkedPtr<int> marked_null(nullptr, true);
  EXPECT_EQ(marked_null.Ptr(), nullptr);
  EXPECT_TRUE(marked_null.Mark());
}

TEST(MarkedPtr, AtomicCasRespectsMark) {
  int a = 1, b = 2;
  AtomicMarkedPtr<int> slot(&a);
  // CAS expecting unmarked succeeds...
  EXPECT_TRUE(slot.CompareExchange(MarkedPtr<int>(&a, false),
                                   MarkedPtr<int>(&a, true)));
  // ...and now expecting unmarked fails because the mark is set.
  EXPECT_FALSE(slot.CompareExchange(MarkedPtr<int>(&a, false),
                                    MarkedPtr<int>(&b, false)));
  EXPECT_TRUE(slot.Load().Mark());
  EXPECT_EQ(slot.Load().Ptr(), &a);
}

TEST(ThreadRegistry, StableWithinThread) {
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  EXPECT_EQ(ThreadRegistry::CurrentSlot(), slot);
  EXPECT_TRUE(ThreadRegistry::IsRegistered());
  EXPECT_LT(slot, kMaxThreads);
}

TEST(ThreadRegistry, DistinctAcrossLiveThreads) {
  constexpr int kThreads = 8;
  std::vector<std::size_t> slots(kThreads);
  std::vector<std::thread> threads;
  SpinBarrier barrier(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      slots[t] = ThreadRegistry::CurrentSlot();
      barrier.ArriveAndWait();  // hold all slots live simultaneously
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::size_t> unique(slots.begin(), slots.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, SlotsRecycledAfterExit) {
  std::size_t first = 0;
  std::thread([&] { first = ThreadRegistry::CurrentSlot(); }).join();
  std::size_t second = 0;
  std::thread([&] { second = ThreadRegistry::CurrentSlot(); }).join();
  EXPECT_EQ(first, second);  // the exited thread's slot is reused
}

TEST(SpinBarrier, ReleasesAllParties) {
  constexpr int kThreads = 6;
  SpinBarrier barrier(kThreads);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.ArriveAndWait();
      EXPECT_EQ(before.load(), kThreads);  // nobody passes early
      after.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(after.load(), kThreads);
}

TEST(SpinBarrier, Reusable) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> round_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        barrier.ArriveAndWait();
        round_sum.fetch_add(1);
        barrier.ArriveAndWait();
        EXPECT_EQ(round_sum.load() % kThreads, 0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(round_sum.load(), kThreads * 10);
}

TEST(Config, DomainConstantsConsistent) {
  EXPECT_LT(kMinKeySentinel, kMinUserKey);
  EXPECT_LT(kMinUserKey, kMaxUserKey);
  EXPECT_EQ(kTombstoneValue, std::numeric_limits<Value>::min());
}

}  // namespace
}  // namespace kiwi
