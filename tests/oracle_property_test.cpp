// Cross-structure property tests: every map in the repository, driven
// through the uniform interface, must agree with std::map on randomized
// operation sequences — parameterized over (map kind × seed) so each
// instantiation explores a different interleaving of inserts, overwrites,
// deletes, point reads and range reads.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "api/map_interface.h"
#include "common/random.h"

namespace kiwi::api {
namespace {

using Param = std::tuple<MapKind, std::uint64_t /*seed*/>;

class OracleProperty : public ::testing::TestWithParam<Param> {};

TEST_P(OracleProperty, RandomOpsAgreeWithStdMap) {
  const auto [kind, seed] = GetParam();
  core::KiWiConfig config;
  config.chunk_capacity = 64;  // stress rebalancing in the KiWi instance
  auto map = MakeMap(kind, config);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(seed);
  std::vector<IOrderedMap::Entry> out;

  for (int i = 0; i < 12000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(1200));
    switch (rng.NextBounded(100)) {
      default:  // 0-49: put
        map->Put(key, i);
        oracle[key] = i;
        break;
      case 50 ... 69:  // remove
        map->Remove(key);
        oracle.erase(key);
        break;
      case 70 ... 89: {  // get
        const auto got = map->Get(key);
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_FALSE(got.has_value()) << "phantom key " << key;
        } else {
          ASSERT_EQ(got.value_or(-1), it->second);
        }
        break;
      }
      case 90 ... 99: {  // range scan
        const Key to = key + static_cast<Key>(rng.NextBounded(150));
        map->Scan(key, to, out);
        auto it = oracle.lower_bound(key);
        std::size_t index = 0;
        for (; it != oracle.end() && it->first <= to; ++it, ++index) {
          ASSERT_LT(index, out.size());
          ASSERT_EQ(out[index].first, it->first);
          ASSERT_EQ(out[index].second, it->second);
        }
        ASSERT_EQ(out.size(), index);
        break;
      }
    }
  }
  // Final full comparison.
  map->Scan(kMinUserKey, kMaxUserKey, out);
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMaps, OracleProperty,
    ::testing::Combine(::testing::Values(MapKind::kKiWi, MapKind::kSkipList,
                                         MapKind::kKaryTree,
                                         MapKind::kSnapTree, MapKind::kCtrie,
                                         MapKind::kLockedMap),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::string(KindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MapTraitsTable, MatchesPaperTable1) {
  // KiWi: the only row with every property.
  const MapTraits kiwi = TraitsOf(MapKind::kKiWi);
  EXPECT_TRUE(kiwi.atomic_scans && kiwi.multiple_scans && kiwi.partial_scans &&
              kiwi.wait_free_scans && kiwi.balanced && kiwi.fast_puts);
  // Skiplist scans are not atomic.
  EXPECT_FALSE(TraitsOf(MapKind::kSkipList).atomic_scans);
  // k-ary scans restart (not wait-free) and the tree is unbalanced.
  EXPECT_FALSE(TraitsOf(MapKind::kKaryTree).wait_free_scans);
  EXPECT_FALSE(TraitsOf(MapKind::kKaryTree).balanced);
  // SnapTree's puts are hampered by snapshots.
  EXPECT_FALSE(TraitsOf(MapKind::kSnapTree).fast_puts);
  // Ctrie has no partial snapshots and its puts pay for live snapshots.
  EXPECT_FALSE(TraitsOf(MapKind::kCtrie).partial_scans);
  EXPECT_FALSE(TraitsOf(MapKind::kCtrie).fast_puts);
}

TEST(MapFactory, RoundTripsNames) {
  for (MapKind kind : {MapKind::kKiWi, MapKind::kSkipList, MapKind::kKaryTree,
                       MapKind::kSnapTree, MapKind::kCtrie,
                       MapKind::kLockedMap}) {
    auto map = MakeMap(kind);
    ASSERT_NE(map, nullptr);
    EXPECT_EQ(map->Name(), KindName(kind));
    MapKind parsed;
    ASSERT_TRUE(ParseMapKind(map->Name(), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  MapKind parsed;
  EXPECT_FALSE(ParseMapKind("nonsense", &parsed));
}

}  // namespace
}  // namespace kiwi::api
