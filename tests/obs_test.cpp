// Observability subsystem: histogram bucket math and percentiles against
// known distributions, registry aggregation across threads, and a
// multi-threaded DebugReport smoke (JSON well-formedness + counter
// monotonicity).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/kiwi_map.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "obs/stats_registry.h"

namespace kiwi {
namespace {

using obs::HistogramSnapshot;
using obs::LatencyHistogram;

// ---- a minimal JSON well-formedness checker ---------------------------
// DebugReport::ToJson() promises parseable JSON; this recursive-descent
// validator is deliberately strict (no trailing commas, proper numbers) so
// schema regressions fail loudly without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    for (++pos_; pos_ < text_.size(); ++pos_) {
      if (text_[pos_] == '\\') { ++pos_; continue; }
      if (text_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') { ++pos_; while (std::isdigit(Peek())) ++pos_; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(text_[pos_ - 1]);
  }
  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (Peek() != *c) return false;
    }
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- bucket math ------------------------------------------------------

TEST(HistogramBuckets, ExactBelowSubCount) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubCount; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketFor(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(HistogramBuckets, LowerBoundIsExactInverseOnBoundaries) {
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t lower = LatencyHistogram::BucketLowerBound(i);
    EXPECT_EQ(LatencyHistogram::BucketFor(lower), i) << "bucket " << i;
  }
}

TEST(HistogramBuckets, MonotoneAndWithinOneSubBucketOfTruth) {
  std::size_t previous = 0;
  for (std::uint64_t v = 1; v != 0 && v < (std::uint64_t{1} << 62);
       v += 1 + v / 7) {
    const std::size_t bucket = LatencyHistogram::BucketFor(v);
    ASSERT_GE(bucket, previous) << "BucketFor must be monotone at " << v;
    previous = bucket;
    const std::uint64_t lower = LatencyHistogram::BucketLowerBound(bucket);
    ASSERT_LE(lower, v);
    if (bucket + 1 < LatencyHistogram::kBucketCount) {
      const std::uint64_t next = LatencyHistogram::BucketLowerBound(bucket + 1);
      ASSERT_GT(next, v);
      // Relative bucket width bounds the quantile error: 1/kSubCount.
      if (v >= LatencyHistogram::kSubCount) {
        ASSERT_LE(static_cast<double>(next - lower),
                  static_cast<double>(lower) / LatencyHistogram::kSubCount +
                      1.0);
      }
    }
  }
}

TEST(HistogramBuckets, ExtremeValuesStayInRange) {
  EXPECT_LT(LatencyHistogram::BucketFor(~std::uint64_t{0}),
            LatencyHistogram::kBucketCount);
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0u);
}

// ---- percentile math --------------------------------------------------

TEST(HistogramPercentiles, UniformDistributionWithinBucketError) {
  LatencyHistogram hist;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t v = 1; v <= kN; ++v) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_EQ(snap.max, kN);
  // Sum is tracked exactly, so the mean is exact.
  EXPECT_DOUBLE_EQ(snap.Mean(), (kN + 1) / 2.0);
  // A percentile returns its bucket's lower bound: within 1/kSubCount below
  // the true value, never above it.
  const double tolerance = 1.0 / LatencyHistogram::kSubCount;
  for (const auto& [q, truth] :
       std::vector<std::pair<double, double>>{{0.50, 5000},
                                              {0.99, 9900},
                                              {0.999, 9990}}) {
    const double measured = static_cast<double>(snap.Percentile(q));
    EXPECT_LE(measured, truth) << "q=" << q;
    EXPECT_GE(measured, truth * (1.0 - tolerance)) << "q=" << q;
  }
}

TEST(HistogramPercentiles, PointMassAndEdgeQuantiles) {
  LatencyHistogram hist;
  for (int i = 0; i < 1000; ++i) hist.Record(777);
  const HistogramSnapshot snap = hist.Snapshot();
  const std::uint64_t bucket_value = LatencyHistogram::BucketLowerBound(
      LatencyHistogram::BucketFor(777));
  EXPECT_EQ(snap.Percentile(0.001), bucket_value);
  EXPECT_EQ(snap.P50(), bucket_value);
  EXPECT_EQ(snap.Percentile(1.0), bucket_value);
  EXPECT_EQ(snap.max, 777u);
}

TEST(HistogramPercentiles, EmptyHistogramReadsZero) {
  const HistogramSnapshot snap = LatencyHistogram().Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.P50(), 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramPercentiles, ConcurrentRecordsAllLand) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<std::uint64_t>(t) * 1000 + (i % 97));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_EQ(snap.max,
            LatencyHistogram::BucketLowerBound(LatencyHistogram::BucketFor(
                (kThreads - 1) * 1000 + 96)) <= snap.max
                ? snap.max
                : 0u);  // max is one of the recorded values
  EXPECT_EQ(snap.max, (kThreads - 1) * 1000 + 96);
}

// ---- registry ---------------------------------------------------------

TEST(StatsRegistry, AggregatesAcrossThreads) {
  auto registry = std::make_unique<obs::StatsRegistry>();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 1000 * (t + 1); ++i) {
        registry->Local().puts += 1;
      }
      registry->Local().scan_keys += 7;
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::OpCounters total = registry->Aggregate();
  EXPECT_EQ(total.puts, 1000u * (kThreads * (kThreads + 1) / 2));
  EXPECT_EQ(total.scan_keys, 7u * kThreads);
  EXPECT_EQ(total.gets, 0u);
}

TEST(StatsRegistry, SampleTickElectsOneInPeriod) {
  auto registry = std::make_unique<obs::StatsRegistry>();
  const unsigned period = 1u << obs::StatsRegistry::kSampleShift;
  unsigned sampled = 0;
  for (unsigned i = 0; i < 10 * period; ++i) {
    if (registry->SampleTick()) ++sampled;
  }
  EXPECT_EQ(sampled, 10u);
}

TEST(StatsRegistry, LatencyNamesAreStable) {
  for (std::size_t i = 0; i < obs::kLatencyCount; ++i) {
    const std::string name = obs::LatencyName(static_cast<obs::Latency>(i));
    EXPECT_NE(name, "?");
    EXPECT_FALSE(name.empty());
  }
}

// ---- DebugReport smoke ------------------------------------------------

TEST(DebugReport, JsonParsesAndCountersAreMonotone) {
  core::KiWiMap map;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&map, &stop, w] {
      Key key = 1 + w;
      while (!stop.load(std::memory_order_relaxed)) {
        map.Put(key, key);
        key = 1 + (key * 2654435761u) % 100'000;
      }
    });
  }
  threads.emplace_back([&map, &stop] {
    std::vector<core::KiWiMap::Entry> out;
    while (!stop.load(std::memory_order_relaxed)) {
      map.Scan(1, 5000, out);
      map.Get(17);
    }
  });

  obs::DebugReport previous = map.DebugReport();
  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const obs::DebugReport current = map.DebugReport();

    const std::string json = current.ToJson();
    EXPECT_TRUE(JsonChecker(json).Valid()) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one line";
    EXPECT_FALSE(current.ToText().empty());

    // Counters only ever grow.
    EXPECT_GE(current.counters.puts, previous.counters.puts);
    EXPECT_GE(current.counters.gets, previous.counters.gets);
    EXPECT_GE(current.counters.scans, previous.counters.scans);
    EXPECT_GE(current.counters.scan_keys, previous.counters.scan_keys);
    EXPECT_GE(current.counters.rebalances, previous.counters.rebalances);
    EXPECT_GE(current.counters.chunks_created,
              previous.counters.chunks_created);
    previous = current;
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();

#if KIWI_OBS_ENABLED
  const obs::DebugReport final_report = map.DebugReport();
  EXPECT_TRUE(final_report.stats_enabled);
  EXPECT_GT(final_report.counters.puts, 0u);
  EXPECT_GT(final_report.counters.gets, 0u);
  EXPECT_GT(final_report.counters.scans, 0u);
  // The sampled histograms saw roughly ops / 2^kSampleShift events.
  const auto put_hist =
      final_report.latency[static_cast<std::size_t>(obs::Latency::kPut)];
  EXPECT_GT(put_hist.count, 0u);
  EXPECT_LE(put_hist.count,
            final_report.counters.puts + final_report.counters.removes);
  EXPECT_GE(put_hist.max, put_hist.p999);
  EXPECT_GE(put_hist.p999, put_hist.p99);
  EXPECT_GE(put_hist.p99, put_hist.p50);
  // Gauges describe a live structure.
  EXPECT_GT(final_report.gauges.chunks, 0u);
  EXPECT_GT(final_report.gauges.memory_bytes, 0u);
  EXPECT_EQ(final_report.gauges.psa_active, 0u);     // no scan in flight
  EXPECT_EQ(final_report.gauges.snapshot_pins, 0u);  // no view open
#endif
}

TEST(DebugReport, SnapshotViewShowsUpInGauges) {
  core::KiWiMap map;
  for (Key k = 1; k <= 100; ++k) map.Put(k, k);
  {
    core::KiWiMap::Snapshot view(map);
    const obs::DebugReport report = map.DebugReport();
    EXPECT_EQ(report.gauges.snapshot_pins, 1u);
#if KIWI_OBS_ENABLED
    EXPECT_EQ(report.counters.snapshots, 1u);
#endif
  }
  EXPECT_EQ(map.DebugReport().gauges.snapshot_pins, 0u);
}

TEST(DebugReport, LegacyStatsMatchesRegistry) {
  core::KiWiMap map;
  for (Key k = 1; k <= 50'000; ++k) map.Put(k % 5'000 + 1, k);
  const core::KiWiStats legacy = map.Stats();
  const obs::DebugReport report = map.DebugReport();
  EXPECT_EQ(legacy.rebalances, report.counters.rebalances);
  EXPECT_EQ(legacy.put_restarts, report.counters.put_restarts);
  EXPECT_EQ(legacy.chunks_created, report.counters.chunks_created);
  EXPECT_EQ(legacy.chunks_retired, report.counters.chunks_retired);
  EXPECT_EQ(legacy.puts_helped, report.counters.puts_helped);
#if KIWI_OBS_ENABLED
  EXPECT_EQ(report.counters.puts, 50'000u);
  EXPECT_GT(report.counters.rebalances, 0u);
#endif
}

}  // namespace
}  // namespace kiwi
