#include <gtest/gtest.h>
#include <map>
#include <thread>
#include "core/kiwi_map.h"
using namespace kiwi;
using core::KiWiMap;

TEST(Smoke, PutGet) {
  KiWiMap map;
  map.Put(1, 10);
  EXPECT_EQ(map.Get(1).value_or(-1), 10);
}

TEST(Smoke, ManyPutsForceRebalance) {
  core::KiWiConfig cfg; cfg.chunk_capacity = 64;
  KiWiMap map(cfg);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    Key k = (Key)rng.NextBounded(5000);
    Value v = (Value)rng.NextBounded(1'000'000);
    if (rng.NextBool(0.3) && !oracle.empty()) {
      map.Remove(k); oracle.erase(k);
    } else {
      map.Put(k, v); oracle[k] = v;
    }
  }
  for (auto& [k, v] : oracle) ASSERT_EQ(map.Get(k).value_or(-1), v) << k;
  std::vector<KiWiMap::Entry> out;
  map.Scan(0, 5000, out);
  ASSERT_EQ(out.size(), oracle.size());
  size_t i = 0;
  for (auto& [k, v] : oracle) {
    EXPECT_EQ(out[i].first, k); EXPECT_EQ(out[i].second, v); ++i;
  }
  map.CheckInvariants();
#if KIWI_OBS_ENABLED
  // Counters read zero in a KIWI_STATS=OFF build.
  EXPECT_GT(map.Stats().rebalances, 0u);
#endif
}

TEST(Smoke, ConcurrentStress) {
  core::KiWiConfig cfg; cfg.chunk_capacity = 128;
  KiWiMap map(cfg);
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < 30000; ++i) {
        int op = (int)rng.NextBounded(10);
        Key k = (Key)rng.NextBounded(2000);
        if (op < 5) map.Put(k, (Value)i);
        else if (op < 7) map.Remove(k);
        else if (op < 9) map.Get(k);
        else {
          std::vector<KiWiMap::Entry> out;
          map.Scan(k, k + 200, out);
          Key prev = -1;
          for (auto& [kk, vv] : out) { ASSERT_GT(kk, prev); prev = kk; }
          scans.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  stop = true;
  map.CheckInvariants();
  EXPECT_GT(scans.load(), 0u);
}
