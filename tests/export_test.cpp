// Continuous-telemetry exporter: aggregator delta/rate math, env parsing,
// JSONL and Prometheus well-formedness, the chunk-health census against a
// whitebox-known layout, live pump behaviour, and a contention-teeth test
// that forces CAS retries through the named race hooks and checks the new
// retry counters actually move.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/test_hooks.h"
#include "core/kiwi_map.h"
#include "obs/census.h"
#include "obs/export.h"
#include "obs/report.h"

namespace kiwi::core {
namespace {

// ---- a minimal JSON well-formedness checker ---------------------------
// Same strict recursive-descent validator as obs_test.cpp: parseable JSON,
// no trailing commas, proper numbers — schema regressions fail loudly
// without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    for (++pos_; pos_ < text_.size(); ++pos_) {
      if (text_[pos_] == '\\') { ++pos_; continue; }
      if (text_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') { ++pos_; while (std::isdigit(Peek())) ++pos_; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(text_[pos_ - 1]);
  }
  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (Peek() != *c) return false;
    }
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- a minimal Prometheus text-exposition parser ----------------------
// Validates the exposition line grammar: comment lines must be well-formed
// "# TYPE <name> <type>" declarations, sample lines must be
// "<name>[{label="v",...}] <number>".  Returns a failure description, or ""
// when every line parses.
std::string CheckPromExposition(const std::string& text) {
  const auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(name[0])) &&
        name[0] != '_' && name[0] != ':') {
      return false;
    }
    for (const char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        return false;
      }
    }
    return true;
  };
  std::istringstream in(text);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream decl(line);
      std::string hash, keyword, name, type;
      decl >> hash >> keyword >> name >> type;
      if (keyword != "TYPE" || !valid_name(name) ||
          (type != "counter" && type != "gauge" && type != "histogram")) {
        return "bad comment line: " + line;
      }
      continue;
    }
    // <name>[{...}] <value>
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return "no value: " + line;
    if (!valid_name(line.substr(0, name_end))) return "bad name: " + line;
    std::size_t value_begin = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) return "unclosed labels: " + line;
      // Labels: name="value" pairs separated by commas.
      std::string labels = line.substr(name_end + 1, close - name_end - 1);
      std::istringstream label_stream(labels);
      std::string pair;
      while (std::getline(label_stream, pair, ',')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || !valid_name(pair.substr(0, eq)) ||
            pair.size() < eq + 3 || pair[eq + 1] != '"' ||
            pair.back() != '"') {
          return "bad label: " + line;
        }
      }
      value_begin = close + 1;
    }
    if (value_begin >= line.size() || line[value_begin] != ' ') {
      return "no space before value: " + line;
    }
    const std::string value = line.substr(value_begin + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return "bad value: " + line;
    ++samples;
  }
  return samples > 0 ? "" : "no samples";
}

obs::MetricsSample SampleOf(KiWiMap& map) {
  obs::MetricsAggregator agg(1);
  return agg.Ingest(map.DebugReport(), map.Census(), 0.0);
}

// ---- aggregator math ---------------------------------------------------

TEST(MetricsAggregator, FirstSampleCarriesCumulativeAsDeltas) {
  obs::MetricsAggregator agg(7);
  obs::DebugReport report;
  report.counters.puts = 100;
  report.counters.gets = 40;
  const obs::ChunkCensus census;
  const obs::MetricsSample s = agg.Ingest(report, census, 123.0);
  EXPECT_EQ(s.pump, 7u);
  EXPECT_EQ(s.seq, 0u);
  EXPECT_FALSE(s.have_deltas);
  EXPECT_DOUBLE_EQ(s.uptime_s, 0.0);      // elapsed ignored on the first
  EXPECT_DOUBLE_EQ(s.interval_s, 0.0);
  EXPECT_EQ(s.deltas.puts, 100u);
  EXPECT_EQ(s.deltas.gets, 40u);
}

TEST(MetricsAggregator, DeltasAndUptimeAccumulate) {
  obs::MetricsAggregator agg(1);
  obs::DebugReport report;
  const obs::ChunkCensus census;
  report.counters.puts = 100;
  agg.Ingest(report, census, 0.0);

  report.counters.puts = 250;
  report.counters.scans = 8;
  obs::MetricsSample s = agg.Ingest(report, census, 0.5);
  EXPECT_TRUE(s.have_deltas);
  EXPECT_EQ(s.seq, 1u);
  EXPECT_EQ(s.deltas.puts, 150u);
  EXPECT_EQ(s.deltas.scans, 8u);
  EXPECT_EQ(s.deltas.gets, 0u);
  EXPECT_DOUBLE_EQ(s.interval_s, 0.5);
  EXPECT_DOUBLE_EQ(s.uptime_s, 0.5);
  // Rates are deltas / interval, as emitted on the JSONL line.
  EXPECT_NE(s.ToJsonl().find("\"rates\":{\"puts\":300"), std::string::npos);

  report.counters.puts = 260;
  s = agg.Ingest(report, census, 0.25);
  EXPECT_EQ(s.seq, 2u);
  EXPECT_EQ(s.deltas.puts, 10u);
  EXPECT_DOUBLE_EQ(s.uptime_s, 0.75);
}

TEST(MetricsAggregator, BackwardsCounterClampsToZeroDelta) {
  // Concurrent shard aggregation can momentarily read a counter lower than
  // the previous tick; the delta clamps rather than underflowing.
  obs::MetricsAggregator agg(1);
  obs::DebugReport report;
  const obs::ChunkCensus census;
  report.counters.puts = 1000;
  agg.Ingest(report, census, 0.0);
  report.counters.puts = 900;
  const obs::MetricsSample s = agg.Ingest(report, census, 1.0);
  EXPECT_EQ(s.deltas.puts, 0u);
}

// ---- env parsing -------------------------------------------------------

TEST(MetricsEnv, ParsesIntervals) {
  using std::chrono::milliseconds;
  milliseconds out{0};
  EXPECT_TRUE(obs::ParseMetricsInterval("250ms", &out));
  EXPECT_EQ(out, milliseconds(250));
  EXPECT_TRUE(obs::ParseMetricsInterval("1s", &out));
  EXPECT_EQ(out, milliseconds(1000));
  EXPECT_TRUE(obs::ParseMetricsInterval("500", &out));  // bare digits = ms
  EXPECT_EQ(out, milliseconds(500));
  EXPECT_FALSE(obs::ParseMetricsInterval("", &out));
  EXPECT_FALSE(obs::ParseMetricsInterval("0", &out));
  EXPECT_FALSE(obs::ParseMetricsInterval("abc", &out));
  EXPECT_FALSE(obs::ParseMetricsInterval("1h", &out));
  EXPECT_FALSE(obs::ParseMetricsInterval("ms", &out));
}

TEST(MetricsEnv, ParsesSpecs) {
  obs::MetricsPumpOptions options;
  ASSERT_TRUE(obs::ParseMetricsEnv("1s", nullptr, &options));
  EXPECT_EQ(options.interval, std::chrono::milliseconds(1000));
  EXPECT_EQ(options.jsonl_path, "-");  // no path = stdout (pipe quickstart)
  EXPECT_TRUE(options.prom_path.empty());

  ASSERT_TRUE(obs::ParseMetricsEnv("250ms:/tmp/kiwi.jsonl", "/tmp/kiwi.prom",
                                   &options));
  EXPECT_EQ(options.interval, std::chrono::milliseconds(250));
  EXPECT_EQ(options.jsonl_path, "/tmp/kiwi.jsonl");
  EXPECT_EQ(options.prom_path, "/tmp/kiwi.prom");

  EXPECT_FALSE(obs::ParseMetricsEnv(nullptr, nullptr, &options));
  EXPECT_FALSE(obs::ParseMetricsEnv("", nullptr, &options));
  EXPECT_FALSE(obs::ParseMetricsEnv("fast:path", nullptr, &options));
  EXPECT_FALSE(obs::ParseMetricsEnv(":path", nullptr, &options));
}

// ---- export formats ----------------------------------------------------

TEST(MetricsExport, JsonlLineIsValidJsonWithTheStreamMarker) {
  KiWiMap map;
  for (Key k = 1; k <= 500; ++k) map.Put(k, k);
  map.Scan(1, 500, [](Key, Value) {});
  const obs::MetricsSample sample = SampleOf(map);
  const std::string line = sample.ToJsonl();
  EXPECT_TRUE(JsonChecker(line).Valid()) << line;
  EXPECT_EQ(line.find("{\"kiwi_metrics\":1,"), 0u);
  for (const char* key :
       {"\"counters\":", "\"deltas\":", "\"rates\":", "\"gauges\":",
        "\"latency_ns\":", "\"census\":", "\"ebr_epoch_lag\"",
        "\"put_link_retries\"", "\"fill_hist\""}) {
    EXPECT_NE(line.find(key), std::string::npos) << key;
  }
}

TEST(MetricsExport, PromExpositionParses) {
  KiWiMap map;
  for (Key k = 1; k <= 500; ++k) map.Put(k, k);
  const obs::MetricsSample sample = SampleOf(map);
  std::ostringstream prom;
  sample.WriteProm(prom);
  const std::string text = prom.str();
  EXPECT_EQ(CheckPromExposition(text), "");
  for (const char* needle :
       {"# TYPE kiwi_puts_total counter", "# TYPE kiwi_chunks gauge",
        "# TYPE kiwi_chunk_fill histogram", "kiwi_chunk_fill_bucket{le=\"+Inf\"}",
        "kiwi_latency_ns{op=\"put\",stat=\"p99\"}",
        "# TYPE kiwi_splice_retries_total counter"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsExport, PromHistogramBucketsAreCumulative) {
  KiWiMap map;
  for (Key k = 1; k <= 2000; ++k) map.Put(k, k);
  std::ostringstream prom;
  SampleOf(map).WriteProm(prom);
  std::istringstream in(prom.str());
  std::string line;
  long long previous = -1;
  long long last = -1;
  long long count = -1;
  while (std::getline(in, line)) {
    if (line.rfind("kiwi_chunk_fill_bucket", 0) == 0) {
      const long long value =
          std::stoll(line.substr(line.find("} ") + 2));
      EXPECT_GE(value, previous) << "buckets must be cumulative: " << line;
      previous = value;
      last = value;
    } else if (line.rfind("kiwi_chunk_fill_count", 0) == 0) {
      count = std::stoll(line.substr(line.find(' ') + 1));
    }
  }
  ASSERT_GE(last, 0);
  EXPECT_EQ(last, count) << "+Inf bucket must equal _count";
  EXPECT_GT(count, 0);
}

// ---- census ------------------------------------------------------------

TEST(Census, MatchesBulkLoadedLayout) {
  KiWiConfig config;
  config.chunk_capacity = 64;
  std::vector<KiWiMap::Entry> entries;
  for (Key k = 1; k <= 200; ++k) entries.push_back({k, k});
  KiWiMap map(std::span<const KiWiMap::Entry>(entries), config);

  const obs::ChunkCensus census = map.Census();
  EXPECT_EQ(census.chunks, map.ChunkCount() - 1);  // sentinel excluded
  EXPECT_GT(census.chunks, 1u);
  EXPECT_EQ(census.allocated_cells, 200u);
  // Bulk-loaded chunks are entirely sorted prefix: every chunk lands in the
  // top batched-ratio decile and no rebalance is pending.
  EXPECT_EQ(census.batched_cells, 200u);
  EXPECT_EQ(census.batched_hist[obs::ChunkCensus::kDecileBuckets - 1],
            census.chunks);
  EXPECT_EQ(census.normal, census.chunks);
  EXPECT_EQ(census.infant, 0u);
  EXPECT_EQ(census.frozen, 0u);
  EXPECT_EQ(census.engaged, 0u);

  std::uint64_t fill_total = 0;
  for (const std::uint64_t bucket : census.fill_hist) fill_total += bucket;
  EXPECT_EQ(fill_total, census.chunks);

  EXPECT_LE(census.age_min_ns, census.age_max_ns);
  EXPECT_GE(census.age_mean_ns, static_cast<double>(census.age_min_ns));
  EXPECT_LE(census.age_mean_ns, static_cast<double>(census.age_max_ns));

  EXPECT_TRUE(JsonChecker(census.ToJson()).Valid()) << census.ToJson();
}

TEST(Census, DecileBucketing) {
  EXPECT_EQ(obs::ChunkCensus::DecileFor(-0.5), 0u);
  EXPECT_EQ(obs::ChunkCensus::DecileFor(0.0), 0u);
  EXPECT_EQ(obs::ChunkCensus::DecileFor(0.05), 0u);
  EXPECT_EQ(obs::ChunkCensus::DecileFor(0.10), 1u);
  EXPECT_EQ(obs::ChunkCensus::DecileFor(0.95), 9u);
  EXPECT_EQ(obs::ChunkCensus::DecileFor(1.0), 9u);
  EXPECT_EQ(obs::ChunkCensus::DecileFor(3.0), 9u);  // overfull clamps
}

// ---- the live pump -----------------------------------------------------

TEST(MetricsPump, SinkSeesMonotoneSamplesAndOnePumpPerMap) {
  KiWiMap map;
  std::mutex mu;
  std::vector<obs::MetricsSample> samples;
  obs::MetricsPumpOptions options;
  options.interval = std::chrono::milliseconds(5);
  options.sink = [&](const obs::MetricsSample& s) {
    std::lock_guard<std::mutex> lock(mu);
    samples.push_back(s);
  };
  ASSERT_TRUE(map.StartMetricsPump(options));
  EXPECT_FALSE(map.StartMetricsPump(options)) << "at most one pump per map";

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  Key key = 1;
  while (true) {
    for (int i = 0; i < 1000; ++i) map.Put(key++ % 50000 + 1, 7);
    std::lock_guard<std::mutex> lock(mu);
    if (samples.size() >= 3) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  map.StopMetricsPump();
  map.StopMetricsPump();  // idempotent

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].pump, samples[0].pump);
    EXPECT_EQ(samples[i].seq, samples[i - 1].seq + 1);
    EXPECT_GE(samples[i].uptime_s, samples[i - 1].uptime_s);
#if KIWI_OBS_ENABLED
    EXPECT_GE(samples[i].report.counters.puts,
              samples[i - 1].report.counters.puts)
        << "cumulative counters must be monotone within a pump";
#endif
    EXPECT_TRUE(JsonChecker(samples[i].ToJsonl()).Valid());
  }
#if KIWI_OBS_ENABLED
  EXPECT_GT(samples.back().report.counters.puts, 0u);
#endif
}

TEST(MetricsPump, JsonlFileRoundTripAndFinalFlush) {
  const std::string path = "export_test_pump.jsonl";
  std::remove(path.c_str());
  {
    KiWiMap map;
    obs::MetricsPumpOptions options;
    options.interval = std::chrono::milliseconds(50);
    options.jsonl_path = path;
    ASSERT_TRUE(map.StartMetricsPump(options));
    for (Key k = 1; k <= 2000; ++k) map.Put(k, k);
    // Destructor path: ~KiWiMap stops the pump, which flushes one final
    // sample even if no interval ever elapsed.
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  std::uint64_t previous_seq = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    EXPECT_NE(line.find("\"kiwi_metrics\":1"), std::string::npos);
    const std::size_t seq_at = line.find("\"seq\":");
    ASSERT_NE(seq_at, std::string::npos);
    const std::uint64_t seq = std::strtoull(
        line.c_str() + seq_at + 6, nullptr, 10);
    if (lines > 0) {
      EXPECT_EQ(seq, previous_seq + 1);
    }
    previous_seq = seq;
    ++lines;
  }
  EXPECT_GE(lines, 1u);
  std::remove(path.c_str());
}

TEST(MetricsPump, WritePromServesTheLatestSample) {
  KiWiMap map;
  obs::MetricsPumpOptions options;
  options.interval = std::chrono::milliseconds(3600 * 1000);  // never ticks
  ASSERT_TRUE(map.StartMetricsPump(options));
  for (Key k = 1; k <= 100; ++k) map.Put(k, k);
  map.StopMetricsPump();  // the final flush produces the one sample

  // The pump is gone; drive a fresh one through the public surface to read
  // the exposition before and after a tick.
  obs::MetricsPump pump(
      obs::MetricsSource{[&map] { return map.DebugReport(); },
                         [&map] { return map.Census(); }},
      options);
  std::ostringstream prom;
  EXPECT_FALSE(pump.WriteProm(prom)) << "no sample before the first tick";
  pump.Stop();
  EXPECT_TRUE(pump.WriteProm(prom));
  EXPECT_EQ(CheckPromExposition(prom.str()), "");
}

// ---- contention teeth --------------------------------------------------
// Drive a contended-CAS path deterministically (no scheduler luck needed,
// works on a single core): while a put is parked in the
// put_before_version_cas window it still occupies this thread's PPA slot in
// the chunk, so a nested put into the same chunk MUST lose its publish CAS
// — exactly the event ppa_publish_fails records — and then complete through
// the rebalance it triggers.

KiWiMap* g_teeth_map = nullptr;
std::atomic<int> g_teeth_fires{0};

void NestedPutHook() {
  static thread_local bool inside = false;
  if (inside || g_teeth_map == nullptr) return;
  if (g_teeth_fires.fetch_add(1) != 0) return;  // nest only the first window
  inside = true;
  g_teeth_map->Put(2, 99);
  inside = false;
}

TEST(ContentionTeeth, StalledPublishWindowRecordsPpaPublishFail) {
  KiWiConfig config;
  config.rebalance_probability = 0.0;  // only full/frozen chunks rebalance,
                                       // so the nested put must reach the
                                       // publish CAS (and lose it)
  KiWiMap map(config);
  map.Put(1, 1);  // warm before installing the hook
  g_teeth_map = &map;
  g_teeth_fires.store(0);
  {
    TestHooks::Scoped install(TestHooks::put_before_version_cas,
                              NestedPutHook);
    map.Put(3, 3);
  }
  g_teeth_map = nullptr;
  EXPECT_GE(g_teeth_fires.load(), 1);
  map.CheckInvariants();
  // Both the stalled outer put and the nested one must have landed.
  EXPECT_EQ(map.Get(2), std::optional<Value>(99));
  EXPECT_EQ(map.Get(3), std::optional<Value>(3));

#if KIWI_OBS_ENABLED
  const obs::OpCounters c = map.DebugReport().counters;
  EXPECT_GT(c.ppa_publish_fails, 0u)
      << "the nested put raced an occupied PPA slot yet no publish "
         "failure was recorded — the contention counters are not wired";
#endif
}

// ---- docs pinning ------------------------------------------------------
// Every counter and gauge name in the canonical X-macro lists must appear
// in docs/OBSERVABILITY.md, so the schema tables cannot silently drift.

#ifdef KIWI_SOURCE_DIR
TEST(ObsDocs, EveryCounterAndGaugeIsDocumented) {
  std::ifstream doc(std::string(KIWI_SOURCE_DIR) +
                    "/docs/OBSERVABILITY.md");
  ASSERT_TRUE(doc.good()) << "docs/OBSERVABILITY.md not found";
  std::stringstream buffer;
  buffer << doc.rdbuf();
  const std::string text = buffer.str();
#define KIWI_OBS_CHECK_DOC(name)                          \
  EXPECT_NE(text.find("`" #name "`"), std::string::npos)  \
      << #name " missing from docs/OBSERVABILITY.md";
  KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_CHECK_DOC)
  KIWI_OBS_GAUGE_FIELDS(KIWI_OBS_CHECK_DOC)
#undef KIWI_OBS_CHECK_DOC
}
#endif

}  // namespace
}  // namespace kiwi::core
