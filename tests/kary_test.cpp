// Tests for the k-ary search tree baseline: correctness, atomic range
// queries (double-collect validation), conflict-driven scan restarts, and
// the ordered-insertion degeneration the paper measures in §6.2.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "baselines/kary/kary_tree.h"
#include "common/random.h"

namespace kiwi::baselines {
namespace {

TEST(KaryTree, BasicPutGetRemove) {
  KaryTree tree(4);
  EXPECT_FALSE(tree.Get(1).has_value());
  tree.Put(1, 10);
  tree.Put(2, 20);
  tree.Put(1, 11);
  EXPECT_EQ(tree.Get(1).value(), 11);
  EXPECT_EQ(tree.Get(2).value(), 20);
  tree.Remove(1);
  EXPECT_FALSE(tree.Get(1).has_value());
  tree.Remove(999);
}

TEST(KaryTree, SplitsPreserveData) {
  KaryTree tree(4);  // tiny arity: splits early and often
  for (Key k = 0; k < 2000; ++k) tree.Put(k * 7 % 2000, k);
  EXPECT_EQ(tree.Size(), 2000u);
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Get(k).has_value()) << k;
  }
}

TEST(KaryTree, MatchesOracle) {
  KaryTree tree(8);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(555);
  for (int i = 0; i < 20000; ++i) {
    const Key key = static_cast<Key>(rng.NextBounded(1500));
    if (rng.NextBool(0.3)) {
      tree.Remove(key);
      oracle.erase(key);
    } else {
      tree.Put(key, i);
      oracle[key] = i;
    }
  }
  for (const auto& [k, v] : oracle) ASSERT_EQ(tree.Get(k).value_or(-1), v);
  std::vector<KaryTree::Entry> out;
  tree.Scan(0, 1500, out);
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

TEST(KaryTree, PartialScanBounds) {
  KaryTree tree(64);
  for (Key k = 0; k < 1000; ++k) tree.Put(k, k);
  std::vector<KaryTree::Entry> out;
  EXPECT_EQ(tree.Scan(100, 199, out), 100u);
  EXPECT_EQ(out.front().first, 100);
  EXPECT_EQ(out.back().first, 199);
  EXPECT_EQ(tree.Scan(2000, 3000, out), 0u);
}

TEST(KaryTree, OrderedInsertionDegenerates) {
  // Sequential keys: the unbalanced k-ST grows a path (paper §6.2's 730x
  // collapse comes from exactly this).  Random insertion of the same data
  // stays shallow.
  KaryTree ordered(8);
  for (Key k = 0; k < 20000; ++k) ordered.Put(k, k);
  KaryTree random(8);
  Xoshiro256 rng(9);
  std::vector<Key> keys(20000);
  for (Key k = 0; k < 20000; ++k) keys[k] = k;
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  for (const Key k : keys) random.Put(k, k);
  EXPECT_EQ(ordered.Size(), 20000u);
  EXPECT_EQ(random.Size(), 20000u);
  EXPECT_GT(ordered.Depth(), 4 * random.Depth())
      << "ordered insertion must degenerate the unbalanced tree";
}

TEST(KaryTree, ConflictingPutsRestartScans) {
  KaryTree tree(8);
  for (Key k = 0; k < 4000; ++k) tree.Put(k, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      tree.Put(static_cast<Key>(rng.NextBounded(4000)), 1);
    }
  });
  // Keep scanning until a conflicting put lands mid-scan (on a single CPU
  // this depends on preemption timing, so loop rather than fix a count).
  std::vector<KaryTree::Entry> out;
  for (int i = 0; i < 20000 && tree.ScanRestarts() == 0; ++i) {
    tree.Scan(0, 3999, out);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(tree.ScanRestarts(), 0u)
      << "wide scans under concurrent puts must observe conflicts";
}

// The double-collect validation must make scans atomic: a sweep writer
// stamps all keys with a round number in ascending order; a consistent scan
// never observes an increase along ascending keys.
TEST(KaryTree, ScansAreAtomicUnderSweepWriter) {
  constexpr Key kKeys = 128;
  KaryTree tree(8);
  for (Key k = 0; k < kKeys; ++k) tree.Put(k, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) tree.Put(k, round);
    }
  });
  std::vector<KaryTree::Entry> out;
  for (int i = 0; i < 200; ++i) {
    tree.Scan(0, kKeys - 1, out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kKeys));
    Value previous = out.front().second;
    for (const auto& [key, value] : out) {
      ASSERT_LE(value, previous) << "torn k-ary scan at key " << key;
      previous = value;
    }
    ASSERT_LE(out.front().second - out.back().second, 1);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(KaryTree, DisjointConcurrentWriters) {
  KaryTree tree(64);
  constexpr int kThreads = 6;
  constexpr Key kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (Key k = 0; k < kPerThread; ++k) tree.Put(t * kPerThread + k, k);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tree.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(KaryTree, MemoryFootprintGrows) {
  KaryTree tree(16);
  const std::size_t empty = tree.MemoryFootprint();
  for (Key k = 0; k < 5000; ++k) tree.Put(k, k);
  EXPECT_GT(tree.MemoryFootprint(), empty);
}

}  // namespace
}  // namespace kiwi::baselines
