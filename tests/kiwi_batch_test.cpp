// Tests for PutBatch: run splitting, the bulk-build path, duplicate
// semantics, and batches racing rebalances (docs/INGEST.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "api/map_interface.h"
#include "common/random.h"
#include "core/kiwi_map.h"

namespace kiwi::core {
namespace {

using Entry = KiWiMap::Entry;

std::vector<Entry> MakeAscending(Key first, std::size_t count,
                                 Key stride = 1) {
  std::vector<Entry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Key k = first + static_cast<Key>(i) * stride;
    entries.emplace_back(k, static_cast<Value>(k) * 7);
  }
  return entries;
}

TEST(KiWiBatch, EmptyBatchIsANoOp) {
  KiWiMap map;
  map.PutBatch({});
  EXPECT_EQ(map.Size(), 0u);
  map.CheckInvariants();
}

TEST(KiWiBatch, SingleEntryBehavesLikePut) {
  KiWiMap map;
  const Entry entry{42, 420};
  map.PutBatch(std::span<const Entry>(&entry, 1));
  EXPECT_EQ(map.Get(42).value_or(-1), 420);
  EXPECT_EQ(map.Size(), 1u);
  map.CheckInvariants();
}

TEST(KiWiBatch, UnsortedInputIsSortedInternally) {
  KiWiMap map;
  std::vector<Entry> entries = MakeAscending(1, 500);
  Xoshiro256 rng(17);
  for (std::size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.NextBounded(i)]);
  }
  map.PutBatch(entries);
  EXPECT_EQ(map.Size(), 500u);
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_EQ(map.Get(k).value_or(-1), static_cast<Value>(k) * 7);
  }
  map.CheckInvariants();
}

TEST(KiWiBatch, DuplicateKeysLastOccurrenceWins) {
  KiWiMap map;
  const std::vector<Entry> entries{
      {5, 100}, {7, 200}, {5, 101}, {9, 300}, {5, 102}, {7, 201}};
  map.PutBatch(entries);
  EXPECT_EQ(map.Get(5).value_or(-1), 102);
  EXPECT_EQ(map.Get(7).value_or(-1), 201);
  EXPECT_EQ(map.Get(9).value_or(-1), 300);
  EXPECT_EQ(map.Size(), 3u);
  map.CheckInvariants();
}

TEST(KiWiBatch, BatchOverwritesExistingKeys) {
  KiWiMap map;
  for (Key k = 1; k <= 200; ++k) map.Put(k, -static_cast<Value>(k));
  map.PutBatch(std::vector<Entry>(MakeAscending(50, 100)));
  for (Key k = 1; k <= 200; ++k) {
    const Value expected =
        (k >= 50 && k < 150) ? static_cast<Value>(k) * 7 : -static_cast<Value>(k);
    ASSERT_EQ(map.Get(k).value_or(0), expected) << "key " << k;
  }
  EXPECT_EQ(map.Size(), 200u);
  map.CheckInvariants();
}

TEST(KiWiBatch, SpansManyChunks) {
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  // Seed enough keys to split the map into several chunks, then batch
  // across the full range so the run splitter must walk chunk to chunk.
  for (Key k = 1; k <= 2000; k += 2) map.Put(k, 0);
  map.PutBatch(std::vector<Entry>(MakeAscending(1, 2000)));
  EXPECT_EQ(map.Size(), 2000u);
  std::vector<Entry> out;
  map.Scan(kMinUserKey, kMaxUserKey, out);
  ASSERT_EQ(out.size(), 2000u);
  for (Key k = 1; k <= 2000; ++k) {
    ASSERT_EQ(out[static_cast<std::size_t>(k - 1)],
              (Entry{k, static_cast<Value>(k) * 7}));
  }
  map.CheckInvariants();
}

TEST(KiWiBatch, PresortedIngestTakesBulkPath) {
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  map.PutBatch(std::vector<Entry>(MakeAscending(1, 10000)));
  EXPECT_EQ(map.Size(), 10000u);
  const auto report = map.DebugReport();
  if (report.stats_enabled) {
    EXPECT_EQ(report.counters.put_batches, 1u);
    EXPECT_EQ(report.counters.batch_entries, 10000u);
    // A large presorted batch into a near-empty map must build chunks
    // directly, not trickle through the per-op PPA path.
    EXPECT_GT(report.counters.batch_bulk_entries, 9000u);
  }
  // Bulk-built chunks carry sorted prefixes the scan fast-path can use.
  EXPECT_GT(map.Report().avg_batched_ratio, 0.5);
  map.CheckInvariants();
}

TEST(KiWiBatch, SmallRunsUsePerOpPath) {
  KiWiConfig config;
  config.chunk_capacity = 128;
  config.batch_bulk_min_run = 1000;  // effectively disable bulk builds
  KiWiMap map(config);
  map.PutBatch(std::vector<Entry>(MakeAscending(1, 500)));
  EXPECT_EQ(map.Size(), 500u);
  const auto report = map.DebugReport();
  if (report.stats_enabled) {
    // Runs are capped by chunk boundaries (< 1000), so nothing bulk-built
    // until a chunk fills and rebalance splits carry entries through.
    EXPECT_EQ(report.counters.put_batches, 1u);
  }
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_EQ(map.Get(k).value_or(-1), static_cast<Value>(k) * 7);
  }
  map.CheckInvariants();
}

TEST(KiWiBatch, MatchesPerOpSemanticsOnRandomMix) {
  // Oracle check: interleave batches and single puts; final state must
  // equal replaying the same operations through a std::map.
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  std::map<Key, Value> oracle;
  Xoshiro256 rng(23);
  for (int round = 0; round < 50; ++round) {
    std::vector<Entry> batch;
    const std::size_t n = 1 + rng.NextBounded(120);
    for (std::size_t i = 0; i < n; ++i) {
      batch.emplace_back(static_cast<Key>(1 + rng.NextBounded(800)),
                         static_cast<Value>(rng.Next() >> 8 | 1));
    }
    map.PutBatch(batch);
    for (const auto& [k, v] : batch) oracle[k] = v;
    const Key solo = static_cast<Key>(1 + rng.NextBounded(800));
    map.Put(solo, round + 1);
    oracle[solo] = round + 1;
  }
  std::vector<Entry> out;
  map.Scan(kMinUserKey, kMaxUserKey, out);
  ASSERT_EQ(out.size(), oracle.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), oracle.begin(),
                         [](const Entry& a, const auto& b) {
                           return a.first == b.first && a.second == b.second;
                         }));
  map.CheckInvariants();
}

TEST(KiWiBatch, ConcurrentBatchesOnDisjointRanges) {
  // Batches racing each other and the rebalances they trigger: every
  // thread's partition must land completely, and the structure must stay
  // coherent under CheckInvariants.
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto entries =
          MakeAscending(static_cast<Key>(t) * kPerThread + 1, kPerThread);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // Split into bursts so batches from different threads interleave.
      for (std::size_t off = 0; off < entries.size(); off += 512) {
        const std::size_t n = std::min<std::size_t>(512, entries.size() - off);
        map.PutBatch(std::span<const Entry>(entries.data() + off, n));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (Key k = 1; k <= kThreads * kPerThread; k += 37) {
    ASSERT_EQ(map.Get(k).value_or(-1), static_cast<Value>(k) * 7);
  }
  map.CheckInvariants();
}

TEST(KiWiBatch, ConcurrentBatchesOnOverlappingKeys) {
  // All threads batch the same key range with distinct values; afterwards
  // every key must hold *some* thread's value for it (each entry linearized
  // individually — no torn or lost updates).
  KiWiConfig config;
  config.chunk_capacity = 32;
  KiWiMap map(config);
  constexpr int kThreads = 4;
  constexpr Key kKeys = 3000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<Entry> entries;
      for (Key k = 1; k <= kKeys; ++k) {
        entries.emplace_back(k, static_cast<Value>(t + 1) * 1000000 + k);
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t off = 0; off < entries.size(); off += 256) {
        const std::size_t n = std::min<std::size_t>(256, entries.size() - off);
        map.PutBatch(std::span<const Entry>(entries.data() + off, n));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kKeys));
  for (Key k = 1; k <= kKeys; ++k) {
    const Value v = map.Get(k).value_or(-1);
    const Value owner = v / 1000000;
    ASSERT_GE(owner, 1);
    ASSERT_LE(owner, kThreads);
    ASSERT_EQ(v % 1000000, k);
  }
  map.CheckInvariants();
}

TEST(KiWiBatch, BatchRacingScans) {
  // A scan cutting through an in-flight batch must see a consistent cut:
  // for an ascending batch, once it observes entry i it observes every
  // j < i from the same batch (entries linearize in key order within the
  // covering chunks; weaker property — monotone count — checked here).
  KiWiConfig config;
  config.chunk_capacity = 64;
  KiWiMap map(config);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < 20; ++round) {
      map.PutBatch(std::vector<Entry>(
          MakeAscending(static_cast<Key>(round) * 1000 + 1, 1000)));
    }
    done.store(true, std::memory_order_release);
  });
  std::size_t last = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::vector<Entry> out;
    map.Scan(kMinUserKey, kMaxUserKey, out);
    ASSERT_GE(out.size(), last) << "scan went backwards";
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
    last = out.size();
  }
  writer.join();
  EXPECT_EQ(map.Size(), 20000u);
  map.CheckInvariants();
}

TEST(ApiBatch, AdapterDispatchesAndFallbackMatches) {
  // KiWi routes through the native PutBatch; skiplist (no native batch)
  // falls back to the Put loop.  Same input -> same contents.
  const std::vector<api::IOrderedMap::Entry> entries{
      {3, 30}, {1, 10}, {2, 20}, {1, 11}};
  auto kiwi_map = api::MakeMap(api::MapKind::kKiWi);
  auto skip_map = api::MakeMap(api::MapKind::kSkipList);
  kiwi_map->PutBatch(entries);
  skip_map->PutBatch(entries);
  std::vector<api::IOrderedMap::Entry> kiwi_out, skip_out;
  kiwi_map->Scan(kMinUserKey, kMaxUserKey, kiwi_out);
  skip_map->Scan(kMinUserKey, kMaxUserKey, skip_out);
  EXPECT_EQ(kiwi_out, skip_out);
  ASSERT_EQ(kiwi_out.size(), 3u);
  EXPECT_EQ(kiwi_map->Get(1).value_or(-1), 11);  // last occurrence won
}

}  // namespace
}  // namespace kiwi::core
