// KiWiByteMap — KiWi over variable-length byte-string keys and values.
//
//   kiwi::api::KiWiByteMap map;
//   map.Put("user:alice", "{\"score\":17}");
//   map.Put("user:bob", "");                       // empty values are legal
//   auto v = map.Get("user:alice");                // optional<std::string>
//   map.Scan("user:", "user;\xff", [](std::string_view k,
//                                     std::string_view v) { ... });
//   map.ScanFrom("user:", yield);                  // no upper bound
//
// This is KiWiMapT instantiated with ByteLayout (core/layout.h): the same
// chunk list, PPA helping protocol, scan versioning and seven-stage
// rebalance as the fixed-width KiWiMap — every operation keeps its
// linearization point — with keys and values stored in a per-chunk
// append-only byte arena carved from the tail of each chunk's slab.  Cells
// stay fixed-width ({8-byte order-preserving prefix, offset, length}), so
// the batched-prefix binary search and intra-chunk list walk remain
// branch-light: comparisons resolve on the prefix and fall through to a
// memcmp of the arena bytes only on a prefix tie (keys sharing their first
// 8 bytes).
//
// Key and value rules:
//   * Keys are arbitrary non-empty byte strings, ordered lexicographically
//     (memcmp order; embedded NULs are fine).  The empty string is reserved
//     as the internal sentinel minimum — Put/Get/Remove of "" assert.
//   * Values are arbitrary byte strings, empty included.  Remove writes an
//     explicit tombstone record (a reserved length sentinel in the cell, no
//     arena bytes), exactly the paper's put(⊥).
//   * One entry's key + value must fit KiWiConfig::bytes.max_entry_bytes
//     (clamped to a quarter of the per-chunk arena).
//   * The map copies keys and values on Put; callers keep ownership of the
//     viewed buffers.  Views handed to scan callbacks point into chunk
//     storage pinned by the scan's guard — valid only inside the callback.
//
// Arena sizing: each chunk carries chunk_capacity *
// KiWiConfig::bytes.arena_bytes_per_cell bytes of storage.  A chunk whose
// arena fills before its cell array does simply rebalances early (the
// census's arena_hist column, docs/OBSERVABILITY.md, shows this
// directly); size arena_bytes_per_cell near your mean key + value size to
// avoid either array stranding the other.
//
// There is no maximum byte key, so a full scan is ScanFrom(MinUserKey());
// KiWiByteMap::MinUserKey() ("\0", the smallest non-empty key) is provided
// below for exactly that spelling.
#pragma once

#include <string_view>

#include "core/kiwi_map.h"
#include "core/layout.h"

namespace kiwi::api {

/// The byte-string map.  Full interface in core/kiwi_map.h (KiWiMapT) —
/// here KeyView/ValueView are std::string_view, OwnedKey/OwnedValue are
/// std::string, and Entry is pair<std::string, std::string>.
using KiWiByteMap = core::KiWiMapT<core::ByteLayout>;

/// The smallest valid user key ("\0"): ScanFrom(ByteMapMinKey()) scans the
/// whole map.
inline std::string_view ByteMapMinKey() {
  return core::ByteLayout::MinUserKey();
}

}  // namespace kiwi::api
