// Uniform harness-facing interface over every map in the repository, plus
// the static capability traits behind the paper's Table 1.
//
// Hot paths in microbenches use the concrete types directly; the virtual
// indirection here (one predicted call per op, ~1-2ns) is for the workload
// driver and integration tests, where a single code path across all four
// competitors matters more.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baselines/ctrie/hash_trie.h"
#include "baselines/kary/kary_tree.h"
#include "baselines/locked_map.h"
#include "baselines/skiplist/skiplist.h"
#include "baselines/snaptree/cow_tree.h"
#include "common/config.h"
#include "core/kiwi_map.h"

namespace kiwi::api {

/// Capability matrix entries (paper Table 1).
struct MapTraits {
  bool atomic_scans;    // scans are linearizable snapshots
  bool multiple_scans;  // several scans may run concurrently
  bool partial_scans;   // range queries (not only full snapshots)
  bool wait_free_scans; // scans never restart / block
  bool balanced;        // logarithmic access under any insertion order
  bool fast_puts;       // puts not hampered by ongoing scans
};

class IOrderedMap {
 public:
  using Entry = std::pair<Key, Value>;

  virtual ~IOrderedMap() = default;
  virtual void Put(Key key, Value value) = 0;
  /// Insert or overwrite every pair of `entries` — equivalent to Put in
  /// submission order (duplicate keys: last occurrence wins).  Not atomic
  /// as a whole; each entry linearizes individually within the call.  The
  /// default loops over Put; maps with a native batch path (KiWi, see
  /// docs/INGEST.md) override it through MapAdapter.
  virtual void PutBatch(std::span<const Entry> entries) {
    for (const Entry& entry : entries) Put(entry.first, entry.second);
  }
  virtual void Remove(Key key) = 0;
  virtual std::optional<Value> Get(Key key) = 0;
  virtual std::size_t Scan(Key from_key, Key to_key,
                           std::vector<Entry>& out) = 0;
  virtual std::size_t MemoryFootprint() = 0;
  /// Quiescent-only: release deferred memory before a footprint reading.
  virtual void DrainDeferredMemory() {}
  virtual std::string Name() const = 0;
  virtual MapTraits Traits() const = 0;
};

template <typename M>
class MapAdapter final : public IOrderedMap {
 public:
  template <typename... Args>
  explicit MapAdapter(std::string name, MapTraits traits, Args&&... args)
      : map_(std::forward<Args>(args)...),
        name_(std::move(name)),
        traits_(traits) {}

  void Put(Key key, Value value) override { map_.Put(key, value); }
  void PutBatch(std::span<const Entry> entries) override {
    if constexpr (requires { map_.PutBatch(entries); }) {
      map_.PutBatch(entries);
    } else {
      IOrderedMap::PutBatch(entries);
    }
  }
  void Remove(Key key) override { map_.Remove(key); }
  std::optional<Value> Get(Key key) override { return map_.Get(key); }
  std::size_t Scan(Key from_key, Key to_key,
                   std::vector<Entry>& out) override {
    return map_.Scan(from_key, to_key, out);
  }
  std::size_t MemoryFootprint() override { return map_.MemoryFootprint(); }
  void DrainDeferredMemory() override {
    if constexpr (requires { map_.DrainReclamation(); }) {
      map_.DrainReclamation();
    }
  }
  std::string Name() const override { return name_; }
  MapTraits Traits() const override { return traits_; }

  M& Underlying() { return map_; }

 private:
  M map_;
  std::string name_;
  MapTraits traits_;
};

/// The four competitors of the paper's evaluation (§6.1), by stable name.
enum class MapKind { kKiWi, kSkipList, kKaryTree, kSnapTree, kCtrie, kLockedMap };

inline const char* KindName(MapKind kind) {
  switch (kind) {
    case MapKind::kKiWi: return "kiwi";
    case MapKind::kSkipList: return "skiplist";
    case MapKind::kKaryTree: return "kary";
    case MapKind::kSnapTree: return "snaptree";
    case MapKind::kCtrie: return "ctrie";
    case MapKind::kLockedMap: return "lockedmap";
  }
  return "?";
}

inline MapTraits TraitsOf(MapKind kind) {
  switch (kind) {
    case MapKind::kKiWi:
      return {true, true, true, true, true, true};
    case MapKind::kSkipList:  // non-atomic iterator scans
      return {false, true, true, true, true, true};
    case MapKind::kKaryTree:  // restarts on conflict; unbalanced
      return {true, true, true, false, false, true};
    case MapKind::kSnapTree:  // COW clones hamper puts
      return {true, true, true, true, true, false};
    case MapKind::kCtrie:  // full snapshots only; COW clones hamper puts
      return {true, true, false, true, true, false};
    case MapKind::kLockedMap:  // scans block puts outright
      return {true, true, true, false, true, false};
  }
  return {};
}

/// Factory used by the driver and the benches.
inline std::unique_ptr<IOrderedMap> MakeMap(
    MapKind kind, const core::KiWiConfig& kiwi_config = {}) {
  switch (kind) {
    case MapKind::kKiWi:
      return std::make_unique<MapAdapter<core::KiWiMap>>(
          KindName(kind), TraitsOf(kind), kiwi_config);
    case MapKind::kSkipList:
      return std::make_unique<MapAdapter<baselines::SkipList>>(
          KindName(kind), TraitsOf(kind));
    case MapKind::kKaryTree:
      return std::make_unique<MapAdapter<baselines::KaryTree>>(
          KindName(kind), TraitsOf(kind));
    case MapKind::kSnapTree:
      return std::make_unique<MapAdapter<baselines::CowTree>>(
          KindName(kind), TraitsOf(kind));
    case MapKind::kCtrie:
      return std::make_unique<MapAdapter<baselines::HashTrie>>(
          KindName(kind), TraitsOf(kind));
    case MapKind::kLockedMap:
      return std::make_unique<MapAdapter<baselines::LockedMap>>(
          KindName(kind), TraitsOf(kind));
  }
  return nullptr;
}

/// Parse a map name (as printed by KindName); returns false on mismatch.
inline bool ParseMapKind(const std::string& name, MapKind* kind) {
  for (MapKind candidate :
       {MapKind::kKiWi, MapKind::kSkipList, MapKind::kKaryTree,
        MapKind::kSnapTree, MapKind::kCtrie, MapKind::kLockedMap}) {
    if (name == KindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace kiwi::api
