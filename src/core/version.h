// Global version (GV) and Pending Scan Array (PSA) — paper §3.1/§3.2.
//
// KiWi's version numbering is driven by *scans*: a put reads GV without
// incrementing it, a scan fetch-and-increments GV and uses the fetched value
// as its read point.  Because a scan cannot atomically {F&I GV, publish the
// result in its PSA entry}, the PSA entry goes through a "pending" state (the
// paper's `?`) that concurrent rebalances help resolve; a per-entry sequence
// number defeats the ABA where a stalled rebalance would install a stale
// version into a *later* scan by the same thread ("monotonically increasing
// counters are used to prevent ABA races").
//
// The {version, sequence} pair is a single 16-byte atomic so the helping CAS
// covers both fields (cmpxchg16b on x86-64; GCC routes through libatomic).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/config.h"
#include "common/padded.h"

namespace kiwi::core {

/// Version constants.  Real versions start at 1.
inline constexpr Version kNoVersion = 0;
inline constexpr Version kPendingVersion = ~Version{0};  // the paper's `?`
/// Largest version a read may pass as its bound: just below the PPA's
/// 48-bit FROZEN marker.  Gets read at this version ("findLatest(key, ∞)").
inline constexpr Version kMaxReadVersion = (Version{1} << 48) - 2;

/// The global version counter, alone on its cache line: every scan F&Is it
/// and every put reads it.
class GlobalVersion {
 public:
  /// Current version; used by puts (which do *not* increment).
  Version Load() const { return value_.value.load(std::memory_order_seq_cst); }

  /// Fetch-and-increment; used by scans and by rebalances helping scans.
  Version FetchIncrement() {
    return value_.value.fetch_add(1, std::memory_order_seq_cst);
  }

 private:
  PaddedAtomic<Version> value_{/*value=*/{1}};
};

/// One PSA slot.  Owned (published/cleared) by one thread; helped by any.
/// Templated on the published range-bound domain: the int64 map publishes
/// exact keys, the byte map publishes normalized 8-byte key prefixes (see
/// core/layout.h — prefix bounds are conservative but never lossy).
template <typename PsaKey>
class PsaEntryT {
 public:
  struct VerSeq {
    Version ver;
    std::uint64_t seq;
    friend bool operator==(const VerSeq&, const VerSeq&) = default;
  };

  /// -- owner-side protocol --------------------------------------------

  /// Step 1 of a scan: announce intent with range [from, to] and a fresh
  /// sequence number.  Returns that sequence number.
  std::uint64_t PublishPending(PsaKey from, PsaKey to) {
    const std::uint64_t seq = next_seq_++;
    // Range is published before the pending word; helpers read the word
    // first (acquire) and the range after, so they never act on a stale
    // pending word with a fresh range.
    from_.store(from, std::memory_order_relaxed);
    to_.store(to, std::memory_order_relaxed);
    ver_seq_.store(VerSeq{kPendingVersion, seq}, std::memory_order_seq_cst);
    return seq;
  }

  /// Step 2: try to install the version this scan fetched from GV.  Failure
  /// means a rebalance already helped; either way the entry now holds the
  /// authoritative read point, returned here.
  Version InstallOwn(std::uint64_t seq, Version fetched) {
    VerSeq expected{kPendingVersion, seq};
    ver_seq_.compare_exchange_strong(expected, VerSeq{fetched, seq},
                                     std::memory_order_seq_cst);
    return ver_seq_.load(std::memory_order_seq_cst).ver;
  }

  /// Step 3, after the scan: deactivate the entry.
  void Clear(std::uint64_t seq) {
    ver_seq_.store(VerSeq{kNoVersion, seq}, std::memory_order_seq_cst);
  }

  /// -- helper-side (rebalance) protocol --------------------------------

  VerSeq Load() const { return ver_seq_.load(std::memory_order_seq_cst); }

  PsaKey From() const { return from_.load(std::memory_order_relaxed); }
  PsaKey To() const { return to_.load(std::memory_order_relaxed); }

  /// CAS {pending, seq} -> {ver, seq}.  Safe against the owner having moved
  /// on: a newer scan uses a larger seq, so the compare fails.
  bool HelpInstall(std::uint64_t seq, Version ver) {
    VerSeq expected{kPendingVersion, seq};
    return ver_seq_.compare_exchange_strong(expected, VerSeq{ver, seq},
                                            std::memory_order_seq_cst);
  }

 private:
  std::atomic<VerSeq> ver_seq_{VerSeq{kNoVersion, 0}};
  std::atomic<PsaKey> from_{0};
  std::atomic<PsaKey> to_{0};
  std::uint64_t next_seq_ = 1;  // owner-only
};

/// The fixed-width map's entry (and the VerSeq protocol tests').
using PsaEntry = PsaEntryT<Key>;

/// True when the 16-byte PSA pair CAS is a native instruction.
bool PsaPairIsLockFree();

/// The global PSA: one padded entry per thread slot.
template <typename PsaKey>
class PsaT {
 public:
  using Entry = PsaEntryT<PsaKey>;

  Entry& Slot(std::size_t thread_slot) { return entries_[thread_slot].value; }
  const Entry& Slot(std::size_t thread_slot) const {
    return entries_[thread_slot].value;
  }

 private:
  Padded<Entry> entries_[kMaxThreads];
};

using Psa = PsaT<Key>;

}  // namespace kiwi::core
