#include "core/version.h"

namespace kiwi::core {

bool PsaPairIsLockFree() {
  // Whether the 16-byte {version, sequence} CAS compiles to cmpxchg16b
  // (with -mcx16) or falls back to libatomic's locked path.  Correctness is
  // unaffected either way; exposed for diagnostics and the feature bench.
  return std::atomic<PsaEntry::VerSeq>{}.is_lock_free();
}

}  // namespace kiwi::core
