// The KiWi chunk (paper Algorithm 1, Figure 1).
//
// A chunk owns a contiguous key range [min_key, next->min_key) and stores its
// data in two arrays:
//   - `k`: cells forming an intra-chunk linked list sorted by
//     (key ascending, version descending, valPtr descending);
//   - `v`: the values cells point into (`valPtr`), preserving the paper's
//     indirection so that puts with equal {key, version} are tie-broken by
//     their fetch-and-added value location.
//
// A prefix of `k` (the *batched prefix*) is sorted and binary-searchable;
// later insertions link new cells into the list via bypasses, so searches are
// binary over the prefix + linear over the remainder.
//
// Each chunk carries a Pending Put Array (PPA) with one slot per thread.  A
// put publishes the cell it is inserting there *before* acquiring a version,
// which lets scans/gets help assign versions (§3.2) and lets rebalance freeze
// the chunk (§3.3.2 stage 2).  Slot state is a single 64-bit word packing
// {version:48, cellIdx:16} so the helping CAS covers both fields.
//
// The chunk is templated on a key/value Layout (core/layout.h).  For
// Int64Layout cells hold the key and `v` slots hold the value directly; for
// ByteLayout cells hold {prefix, offset, length} into a per-chunk
// append-only byte arena at the slab tail, and `v` slots hold
// {offset, length}.  `using Chunk = ChunkT<Int64Layout>` keeps the original
// fixed-width map's spelling (and its compiled hot paths) unchanged.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/config.h"
#include "common/marked_ptr.h"
#include "common/thread_registry.h"
#include "core/layout.h"
#include "core/version.h"
#include "reclaim/pool.h"

namespace kiwi::core {

template <typename Layout>
struct RebalanceObjectT;

/// Out-of-line hook so ~ChunkT need not see RebalanceObject's definition
/// (defined in chunk.cpp; rebalance_object.h would cycle back here).
template <typename Layout>
void UnrefRebalanceObject(RebalanceObjectT<Layout>* ro);

template <typename Layout>
class KiWiMapT;

// A chunk is one contiguous cache-aligned slab: the header below, then the
// cell array `k` (capacity + 1 entries, cell 0 a sentinel), then the value
// array `v` (capacity entries), then — for arena layouts — `arena_capacity`
// bytes of append-only key/value storage.  `k`/`v`/`a` are computed offsets
// into the slab, so creating or retiring a chunk is a single pool round trip
// instead of several heap allocations.  Construction goes through
// Create/Destroy — the constructor is private because a Chunk only makes
// sense inside its slab.
template <typename Layout>
class alignas(kCacheLineSize) ChunkT {
 public:
  using KeyView = typename Layout::KeyView;
  using ValueView = typename Layout::ValueView;
  using CellKey = typename Layout::CellKey;
  using StoredValue = typename Layout::StoredValue;
  using Probe = typename Layout::Probe;

  enum class Status : std::uint32_t {
    kInfant,   // created by rebalance, immutable until normalize
    kNormal,   // mutable
    kFrozen,   // engaged in rebalance, immutable forever
    kSentinel  // the permanent list head; holds no data, never engaged
  };

  /// Terminator / "no cell" marker for intra-chunk list links.
  static constexpr std::int32_t kNullIdx = -1;

  // ---- PPA word packing: [version:48 | idx:16] -------------------------
  static constexpr std::uint64_t kPpaIdxMask = 0xFFFF;
  static constexpr std::uint32_t kPpaNoIdx = 0xFFFF;
  static constexpr Version kPpaVerBottom = 0;
  static constexpr Version kPpaVerFrozen = (std::uint64_t{1} << 48) - 1;
  static constexpr std::uint64_t kPpaIdle =
      (kPpaVerBottom << 16) | kPpaNoIdx;  // {⊥, ⊥}

  static constexpr std::uint64_t PackPpa(Version ver, std::uint32_t idx) {
    return (ver << 16) | (idx & kPpaIdxMask);
  }
  static constexpr Version PpaVer(std::uint64_t word) { return word >> 16; }
  static constexpr std::uint32_t PpaIdx(std::uint64_t word) {
    return static_cast<std::uint32_t>(word & kPpaIdxMask);
  }

  /// One entry of array `k`.
  struct Cell {
    CellKey key{};
    /// Written once by the owning put (copied from its PPA slot) before the
    /// cell is linked; read only through the PPA or after the linking CAS.
    Version version = kNoVersion;
    /// Index into `v`.  CAS target: a put that lost the {key, version} race
    /// redirects the winning cell to its (larger-indexed) value.
    std::atomic<std::int32_t> val_ptr{kNullIdx};
    /// Next cell in the intra-chunk list, kNullIdx at the tail.
    std::atomic<std::int32_t> next{kNullIdx};
  };

  /// An entry harvested from the chunk for rebalance or scan merging.  For
  /// arena layouts the key/value views point into the source chunk's arena
  /// (or a caller's batch buffer) — valid while the caller's EBR guard pins
  /// the frozen source chunk.
  struct Item {
    KeyView key;
    Version version;
    std::int32_t val_ptr;
    ValueView value;
  };

  /// The total order used everywhere: key ascending, version descending,
  /// valPtr descending (larger valPtr wins a {key, version} tie, §3.2).
  static bool ItemBefore(const Item& a, const Item& b) {
    if (!Layout::KeyEq(a.key, b.key)) return Layout::KeyLess(a.key, b.key);
    if (a.version != b.version) return a.version > b.version;
    return a.val_ptr > b.val_ptr;
  }

  /// Bytes of the slab backing a chunk of `capacity` data cells: header +
  /// (capacity + 1) cells + capacity values + the byte arena (zero-sized
  /// for fixed-width layouts), in one allocation.
  static std::size_t SlabBytes(std::uint32_t capacity,
                               std::uint32_t arena_capacity = 0) {
    return sizeof(ChunkT) + (capacity + 1) * sizeof(Cell) +
           capacity * sizeof(StoredValue) + arena_capacity;
  }

  /// Creates a chunk with room for `capacity` data cells in a single slab
  /// drawn from `pool` (recycled from a retired chunk when possible).  Cell
  /// 0 is a list head sentinel, so `k` holds capacity + 1 cells.  `batched`
  /// (sorted by key asc, version desc) seeds the batched prefix; rebalance
  /// passes the compacted data here, the initial chunk passes nothing.  For
  /// arena layouts the min_key and every batched entry's bytes are copied
  /// into the fresh arena — the rebalance build stage gets arena compaction
  /// for free from this copy.
  static ChunkT* Create(reclaim::SlabPool& pool, KeyView min_key,
                        std::uint32_t capacity, ChunkT* parent, Status status,
                        std::span<const Item> batched = {},
                        std::uint32_t arena_capacity = 0);

  /// Destroys `chunk` and returns its slab to the pool it came from.  The
  /// EBR retire path calls this as its deleter, so a slab re-enters
  /// circulation only after every guard that could observe the chunk ends.
  static void Destroy(ChunkT* chunk);

  // ---- immutable identity ---------------------------------------------
  const CellKey min_key;
  const std::uint32_t capacity;
  /// Arena bytes in this slab (0 for fixed-width layouts).
  const std::uint32_t arena_capacity;
  /// Trigger chunk of the rebalance that created this chunk (for infants).
  ChunkT* const parent;

  // ---- shared mutable state -------------------------------------------
  std::atomic<Status> status;
  std::atomic<RebalanceObjectT<Layout>*> ro{nullptr};
  /// Guards the retire/discard invariant: a chunk leaves the structure
  /// exactly once (EBR retire by its sector's splice winner, or plain
  /// delete of a never-published consensus-losing section).  A second
  /// attempt means two rebalance generations claimed the same chunk.
  std::atomic<bool> retired{false};
  /// Next chunk in the global list; the mark freezes it (rebalance stage 5).
  AtomicMarkedPtr<ChunkT> next;
  /// Next free cell in `k` / value slot in `v`.  May exceed capacity; the
  /// allocation checks in Put handle overflow by rebalancing.
  std::atomic<std::uint32_t> k_counter;
  std::atomic<std::uint32_t> v_counter;
  /// Next free arena byte.  May exceed arena_capacity (failed claims leave
  /// their reservation behind); Put handles overflow by rebalancing, and
  /// the build-stage copy into a fresh arena compacts the waste away.
  std::atomic<std::uint32_t> arena_used;
  /// Number of sorted data cells at the front of `k` (immutable).
  const std::uint32_t batched_count;
  /// steady_clock nanoseconds at Create; the chunk-health census reports
  /// list age distribution from this (plain field, no obs dependency).
  const std::uint64_t birth_ns;

  Cell* const k;        // into the slab; [0] = sentinel, data in [1, capacity]
  StoredValue* const v; // into the slab; data value slots [0, capacity)
  char* const a;        // into the slab; the byte arena (arena layouts only)
  std::atomic<std::uint64_t> ppa[kMaxThreads];

  // ---- intra-chunk operations -----------------------------------------

  ChunkT* Next() const { return next.Load().Ptr(); }

  /// This chunk's min key as a view (for arena layouts the bytes live at
  /// the front of the chunk's own arena, immutable after Create).
  KeyView MinKey() const { return Layout::CellKeyView(a, min_key); }

  /// True if `key` falls inside this chunk's range given its current next.
  bool CoversKey(KeyView key) const {
    if (Layout::KeyLess(key, MinKey())) return false;
    const ChunkT* succ = Next();
    return succ == nullptr || Layout::KeyLess(key, succ->MinKey());
  }

  /// Index of the last *batched-prefix* cell with key < `key` (possibly the
  /// cell-0 sentinel).  Starting point for list traversals.
  std::int32_t BatchedPredecessor(KeyView key) const {
    return BatchedPredecessorProbe(Layout::MakeProbe(key));
  }
  /// Probe-taking variant (named, not overloaded: for the int64 layout
  /// KeyView and Probe are the same type).  Callers that compare many keys
  /// against one chunk build the probe once and reuse it.
  std::int32_t BatchedPredecessorProbe(const Probe& probe) const;

  /// Walk the list for the cell with exactly {key, version}.  On miss,
  /// reports the insertion point: *pred is the cell after which {key,
  /// version} belongs and *succ the cell that currently follows it (the
  /// exact expected value for the linking CAS; kNullIdx at the tail).
  /// Returns kNullIdx on miss, the cell index on hit.
  std::int32_t FindCell(KeyView key, Version version, std::int32_t* pred,
                        std::int32_t* succ) const {
    return FindCellFrom(kNullIdx, key, version, pred, succ);
  }

  /// FindCell starting the walk at cell `start` instead of the batched
  /// prefix.  `start` must be a linked cell with key strictly below `key`
  /// (or kNullIdx to fall back to BatchedPredecessor).  PutBatch threads
  /// the previous insertion's predecessor through here: batch keys ascend,
  /// so the insertion point only ever moves forward along the list.
  std::int32_t FindCellFrom(std::int32_t start, KeyView key, Version version,
                            std::int32_t* pred, std::int32_t* succ) const;

  /// Latest visible version of `key` with version <= `max_version`,
  /// considering both the linked list and versioned PPA entries
  /// (paper's findLatest).  Returns false if no such version exists.
  /// Tombstones are reported with found=true and is_tombstone=true.
  struct LatestResult {
    bool found = false;
    bool is_tombstone = false;
    ValueView value{};
    Version version = kNoVersion;
    std::int32_t val_ptr = kNullIdx;
  };
  LatestResult FindLatest(KeyView key, Version max_version) const;

  /// Paper's helpPendingPuts: install the current GV into every pending,
  /// versionless PPA entry whose key is within [from, to].
  void HelpPendingPuts(GlobalVersion& gv, KeyView from, KeyView to);

  /// HelpPendingPuts without a key filter — full-map scans use this (byte
  /// keys have no finite maximum, and over-helping is always safe).
  void HelpAllPendingPuts(GlobalVersion& gv);

  /// Freeze every PPA slot that has no version yet (rebalance stage 2).
  /// Returns the number of CAS attempts that lost to a concurrent publish
  /// or help (contention telemetry; the rebalance caller accounts it).
  std::uint64_t FreezePpa();

  /// Allocated data-cell count (includes cells that lost races; an upper
  /// bound on live entries, used by the rebalance policy).
  std::uint32_t AllocatedCells() const {
    const std::uint32_t counter = k_counter.load(std::memory_order_acquire);
    return (counter > capacity ? capacity : counter - 1);
  }

  /// Arena bytes claimed so far, clamped to capacity (census/policy; failed
  /// claims may push the raw counter past the end).
  std::uint32_t ArenaUsed() const {
    const std::uint32_t used = arena_used.load(std::memory_order_acquire);
    return used > arena_capacity ? arena_capacity : used;
  }

  /// Claim `need` arena bytes; on success *off is the claimed offset.
  /// Failure (arena exhausted) leaves a dead reservation behind — the
  /// caller routes to rebalance, whose build-copy compacts it away.
  bool ClaimArena(std::uint32_t need, std::uint32_t* off) {
    const std::uint32_t got =
        arena_used.fetch_add(need, std::memory_order_relaxed);
    if (got > arena_capacity || need > arena_capacity - got) return false;
    *off = got;
    return true;
  }

  /// Approximate bytes owned by this chunk (memory-footprint bench).
  std::size_t MemoryFootprint() const {
    // The whole chunk is one slab; report what the pool actually reserved.
    return reclaim::SlabPool::RoundedSize(SlabBytes(capacity, arena_capacity));
  }

  /// Harvest every list cell plus every *versioned* PPA entry, sorted by
  /// (key asc, version desc, valPtr desc) and deduplicated; used by
  /// rebalance's build stage and by tests.
  void CollectItems(std::vector<Item>& out) const;

  /// Append versioned PPA entries with key in [from, to] and version <=
  /// max_version to `out` (unsorted).  Scans use this to merge pending puts
  /// with the list; must run *before* the list pass (see FindLatest).
  void CollectPpaItems(std::vector<Item>& out, KeyView from, KeyView to,
                       Version max_version) const;

  friend class KiWiMapT<Layout>;

 private:
  ChunkT(reclaim::SlabPool* pool, KeyView min_key, std::uint32_t capacity,
         std::uint32_t arena_capacity, ChunkT* parent, Status status,
         std::span<const Item> batched);

  /// Drops the chunk's reference on its rebalance object, if engaged (see
  /// rebalance_object.h for the lifetime story).  Only Destroy calls this.
  ~ChunkT();

  /// CollectPpaItems without a key filter (CollectItems wants everything).
  void CollectAllPpaItems(std::vector<Item>& out, Version max_version) const;

  /// Key/value views of a fully materialized cell, resolved through the
  /// arena for byte layouts.
  ValueView LoadValue(std::int32_t val_ptr) const {
    return Layout::LoadValue(a, v[val_ptr]);
  }

  /// The pool the slab came from (and returns to in Destroy).
  reclaim::SlabPool* const pool_;
};

/// The fixed-width map's chunk — the original spelling, unchanged hot paths.
using Chunk = ChunkT<Int64Layout>;

// ---- definitions ---------------------------------------------------------

template <typename Layout>
ChunkT<Layout>* ChunkT<Layout>::Create(reclaim::SlabPool& pool,
                                       KeyView min_key, std::uint32_t capacity,
                                       ChunkT* parent, Status status,
                                       std::span<const Item> batched,
                                       std::uint32_t arena_capacity) {
  void* slab = pool.Allocate(SlabBytes(capacity, arena_capacity));
  return new (slab)
      ChunkT(&pool, min_key, capacity, arena_capacity, parent, status, batched);
}

template <typename Layout>
void ChunkT<Layout>::Destroy(ChunkT* chunk) {
  reclaim::SlabPool* pool = chunk->pool_;
  const std::size_t bytes = SlabBytes(chunk->capacity, chunk->arena_capacity);
  chunk->~ChunkT();
  pool->Deallocate(chunk, bytes);
}

namespace detail {
template <typename Layout>
typename Layout::CellKey MakeMinKeyCell(typename Layout::KeyView min_key) {
  if constexpr (Layout::kHasArena) {
    // The min_key bytes are copied to the front of this chunk's own arena
    // (offset 0) by the constructor body.
    return typename Layout::CellKey{
        Layout::MakePrefix(min_key), 0,
        static_cast<std::uint32_t>(min_key.size())};
  } else {
    return min_key;
  }
}
}  // namespace detail

template <typename Layout>
ChunkT<Layout>::ChunkT(reclaim::SlabPool* pool, KeyView min_key_arg,
                       std::uint32_t capacity_arg,
                       std::uint32_t arena_capacity_arg, ChunkT* parent_arg,
                       Status status_arg, std::span<const Item> batched)
    : min_key(detail::MakeMinKeyCell<Layout>(min_key_arg)),
      capacity(capacity_arg),
      arena_capacity(arena_capacity_arg),
      parent(parent_arg),
      status(status_arg),
      next(nullptr),
      k_counter(1 + static_cast<std::uint32_t>(batched.size())),
      v_counter(static_cast<std::uint32_t>(batched.size())),
      arena_used(0),
      batched_count(static_cast<std::uint32_t>(batched.size())),
      birth_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())),
      k(reinterpret_cast<Cell*>(reinterpret_cast<char*>(this) +
                                sizeof(ChunkT))),
      v(reinterpret_cast<StoredValue*>(reinterpret_cast<char*>(this) +
                                       sizeof(ChunkT) +
                                       (capacity_arg + 1) * sizeof(Cell))),
      a(reinterpret_cast<char*>(this) + sizeof(ChunkT) +
        (capacity_arg + 1) * sizeof(Cell) +
        capacity_arg * sizeof(StoredValue)),
      pool_(pool) {
  KIWI_ASSERT(batched.size() <= capacity, "batched prefix exceeds capacity");
  // The slab tail holds raw storage: bring the cells to life (values are
  // write-before-read, like the `new Value[n]` default-init they replace).
  for (std::uint32_t i = 0; i <= capacity_arg; ++i) new (&k[i]) Cell();
  std::uninitialized_default_construct_n(v, capacity_arg);
  // Cell 0 is the list-head sentinel.
  k[0].key = Layout::SentinelCellKey();
  k[0].version = kPendingVersion;  // never compared
  k[0].next.store(batched.empty() ? kNullIdx : 1, std::memory_order_relaxed);
  std::uint32_t arena_off = 0;
  if constexpr (Layout::kHasArena) {
    // min_key first, then the batched entries' bytes, appended in order —
    // this copy IS the arena compaction rebalance gets for free.
    KIWI_ASSERT(min_key_arg.size() <= arena_capacity,
                "chunk min_key exceeds the arena");
    std::memcpy(a, min_key_arg.data(), min_key_arg.size());
    arena_off = static_cast<std::uint32_t>(min_key_arg.size());
  }
  // Seed the sorted prefix: cell i holds batched[i-1] and points to v[i-1].
  for (std::size_t i = 0; i < batched.size(); ++i) {
    KIWI_DASSERT(i == 0 || !ItemBefore(batched[i], batched[i - 1]),
                 "batched prefix must be sorted");
    Cell& cell = k[i + 1];
    cell.version = batched[i].version;
    cell.val_ptr.store(static_cast<std::int32_t>(i),
                       std::memory_order_relaxed);
    cell.next.store(i + 1 < batched.size() ? static_cast<std::int32_t>(i + 2)
                                           : kNullIdx,
                    std::memory_order_relaxed);
    if constexpr (Layout::kHasArena) {
      const KeyView key = batched[i].key;
      const ValueView value = batched[i].value;
      const std::uint32_t need = static_cast<std::uint32_t>(
          Layout::EntryArenaBytes(key, value));
      KIWI_ASSERT(need <= arena_capacity - arena_off,
                  "batched entries exceed the arena");
      std::memcpy(a + arena_off, key.data(), key.size());
      cell.key = CellKey{Layout::MakePrefix(key), arena_off,
                         static_cast<std::uint32_t>(key.size())};
      const std::uint32_t val_off =
          arena_off + static_cast<std::uint32_t>(key.size());
      if (Layout::IsTombstone(value)) {
        v[i] = StoredValue{0, Layout::kTombstoneLen};
      } else {
        std::memcpy(a + val_off, value.data(), value.size());
        v[i] = StoredValue{val_off, static_cast<std::uint32_t>(value.size())};
      }
      arena_off += need;
    } else {
      cell.key = batched[i].key;
      v[i] = batched[i].value;
    }
  }
  arena_used.store(arena_off, std::memory_order_relaxed);
  for (auto& entry : ppa) entry.store(kPpaIdle, std::memory_order_relaxed);
}

template <typename Layout>
ChunkT<Layout>::~ChunkT() {
  if (RebalanceObjectT<Layout>* engaged = ro.load(std::memory_order_acquire)) {
    UnrefRebalanceObject(engaged);
  }
}

template <typename Layout>
std::int32_t ChunkT<Layout>::BatchedPredecessorProbe(const Probe& probe) const {
  // Largest index in [1, batched_count] whose key is strictly below `key`
  // (the prefix is sorted by key; equal keys sit in descending-version order
  // but we only need a strict-lower bound here).  0 = sentinel if none.
  std::uint32_t lo = 0;
  std::uint32_t hi = batched_count;  // inclusive upper cell index
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo + 1) / 2;
    if (Layout::CompareCell(a, k[mid].key, probe) < 0) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return static_cast<std::int32_t>(lo);
}

template <typename Layout>
std::int32_t ChunkT<Layout>::FindCellFrom(std::int32_t start, KeyView key,
                                          Version version, std::int32_t* pred,
                                          std::int32_t* succ) const {
  const Probe probe = Layout::MakeProbe(key);
  KIWI_DASSERT(start == kNullIdx || start == 0 ||
                   Layout::CompareCell(a, k[start].key, probe) < 0,
               "FindCellFrom hint must precede the target key");
  std::int32_t prev = start == kNullIdx ? BatchedPredecessorProbe(probe) : start;
  std::int32_t curr = k[prev].next.load(std::memory_order_acquire);
  std::int32_t hit = kNullIdx;
  while (curr != kNullIdx) {
    const Cell& cell = k[curr];
    const int cmp = Layout::CompareCell(a, cell.key, probe);
    if (cmp > 0 || (cmp == 0 && cell.version <= version)) {
      if (cmp == 0 && cell.version == version) hit = curr;
      break;
    }
    prev = curr;
    curr = cell.next.load(std::memory_order_acquire);
  }
  if (pred != nullptr) *pred = prev;
  if (succ != nullptr) *succ = curr;
  return hit;
}

template <typename Layout>
typename ChunkT<Layout>::LatestResult ChunkT<Layout>::FindLatest(
    KeyView key, Version max_version) const {
  LatestResult best;
  const Probe probe = Layout::MakeProbe(key);

  // PPA candidates first, list second.  The order matters: a put that links
  // its cell and then clears its PPA slot between our two passes is seen by
  // the list pass; the reverse order could miss it in both.
  //
  // Entries still at ⊥ were published after our helping pass and are ordered
  // after us; frozen entries belong to puts that will restart.
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t t = 0; t < high_water; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    const Version ver = PpaVer(word);
    if (ver == kPpaVerBottom || ver == kPpaVerFrozen || ver > max_version) {
      continue;
    }
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Cell& cell = k[idx];
    if (Layout::CompareCell(a, cell.key, probe) != 0) continue;
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    if (!best.found || ver > best.version ||
        (ver == best.version && val_ptr > best.val_ptr)) {
      best.found = true;
      best.version = ver;
      best.val_ptr = val_ptr;
    }
  }

  // List candidate: versions of a key are chained in descending order, so
  // the first in-range cell is the latest visible one.
  std::int32_t curr =
      k[BatchedPredecessorProbe(probe)].next.load(std::memory_order_acquire);
  while (curr != kNullIdx) {
    const Cell& cell = k[curr];
    const int cmp = Layout::CompareCell(a, cell.key, probe);
    if (cmp > 0) break;
    if (cmp == 0 && cell.version <= max_version) {
      const std::int32_t val_ptr =
          cell.val_ptr.load(std::memory_order_acquire);
      if (!best.found || cell.version > best.version ||
          (cell.version == best.version && val_ptr > best.val_ptr)) {
        best.found = true;
        best.version = cell.version;
        best.val_ptr = val_ptr;
      }
      break;
    }
    curr = cell.next.load(std::memory_order_acquire);
  }

  if (best.found) {
    best.value = LoadValue(best.val_ptr);
    best.is_tombstone = Layout::IsTombstone(best.value);
  }
  return best;
}

template <typename Layout>
void ChunkT<Layout>::HelpPendingPuts(GlobalVersion& gv, KeyView from,
                                     KeyView to) {
  const Probe from_probe = Layout::MakeProbe(from);
  const Probe to_probe = Layout::MakeProbe(to);
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t t = 0; t < high_water; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    if (PpaVer(word) != kPpaVerBottom) continue;
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const CellKey& key = k[idx].key;
    if (Layout::CompareCell(a, key, from_probe) < 0 ||
        Layout::CompareCell(a, key, to_probe) > 0) {
      continue;
    }
    const Version current = gv.Load();
    std::uint64_t expected = word;
    // Failure means the put assigned its own version, was helped by someone
    // else, or was frozen — all fine.
    ppa[t].compare_exchange_strong(expected, PackPpa(current, idx),
                                   std::memory_order_seq_cst);
  }
}

template <typename Layout>
void ChunkT<Layout>::HelpAllPendingPuts(GlobalVersion& gv) {
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t t = 0; t < high_water; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    if (PpaVer(word) != kPpaVerBottom) continue;
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Version current = gv.Load();
    std::uint64_t expected = word;
    ppa[t].compare_exchange_strong(expected, PackPpa(current, idx),
                                   std::memory_order_seq_cst);
  }
}

template <typename Layout>
std::uint64_t ChunkT<Layout>::FreezePpa() {
  std::uint64_t retries = 0;
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    while (true) {
      const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
      if (PpaVer(word) != kPpaVerBottom) break;  // versioned or frozen
      std::uint64_t expected = word;
      if (ppa[t].compare_exchange_strong(expected,
                                         PackPpa(kPpaVerFrozen, PpaIdx(word)),
                                         std::memory_order_seq_cst)) {
        break;
      }
      ++retries;  // lost to a concurrent publish/help; re-read and retry
    }
  }
  return retries;
}

template <typename Layout>
void ChunkT<Layout>::CollectPpaItems(std::vector<Item>& out, KeyView from,
                                     KeyView to, Version max_version) const {
  const Probe from_probe = Layout::MakeProbe(from);
  const Probe to_probe = Layout::MakeProbe(to);
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    const Version ver = PpaVer(word);
    if (ver == kPpaVerBottom || ver == kPpaVerFrozen || ver > max_version) {
      continue;
    }
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Cell& cell = k[idx];
    if (Layout::CompareCell(a, cell.key, from_probe) < 0 ||
        Layout::CompareCell(a, cell.key, to_probe) > 0) {
      continue;
    }
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    out.push_back(Item{Layout::CellKeyView(a, cell.key), ver, val_ptr,
                       LoadValue(val_ptr)});
  }
}

template <typename Layout>
void ChunkT<Layout>::CollectAllPpaItems(std::vector<Item>& out,
                                        Version max_version) const {
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    const Version ver = PpaVer(word);
    if (ver == kPpaVerBottom || ver == kPpaVerFrozen || ver > max_version) {
      continue;
    }
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Cell& cell = k[idx];
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    out.push_back(Item{Layout::CellKeyView(a, cell.key), ver, val_ptr,
                       LoadValue(val_ptr)});
  }
}

template <typename Layout>
void ChunkT<Layout>::CollectItems(std::vector<Item>& out) const {
  const std::size_t base = out.size();
  // PPA before list (same reasoning as FindLatest): a put that links and
  // clears between the passes must be caught by the list walk.
  CollectAllPpaItems(out, kMaxReadVersion);
  std::int32_t curr = k[0].next.load(std::memory_order_acquire);
  std::uint32_t steps = 0;
  while (curr != kNullIdx) {
    // The list holds at most capacity cells; more steps means a cycle
    // (corruption) — fail loudly instead of walking forever.
    KIWI_ASSERT(++steps <= capacity, "cell list cycle");
    const Cell& cell = k[curr];
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    out.push_back(Item{Layout::CellKeyView(a, cell.key), cell.version,
                       val_ptr, LoadValue(val_ptr)});
    curr = cell.next.load(std::memory_order_acquire);
  }
  std::sort(out.begin() + base, out.end(), ItemBefore);
  // Drop exact duplicates (a completed put appears in both the list and a
  // not-yet-cleared PPA slot) and {key, version} duplicates (the smaller
  // valPtr lost the overwrite race).
  const auto duplicate = [](const Item& a, const Item& b) {
    return Layout::KeyEq(a.key, b.key) && a.version == b.version;
  };
  out.erase(std::unique(out.begin() + base, out.end(), duplicate), out.end());
}

extern template class ChunkT<Int64Layout>;
extern template class ChunkT<ByteLayout>;

}  // namespace kiwi::core
