// The KiWi chunk (paper Algorithm 1, Figure 1).
//
// A chunk owns a contiguous key range [min_key, next->min_key) and stores its
// data in two arrays:
//   - `k`: cells forming an intra-chunk linked list sorted by
//     (key ascending, version descending, valPtr descending);
//   - `v`: the values cells point into (`valPtr`), preserving the paper's
//     indirection so that puts with equal {key, version} are tie-broken by
//     their fetch-and-added value location.
//
// A prefix of `k` (the *batched prefix*) is sorted and binary-searchable;
// later insertions link new cells into the list via bypasses, so searches are
// binary over the prefix + linear over the remainder.
//
// Each chunk carries a Pending Put Array (PPA) with one slot per thread.  A
// put publishes the cell it is inserting there *before* acquiring a version,
// which lets scans/gets help assign versions (§3.2) and lets rebalance freeze
// the chunk (§3.3.2 stage 2).  Slot state is a single 64-bit word packing
// {version:48, cellIdx:16} so the helping CAS covers both fields.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/config.h"
#include "common/marked_ptr.h"
#include "core/version.h"

namespace kiwi::reclaim {
class SlabPool;
}

namespace kiwi::core {

struct RebalanceObject;

// A chunk is one contiguous cache-aligned slab: the header below, then the
// cell array `k` (capacity + 1 entries, cell 0 a sentinel), then the value
// array `v` (capacity entries).  `k`/`v` are computed offsets into the
// slab, so creating or retiring a chunk is a single pool round trip instead
// of three heap allocations.  Construction goes through Create/Destroy —
// the constructor is private because a Chunk only makes sense inside its
// slab.
class alignas(kCacheLineSize) Chunk {
 public:
  enum class Status : std::uint32_t {
    kInfant,   // created by rebalance, immutable until normalize
    kNormal,   // mutable
    kFrozen,   // engaged in rebalance, immutable forever
    kSentinel  // the permanent list head; holds no data, never engaged
  };

  /// Terminator / "no cell" marker for intra-chunk list links.
  static constexpr std::int32_t kNullIdx = -1;

  // ---- PPA word packing: [version:48 | idx:16] -------------------------
  static constexpr std::uint64_t kPpaIdxMask = 0xFFFF;
  static constexpr std::uint32_t kPpaNoIdx = 0xFFFF;
  static constexpr Version kPpaVerBottom = 0;
  static constexpr Version kPpaVerFrozen = (std::uint64_t{1} << 48) - 1;
  static constexpr std::uint64_t kPpaIdle =
      (kPpaVerBottom << 16) | kPpaNoIdx;  // {⊥, ⊥}

  static constexpr std::uint64_t PackPpa(Version ver, std::uint32_t idx) {
    return (ver << 16) | (idx & kPpaIdxMask);
  }
  static constexpr Version PpaVer(std::uint64_t word) { return word >> 16; }
  static constexpr std::uint32_t PpaIdx(std::uint64_t word) {
    return static_cast<std::uint32_t>(word & kPpaIdxMask);
  }

  /// One entry of array `k`.
  struct Cell {
    Key key = 0;
    /// Written once by the owning put (copied from its PPA slot) before the
    /// cell is linked; read only through the PPA or after the linking CAS.
    Version version = kNoVersion;
    /// Index into `v`.  CAS target: a put that lost the {key, version} race
    /// redirects the winning cell to its (larger-indexed) value.
    std::atomic<std::int32_t> val_ptr{kNullIdx};
    /// Next cell in the intra-chunk list, kNullIdx at the tail.
    std::atomic<std::int32_t> next{kNullIdx};
  };

  /// An entry harvested from the chunk for rebalance or scan merging.
  struct Item {
    Key key;
    Version version;
    std::int32_t val_ptr;
    Value value;
  };

  /// The total order used everywhere: key ascending, version descending,
  /// valPtr descending (larger valPtr wins a {key, version} tie, §3.2).
  static bool ItemBefore(const Item& a, const Item& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.version != b.version) return a.version > b.version;
    return a.val_ptr > b.val_ptr;
  }

  /// Bytes of the slab backing a chunk of `capacity` data cells: header +
  /// (capacity + 1) cells + capacity values, in one allocation.
  static std::size_t SlabBytes(std::uint32_t capacity) {
    return sizeof(Chunk) + (capacity + 1) * sizeof(Cell) +
           capacity * sizeof(Value);
  }

  /// Creates a chunk with room for `capacity` data cells in a single slab
  /// drawn from `pool` (recycled from a retired chunk when possible).  Cell
  /// 0 is a list head sentinel, so `k` holds capacity + 1 cells.  `batched`
  /// (sorted by key asc, version desc) seeds the batched prefix; rebalance
  /// passes the compacted data here, the initial chunk passes nothing.
  static Chunk* Create(reclaim::SlabPool& pool, Key min_key,
                       std::uint32_t capacity, Chunk* parent, Status status,
                       std::span<const Item> batched = {});

  /// Destroys `chunk` and returns its slab to the pool it came from.  The
  /// EBR retire path calls this as its deleter, so a slab re-enters
  /// circulation only after every guard that could observe the chunk ends.
  static void Destroy(Chunk* chunk);

  // ---- immutable identity ---------------------------------------------
  const Key min_key;
  const std::uint32_t capacity;
  /// Trigger chunk of the rebalance that created this chunk (for infants).
  Chunk* const parent;

  // ---- shared mutable state -------------------------------------------
  std::atomic<Status> status;
  std::atomic<RebalanceObject*> ro{nullptr};
  /// Guards the retire/discard invariant: a chunk leaves the structure
  /// exactly once (EBR retire by its sector's splice winner, or plain
  /// delete of a never-published consensus-losing section).  A second
  /// attempt means two rebalance generations claimed the same chunk.
  std::atomic<bool> retired{false};
  /// Next chunk in the global list; the mark freezes it (rebalance stage 5).
  AtomicMarkedPtr<Chunk> next;
  /// Next free cell in `k` / value slot in `v`.  May exceed capacity; the
  /// allocation checks in Put handle overflow by rebalancing.
  std::atomic<std::uint32_t> k_counter;
  std::atomic<std::uint32_t> v_counter;
  /// Number of sorted data cells at the front of `k` (immutable).
  const std::uint32_t batched_count;
  /// steady_clock nanoseconds at Create; the chunk-health census reports
  /// list age distribution from this (plain field, no obs dependency).
  const std::uint64_t birth_ns;

  Cell* const k;   // into the slab; [0] = sentinel, data in [1, capacity]
  Value* const v;  // into the slab; data value slots [0, capacity)
  std::atomic<std::uint64_t> ppa[kMaxThreads];

  // ---- intra-chunk operations -----------------------------------------

  Chunk* Next() const { return next.Load().Ptr(); }

  /// True if `key` falls inside this chunk's range given its current next.
  bool CoversKey(Key key) const {
    if (key < min_key) return false;
    const Chunk* succ = Next();
    return succ == nullptr || key < succ->min_key;
  }

  /// Index of the last *batched-prefix* cell with key < `key` (possibly the
  /// cell-0 sentinel).  Starting point for list traversals.
  std::int32_t BatchedPredecessor(Key key) const;

  /// Walk the list for the cell with exactly {key, version}.  On miss,
  /// reports the insertion point: *pred is the cell after which {key,
  /// version} belongs and *succ the cell that currently follows it (the
  /// exact expected value for the linking CAS; kNullIdx at the tail).
  /// Returns kNullIdx on miss, the cell index on hit.
  std::int32_t FindCell(Key key, Version version, std::int32_t* pred,
                        std::int32_t* succ) const;

  /// FindCell starting the walk at cell `start` instead of the batched
  /// prefix.  `start` must be a linked cell with key strictly below `key`
  /// (or kNullIdx to fall back to BatchedPredecessor).  PutBatch threads
  /// the previous insertion's predecessor through here: batch keys ascend,
  /// so the insertion point only ever moves forward along the list.
  std::int32_t FindCellFrom(std::int32_t start, Key key, Version version,
                            std::int32_t* pred, std::int32_t* succ) const;

  /// Latest visible version of `key` with version <= `max_version`,
  /// considering both the linked list and versioned PPA entries
  /// (paper's findLatest).  Returns false if no such version exists.
  /// Tombstones are reported with found=true and is_tombstone=true.
  struct LatestResult {
    bool found = false;
    bool is_tombstone = false;
    Value value = 0;
    Version version = kNoVersion;
    std::int32_t val_ptr = kNullIdx;
  };
  LatestResult FindLatest(Key key, Version max_version) const;

  /// Paper's helpPendingPuts: install the current GV into every pending,
  /// versionless PPA entry whose key is within [from, to].
  void HelpPendingPuts(GlobalVersion& gv, Key from, Key to);

  /// Freeze every PPA slot that has no version yet (rebalance stage 2).
  /// Returns the number of CAS attempts that lost to a concurrent publish
  /// or help (contention telemetry; the rebalance caller accounts it).
  std::uint64_t FreezePpa();

  /// Allocated data-cell count (includes cells that lost races; an upper
  /// bound on live entries, used by the rebalance policy).
  std::uint32_t AllocatedCells() const {
    const std::uint32_t counter = k_counter.load(std::memory_order_acquire);
    return (counter > capacity ? capacity : counter - 1);
  }

  /// Approximate bytes owned by this chunk (memory-footprint bench).
  std::size_t MemoryFootprint() const;

  /// Harvest every list cell plus every *versioned* PPA entry, sorted by
  /// (key asc, version desc, valPtr desc) and deduplicated; used by
  /// rebalance's build stage and by tests.
  void CollectItems(std::vector<Item>& out) const;

  /// Append versioned PPA entries with key in [from, to] and version <=
  /// max_version to `out` (unsorted).  Scans use this to merge pending puts
  /// with the list; must run *before* the list pass (see FindLatest).
  void CollectPpaItems(std::vector<Item>& out, Key from, Key to,
                       Version max_version) const;

  friend class KiWiMap;

 private:
  Chunk(reclaim::SlabPool* pool, Key min_key, std::uint32_t capacity,
        Chunk* parent, Status status, std::span<const Item> batched);

  /// Drops the chunk's reference on its rebalance object, if engaged (see
  /// rebalance_object.h for the lifetime story).  Only Destroy calls this.
  ~Chunk();

  /// The pool the slab came from (and returns to in Destroy).
  reclaim::SlabPool* const pool_;
};

}  // namespace kiwi::core
