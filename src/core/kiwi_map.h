// KiWiMap — the paper's contribution: a linearizable ordered key-value map
// with wait-free gets and scans and lock-free puts (paper §3).
//
//   KiWiMap map;
//   map.Put(17, 1);
//   map.Scan(0, 100, [](Key k, Value v) { ... });   // atomic snapshot
//
// Design recap:
//  * Data lives in chunks (contiguous key ranges) strung on a sorted linked
//    list behind a lazy index; see chunk.h.
//  * Scans drive multi-versioning: a scan fetch-and-increments the global
//    version GV and reads at that version; puts reuse the current GV value,
//    overwriting same-version data in place, so version bookkeeping costs
//    fall on (long, rare) scans instead of (short, frequent) puts.
//  * Scans/gets help pending puts acquire versions through the per-chunk
//    PPA, making put ordering consistent across readers.
//  * A background-free rebalance procedure (triggered by puts, executed by
//    whoever trips it, helped by anyone who bumps into it) compacts, splits
//    and merges chunks in seven idempotent stages (§3.3.2).
//  * Disconnected chunks are reclaimed through epoch-based reclamation.
//
// The map is templated on a key/value Layout (core/layout.h):
// `KiWiMap` = KiWiMapT<Int64Layout> is the original fixed-width map (every
// trait call is an identity, so it compiles to the pre-template hot paths);
// KiWiMapT<ByteLayout> stores variable-length byte strings through per-chunk
// arenas and is surfaced to users as api::KiWiByteMap (src/api/byte_map.h).
//
// Thread safety: all public methods may be called from any number of threads
// concurrently (at most kMaxThreads distinct threads over the map lifetime
// at once).  Get/Scan are wait-free, Put/Remove lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/random.h"
#include "core/chunk.h"
#include "core/policy.h"
#include "core/rebalance_object.h"
#include "core/version.h"
#include "index/chunk_index.h"
#include "obs/report.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace kiwi::obs {
struct ChunkCensus;
class MetricsPump;
struct MetricsPumpOptions;
}  // namespace kiwi::obs

namespace kiwi::core {

/// Operational counters, exposed for tests, benches and curiosity.  A
/// digest of the per-thread obs::StatsRegistry (see src/obs/) kept for API
/// stability; new code should prefer DebugReport() / Observability().
/// All fields read zero in a KIWI_STATS=OFF build.
struct KiWiStats {
  std::uint64_t rebalances = 0;        // rebalance executions (incl. helpers)
  std::uint64_t rebalance_wins = 0;    // replace-stage CAS wins
  std::uint64_t put_restarts = 0;      // puts restarted by rebalance
  std::uint64_t chunks_created = 0;
  std::uint64_t chunks_retired = 0;
  std::uint64_t puts_piggybacked = 0;  // puts completed inside a rebalance
  std::uint64_t puts_helped = 0;       // version installed by a scan/get
};

template <typename Layout>
class KiWiMapT {
 public:
  // In-class spellings: inside this template, `Chunk`, `Psa` and `PsaEntry`
  // refer to this layout's instantiations (shadowing the int64 aliases), so
  // the implementation reads like the fixed-width original.
  using Chunk = ChunkT<Layout>;
  using PsaKey = typename Layout::PsaKey;
  using Psa = PsaT<PsaKey>;
  using PsaEntry = PsaEntryT<PsaKey>;
  using KeyView = typename Layout::KeyView;
  using ValueView = typename Layout::ValueView;
  using OwnedKey = typename Layout::OwnedKey;
  using OwnedValue = typename Layout::OwnedValue;
  /// What the collecting Scan / bulk-load ctor traffic in.  For int64 this
  /// is pair<Key, Value>, exactly as before; for bytes pair<string, string>.
  using Entry = std::pair<OwnedKey, OwnedValue>;

  explicit KiWiMapT(KiWiConfig config = {});

  /// Bulk-load construction: builds chunks directly from `sorted_entries`
  /// (strictly ascending keys, no tombstones) without going through Put —
  /// O(n) instead of O(n log n) with rebalance churn.  Useful for loading
  /// datasets before a benchmark or restoring a backup.
  explicit KiWiMapT(std::span<const Entry> sorted_entries,
                    KiWiConfig config = {});

  ~KiWiMapT();
  KiWiMapT(const KiWiMapT&) = delete;
  KiWiMapT& operator=(const KiWiMapT&) = delete;

  /// Insert or overwrite.  Lock-free.  `key` must be a user key (int64:
  /// >= kMinUserKey; bytes: non-empty) and `value` must not be the reserved
  /// tombstone (int64: kTombstoneValue; bytes: any value is legal).  For
  /// byte layouts key + value must fit Config().bytes.max_entry_bytes; the
  /// map copies both, so callers keep ownership of the viewed buffers.
  void Put(KeyView key, ValueView value);

  /// Insert or overwrite every pair of `entries` — equivalent to calling
  /// Put for each in order (duplicate keys: the last occurrence wins), but
  /// amortized: the batch is sorted once, the chunk list is walked once,
  /// and each chunk absorbs its covered run in one pass (two index claims
  /// per run instead of per key).  Long presorted runs are installed by
  /// building replacement chunks directly from the batch through the
  /// rebalance machinery, bypassing the per-key PPA round trip entirely.
  ///
  /// NOT atomic as a whole: each entry linearizes individually somewhere
  /// inside the call, exactly as a sequence of Puts would, so concurrent
  /// scans may observe any prefix-consistent subset.  Lock-free.  Keys and
  /// values obey the same rules as Put.  See docs/INGEST.md for the full
  /// walkthrough.
  void PutBatch(std::span<const Entry> entries);

  /// Remove `key` (puts the tombstone, paper's put(⊥)).  Lock-free.
  void Remove(KeyView key);

  /// Latest value of `key`, or nullopt.  Wait-free, linearizable.
  std::optional<OwnedValue> Get(KeyView key);

  /// Atomic snapshot of [from_key, to_key] (inclusive), in ascending key
  /// order.  Wait-free, linearizable.  Returns the number of pairs yielded.
  /// The views handed to `yield` are valid only for the duration of the
  /// callback (they point into chunk storage pinned by the scan's guard).
  std::size_t Scan(KeyView from_key, KeyView to_key,
                   const std::function<void(KeyView, ValueView)>& yield);

  /// Convenience overload collecting into a vector (cleared first).
  std::size_t Scan(KeyView from_key, KeyView to_key, std::vector<Entry>& out);

  /// Atomic snapshot of every key at or above `from_key` — a Scan with no
  /// upper bound.  Byte keys have no maximum key, so this is the only way
  /// to scan a byte map to the end; for int64 it equals Scan(from_key,
  /// kMaxUserKey, ...).
  std::size_t ScanFrom(KeyView from_key,
                       const std::function<void(KeyView, ValueView)>& yield);

  /// A consistent read view: one scan read-point held open across any
  /// number of gets and range reads (an extension the paper's design makes
  /// natural — a snapshot IS a pinned PSA entry).  All queries through one
  /// Snapshot observe the same linearization point; writers proceed
  /// unimpeded but their updates are invisible to the view.  The pinned
  /// version blocks compaction of data the view may still need, so keep
  /// snapshots shorter than, say, minutes under heavy overwrite load.
  ///
  /// Thread safety: a Snapshot must be created and destroyed by the same
  /// thread and used only by it; each thread may hold up to
  /// kMaxSnapshotsPerThread simultaneously open snapshots per map.
  class Snapshot {
   public:
    explicit Snapshot(KiWiMapT& map);
    ~Snapshot();
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    /// Value of `key` as of the snapshot's read point.
    std::optional<OwnedValue> Get(KeyView key);

    /// Range read at the snapshot's read point.
    std::size_t Scan(KeyView from_key, KeyView to_key,
                     const std::function<void(KeyView, ValueView)>& yield);
    std::size_t Scan(KeyView from_key, KeyView to_key,
                     std::vector<Entry>& out);

    /// The pinned version (diagnostics).
    Version ReadPoint() const { return read_point_; }

   private:
    KiWiMapT& map_;
    Version read_point_;
    std::uint64_t seq_;
    std::size_t slot_;
    std::size_t sub_slot_;
  };

  /// Simultaneously open Snapshot views allowed per thread.
  static constexpr std::size_t kMaxSnapshotsPerThread = 4;

  /// Number of live keys — O(n), implemented as a full scan.
  std::size_t Size();

  /// Approximate bytes held by chunks + index (Figure 5 metric).
  std::size_t MemoryFootprint();

  /// Number of chunks currently in the list (incl. sentinel).  O(#chunks).
  std::size_t ChunkCount();

  /// Snapshot of operational counters (sums over threads; approximate
  /// under concurrency).
  KiWiStats Stats() const;

  /// Full observability snapshot: counters, latency histograms and
  /// structural-health gauges, renderable as text or one-line JSON.  See
  /// docs/OBSERVABILITY.md.  Concurrent callers get a consistent-enough
  /// estimate; quiescent callers exact numbers.
  obs::DebugReport DebugReport();

  /// Chunk-health census: one O(chunks) epoch-guarded walk of the list,
  /// reporting per-chunk fill factor, sorted-prefix vs linked-suffix ratio,
  /// arena fill (byte layouts), pending-rebalance state and age, aggregated
  /// into distribution histograms.  Live regardless of KIWI_STATS (like the
  /// gauges).  Defined in obs/census.cpp so core objects carry no obs
  /// references.
  obs::ChunkCensus Census();

  /// Start the continuous-telemetry pump: a background thread snapshotting
  /// DebugReport + Census every `options.interval`, computing deltas/rates,
  /// appending JSONL and serving Prometheus text exposition.  At most one
  /// pump per map; returns false if one is already running.  Defined in
  /// obs/export.cpp; see docs/OBSERVABILITY.md ("Continuous telemetry").
  bool StartMetricsPump(const obs::MetricsPumpOptions& options);

  /// StartMetricsPump configured from KIWI_METRICS / KIWI_METRICS_PROM
  /// (e.g. KIWI_METRICS=1s:/tmp/kiwi.jsonl).  No-op (false) when unset.
  bool StartMetricsPumpFromEnv();

  /// Stop and join the pump, flushing a final sample.  Safe to call with no
  /// pump running; the destructor calls it first thing.
  void StopMetricsPump();

#if KIWI_OBS_ENABLED
  /// Direct access to the counter shards and latency histograms (tests,
  /// custom exporters).  Absent in KIWI_STATS=OFF builds.
  obs::StatsRegistry& Observability() const { return obs_; }
#endif

  /// Structural report over the current chunk list (quiescent callers get
  /// exact numbers; concurrent callers a consistent-enough estimate).
  struct StructureReport {
    std::size_t data_chunks = 0;
    std::size_t allocated_cells = 0;   // cells handed out across chunks
    std::size_t batched_cells = 0;     // cells in sorted prefixes
    double avg_fill = 0;               // allocated / capacity, averaged
    double avg_batched_ratio = 0;      // batched / allocated, averaged
  };
  StructureReport Report();

  const KiWiConfig& Config() const { return policy_.config(); }

  /// Per-chunk arena bytes for this layout (0 for fixed-width layouts).
  std::uint32_t ArenaCapacity() const { return arena_capacity_; }

  /// Test/diagnostic hook: run a full rebalance over every chunk, forcing
  /// compaction of obsolete versions.  Quiescent callers only.
  void CompactAll();

  /// Validate structural invariants (sorted chunk list, in-chunk order,
  /// ranges).  Quiescent callers only; aborts on violation.  Test hook.
  void CheckInvariants();

  /// Quiescent-only: release every retired chunk (the paper's "full GC"
  /// point before measuring RAM, Figure 5).  Retired slabs land in the pool
  /// as reusable stock; use Pool().GetStats() to separate live from pooled
  /// bytes, or TrimPool() to hand the stock back to the OS.
  void DrainReclamation() { ebr_.CollectAllQuiescent(); }

  /// Quiescent-only: release the pool's idle slabs to the OS.
  std::size_t TrimPool() { return pool_.Trim(); }

  /// Reclamation diagnostics.
  const reclaim::Ebr& Reclaimer() const { return ebr_; }

  /// Slab-pool diagnostics (hit/miss counters, live vs pooled bytes).
  const reclaim::SlabPool& Pool() const { return pool_; }

 private:
  using RebalanceObject = RebalanceObjectT<Layout>;
  using Item = typename Chunk::Item;

  /// Shared body of Put and Remove (a remove is a put of the tombstone).
  void PutImpl(KeyView key, ValueView value);

  /// Shared body of the bounded/unbounded scans.  `to_key` == nullptr
  /// means "no upper bound" (ScanFrom); the PSA publication covers the
  /// layout's whole upper prefix domain in that case.
  std::size_t ScanImpl(KeyView from_key, const KeyView* to_key,
                       const std::function<void(KeyView, ValueView)>& yield);

  /// PutBatch's amortized per-op path: install a sorted run of distinct
  /// keys (all covered by `chunk`) through the normal PPA protocol, but
  /// with the cell/value-slot claims batched into two fetch-adds and the
  /// intra-chunk insertion point carried forward between keys.  Returns
  /// how many leading entries were installed; fewer than run.size() means
  /// the chunk filled or froze mid-run and the caller must re-locate.
  /// Items carry {key, value} views only (version/val_ptr ignored).
  std::size_t PutRunPerOp(Chunk* chunk, std::span<const Item> run,
                          std::size_t slot);

  struct BuiltSection {
    Chunk* first = nullptr;
    Chunk* last = nullptr;
    std::uint32_t count = 0;
    std::uint32_t puts_included = 0;
  };

  /// Chunk that currently covers `key` (index lookup + list walk).
  /// Must be called under an EBR guard.
  Chunk* LocateChunk(KeyView key) const;

  /// Paper's checkRebalance (Algorithm 3).  Returns true if the put must be
  /// restarted or was completed; *put_done reports completion (piggyback).
  bool CheckRebalance(Chunk* chunk, KeyView key, ValueView value,
                      bool* put_done);

  /// Paper's rebalance (Algorithm 4 stages 1-5 + normalize).  Returns true
  /// iff this call's (key, value) was inserted by the rebalance.  Thin
  /// wrapper over the span form; the piggyback config gate lives here.
  bool Rebalance(Chunk* chunk, KeyView key, ValueView value, bool has_put);

  /// Span form: runs the full rebalance of `chunk`'s sector and merges
  /// `puts` (sorted by key, distinct keys; only {key, value} views are
  /// read) into the replacement section during the build stage.  Returns
  /// the number of entries installed — every put covered by the sector
  /// when our built section won consensus, 0 otherwise (the caller
  /// re-locates and retries; each loss implies another thread's section
  /// was spliced, so retries are lock-free).  Entries linearize at the
  /// splice CAS with the GV current at build time, exactly like the
  /// single-put piggyback.
  std::size_t Rebalance(Chunk* chunk, std::span<const Item> puts);

  /// Stage 1: agree on the engaged set; returns the rebalance object and
  /// the last engaged chunk.
  RebalanceObject* Engage(Chunk* chunk, Chunk** last_out);

  /// Recompute the last engaged chunk of a sealed rebalance object.
  Chunk* FindLastEngaged(RebalanceObject* ro) const;

  /// Stage 3: minimal read point any pending/future scan may use, helping
  /// pending scans whose range overlaps [from, to_exclusive) acquire
  /// versions.  `bounded` = false means the range extends to +inf.
  Version ComputeMinVersion(KeyView from, KeyView to_exclusive, bool bounded);

  /// Stage 4: build the replacement section from the engaged chunks,
  /// merging the sector-covered subset of `puts` (sorted, distinct keys)
  /// into the compacted data at the current GV.
  BuiltSection BuildSection(RebalanceObject* ro, Chunk* last,
                            Version min_version, std::span<const Item> puts);

  /// Stage 5: consensus + splice.  Returns true once the (agreed)
  /// replacement section is reachable; *i_won reports whether this thread's
  /// splice CAS succeeded (the winner retires the old section).
  bool Replace(RebalanceObject* ro, Chunk* last, bool* i_won);

  /// Stages 6-7 (paper's normalize): fix the index, then flip infants to
  /// normal.
  void Normalize(RebalanceObject* ro);

  /// Find the live predecessor of `target` in the chunk list, or nullptr if
  /// `target` is no longer reachable.
  Chunk* FindListPredecessor(Chunk* target) const;

  /// Destroy a built-but-never-published section (consensus loser).
  static void DiscardSection(Chunk* first);

  /// Emit one chunk's contribution to a scan (`to` == nullptr: unbounded).
  void EmitChunkRange(Chunk* chunk, KeyView from, const KeyView* to,
                      Version read_point,
                      const std::function<void(KeyView, ValueView)>& yield,
                      std::size_t* emitted);

  /// Compact a sorted, deduplicated item run according to `min_version`
  /// (keep everything newer, plus the newest version at-or-below it unless
  /// that is a tombstone).  Appends survivors of [begin, end) to `out`.
  static void CompactKeyRun(const std::vector<Item>& items, std::size_t begin,
                            std::size_t end, Version min_version,
                            std::vector<Item>& out);

  Xoshiro256& ThreadRng();

  RebalancePolicy policy_;
  /// Slab stock for chunks and rebalance objects.  Declared before ebr_ so
  /// it outlives it: EBR's destructor drains retired chunks, whose deleters
  /// return slabs here.
  mutable reclaim::SlabPool pool_;
  mutable reclaim::Ebr ebr_;
  index::ChunkIndexT<Layout> index_;
  GlobalVersion gv_;
  Psa psa_;
  /// Snapshot views pin their read points here, separately from transient
  /// scans, so a Scan on the same thread cannot clobber an open Snapshot's
  /// pin.  One array per snapshot sub-slot; ComputeMinVersion consults all.
  Psa snapshot_psa_[kMaxSnapshotsPerThread];
  Chunk* sentinel_;  // permanent list head, never engaged
  /// Arena bytes per chunk (chunk_capacity * bytes.arena_bytes_per_cell for
  /// byte layouts, 0 for fixed-width) and the clamped per-entry byte cap.
  std::uint32_t arena_capacity_ = 0;
  std::uint32_t max_entry_bytes_ = 0;

  /// Owned by Start/StopMetricsPump (both defined in obs/export.cpp, so
  /// this stays an opaque pointer here and core objects stay obs-free).
  obs::MetricsPump* pump_ = nullptr;

#if KIWI_OBS_ENABLED
  // Counters (sharded by thread slot, off the hot path's shared state) and
  // latency histograms.  Compiled out entirely with KIWI_STATS=OFF.
  mutable obs::StatsRegistry obs_;
#endif

  friend class KiWiTestPeer;
  // Directed fuzz scenarios (src/fuzz/scenario.cpp) drive Rebalance at
  // hand-built chunk layouts to pin consensus races deterministically.
  friend class FuzzScenarioPeer;
};

/// The fixed-width map — the original spelling and compiled hot paths.
using KiWiMap = KiWiMapT<Int64Layout>;

}  // namespace kiwi::core

// Member definitions (all but the obs-bound members, which live in
// src/obs/*.cpp so core objects carry no obs code):
#include "core/kiwi_map_impl.h"   // IWYU pragma: keep
#include "core/rebalance_impl.h"  // IWYU pragma: keep

namespace kiwi::core {
extern template class KiWiMapT<Int64Layout>;
extern template class KiWiMapT<ByteLayout>;
}  // namespace kiwi::core
