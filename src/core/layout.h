// Key/value layout traits: the one place where the core templates learn how
// keys and values are represented inside a chunk.
//
// The core (ChunkT / KiWiMapT / ChunkIndexT) is templated on a Layout type
// with two concrete instances:
//
//   - Int64Layout: the original fixed-width map.  Cell keys and stored
//     values ARE the int64 key/value; every trait call is an identity or a
//     plain integer compare, so the instantiation compiles to the same hot
//     paths as the pre-template code (no arena, no indirection).
//   - ByteLayout: variable-length byte strings.  The cell array stays
//     fixed-width — a cell key is {8-byte normalized prefix, offset, length}
//     and a stored value is {offset, length}, both pointing into a per-chunk
//     append-only byte arena that lives at the tail of the chunk's slab.
//     Comparisons resolve on the prefix first and fall through to a memcmp
//     of the arena bytes only on a prefix tie.
//
// The normalized prefix is the key's first 8 bytes, big-endian packed and
// zero padded, so unsigned 64-bit compare order == lexicographic byte order
// on the truncation.  Two facts the fast paths rely on:
//   * prefix(a) <  prefix(b)  =>  a < b            (decide without memcmp)
//   * prefix(a) == prefix(b)  =>  a and b agree on their first
//     min(|a|, |b|, 8) bytes  =>  if either is <= 8 bytes long, the shorter
//     key is a prefix of the other and length decides; otherwise only the
//     suffixes from byte 8 need a memcmp.
//
// Key domain (ByteLayout): the empty string is reserved as the sentinel
// chunk's min_key (it sorts before every user key, playing the role
// kMinKeySentinel plays for int64); user keys must be non-empty, making
// "\x00" the smallest user key.  There is no finite maximum key — the few
// places that need an upper bound (PSA ranges) work in the prefix domain,
// where UINT64_MAX is a safe +inf.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/config.h"

namespace kiwi::core {

/// Sizing knobs for the ByteLayout arena, carried by KiWiConfig.
struct ByteConfig {
  /// Arena capacity per chunk = chunk_capacity * this.  64 bytes per cell
  /// comfortably fits short keys plus small document values; raise it for
  /// blob-heavy workloads (a full arena just triggers rebalance earlier).
  std::uint32_t arena_bytes_per_cell = 64;
  /// Hard cap on key bytes + value bytes for a single entry, checked at
  /// Put.  The map additionally clamps it to a quarter of the per-chunk
  /// arena so one entry can never render a rebalance target unsatisfiable.
  std::uint32_t max_entry_bytes = 4096;
};

// ---- Int64Layout ---------------------------------------------------------

struct Int64Layout {
  static constexpr bool kHasArena = false;

  using KeyView = Key;      // how callers pass keys
  using OwnedKey = Key;     // how long-lived copies (index nodes) store them
  using ValueView = Value;  // how callers pass / scans yield values
  using OwnedValue = Value; // what Get() hands back
  using CellKey = Key;      // what a cell stores
  using StoredValue = Value;// what a `v` slot stores
  using PsaKey = Key;       // PSA range bound domain
  using Probe = Key;        // per-lookup precomputed compare state

  static constexpr CellKey SentinelCellKey() { return kMinKeySentinel; }
  static constexpr KeyView SentinelMinKey() { return kMinKeySentinel; }
  static constexpr KeyView MinUserKey() { return kMinUserKey; }
  static bool IsUserKey(KeyView key) { return key >= kMinUserKey; }

  static bool KeyLess(KeyView a, KeyView b) { return a < b; }
  static bool KeyLeq(KeyView a, KeyView b) { return a <= b; }
  static bool KeyEq(KeyView a, KeyView b) { return a == b; }

  static Probe MakeProbe(KeyView key) { return key; }
  /// <0 / 0 / >0 as the cell key orders before / equal / after the probe.
  static int CompareCell(const char* /*arena*/, const CellKey& cell,
                         const Probe& probe) {
    return cell < probe ? -1 : (probe < cell ? 1 : 0);
  }
  static KeyView CellKeyView(const char* /*arena*/, const CellKey& cell) {
    return cell;
  }

  static constexpr ValueView TombstoneValue() { return kTombstoneValue; }
  static bool IsTombstone(ValueView value) { return value == kTombstoneValue; }
  static ValueView LoadValue(const char* /*arena*/, const StoredValue& sv) {
    return sv;
  }
  static OwnedValue OwnValue(ValueView value) { return value; }
  static OwnedKey OwnKey(KeyView key) { return key; }
  static KeyView ViewKey(const OwnedKey& key) { return key; }

  /// Arena bytes an entry consumes (key + value; tombstones carry no value
  /// bytes).  Zero for fixed-width layouts.
  static std::size_t EntryArenaBytes(KeyView, ValueView) { return 0; }
  static std::size_t KeyArenaBytes(KeyView) { return 0; }

  // PSA ranges are exact for int64.
  static PsaKey PsaLow(KeyView key) { return key; }
  static PsaKey PsaHigh(KeyView key) { return key; }
  static constexpr PsaKey PsaMin() { return kMinUserKey; }
  static constexpr PsaKey PsaMax() { return kMaxUserKey; }
  /// May the published scan range [entry_from, entry_to] intersect the
  /// section key range [from, to_exclusive)?  (to_exclusive applies only
  /// when `bounded`.)  Must never report false for a real intersection;
  /// int64 answers exactly.
  static bool PsaOverlaps(KeyView from, bool bounded, KeyView to_exclusive,
                          PsaKey entry_from, PsaKey entry_to) {
    return from <= entry_to && (!bounded || entry_from < to_exclusive);
  }

  static std::uint64_t TraceKey(KeyView key) {
    return static_cast<std::uint64_t>(key);
  }
  static std::uint64_t TraceValue(ValueView value) {
    return static_cast<std::uint64_t>(value);
  }
  static ValueView ViewValue(const OwnedValue& value) { return value; }
  static constexpr const char* Name() { return "int64"; }
};

// ---- ByteLayout ----------------------------------------------------------

struct ByteLayout {
  static constexpr bool kHasArena = true;

  using KeyView = std::string_view;
  using OwnedKey = std::string;
  using ValueView = std::string_view;
  using OwnedValue = std::string;
  using PsaKey = std::uint64_t;  // normalized prefixes

  struct CellKey {
    std::uint64_t prefix = 0;  // big-endian first-8-bytes, zero padded
    std::uint32_t off = 0;     // key bytes at arena[off, off + len)
    std::uint32_t len = 0;
  };
  struct StoredValue {
    std::uint32_t off = 0;  // value bytes at arena[off, off + len)
    std::uint32_t len = 0;  // kTombstoneLen marks a tombstone record
  };
  /// Length sentinel for tombstone records (no arena bytes consumed).
  static constexpr std::uint32_t kTombstoneLen = 0xFFFFFFFFu;

  struct Probe {
    std::uint64_t prefix;
    std::string_view key;
  };

  static std::uint64_t MakePrefix(KeyView key) {
    if (key.size() >= 8) {
      std::uint64_t raw;
      std::memcpy(&raw, key.data(), 8);
      // The prefix is the first 8 key bytes in big-endian order, so the
      // memcpy'd word only needs swapping on little-endian hosts.
      if constexpr (std::endian::native == std::endian::big) return raw;
      return __builtin_bswap64(raw);
    }
    std::uint64_t prefix = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      prefix |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(key[i]))
                << (56 - 8 * i);
    }
    return prefix;
  }

  static constexpr CellKey SentinelCellKey() { return CellKey{}; }  // ""
  static constexpr KeyView SentinelMinKey() { return KeyView(); }   // ""
  static constexpr KeyView MinUserKey() { return KeyView("\0", 1); }
  static bool IsUserKey(KeyView key) { return !key.empty(); }

  static bool KeyLess(KeyView a, KeyView b) { return a < b; }
  static bool KeyLeq(KeyView a, KeyView b) { return a <= b; }
  static bool KeyEq(KeyView a, KeyView b) { return a == b; }

  static Probe MakeProbe(KeyView key) { return Probe{MakePrefix(key), key}; }
  static int CompareCell(const char* arena, const CellKey& cell,
                         const Probe& probe) {
    if (cell.prefix != probe.prefix) {
      return cell.prefix < probe.prefix ? -1 : 1;
    }
    // Prefix tie: the first min(|cell|, |probe|, 8) bytes agree, so when
    // either side fits the prefix entirely, length decides; otherwise only
    // the suffixes past byte 8 need the memcmp.
    const std::size_t probe_len = probe.key.size();
    if (cell.len > 8 && probe_len > 8) {
      const std::size_t n = (cell.len < probe_len ? cell.len : probe_len) - 8;
      const int c = std::memcmp(arena + cell.off + 8, probe.key.data() + 8, n);
      if (c != 0) return c < 0 ? -1 : 1;
    }
    if (cell.len == probe_len) return 0;
    return cell.len < probe_len ? -1 : 1;
  }
  static KeyView CellKeyView(const char* arena, const CellKey& cell) {
    return KeyView(arena + cell.off, cell.len);
  }

  static ValueView TombstoneValue() { return ValueView(&kTombTag, 0); }
  /// Tombstones are tagged by identity (the view's data pointer), so an
  /// empty *user* value stays a legal, distinct value.
  static bool IsTombstone(ValueView value) { return value.data() == &kTombTag; }
  static ValueView LoadValue(const char* arena, const StoredValue& sv) {
    if (sv.len == kTombstoneLen) return TombstoneValue();
    return ValueView(arena + sv.off, sv.len);
  }
  static OwnedValue OwnValue(ValueView value) { return OwnedValue(value); }
  static OwnedKey OwnKey(KeyView key) { return OwnedKey(key); }
  static KeyView ViewKey(const OwnedKey& key) { return key; }

  static std::size_t EntryArenaBytes(KeyView key, ValueView value) {
    return key.size() + (IsTombstone(value) ? 0 : value.size());
  }
  static std::size_t KeyArenaBytes(KeyView key) { return key.size(); }

  // PSA ranges are published as prefixes — conservative, never lossy: a
  // range check in the prefix domain can claim a spurious overlap (forcing
  // an unnecessary help) but never miss a real one.
  static PsaKey PsaLow(KeyView key) { return MakePrefix(key); }
  static PsaKey PsaHigh(KeyView key) { return MakePrefix(key); }
  static constexpr PsaKey PsaMin() { return 0; }
  static constexpr PsaKey PsaMax() { return ~std::uint64_t{0}; }
  static bool PsaOverlaps(KeyView from, bool bounded, KeyView to_exclusive,
                          PsaKey entry_from, PsaKey entry_to) {
    // key <= k for all scanned k => prefix(key) <= entry_to is necessary
    // for overlap; distinct keys share prefixes, so ties stay "overlaps".
    return MakePrefix(from) <= entry_to &&
           (!bounded || entry_from <= MakePrefix(to_exclusive));
  }

  static std::uint64_t TraceKey(KeyView key) { return MakePrefix(key); }
  static std::uint64_t TraceValue(ValueView value) {
    return IsTombstone(value) ? ~std::uint64_t{0} : value.size();
  }
  static ValueView ViewValue(const OwnedValue& value) { return value; }
  static constexpr const char* Name() { return "bytes"; }

 private:
  inline static const char kTombTag = '\0';
};

}  // namespace kiwi::core
