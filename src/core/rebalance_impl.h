// KiWi rebalancing (paper §3.3, Algorithms 3-4): the seven idempotent stages
// that compact, split and merge chunks while puts, gets and scans run.
//
//   1. Engage     — consensus (via RebalanceObject) on the chunk sector.
//   2. Freeze     — make engaged chunks immutable (status + PPA slots).
//   3. MinVersion — pick the oldest read point any scan may still need,
//                   helping pending scans acquire versions.
//   4. Build      — clone live data into fresh infant chunks.
//   5. Replace    — splice the new sector into the list (mark, then CAS).
//   6. Index      — lazily unindex old chunks / index new ones.
//   7. Normalize  — flip infants to normal, re-enabling puts.
//
// Every stage is idempotent, so any thread that bumps into an in-flight
// rebalance can re-run it from the top (lock freedom: progress even if the
// original thread stalls).
//
// Two deliberate deviations from the paper's pseudocode (see DESIGN.md §2):
//  * completion is recorded in the rebalance object (`done`) instead of the
//    `pred.next.parent = C` test, which misfires once replacement chunks are
//    themselves replaced; and the replacement *section* is agreed through a
//    CAS on `ro->replacement`, so helpers splice one agreed section rather
//    than racing distinct clones (this also makes put piggybacking sound);
//  * a tombstone is dropped only when its version is at or below the minimal
//    read point — the literal pseudocode can drop a value a pending scan
//    still needs.
//
// Included by kiwi_map.h only; see kiwi_map_impl.h for the doctrine.
#pragma once

#include <algorithm>
#include <iterator>
#include <limits>

#include "common/assert.h"
#include "common/test_hooks.h"
#include "common/thread_registry.h"
#include "core/kiwi_map.h"
#include "obs/trace.h"

namespace kiwi::core {

template <typename Layout>
bool KiWiMapT<Layout>::CheckRebalance(Chunk* chunk, KeyView key,
                                      ValueView value, bool* put_done) {
  *put_done = false;
  if (chunk->status.load(std::memory_order_acquire) ==
      Chunk::Status::kInfant) {
    // The chunk is not yet writable; finish its parent's rebalance (stages
    // 6-7 only — reachability implies the replace stage completed) and
    // restart the put.
    RebalanceObject* ro = chunk->parent->ro.load(std::memory_order_acquire);
    KIWI_ASSERT(ro != nullptr, "infant chunk without a parent rebalance");
    Normalize(ro);
    return true;
  }
  const std::uint32_t allocated = chunk->AllocatedCells();
  bool full =
      chunk->k_counter.load(std::memory_order_acquire) > chunk->capacity ||
      chunk->v_counter.load(std::memory_order_acquire) >= chunk->capacity;
  if constexpr (Layout::kHasArena) {
    full = full || chunk->arena_used.load(std::memory_order_acquire) >=
                       chunk->arena_capacity;
  }
  const bool frozen = chunk->status.load(std::memory_order_acquire) ==
                      Chunk::Status::kFrozen;
  if (full || frozen ||
      policy_.ShouldTrigger(allocated, chunk->batched_count, ThreadRng())) {
    *put_done = Rebalance(chunk, key, value, /*has_put=*/true);
    if (*put_done) KIWI_OBS_INC(obs_, puts_piggybacked);
    return true;
  }
  return false;
}

template <typename Layout>
bool KiWiMapT<Layout>::Rebalance(Chunk* chunk, KeyView key, ValueView value,
                                 bool has_put) {
  // The piggyback gate lives here so that PutBatch's bulk path (the span
  // form below) is always allowed to carry its run through the build.  The
  // carried put travels as an Item so the value's tombstone identity (byte
  // layouts tag tombstones by pointer, see Layout::IsTombstone) survives.
  const Item item{key, kNoVersion, 0, value};
  const bool piggyback = has_put && policy_.config().enable_put_piggyback;
  const std::span<const Item> puts =
      piggyback ? std::span<const Item>(&item, 1) : std::span<const Item>();
  return Rebalance(chunk, puts) > 0;
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::Rebalance(Chunk* chunk,
                                        std::span<const Item> puts) {
  reclaim::EbrGuard guard(ebr_);
  KIWI_OBS_INC(obs_, rebalances);
  KIWI_OBS_TIMER(obs_, obs::Latency::kRebalance, whole_timer);
  KIWI_TRACE(kRebStart, reinterpret_cast<std::uintptr_t>(chunk), puts.size());

  // ---- stage 1: engage ------------------------------------------------
  Chunk* last = nullptr;
  RebalanceObject* ro;
  {
    KIWI_OBS_TIMER(obs_, obs::Latency::kRebalanceEngage, stage_timer);
    ro = Engage(chunk, &last);
  }
  if (ro == nullptr) {
    KIWI_TRACE(kRebDone, 0, 0);  // chunk already replaced; caller restarts
    return 0;
  }
  KIWI_TRACE(kRebEngage, reinterpret_cast<std::uintptr_t>(ro),
             reinterpret_cast<std::uintptr_t>(last));

  // ---- stage 2: freeze ------------------------------------------------
  {
    KIWI_OBS_TIMER(obs_, obs::Latency::kRebalanceFreeze, stage_timer);
    std::uint64_t frozen = 0;
    for (Chunk* c = ro->first;; c = c->Next()) {
      // Plain store, as in the paper: overwriting kInfant or kNormal with
      // kFrozen is exactly the intent, and stage 7's CAS(infant -> normal)
      // fails harmlessly afterwards.
      c->status.store(Chunk::Status::kFrozen, std::memory_order_seq_cst);
      // FreezePpa must run even when stats are compiled out (KIWI_OBS_ADD
      // drops its argument unevaluated), so call it outside the macro.
      const std::uint64_t ppa_retries = c->FreezePpa();
      KIWI_OBS_ADD(obs_, freeze_cas_retries, ppa_retries);
      (void)ppa_retries;  // silence -Wunused in KIWI_STATS=OFF builds
      ++frozen;
      if (c == last) break;
    }
    KIWI_TRACE(kRebFreeze, reinterpret_cast<std::uintptr_t>(ro), frozen);
  }

  TestHooks::Run(TestHooks::rebalance_after_freeze);

  // ---- stages 3-4: minimal version + build ------------------------------
  // The sector's key range is [first.minKey, succ.minKey); succ's minKey is
  // invariant even if the successor chunk itself gets replaced (replacement
  // heads inherit minKey), so this bound is stable.
  Version min_version;
  BuiltSection mine;
  {
    KIWI_OBS_TIMER(obs_, obs::Latency::kRebalanceBuild, stage_timer);
    Chunk* succ = last->Next();
    const KeyView range_from = ro->first->MinKey();
    const KeyView range_to = succ != nullptr ? succ->MinKey() : KeyView{};
    min_version =
        ComputeMinVersion(range_from, range_to, /*bounded=*/succ != nullptr);
    KIWI_TRACE(kRebMinVersion, reinterpret_cast<std::uintptr_t>(ro),
               min_version);
    mine = BuildSection(ro, last, min_version, puts);
    KIWI_TRACE(kRebBuild, reinterpret_cast<std::uintptr_t>(ro), mine.count);
  }

  // ---- stage 5: consensus + splice --------------------------------------
  bool consensus_winner = false;
  bool splice_winner = false;
  {
    KIWI_OBS_TIMER(obs_, obs::Latency::kRebalanceReplace, stage_timer);
    Chunk* expected_replacement = nullptr;
    consensus_winner = ro->replacement.compare_exchange_strong(
        expected_replacement, mine.first, std::memory_order_seq_cst);
    if (!consensus_winner) {
      DiscardSection(mine.first);  // never published
    }
    TestHooks::Run(TestHooks::replace_before_splice);
    Replace(ro, last, &splice_winner);
    KIWI_TRACE(kRebReplace, reinterpret_cast<std::uintptr_t>(ro),
               (static_cast<std::uint64_t>(consensus_winner) << 1) |
                   static_cast<std::uint64_t>(splice_winner));
  }

  // ---- stages 6-7 -------------------------------------------------------
  {
    KIWI_OBS_TIMER(obs_, obs::Latency::kRebalanceIndex, stage_timer);
    Normalize(ro);
  }

  if (splice_winner) {
    KIWI_OBS_INC(obs_, rebalance_wins);
    // Exactly one thread retires the old sector; concurrent readers inside
    // it are protected by their EBR guards.  The rebalance object itself is
    // reference-counted by the engaged chunks and dies with the last of
    // them (an orphaned chunk may legitimately outlive this rebalance).
    Chunk* c = ro->first;
    while (true) {
      Chunk* next = c->Next();
      KIWI_ASSERT(next != nullptr || c == last,
                  "retire walk fell off the list before reaching last — "
                  "helpers disagreed on the engaged sector");
      // Our own Replace call flagged the sector when its splice CAS won.
      KIWI_ASSERT(c->retired.load(std::memory_order_relaxed),
                  "splice winner retiring a chunk it never flagged");
      // The deleter returns the slab to the pool; EBR's grace period is
      // what makes the recycled slab safe to reissue.
      ebr_.Retire(
          c,
          [](void* chunk_ptr) {
            Chunk::Destroy(static_cast<Chunk*>(chunk_ptr));
          },
          c->MemoryFootprint());
      KIWI_OBS_INC(obs_, chunks_retired);
      if (c == last) break;
      c = next;
    }
  }

  KIWI_TRACE(kRebDone, reinterpret_cast<std::uintptr_t>(ro),
             (static_cast<std::uint64_t>(consensus_winner) << 1) |
                 static_cast<std::uint64_t>(splice_winner));
  // Only the consensus winner's puts were published; a loser's section (and
  // the puts merged into it) was discarded, so its caller must retry them.
  return consensus_winner ? mine.puts_included : 0;
}

template <typename Layout>
auto KiWiMapT<Layout>::Engage(Chunk* chunk, Chunk** last_out)
    -> RebalanceObject* {
  // A retired chunk was spliced out by a finished rebalance; the caller
  // reached it through a stale pointer and must restart its traversal.
  if (chunk->retired.load(std::memory_order_acquire)) return nullptr;
  RebalanceObject* ro = nullptr;
  while (true) {
    RebalanceObject* existing = chunk->ro.load(std::memory_order_acquire);
    if (existing != nullptr && existing->done.load(std::memory_order_acquire)) {
      // The chunk's rebalance finished.  Normally that means the chunk was
      // replaced and the caller should restart — but an engagement that
      // raced with the sealing CAS can leave a chunk marked with a finished
      // `ro` while still reachable (see the orphan discussion in DESIGN.md).
      // Reachable + done ⇒ orphan ⇒ re-engage under a fresh object.
      if (FindListPredecessor(chunk) == nullptr) return nullptr;  // replaced
      auto* fresh = RebalanceObject::Create(pool_, chunk, chunk->Next());
      if (chunk->ro.compare_exchange_strong(existing, fresh,
                                            std::memory_order_seq_cst)) {
        // The chunk's reference moved from `existing` to `fresh`; drop the
        // old one only after every guard that may still be reading it ends.
        ebr_.Retire(
            existing,
            [](void* ro_ptr) {
              RebalanceObjectT<Layout>::Unref(
                  static_cast<RebalanceObjectT<Layout>*>(ro_ptr));
            },
            sizeof(RebalanceObject));
        ro = fresh;
        break;
      }
      KIWI_OBS_INC(obs_, engage_cas_fails);
      RebalanceObject::Destroy(fresh);  // never published
      continue;
    }
    if (existing == nullptr) {
      auto* fresh = RebalanceObject::Create(pool_, chunk, chunk->Next());
      RebalanceObject* expected = nullptr;
      if (chunk->ro.compare_exchange_strong(expected, fresh,
                                            std::memory_order_seq_cst)) {
        ro = fresh;
        break;
      }
      KIWI_OBS_INC(obs_, engage_cas_fails);
      RebalanceObject::Destroy(fresh);  // never published
      continue;
    }
    ro = existing;
    break;
  }

  // Engage successors one at a time while the policy approves; the CAS on
  // ro->next makes the engaged set a consensus among helpers (Invariant 1).
  std::uint32_t engaged_chunks = 1;
  std::uint64_t engaged_cells = chunk->AllocatedCells();
  while (true) {
    Chunk* next = ro->next.load(std::memory_order_seq_cst);
    if (next == nullptr) break;  // sealed
    // A stall here is the disagreement window: another helper can extend or
    // seal the run before our CAS, leaving our observed length stale.
    TestHooks::Run(TestHooks::rebalance_during_engage);
    const bool want =
        next->status.load(std::memory_order_acquire) !=
            Chunk::Status::kSentinel &&
        policy_.ShouldEngageNext(engaged_chunks, engaged_cells,
                                 next->AllocatedCells());
    if (want) {
      RebalanceObject* expected = nullptr;
      if (next->ro.compare_exchange_strong(expected, ro,
                                           std::memory_order_seq_cst)) {
        // Our CAS installed the reference: account for it.
        RebalanceObject::Ref(ro);
      }
      if (next->ro.load(std::memory_order_acquire) == ro) {
        Chunk* expected_next = next;
        ro->next.compare_exchange_strong(expected_next, next->Next(),
                                         std::memory_order_seq_cst);
        engaged_chunks++;
        engaged_cells += next->AllocatedCells();
        continue;
      }
    }
    Chunk* expected_next = next;
    ro->next.compare_exchange_strong(expected_next, nullptr,
                                     std::memory_order_seq_cst);
  }

  // Publish one consensus answer for "where does the engaged run end".
  // Competing helpers may observe different run lengths (a successful
  // engagement CAS can land after another helper already sealed ro->next),
  // and every later stage — freeze, build, stitch, retire — must agree on
  // the sector or a retired chunk can be left reachable.
  Chunk* observed_last = FindLastEngaged(ro);
  if (TestHooks::MutantEnabled(TestHooks::kLastEngagedRace)) [[unlikely]] {
    // Mutant: the pre-consensus seed behaviour — every helper trusts its
    // own view of the engaged run (PR1's latent double-retire race).
    *last_out = observed_last;
    return ro;
  }
  Chunk* expected_last = nullptr;
  ro->last_engaged.compare_exchange_strong(expected_last, observed_last,
                                           std::memory_order_seq_cst);
  *last_out = ro->last_engaged.load(std::memory_order_acquire);
  if (*last_out != observed_last) {
    // Another helper's consensus view of the engaged run won over ours.
    KIWI_TRACE(kRebEngageAdopt, reinterpret_cast<std::uintptr_t>(observed_last),
               reinterpret_cast<std::uintptr_t>(*last_out));
  }
  return ro;
}

template <typename Layout>
auto KiWiMapT<Layout>::FindLastEngaged(RebalanceObject* ro) const -> Chunk* {
  Chunk* last = ro->first;
  while (true) {
    Chunk* next = last->Next();
    if (next == nullptr || next->ro.load(std::memory_order_acquire) != ro) {
      return last;
    }
    last = next;
  }
}

template <typename Layout>
Version KiWiMapT<Layout>::ComputeMinVersion(KeyView from, KeyView to_exclusive,
                                            bool bounded) {
  // Reading GV *before* the PSA passes is what makes the bound safe: any
  // scan we fail to observe below publishes its pending entry before its
  // F&I, so its version is at least this value.
  Version min_version = gv_.Load();

  struct PendingScan {
    PsaEntry* entry;
    std::uint64_t seq;
  };
  std::vector<PendingScan> to_help;

  const std::size_t high_water = ThreadRegistry::HighWater();
  // Transient scans and pinned Snapshot views are tracked in separate
  // arrays with identical protocols.
  std::vector<Psa*> arrays{&psa_};
  for (Psa& snapshot_array : snapshot_psa_) arrays.push_back(&snapshot_array);
  for (Psa* array : arrays) {
    for (std::size_t t = 0; t < high_water; ++t) {
      PsaEntry& entry = array->Slot(t);
      const typename PsaEntry::VerSeq vs = entry.Load();
      if (vs.ver == kNoVersion) continue;
      // Byte layouts answer in the normalized-prefix domain — conservative
      // (a spurious overlap only costs an extra help), never lossy.
      if (!Layout::PsaOverlaps(from, bounded, to_exclusive, entry.From(),
                               entry.To())) {
        continue;
      }
      if (vs.ver == kPendingVersion) {
        to_help.push_back(PendingScan{&entry, vs.seq});
      } else {
        min_version = std::min(min_version, vs.ver);
      }
    }
  }

  if (!to_help.empty()) {
    // One F&I serves every pending scan found (paper lines 91-95).
    const Version helped_version = gv_.FetchIncrement();
    for (const PendingScan& p : to_help) {
      if (p.entry->HelpInstall(p.seq, helped_version)) {
        KIWI_OBS_INC(obs_, scans_helped);
        KIWI_TRACE(kScanHelpInstall,
                   reinterpret_cast<std::uintptr_t>(p.entry), helped_version);
      }
      // Whether our CAS or the scan's own won, account for the installed
      // version (if the scan has not already finished and moved on).
      const typename PsaEntry::VerSeq vs = p.entry->Load();
      if (vs.seq == p.seq && vs.ver != kNoVersion &&
          vs.ver != kPendingVersion) {
        min_version = std::min(min_version, vs.ver);
      }
    }
  }
  return min_version;
}

template <typename Layout>
void KiWiMapT<Layout>::CompactKeyRun(const std::vector<Item>& items,
                                     std::size_t begin, std::size_t end,
                                     Version min_version,
                                     std::vector<Item>& out) {
  // One key's versions, descending.  Keep everything above min_version
  // (scans may still need any of them — including tombstones, which must
  // stay visible so a scan at a later read point does not resurrect older
  // data).  At or below min_version, only the newest survives, and not even
  // that if it is a tombstone (nobody can read below min_version anymore).
  Version previous = kPendingVersion;  // larger than any real version
  for (std::size_t i = begin; i < end; ++i) {
    const Item& item = items[i];
    if (item.version == previous) continue;  // {key,version} tie loser
    previous = item.version;
    if (Layout::IsTombstone(item.value) &&
        TestHooks::MutantEnabled(TestHooks::kEagerTombstonePurge))
        [[unlikely]] {
      // Mutant: the paper's literal line 109 — drop the tombstone and all
      // older versions regardless of min_version (reverts deviation 1; a
      // pending scan below the tombstone's version loses its value).
      break;
    }
    if (item.version > min_version) {
      out.push_back(item);
      continue;
    }
    if (!Layout::IsTombstone(item.value)) out.push_back(item);
    break;
  }
}

template <typename Layout>
auto KiWiMapT<Layout>::BuildSection(RebalanceObject* ro, Chunk* last,
                                    Version min_version,
                                    std::span<const Item> puts)
    -> BuiltSection {
  // Harvest the engaged sector.  Chunks hold ascending disjoint ranges and
  // CollectItems sorts within a chunk, so concatenation is globally sorted.
  std::vector<Item> items;
  for (Chunk* c = ro->first;; c = c->Next()) {
    c->CollectItems(items);
    if (c == last) break;
  }

  std::uint32_t puts_included = 0;
  if (!puts.empty()) {
    // The carried puts take the current GV, like any put would; since every
    // harvested version came from an earlier GV load, each put item is the
    // newest version of its key.  One load covers the whole run: concurrent
    // puts may legally share a version (scans F&I past it).
    Chunk* succ = last->Next();
    const KeyView range_from = ro->first->MinKey();
    const bool bounded = succ != nullptr;
    const KeyView range_to = bounded ? succ->MinKey() : KeyView{};
    const Version put_version = gv_.Load();
    std::vector<Item> put_items;
    put_items.reserve(puts.size());
    for (const Item& put : puts) {
      if (Layout::KeyLess(put.key, range_from) ||
          (bounded && Layout::KeyLeq(range_to, put.key))) {
        continue;
      }
      // INT32_MAX as the value location: the carried put wins any
      // {key, version} tie against sector-internal data.
      put_items.push_back(Item{put.key, put_version,
                               std::numeric_limits<std::int32_t>::max(),
                               put.value});
    }
    if (!put_items.empty()) {
      // `puts` is sorted with distinct keys, so put_items is too; one merge
      // instead of a per-item insertion.
      std::vector<Item> merged;
      merged.reserve(items.size() + put_items.size());
      std::merge(items.begin(), items.end(), put_items.begin(),
                 put_items.end(), std::back_inserter(merged),
                 Chunk::ItemBefore);
      items.swap(merged);
      puts_included = static_cast<std::uint32_t>(put_items.size());
    }
  }

  // Compact per key run.
  std::vector<Item> kept;
  kept.reserve(items.size());
  std::size_t run_begin = 0;
  for (std::size_t i = 1; i <= items.size(); ++i) {
    if (i == items.size() ||
        !Layout::KeyEq(items[i].key, items[run_begin].key)) {
      CompactKeyRun(items, run_begin, i, min_version, kept);
      run_begin = i;
    }
  }

  // Carve into infant chunks, filled to fill_ratio, never splitting one
  // key's version run across a boundary (a get must find every version of
  // its key in the single chunk covering it).  Byte layouts budget each
  // segment's arena bytes (min_key copy + keys + values) to the same fill
  // fraction, so post-build puts have byte headroom matching the cell
  // headroom.
  const std::uint32_t capacity = policy_.config().chunk_capacity;
  const std::uint32_t fill = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(policy_.config().fill_ratio * capacity), 1,
      capacity);
  const std::uint32_t sparse = static_cast<std::uint32_t>(
      policy_.config().sparse_ratio * capacity);
  // Budgeted to the fill fraction but always leaving one max-size entry of
  // headroom: a rebuilt chunk must be able to absorb the very put whose
  // arena overflow triggered the rebalance, or that put re-triggers it
  // forever (livelock).  max_entry_bytes_ <= arena/4 keeps the clamp sane.
  [[maybe_unused]] const std::size_t arena_fill = std::min<std::size_t>(
      std::max<std::size_t>(
          max_entry_bytes_, static_cast<std::size_t>(
                                policy_.config().fill_ratio * arena_capacity_)),
      arena_capacity_ - max_entry_bytes_);

  struct Segment {
    std::size_t begin;
    std::size_t end;
    std::size_t bytes;  // arena bytes incl. the min_key copy (byte layouts)
  };
  std::vector<Segment> segments;
  std::size_t begin = 0;
  while (begin < kept.size()) {
    std::size_t seg_bytes = 0;
    if constexpr (Layout::kHasArena) {
      seg_bytes = segments.empty() ? ro->first->MinKey().size()
                                   : kept[begin].key.size();
    }
    std::size_t end = begin;
    while (end < kept.size() && end - begin < fill) {
      if constexpr (Layout::kHasArena) {
        const std::size_t need =
            Layout::EntryArenaBytes(kept[end].key, kept[end].value);
        if (end > begin && seg_bytes + need > arena_fill) break;
        seg_bytes += need;
      }
      ++end;
    }
    // Extend to the end of the key run straddling the boundary.
    while (end < kept.size() &&
           Layout::KeyEq(kept[end].key, kept[end - 1].key)) {
      if constexpr (Layout::kHasArena) {
        seg_bytes += Layout::EntryArenaBytes(kept[end].key, kept[end].value);
      }
      ++end;
    }
    KIWI_ASSERT(end - begin <= capacity,
                "one key's version run exceeds a whole chunk");
    segments.push_back(Segment{begin, end, seg_bytes});
    begin = end;
  }
  // Fold a too-sparse trailing chunk into its predecessor when it fits.
  if (segments.size() >= 2) {
    Segment& tail = segments.back();
    Segment& prev = segments[segments.size() - 2];
    bool fold = tail.end - tail.begin < sparse &&
                tail.end - prev.begin <= capacity;
    if constexpr (Layout::kHasArena) {
      // Folding drops the tail's separate min_key copy; the merge must
      // respect the *budget*, not just fit the arena — a fold up to raw
      // capacity leaves no headroom and livelocks the next overflowing put
      // (the cell-count bound is safe by construction: fill + sparse <
      // capacity, but a byte-budget-limited tail can be cell-sparse yet
      // byte-heavy).
      fold = fold && prev.bytes + tail.bytes - kept[tail.begin].key.size() <=
                         arena_fill;
    }
    if (fold) {
      prev.end = tail.end;
      if constexpr (Layout::kHasArena) {
        prev.bytes += tail.bytes - kept[tail.begin].key.size();
      }
      segments.pop_back();
    }
  }
  if (segments.empty()) segments.push_back(Segment{0, 0, 0});  // >= 1 chunk

  BuiltSection section;
  Chunk* prev_chunk = nullptr;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto [seg_begin, seg_end, seg_bytes] = segments[s];
    // A pinned snapshot (or long scan) can retain more versions of one key
    // than the default arena holds, and a key's version run is never split
    // across chunks — such a segment gets its own oversized arena (plus the
    // usual one-max-entry headroom so the put that triggered this rebalance
    // still fits) instead of a fatal abort.  The slab pool serves arbitrary
    // sizes, falling back to the OS for unpooled classes.
    std::uint32_t seg_arena = arena_capacity_;
    if constexpr (Layout::kHasArena) {
      const std::size_t need = seg_bytes + max_entry_bytes_;
      if (need > seg_arena) {
        KIWI_ASSERT(need <= std::numeric_limits<std::int32_t>::max(),
                    "one key's version run exceeds the 31-bit arena bound");
        seg_arena = static_cast<std::uint32_t>(need);
      }
    }
    (void)seg_bytes;
    // The first chunk inherits the sector's minKey so the covered range is
    // exactly preserved; later chunks start at their first key.
    const KeyView min_key =
        s == 0 ? ro->first->MinKey() : kept[seg_begin].key;
    auto* chunk = Chunk::Create(
        pool_, min_key, capacity, ro->first, Chunk::Status::kInfant,
        std::span<const Item>(kept.data() + seg_begin, seg_end - seg_begin),
        seg_arena);
    KIWI_OBS_INC(obs_, chunks_created);
    if (prev_chunk != nullptr) {
      prev_chunk->next.Store(MarkedPtr<Chunk>(chunk, false));
    } else {
      section.first = chunk;
    }
    prev_chunk = chunk;
    section.count++;
  }
  section.last = prev_chunk;
  section.puts_included = puts_included;
  return section;
}

template <typename Layout>
bool KiWiMapT<Layout>::Replace(RebalanceObject* ro, Chunk* last, bool* i_won) {
  *i_won = false;
  Chunk* replacement = ro->replacement.load(std::memory_order_acquire);
  KIWI_ASSERT(replacement != nullptr, "replace before consensus");

  while (true) {
    if (ro->done.load(std::memory_order_acquire)) return true;

    // Step 1: make last's next immutable so every helper stitches the same
    // successor.
    MarkedPtr<Chunk> succ = last->next.Load();
    while (!succ.Mark()) {
      last->next.CompareExchange(succ, MarkedPtr<Chunk>(succ.Ptr(), true));
      succ = last->next.Load();
    }

    // Step 2: point the replacement tail at that successor (idempotent: the
    // tail's next is CASed from null exactly once).
    Chunk* tail = replacement;
    while (true) {
      Chunk* next = tail->Next();
      if (next == nullptr || next->parent != ro->first) break;
      tail = next;
    }
    MarkedPtr<Chunk> null_next(nullptr, false);
    tail->next.CompareExchange(null_next, MarkedPtr<Chunk>(succ.Ptr(), false));

    // Step 3: swing the predecessor of the old sector to the new one.
    Chunk* pred = FindListPredecessor(ro->first);
    if (pred == nullptr) {
      // The old sector is no longer reachable: someone completed the splice.
      return true;
    }
    MarkedPtr<Chunk> expected(ro->first, false);
    if (pred->next.CompareExchange(expected,
                                   MarkedPtr<Chunk>(replacement, false))) {
      // The old sector is unreachable as of this CAS.  Flag it retired
      // *before* announcing done: the orphan re-engagement check in Engage
      // fires only on done objects and relies on the flags to reject stale
      // list edges into the dead sector.  If done were visible first, a
      // racing helper could walk a dead-but-unflagged region, deem a
      // spliced-out chunk reachable, and re-engage it under a fresh
      // rebalance — retiring it a second time.
      for (Chunk* c = ro->first;; c = c->Next()) {
        KIWI_ASSERT(!c->retired.exchange(true),
                    "chunk retired twice — two rebalance generations claimed "
                    "the same chunk");
        if (c == last) break;
      }
      ro->done.store(true, std::memory_order_seq_cst);
      *i_won = true;
      return true;
    }

    // CAS failed.  If pred's next is marked while still aiming at our
    // sector, pred is the last engaged chunk of another rebalance: help it
    // to completion, then retry with the fresh predecessor (paper line 123).
    KIWI_OBS_INC(obs_, splice_retries);
    const MarkedPtr<Chunk> current = pred->next.Load();
    if (current.Ptr() == ro->first && current.Mark()) {
      KIWI_OBS_INC(obs_, splice_helps);
      Rebalance(pred, KeyView{}, ValueView{}, /*has_put=*/false);
    }
    // Otherwise the list moved under us; loop to re-find the predecessor.
  }
}

template <typename Layout>
void KiWiMapT<Layout>::Normalize(RebalanceObject* ro) {
  reclaim::EbrGuard guard(ebr_);
  KIWI_TRACE(kRebIndex, reinterpret_cast<std::uintptr_t>(ro), 0);
  // The replacement section is live but the index still aims at the old
  // chunks; lookups crossing this window must recover via the list walk.
  TestHooks::Run(TestHooks::rebalance_before_index_update);
  // ---- stage 6: index update -----------------------------------------
  // Unindex the engaged chunks (walk by ro membership)...
  for (Chunk* c = ro->first;
       c != nullptr && c->ro.load(std::memory_order_acquire) == ro;
       c = c->Next()) {
    index_.DeleteConditional(c->MinKey(), c);
  }
  // ...then index the replacement chunks (walk by parentage).  A chunk that
  // froze in the meantime was already superseded — never re-index it.
  Chunk* replacement = ro->replacement.load(std::memory_order_acquire);
  KIWI_ASSERT(replacement != nullptr, "normalize before consensus");
  for (Chunk* c = replacement; c != nullptr && c->parent == ro->first;
       c = c->Next()) {
    while (true) {
      typename index::ChunkIndexT<Layout>::Handle prev =
          index_.LoadPrev(c->MinKey());
      if (c->status.load(std::memory_order_seq_cst) ==
          Chunk::Status::kFrozen) {
        break;
      }
      if (index_.PutConditional(c->MinKey(), prev, c)) break;
      KIWI_OBS_INC(obs_, index_cas_retries);
    }
  }
  // ---- stage 7: normalize ---------------------------------------------
  std::uint64_t normalized = 0;
  for (Chunk* c = replacement; c != nullptr && c->parent == ro->first;
       c = c->Next()) {
    typename Chunk::Status expected = Chunk::Status::kInfant;
    c->status.compare_exchange_strong(expected, Chunk::Status::kNormal,
                                      std::memory_order_seq_cst);
    ++normalized;
  }
  KIWI_TRACE(kRebNormalize, reinterpret_cast<std::uintptr_t>(ro), normalized);
}

template <typename Layout>
auto KiWiMapT<Layout>::FindListPredecessor(Chunk* target) const -> Chunk* {
  // LookupBelow resolves to the greatest indexed chunk whose minKey is
  // strictly below target's (byte keys have no "minKey - 1", so the index
  // exposes the strict-predecessor lookup directly); at worst that is the
  // sentinel.
  //
  // The lazy index may return — or a reader may lazily re-insert — a chunk
  // that has since been retired.  A retired chunk's next pointer still
  // aims into its old neighborhood, so a walk through a dead region can
  // "find" a predecessor for a target the live list no longer reaches.
  // Callers use that answer as reachability evidence (the orphan check) or
  // as a splice-CAS target; either use on a dead chunk resurrects retired
  // chunks into the list (double retire).  So: never start from, return,
  // or walk through a retired chunk — on meeting one, re-resolve from the
  // sentinel, which is never retired.  Each restart implies another
  // thread's rebalance completed in the meantime, so this cannot loop
  // without global progress.
  while (true) {
    auto* c = static_cast<Chunk*>(index_.LookupBelow(target->MinKey()));
    if (c == nullptr || c->retired.load(std::memory_order_acquire)) {
      c = sentinel_;
    }
    bool dead_region = false;
    while (c != nullptr) {
      if (c != sentinel_ && c->retired.load(std::memory_order_acquire)) {
        dead_region = true;
        break;
      }
      const MarkedPtr<Chunk> m = c->next.Load();
      Chunk* next = m.Ptr();
      if (next == target) return c;
      // minKeys never decrease along next pointers; passing target's minKey
      // without meeting it means it is unreachable.  Equal minKeys (a
      // replacement head) are walked through.
      if (next == nullptr ||
          Layout::KeyLess(target->MinKey(), next->MinKey())) {
        return nullptr;
      }
      c = next;
    }
    if (!dead_region) return nullptr;
  }
}

template <typename Layout>
void KiWiMapT<Layout>::DiscardSection(Chunk* first) {
  // A consensus-losing section was never visible to anyone: its slabs go
  // straight back to the pool, no grace period needed.
  while (first != nullptr) {
    Chunk* next = first->Next();
    KIWI_ASSERT(!first->retired.exchange(true),
                "discarding a chunk that was already retired through EBR");
    KIWI_TRACE(kChunkDiscard, reinterpret_cast<std::uintptr_t>(first), 0);
    Chunk::Destroy(first);
    first = next;
  }
}

}  // namespace kiwi::core
