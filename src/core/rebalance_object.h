// The rebalance consensus object (paper §3.3.2 stage 1).
//
// Lifetime: a RebalanceObject is referenced by every chunk engaged in its
// rebalance (each chunk's `ro` pointer, set by exactly one successful CAS).
// Those chunks die at different times — and, in the orphaned-engagement
// race (DESIGN.md §2.7), one of them can outlive the rebalance arbitrarily —
// so the object is reference-counted by its holders: each engaging CAS adds
// a reference, each Chunk destructor (or deferred orphan re-engagement)
// drops one, and the last drop deletes.  Transient raw uses (helpers reading
// `ro` fields mid-rebalance) are covered by the EBR guard they already hold:
// the referencing chunk cannot be freed under their guard, so neither can
// the count reach zero.
//
// Templated on the key Layout like the chunks it describes; the object only
// holds chunk pointers, so the template just keeps those pointers typed.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>

#include "core/layout.h"
#include "reclaim/pool.h"

namespace kiwi::core {

template <typename Layout>
class ChunkT;

template <typename Layout>
struct RebalanceObjectT {
  using Chunk = ChunkT<Layout>;

  /// Rebalance objects churn at rebalance rate, so they draw from (and
  /// return to) the map's slab pool like the chunks they describe.
  static RebalanceObjectT* Create(reclaim::SlabPool& pool, Chunk* first_chunk,
                                  Chunk* next_candidate) {
    void* block = pool.Allocate(sizeof(RebalanceObjectT));
    return new (block) RebalanceObjectT(&pool, first_chunk, next_candidate);
  }

  static void Destroy(RebalanceObjectT* ro) {
    reclaim::SlabPool* pool = ro->pool;
    ro->~RebalanceObjectT();
    pool->Deallocate(ro, sizeof(RebalanceObjectT));
  }

  RebalanceObjectT(reclaim::SlabPool* pool_arg, Chunk* first_chunk,
                   Chunk* next_candidate)
      : pool(pool_arg), first(first_chunk), next(next_candidate) {}

  /// The pool this object's block came from.
  reclaim::SlabPool* const pool;
  /// The trigger chunk; engagement grows forward from here.
  Chunk* const first;
  /// Next chunk to consider engaging; nullptr once engagement is sealed.
  std::atomic<Chunk*> next;
  /// Consensus on the last engaged chunk.  An engagement CAS can land
  /// *after* another helper seals `next` and walks the engaged run, so two
  /// helpers can legitimately observe different run lengths.  If each used
  /// its own view, they would freeze/build/stitch/retire *different*
  /// sectors under one consensus replacement — the shorter view stitches
  /// the replacement tail at a chunk the longer view retires, leaving a
  /// retired chunk reachable (double retire via the orphan path).  The
  /// first helper to finish engagement publishes its view here; every
  /// helper then acts on the same sector.
  std::atomic<Chunk*> last_engaged{nullptr};
  /// Consensus on the replacement section: first competing builder to CAS
  /// its section here wins; everyone splices *this* section.
  std::atomic<Chunk*> replacement{nullptr};
  /// Set once the replacement section has been spliced into the list.
  std::atomic<bool> done{false};
  /// Holders: chunks whose `ro` pointer targets this object.  Starts at 1
  /// for the trigger chunk (the creating CAS).
  std::atomic<std::uint32_t> refs{1};

  static void Ref(RebalanceObjectT* ro) {
    ro->refs.fetch_add(1, std::memory_order_acq_rel);
  }
  static void Unref(RebalanceObjectT* ro) {
    if (ro->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Destroy(ro);
    }
  }
};

/// The fixed-width map's rebalance object — the original spelling.
using RebalanceObject = RebalanceObjectT<Int64Layout>;

}  // namespace kiwi::core
