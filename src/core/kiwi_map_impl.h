// KiWiMapT client operations: put / get / scan (paper Algorithm 2) plus
// construction, diagnostics and the scan merge logic.  Rebalancing lives in
// rebalance_impl.h.  Included by kiwi_map.h only — the template definitions
// live here so both layout instantiations (explicit, in kiwi_map.cpp) come
// from one source of truth.
#pragma once

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/assert.h"
#include "common/test_hooks.h"
#include "common/thread_registry.h"
#include "core/kiwi_map.h"
#include "obs/trace.h"

namespace kiwi::core {

template <typename Layout>
KiWiMapT<Layout>::KiWiMapT(KiWiConfig config)
    : policy_(config), ebr_(), index_(ebr_) {
  KIWI_ASSERT(config.chunk_capacity >= 2 &&
                  config.chunk_capacity < Chunk::kPpaNoIdx,
              "chunk capacity must fit the PPA's 16-bit cell index");
  if constexpr (Layout::kHasArena) {
    const std::uint64_t arena =
        static_cast<std::uint64_t>(config.chunk_capacity) *
        config.bytes.arena_bytes_per_cell;
    KIWI_ASSERT(arena > 0 && arena <= std::numeric_limits<std::int32_t>::max(),
                "per-chunk arena must be positive and fit 31 bits");
    arena_capacity_ = static_cast<std::uint32_t>(arena);
    // One entry must never render a rebalance target unsatisfiable: cap it
    // at a quarter of the arena so a half-filled replacement chunk always
    // has byte headroom for its segment.
    max_entry_bytes_ =
        std::min(config.bytes.max_entry_bytes, arena_capacity_ / 4);
    KIWI_ASSERT(max_entry_bytes_ >= 1, "max_entry_bytes clamped to zero");
  }
  // Permanent sentinel head (minKey = -inf, capacity 0, never engaged) plus
  // one initial data chunk covering the entire user key domain.
  sentinel_ = Chunk::Create(pool_, Layout::SentinelMinKey(), 0, nullptr,
                            Chunk::Status::kSentinel);
  auto* first =
      Chunk::Create(pool_, Layout::MinUserKey(), config.chunk_capacity,
                    nullptr, Chunk::Status::kNormal, {}, arena_capacity_);
  sentinel_->next.Store(MarkedPtr<Chunk>(first, false));
  index_.PutUnconditional(sentinel_->MinKey(), sentinel_);
  index_.PutUnconditional(first->MinKey(), first);
}

template <typename Layout>
KiWiMapT<Layout>::KiWiMapT(std::span<const Entry> sorted_entries,
                           KiWiConfig config)
    : KiWiMapT(config) {
  // Carve the input into half-filled normal chunks, exactly the layout a
  // rebalance would produce, and index them eagerly.
  const std::uint32_t capacity = config.chunk_capacity;
  const std::uint32_t fill = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.fill_ratio * capacity));
  // Byte layouts additionally budget each chunk's arena to fill_ratio so
  // post-load puts have byte headroom, mirroring the cell fill — clamped to
  // always leave one max-size entry of headroom (same livelock guard as the
  // rebalance build carve, see rebalance_impl.h).
  [[maybe_unused]] const std::size_t arena_fill = std::min<std::size_t>(
      std::max<std::size_t>(
          max_entry_bytes_,
          static_cast<std::size_t>(config.fill_ratio * arena_capacity_)),
      arena_capacity_ - max_entry_bytes_);
  Chunk* tail = sentinel_->Next();  // the initial empty chunk
  std::size_t begin = 0;
  while (begin < sorted_entries.size()) {
    std::vector<Item> items;
    items.reserve(fill);
    [[maybe_unused]] std::size_t arena_bytes = 0;
    if constexpr (Layout::kHasArena) {
      arena_bytes = begin == 0
                        ? Layout::MinUserKey().size()
                        : Layout::ViewKey(sorted_entries[begin].first).size();
    }
    std::size_t end = begin;
    while (end < sorted_entries.size() && end - begin < fill) {
      const auto& [okey, ovalue] = sorted_entries[end];
      const KeyView key = Layout::ViewKey(okey);
      const ValueView value = Layout::ViewValue(ovalue);
      KIWI_ASSERT(Layout::IsUserKey(key), "bulk-load key below user domain");
      KIWI_ASSERT(!Layout::IsTombstone(value), "bulk-load value is reserved");
      KIWI_ASSERT(items.empty() || Layout::KeyLess(items.back().key, key),
                  "bulk-load keys must be strictly ascending");
      KIWI_ASSERT(begin == 0 || end > begin ||
                      Layout::KeyLess(
                          Layout::ViewKey(sorted_entries[begin - 1].first),
                          key),
                  "bulk-load keys must be strictly ascending");
      if constexpr (Layout::kHasArena) {
        const std::size_t need = Layout::EntryArenaBytes(key, value);
        KIWI_ASSERT(need <= max_entry_bytes_,
                    "bulk-load entry exceeds max_entry_bytes");
        if (end > begin && arena_bytes + need > arena_fill) break;
        arena_bytes += need;
      }
      items.push_back(Item{key, /*version=*/1,
                           static_cast<std::int32_t>(end - begin), value});
      ++end;
    }
    // The very first segment loads into a chunk starting at the minimal
    // user key so the whole domain stays covered; later chunks start at
    // their first key.
    const KeyView min_key =
        begin == 0 ? Layout::MinUserKey() : items.front().key;
    auto* chunk = Chunk::Create(pool_, min_key, capacity, nullptr,
                                Chunk::Status::kNormal,
                                std::span<const Item>(items), arena_capacity_);
    KIWI_OBS_INC(obs_, chunks_created);
    if (begin == 0) {
      // Replace the initial empty chunk outright (single-threaded ctor).
      Chunk* initial = sentinel_->Next();
      sentinel_->next.Store(MarkedPtr<Chunk>(chunk, false));
      index_.DeleteConditional(initial->MinKey(), initial);
      Chunk::Destroy(initial);
    } else {
      tail->next.Store(MarkedPtr<Chunk>(chunk, false));
    }
    index_.PutUnconditional(chunk->MinKey(), chunk);
    tail = chunk;
    begin = end;
  }
}

template <typename Layout>
KiWiMapT<Layout>::~KiWiMapT() {
  // Externally synchronized.  The metrics pump (if any) reads the structure
  // from its own thread, so it must be joined before anything is torn down.
  StopMetricsPump();
  // Live chunks are destroyed here; disconnected
  // chunks and rebalance objects drain with ebr_'s destructor.  Their slabs
  // all land in pool_, which frees them last (declared before ebr_).
  Chunk* chunk = sentinel_;
  while (chunk != nullptr) {
    Chunk* next = chunk->Next();
    Chunk::Destroy(chunk);
    chunk = next;
  }
}

template <typename Layout>
auto KiWiMapT<Layout>::LocateChunk(KeyView key) const -> Chunk* {
  // The index may lag the list (lazy updates), so finish with a traversal —
  // but the lag can also hand back a chunk that was already spliced out.  A
  // retired chunk's next pointers still chain through its dead section,
  // whose frozen cells miss every put that completed in the replacement
  // chunks, so a reader that trusts it returns stale data (found by the
  // linearizability fuzzer, seed 74: a scan observed a value overwritten
  // before the scan began).  Same doctrine as FindListPredecessor: never
  // start from or walk through a retired chunk — restart from the sentinel,
  // which is never retired.  Each restart implies another thread's splice
  // completed in the meantime, so this cannot loop without global progress.
  const auto probe = Layout::MakeProbe(key);
  while (true) {
    auto* chunk = static_cast<Chunk*>(index_.Lookup(key));
    if (chunk == nullptr || chunk->retired.load(std::memory_order_acquire)) {
      chunk = sentinel_;
    }
    bool dead_region = false;
    while (true) {
      Chunk* next = chunk->Next();
      if (next == nullptr ||
          Layout::CompareCell(next->a, next->min_key, probe) > 0) {
        break;
      }
      chunk = next;
      if (chunk->retired.load(std::memory_order_acquire)) {
        dead_region = true;
        break;
      }
    }
    if (!dead_region) return chunk;
    KIWI_OBS_INC(obs_, locate_restarts);
  }
}

template <typename Layout>
void KiWiMapT<Layout>::Put(KeyView key, ValueView value) {
  KIWI_ASSERT(!Layout::IsTombstone(value), "value reserved for tombstones");
  if constexpr (Layout::kHasArena) {
    KIWI_ASSERT(Layout::EntryArenaBytes(key, value) <= max_entry_bytes_,
                "entry exceeds max_entry_bytes");
  }
  KIWI_OBS_INC(obs_, puts);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kPut, timer);
  PutImpl(key, value);
}

template <typename Layout>
void KiWiMapT<Layout>::Remove(KeyView key) {
  // Deletion is a put of the tombstone (paper: "a put of the ⊥ value
  // removes the pair").  The tombstone flows through the same protocol and
  // is filtered on the read side; rebalance compacts it away.  Latencies
  // land in the put histogram (a remove IS a put).
  if constexpr (Layout::kHasArena) {
    KIWI_ASSERT(Layout::KeyArenaBytes(key) <= max_entry_bytes_,
                "key exceeds max_entry_bytes");
  }
  KIWI_OBS_INC(obs_, removes);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kPut, timer);
  PutImpl(key, Layout::TombstoneValue());
}

template <typename Layout>
void KiWiMapT<Layout>::PutImpl(KeyView key, ValueView value) {
  KIWI_ASSERT(Layout::IsUserKey(key), "key below the user key domain");
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  const bool traced = KIWI_TRACE_SAMPLED(kPutOp, Layout::TraceKey(key),
                                         Layout::TraceValue(value));

  while (true) {
    reclaim::EbrGuard guard(ebr_);
    Chunk* chunk = LocateChunk(key);
    KIWI_ASSERT(chunk->status.load(std::memory_order_acquire) !=
                    Chunk::Status::kSentinel,
                "user key resolved to the sentinel chunk");

    // -- phase 0: maintenance check (Algorithm 3), before allocating so
    //    that infants never fill up.
    bool put_done = false;
    if (CheckRebalance(chunk, key, value, &put_done)) {
      if (put_done) return;
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, Layout::TraceKey(key),
                 reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }

    // -- phase 1: allocate a value slot and a cell (F&A/F&I give every
    //    concurrent put distinct indices), plus — for byte layouts — the
    //    entry's arena bytes.  Any overflow routes to rebalance, whose
    //    build-copy compacts dead reservations away.
    const std::uint32_t j =
        chunk->v_counter.fetch_add(1, std::memory_order_seq_cst);
    const std::uint32_t i =
        chunk->k_counter.fetch_add(1, std::memory_order_seq_cst);
    bool overflow = j >= chunk->capacity || i > chunk->capacity;
    [[maybe_unused]] std::uint32_t key_off = 0;
    if constexpr (Layout::kHasArena) {
      if (!overflow) {
        const std::uint32_t need = static_cast<std::uint32_t>(
            Layout::EntryArenaBytes(key, value));
        overflow = !chunk->ClaimArena(need, &key_off);
      }
    }
    if (overflow) {
      KIWI_OBS_INC(obs_, cell_alloc_overflows);
      if (Rebalance(chunk, key, value, /*has_put=*/true)) {
        KIWI_OBS_INC(obs_, puts_piggybacked);
        KIWI_TRACE(kPutPiggyback, Layout::TraceKey(key),
                   reinterpret_cast<std::uintptr_t>(chunk));
        return;
      }
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, Layout::TraceKey(key),
                 reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }
    typename Chunk::Cell& cell = chunk->k[i];
    if constexpr (Layout::kHasArena) {
      // Copy the bytes before the PPA publish below: its seq_cst CAS is the
      // release point that makes them visible to helpers and readers.
      std::memcpy(chunk->a + key_off, key.data(), key.size());
      const std::uint32_t val_off =
          key_off + static_cast<std::uint32_t>(key.size());
      if (Layout::IsTombstone(value)) {
        chunk->v[j] = typename Layout::StoredValue{0, Layout::kTombstoneLen};
      } else {
        std::memcpy(chunk->a + val_off, value.data(), value.size());
        chunk->v[j] = typename Layout::StoredValue{
            val_off, static_cast<std::uint32_t>(value.size())};
      }
      cell.key = typename Layout::CellKey{
          Layout::MakePrefix(key), key_off,
          static_cast<std::uint32_t>(key.size())};
    } else {
      chunk->v[j] = value;
      cell.key = key;
    }
    cell.version = kNoVersion;
    cell.val_ptr.store(static_cast<std::int32_t>(j),
                       std::memory_order_relaxed);
    cell.next.store(Chunk::kNullIdx, std::memory_order_relaxed);

    // -- phase 2: publish in the PPA, then acquire a version.  The publish
    //    is a CAS from the idle word so it fails if the chunk froze after
    //    phase 0 (paper line 14).
    std::uint64_t expected = Chunk::kPpaIdle;
    if (!chunk->ppa[slot].compare_exchange_strong(
            expected, Chunk::PackPpa(Chunk::kPpaVerBottom, i),
            std::memory_order_seq_cst)) {
      KIWI_OBS_INC(obs_, ppa_publish_fails);
      if (Rebalance(chunk, key, value, /*has_put=*/true)) {
        KIWI_OBS_INC(obs_, puts_piggybacked);
        KIWI_TRACE(kPutPiggyback, Layout::TraceKey(key),
                   reinterpret_cast<std::uintptr_t>(chunk));
        return;
      }
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, Layout::TraceKey(key),
                 reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }
    if (traced) KIWI_TRACE(kPutPpaPublish, Layout::TraceKey(key), i);
    TestHooks::Run(TestHooks::put_before_version_cas);
    const Version gv = gv_.Load();
    std::uint64_t published = Chunk::PackPpa(Chunk::kPpaVerBottom, i);
    const bool own_cas = chunk->ppa[slot].compare_exchange_strong(
        published, Chunk::PackPpa(gv, i), std::memory_order_seq_cst);
    // Whether our CAS, a helper's, or the freezer won, the entry is
    // authoritative (paper line 16).
    const Version version =
        Chunk::PpaVer(chunk->ppa[slot].load(std::memory_order_seq_cst));
    if (!own_cas && version != Chunk::kPpaVerFrozen) {
      KIWI_OBS_INC(obs_, puts_helped);  // a scan or get installed our version
      KIWI_TRACE(kPutHelped, Layout::TraceKey(key), version);
    }
    if (version == Chunk::kPpaVerFrozen) {
      // The chunk froze between our status check and version acquisition;
      // the entry stays frozen (this chunk is dead) and the put restarts.
      if (Rebalance(chunk, key, value, /*has_put=*/true)) {
        KIWI_OBS_INC(obs_, puts_piggybacked);
        KIWI_TRACE(kPutPiggyback, Layout::TraceKey(key),
                   reinterpret_cast<std::uintptr_t>(chunk));
        return;
      }
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, Layout::TraceKey(key),
                 reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }
    cell.version = version;

    // -- phase 3: link the cell into the intra-chunk list (paper 17-25).
    while (true) {
      std::int32_t pred;
      std::int32_t succ;
      const std::int32_t existing = chunk->FindCell(key, version, &pred, &succ);
      if (existing == Chunk::kNullIdx) {
        cell.next.store(succ, std::memory_order_relaxed);
        std::int32_t expected_succ = succ;
        if (chunk->k[pred].next.compare_exchange_strong(
                expected_succ, static_cast<std::int32_t>(i),
                std::memory_order_seq_cst)) {
          break;
        }
        KIWI_OBS_INC(obs_, put_link_retries);
        continue;  // list changed under us; re-find the insertion point
      }
      // Same {key, version} already linked: the larger value location wins
      // (it fetched-and-added later).
      const std::int32_t current =
          chunk->k[existing].val_ptr.load(std::memory_order_acquire);
      if (current >= static_cast<std::int32_t>(j)) break;  // we lost
      std::int32_t expected_ptr = current;
      chunk->k[existing].val_ptr.compare_exchange_strong(
          expected_ptr, static_cast<std::int32_t>(j),
          std::memory_order_seq_cst);
    }

    chunk->ppa[slot].store(Chunk::kPpaIdle, std::memory_order_seq_cst);
    return;
  }
}

template <typename Layout>
void KiWiMapT<Layout>::PutBatch(std::span<const Entry> entries) {
  if (entries.empty()) return;
  KIWI_OBS_INC(obs_, put_batches);
  KIWI_OBS_ADD(obs_, batch_entries, entries.size());

  // Normalize the batch: sort by key (stable, so equal keys keep their
  // submission order), then keep only the last occurrence of each key —
  // the state the equivalent sequence of Puts would leave behind.  The
  // surviving entries are carried as {key, value} view Items so the run
  // paths below never copy the owned strings of a byte batch.
  std::vector<Entry> sorted(entries.begin(), entries.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) {
                     return Layout::KeyLess(Layout::ViewKey(a.first),
                                            Layout::ViewKey(b.first));
                   });
  std::vector<Item> batch;
  batch.reserve(sorted.size());
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    if (r + 1 < sorted.size() &&
        Layout::KeyEq(Layout::ViewKey(sorted[r + 1].first),
                      Layout::ViewKey(sorted[r].first))) {
      continue;  // superseded by a later write to the same key
    }
    const KeyView key = Layout::ViewKey(sorted[r].first);
    const ValueView value = Layout::ViewValue(sorted[r].second);
    KIWI_ASSERT(Layout::IsUserKey(key), "key below the user key domain");
    KIWI_ASSERT(!Layout::IsTombstone(value), "value reserved for tombstones");
    if constexpr (Layout::kHasArena) {
      KIWI_ASSERT(Layout::EntryArenaBytes(key, value) <= max_entry_bytes_,
                  "entry exceeds max_entry_bytes");
    }
    batch.push_back(Item{key, kNoVersion, 0, value});
  }
  KIWI_TRACE(kBatchStart, entries.size(), batch.size());

  const std::size_t slot = ThreadRegistry::CurrentSlot();
  const std::uint32_t bulk_min = policy_.BulkRunThreshold();
  std::size_t done = 0;
  while (done < batch.size()) {
    reclaim::EbrGuard guard(ebr_);
    Chunk* chunk = LocateChunk(batch[done].key);
    KIWI_ASSERT(chunk->status.load(std::memory_order_acquire) !=
                    Chunk::Status::kSentinel,
                "user key resolved to the sentinel chunk");

    // Infant chunk: finish its parent's rebalance and retry (PutImpl's
    // phase 0; the policy trigger is folded into the run dispatch below).
    if (chunk->status.load(std::memory_order_acquire) ==
        Chunk::Status::kInfant) {
      RebalanceObject* ro = chunk->parent->ro.load(std::memory_order_acquire);
      KIWI_ASSERT(ro != nullptr, "infant chunk without a parent rebalance");
      Normalize(ro);
      continue;
    }

    // The run this chunk covers: keys below the successor's minKey.  The
    // bound stays valid even if the successor is concurrently replaced —
    // replacement heads inherit their sector's minKey.
    Chunk* succ = chunk->Next();
    std::size_t run_end = batch.size();
    if (succ != nullptr) {
      run_end = done + 1;
      while (run_end < batch.size() &&
             Layout::KeyLess(batch[run_end].key, succ->MinKey())) {
        ++run_end;
      }
    }
    const std::span<const Item> run(batch.data() + done, run_end - done);

    const std::uint32_t allocated = chunk->AllocatedCells();
    bool full =
        chunk->k_counter.load(std::memory_order_acquire) > chunk->capacity ||
        chunk->v_counter.load(std::memory_order_acquire) >= chunk->capacity;
    if constexpr (Layout::kHasArena) {
      // "Full" must also cover "the run's first entry no longer fits the
      // remaining arena": PutRunPerOp would compute a zero-entry claim and
      // return 0 without touching any chunk state, so retrying the per-op
      // path can never make progress — only the rebalance dispatch below
      // can.  (The single-key Put escapes the same situation through its
      // ClaimArena-failure -> Rebalance route; this path has no such exit.)
      const std::uint32_t arena_used =
          chunk->arena_used.load(std::memory_order_acquire);
      full = full || arena_used >= chunk->arena_capacity ||
             chunk->arena_capacity - arena_used <
                 Layout::EntryArenaBytes(batch[done].key, batch[done].value);
    }
    const bool frozen = chunk->status.load(std::memory_order_acquire) ==
                        Chunk::Status::kFrozen;
    if (run.size() >= bulk_min || full || frozen ||
        policy_.ShouldTrigger(allocated, chunk->batched_count, ThreadRng())) {
      // Bulk path: carry the run through the rebalance build, seeding the
      // replacement chunks' sorted prefixes straight from the batch — no
      // per-key PPA round trips.  0 means another thread's section won
      // consensus; re-locate and retry (lock-free: each loss implies a
      // competing splice completed).
      const std::size_t installed = Rebalance(chunk, run);
      if (installed > 0) {
        KIWI_OBS_ADD(obs_, batch_bulk_entries, installed);
        KIWI_TRACE(kBatchBulk, Layout::TraceKey(run[0].key), installed);
        done += installed;
      } else {
        KIWI_OBS_INC(obs_, put_restarts);
        KIWI_TRACE(kPutRestart, Layout::TraceKey(batch[done].key),
                   reinterpret_cast<std::uintptr_t>(chunk));
      }
      continue;
    }

    // Short run: the per-key PPA protocol, with the two index claims
    // batched and the insertion point carried between keys.
    const std::size_t installed = PutRunPerOp(chunk, run, slot);
    if (installed > 0) {
      KIWI_TRACE(kBatchRun, Layout::TraceKey(run[0].key), installed);
      done += installed;
    }
    // installed < run.size(): the chunk filled or froze mid-run; the next
    // iteration re-locates the remainder and takes the rebalance path.
  }
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::PutRunPerOp(Chunk* chunk,
                                          std::span<const Item> run,
                                          std::size_t slot) {
  // Claim cells and value slots for as much of the run as plausibly fits —
  // two fetch-adds instead of two per key.  The counters can still race
  // past capacity (other writers claim concurrently), so the post-claim
  // bounds below are authoritative.  Claimed-but-unused cells are benign:
  // never published, never linked; AllocatedCells is documented as an
  // upper bound on live entries.
  const std::uint32_t cap = chunk->capacity;
  const std::uint32_t v_seen =
      chunk->v_counter.load(std::memory_order_acquire);
  std::uint32_t want = static_cast<std::uint32_t>(std::min<std::size_t>(
      run.size(), v_seen < cap ? cap - v_seen : 0));
  if (want == 0) return 0;

  // Byte layouts additionally claim one contiguous arena block for the
  // entries about to be installed (prefix sums in `offs`), shrinking the
  // claim to what the arena can still hold.  A racing claim that defeats
  // ours is routed back to the caller, which re-dispatches via rebalance.
  [[maybe_unused]] std::uint32_t arena_base = 0;
  [[maybe_unused]] std::vector<std::uint32_t> offs;
  if constexpr (Layout::kHasArena) {
    const std::uint32_t arena_cap = chunk->arena_capacity;
    const std::uint32_t arena_seen =
        chunk->arena_used.load(std::memory_order_acquire);
    const std::uint32_t avail =
        arena_seen < arena_cap ? arena_cap - arena_seen : 0;
    offs.reserve(want + 1);
    offs.push_back(0);
    std::uint32_t total = 0;
    std::uint32_t fits = 0;
    while (fits < want) {
      const std::uint32_t need = static_cast<std::uint32_t>(
          Layout::EntryArenaBytes(run[fits].key, run[fits].value));
      if (total + need > avail) break;
      total += need;
      offs.push_back(total);
      ++fits;
    }
    want = fits;
    if (want == 0 || !chunk->ClaimArena(total, &arena_base)) return 0;
  }

  const std::uint32_t j_base =
      chunk->v_counter.fetch_add(want, std::memory_order_seq_cst);
  const std::uint32_t i_base =
      chunk->k_counter.fetch_add(want, std::memory_order_seq_cst);
  const std::uint32_t usable_v =
      j_base < cap ? std::min(want, cap - j_base) : 0;
  const std::uint32_t usable_k =
      i_base <= cap ? std::min(want, cap - i_base + 1) : 0;
  const std::uint32_t n = std::min(usable_v, usable_k);

  // Keys ascend within the run, so each key's insertion point is at or
  // after the previous one's predecessor — thread it through as the next
  // list search's starting point.
  std::int32_t hint = Chunk::kNullIdx;
  for (std::uint32_t t = 0; t < n; ++t) {
    const KeyView key = run[t].key;
    const ValueView value = run[t].value;
    const std::uint32_t j = j_base + t;
    const std::uint32_t i = i_base + t;
    typename Chunk::Cell& cell = chunk->k[i];
    if constexpr (Layout::kHasArena) {
      const std::uint32_t key_off = arena_base + offs[t];
      std::memcpy(chunk->a + key_off, key.data(), key.size());
      const std::uint32_t val_off =
          key_off + static_cast<std::uint32_t>(key.size());
      if (Layout::IsTombstone(value)) {
        chunk->v[j] = typename Layout::StoredValue{0, Layout::kTombstoneLen};
      } else {
        std::memcpy(chunk->a + val_off, value.data(), value.size());
        chunk->v[j] = typename Layout::StoredValue{
            val_off, static_cast<std::uint32_t>(value.size())};
      }
      cell.key = typename Layout::CellKey{
          Layout::MakePrefix(key), key_off,
          static_cast<std::uint32_t>(key.size())};
    } else {
      chunk->v[j] = value;
      cell.key = key;
    }
    cell.version = kNoVersion;
    cell.val_ptr.store(static_cast<std::int32_t>(j),
                       std::memory_order_relaxed);
    cell.next.store(Chunk::kNullIdx, std::memory_order_relaxed);

    // PutImpl's phases 2-3.  A failed publish or a frozen version means
    // the chunk froze under us: entries [t, n) are not installed and the
    // caller re-dispatches them after re-locating.
    std::uint64_t expected = Chunk::kPpaIdle;
    if (!chunk->ppa[slot].compare_exchange_strong(
            expected, Chunk::PackPpa(Chunk::kPpaVerBottom, i),
            std::memory_order_seq_cst)) {
      return t;
    }
    TestHooks::Run(TestHooks::put_before_version_cas);
    const Version gv = gv_.Load();
    std::uint64_t published = Chunk::PackPpa(Chunk::kPpaVerBottom, i);
    const bool own_cas = chunk->ppa[slot].compare_exchange_strong(
        published, Chunk::PackPpa(gv, i), std::memory_order_seq_cst);
    const Version version =
        Chunk::PpaVer(chunk->ppa[slot].load(std::memory_order_seq_cst));
    if (!own_cas && version != Chunk::kPpaVerFrozen) {
      KIWI_OBS_INC(obs_, puts_helped);
      KIWI_TRACE(kPutHelped, Layout::TraceKey(key), version);
    }
    if (version == Chunk::kPpaVerFrozen) return t;
    cell.version = version;

    while (true) {
      std::int32_t pred;
      std::int32_t succ;
      const std::int32_t existing =
          chunk->FindCellFrom(hint, key, version, &pred, &succ);
      if (existing == Chunk::kNullIdx) {
        cell.next.store(succ, std::memory_order_relaxed);
        std::int32_t expected_succ = succ;
        if (chunk->k[pred].next.compare_exchange_strong(
                expected_succ, static_cast<std::int32_t>(i),
                std::memory_order_seq_cst)) {
          hint = pred;
          break;
        }
        KIWI_OBS_INC(obs_, put_link_retries);
        continue;  // list changed under us; re-find the insertion point
      }
      // Same {key, version} already linked: the larger value location wins
      // (it fetched-and-added later).
      const std::int32_t current =
          chunk->k[existing].val_ptr.load(std::memory_order_acquire);
      if (current >= static_cast<std::int32_t>(j)) {
        hint = pred;
        break;  // we lost
      }
      std::int32_t expected_ptr = current;
      chunk->k[existing].val_ptr.compare_exchange_strong(
          expected_ptr, static_cast<std::int32_t>(j),
          std::memory_order_seq_cst);
    }
    chunk->ppa[slot].store(Chunk::kPpaIdle, std::memory_order_seq_cst);
  }
  return n;
}

template <typename Layout>
std::optional<typename Layout::OwnedValue> KiWiMapT<Layout>::Get(KeyView key) {
  KIWI_ASSERT(Layout::IsUserKey(key), "key below the user key domain");
  KIWI_OBS_INC(obs_, gets);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kGet, timer);
  reclaim::EbrGuard guard(ebr_);
  Chunk* chunk = LocateChunk(key);
  // Help any pending put to this key acquire a version: ignoring it could
  // order this get inconsistently with a later scan (paper Figure 2).  The
  // fuzz mutant kSkipGetHelp re-breaks exactly this line.
  if (!TestHooks::MutantEnabled(TestHooks::kSkipGetHelp)) [[likely]] {
    chunk->HelpPendingPuts(gv_, key, key);
  }
  TestHooks::Run(TestHooks::get_after_help);
  const typename Chunk::LatestResult latest =
      chunk->FindLatest(key, kMaxReadVersion);
  const bool hit = latest.found && !latest.is_tombstone;
  (void)KIWI_TRACE_SAMPLED(kGetOp, Layout::TraceKey(key), hit);
  if (!hit) return std::nullopt;
  KIWI_OBS_INC(obs_, get_hits);
  return Layout::OwnValue(latest.value);
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::Scan(
    KeyView from_key, KeyView to_key,
    const std::function<void(KeyView, ValueView)>& yield) {
  return ScanImpl(from_key, &to_key, yield);
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::ScanFrom(
    KeyView from_key, const std::function<void(KeyView, ValueView)>& yield) {
  return ScanImpl(from_key, nullptr, yield);
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::ScanImpl(
    KeyView from_key, const KeyView* to_key,
    const std::function<void(KeyView, ValueView)>& yield) {
  if (Layout::KeyLess(from_key, Layout::MinUserKey())) {
    from_key = Layout::MinUserKey();
  }
  if (to_key != nullptr && Layout::KeyLess(*to_key, from_key)) return 0;
  KIWI_OBS_INC(obs_, scans);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kScan, timer);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  PsaEntry& entry = psa_.Slot(slot);
  const bool traced = KIWI_TRACE_SAMPLED(
      kScanBegin, Layout::TraceKey(from_key),
      to_key != nullptr ? Layout::TraceKey(*to_key) : ~std::uint64_t{0});

  // -- 1. acquire a read point, synchronizing with rebalance via the PSA
  //    (paper lines 32-35): publish intent, F&I GV, install (or adopt the
  //    version a helping rebalance installed).  The publish-before-F&I
  //    order is load-bearing (fuzz mutant kSkipScanPublish re-breaks it):
  //    a rebalance that cannot see this scan's entry may compact away
  //    versions at or below its read point.  Byte layouts publish the
  //    range as normalized prefixes — conservative, never lossy.
  std::uint64_t seq = 0;
  Version read_point;
  const bool published =
      !TestHooks::MutantEnabled(TestHooks::kSkipScanPublish);
  if (published) [[likely]] {
    seq = entry.PublishPending(Layout::PsaLow(from_key),
                               to_key != nullptr ? Layout::PsaHigh(*to_key)
                                                 : Layout::PsaMax());
    TestHooks::Run(TestHooks::scan_before_version_install);
    const Version fetched = gv_.FetchIncrement();
    read_point = entry.InstallOwn(seq, fetched);
    if (traced) KIWI_TRACE(kScanVersion, read_point, read_point != fetched);
  } else {
    read_point = gv_.FetchIncrement();  // mutant: invisible to rebalance
    // Fire the same site so the fuzzer can stall the mutant scan in its
    // vulnerable window (read point taken, chunks not yet read).
    TestHooks::Run(TestHooks::scan_before_version_install);
  }

  // -- 2. read every key in range at `read_point`.
  std::size_t emitted = 0;
  {
    reclaim::EbrGuard guard(ebr_);
    Chunk* chunk = LocateChunk(from_key);
    while (chunk != nullptr &&
           (to_key == nullptr || Layout::KeyLeq(chunk->MinKey(), *to_key))) {
      if (to_key != nullptr) {
        chunk->HelpPendingPuts(gv_, from_key, *to_key);
      } else {
        chunk->HelpAllPendingPuts(gv_);
      }
      EmitChunkRange(chunk, from_key, to_key, read_point, yield, &emitted);
      chunk = chunk->Next();
    }
  }

  if (published) [[likely]] entry.Clear(seq);
  KIWI_OBS_ADD(obs_, scan_keys, emitted);
  if (traced) KIWI_TRACE(kScanEnd, emitted, 0);
  return emitted;
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::Scan(KeyView from_key, KeyView to_key,
                                   std::vector<Entry>& out) {
  out.clear();
  return Scan(from_key, to_key, [&out](KeyView k, ValueView v) {
    out.emplace_back(Layout::OwnKey(k), Layout::OwnValue(v));
  });
}

template <typename Layout>
void KiWiMapT<Layout>::EmitChunkRange(
    Chunk* chunk, KeyView from, const KeyView* to, Version read_point,
    const std::function<void(KeyView, ValueView)>& yield,
    std::size_t* emitted) {
  // Pending puts first (PPA-before-list, see Chunk::FindLatest), reduced to
  // the best candidate per key.
  std::vector<Item> pending;
  if (to != nullptr) {
    chunk->CollectPpaItems(pending, from, *to, read_point);
  } else {
    chunk->CollectAllPpaItems(pending, read_point);
    std::erase_if(pending, [&from](const Item& item) {
      return Layout::KeyLess(item.key, from);
    });
  }
  std::sort(pending.begin(), pending.end(), Chunk::ItemBefore);
  std::size_t pi = 0;
  const auto pending_best = [&pending](std::size_t at) {
    return pending[at];  // first item of a key run is the best (sort order)
  };
  const auto skip_pending_run = [&pending](std::size_t at) {
    const KeyView key = pending[at].key;
    while (at < pending.size() && Layout::KeyEq(pending[at].key, key)) ++at;
    return at;
  };
  const auto emit = [&](KeyView key, ValueView value) {
    if (Layout::IsTombstone(value)) return;  // deleted at this read point
    yield(key, value);
    ++*emitted;
  };

  // Walk the in-chunk list, merging with the pending stream by key.
  const auto from_probe = Layout::MakeProbe(from);
  typename Layout::Probe to_probe{};
  if (to != nullptr) to_probe = Layout::MakeProbe(*to);
  std::int32_t curr =
      chunk->k[chunk->BatchedPredecessorProbe(from_probe)].next.load(
          std::memory_order_acquire);
  while (curr != Chunk::kNullIdx) {
    const typename Chunk::Cell& cell = chunk->k[curr];
    if (to != nullptr &&
        Layout::CompareCell(chunk->a, cell.key, to_probe) > 0) {
      break;
    }
    if (Layout::CompareCell(chunk->a, cell.key, from_probe) < 0) {
      curr = cell.next.load(std::memory_order_acquire);
      continue;
    }
    const KeyView key = Layout::CellKeyView(chunk->a, cell.key);
    // Flush pending-only keys ordered before this one.
    while (pi < pending.size() && Layout::KeyLess(pending[pi].key, key)) {
      emit(pending[pi].key, pending_best(pi).value);
      pi = skip_pending_run(pi);
    }
    // List candidate: first version in this key's (descending) run at or
    // below the read point.
    bool have_list = false;
    Item list_item{key, kNoVersion, Chunk::kNullIdx, ValueView{}};
    const auto key_probe = Layout::MakeProbe(key);
    std::int32_t cursor = curr;
    while (cursor != Chunk::kNullIdx) {
      const typename Chunk::Cell& c = chunk->k[cursor];
      if (Layout::CompareCell(chunk->a, c.key, key_probe) != 0) break;
      if (!have_list && c.version <= read_point) {
        const std::int32_t vp = c.val_ptr.load(std::memory_order_acquire);
        list_item = Item{key, c.version, vp, chunk->LoadValue(vp)};
        have_list = true;
      }
      cursor = c.next.load(std::memory_order_acquire);
    }
    curr = cursor;  // advanced past the whole key run
    // Combine with a same-key pending candidate, if any.
    if (pi < pending.size() && Layout::KeyEq(pending[pi].key, key)) {
      const Item p = pending_best(pi);
      pi = skip_pending_run(pi);
      if (!have_list || Chunk::ItemBefore(p, list_item)) {
        list_item = p;
        have_list = true;
      }
    }
    if (have_list) emit(key, list_item.value);
  }
  // Pending-only keys after the last list key.
  while (pi < pending.size() &&
         (to == nullptr || Layout::KeyLeq(pending[pi].key, *to))) {
    emit(pending[pi].key, pending_best(pi).value);
    pi = skip_pending_run(pi);
  }
}

template <typename Layout>
KiWiMapT<Layout>::Snapshot::Snapshot(KiWiMapT& map)
    : map_(map), slot_(ThreadRegistry::CurrentSlot()) {
  // Identical to a scan's read-point acquisition (Algorithm 2 lines 32-35),
  // over the full key range — the entry stays pinned until destruction so
  // rebalance compaction preserves every version this view may read.
  // Snapshots use their own PSA arrays so concurrent scans by this thread
  // cannot displace the pin; only this thread touches its sub-slots.
  sub_slot_ = kMaxSnapshotsPerThread;
  for (std::size_t i = 0; i < kMaxSnapshotsPerThread; ++i) {
    if (map_.snapshot_psa_[i].Slot(slot_).Load().ver == kNoVersion) {
      sub_slot_ = i;
      break;
    }
  }
  KIWI_ASSERT(sub_slot_ < kMaxSnapshotsPerThread,
              "a thread may hold at most kMaxSnapshotsPerThread open "
              "Snapshots per map");
  PsaEntry& entry = map_.snapshot_psa_[sub_slot_].Slot(slot_);
  seq_ = entry.PublishPending(Layout::PsaMin(), Layout::PsaMax());
  const Version fetched = map_.gv_.FetchIncrement();
  read_point_ = entry.InstallOwn(seq_, fetched);
  KIWI_OBS_INC(map_.obs_, snapshots);
  KIWI_TRACE(kSnapshotOpen, read_point_, 0);
}

template <typename Layout>
KiWiMapT<Layout>::Snapshot::~Snapshot() {
  KIWI_ASSERT(ThreadRegistry::CurrentSlot() == slot_,
              "snapshot released by a different thread");
  map_.snapshot_psa_[sub_slot_].Slot(slot_).Clear(seq_);
}

template <typename Layout>
std::optional<typename Layout::OwnedValue> KiWiMapT<Layout>::Snapshot::Get(
    KeyView key) {
  KIWI_ASSERT(Layout::IsUserKey(key), "key below the user key domain");
  reclaim::EbrGuard guard(map_.ebr_);
  Chunk* chunk = map_.LocateChunk(key);
  // Helping is still required at a pinned read point: a put that loaded GV
  // before our fetch-and-increment could otherwise self-assign a version at
  // or below read_point_ after we looked.
  chunk->HelpPendingPuts(map_.gv_, key, key);
  const typename Chunk::LatestResult latest =
      chunk->FindLatest(key, read_point_);
  if (!latest.found || latest.is_tombstone) return std::nullopt;
  return Layout::OwnValue(latest.value);
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::Snapshot::Scan(
    KeyView from_key, KeyView to_key,
    const std::function<void(KeyView, ValueView)>& yield) {
  if (Layout::KeyLess(from_key, Layout::MinUserKey())) {
    from_key = Layout::MinUserKey();
  }
  if (Layout::KeyLess(to_key, from_key)) return 0;
  std::size_t emitted = 0;
  reclaim::EbrGuard guard(map_.ebr_);
  Chunk* chunk = map_.LocateChunk(from_key);
  while (chunk != nullptr && Layout::KeyLeq(chunk->MinKey(), to_key)) {
    chunk->HelpPendingPuts(map_.gv_, from_key, to_key);
    map_.EmitChunkRange(chunk, from_key, &to_key, read_point_, yield,
                        &emitted);
    chunk = chunk->Next();
  }
  return emitted;
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::Snapshot::Scan(KeyView from_key, KeyView to_key,
                                             std::vector<Entry>& out) {
  out.clear();
  return Scan(from_key, to_key, [&out](KeyView k, ValueView v) {
    out.emplace_back(Layout::OwnKey(k), Layout::OwnValue(v));
  });
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::Size() {
  std::size_t count = 0;
  ScanFrom(Layout::MinUserKey(), [&count](KeyView, ValueView) { ++count; });
  return count;
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::MemoryFootprint() {
  reclaim::EbrGuard guard(ebr_);
  std::size_t bytes = index_.MemoryFootprint() + sizeof(*this);
  for (Chunk* c = sentinel_; c != nullptr; c = c->Next()) {
    bytes += c->MemoryFootprint();
  }
  return bytes;
}

template <typename Layout>
std::size_t KiWiMapT<Layout>::ChunkCount() {
  reclaim::EbrGuard guard(ebr_);
  std::size_t count = 0;
  for (Chunk* c = sentinel_; c != nullptr; c = c->Next()) ++count;
  return count;
}

template <typename Layout>
typename KiWiMapT<Layout>::StructureReport KiWiMapT<Layout>::Report() {
  reclaim::EbrGuard guard(ebr_);
  StructureReport report;
  double fill_sum = 0;
  double batched_sum = 0;
  for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
    const std::uint32_t allocated = c->AllocatedCells();
    report.data_chunks++;
    report.allocated_cells += allocated;
    report.batched_cells += c->batched_count;
    fill_sum += static_cast<double>(allocated) / c->capacity;
    batched_sum += allocated > 0
                       ? static_cast<double>(c->batched_count) / allocated
                       : 1.0;
  }
  if (report.data_chunks > 0) {
    report.avg_fill = fill_sum / report.data_chunks;
    report.avg_batched_ratio = batched_sum / report.data_chunks;
  }
  return report;
}

template <typename Layout>
KiWiStats KiWiMapT<Layout>::Stats() const {
  KiWiStats total;
#if KIWI_OBS_ENABLED
  const obs::OpCounters counters = obs_.Aggregate();
  total.rebalances = counters.rebalances;
  total.rebalance_wins = counters.rebalance_wins;
  total.put_restarts = counters.put_restarts;
  total.chunks_created = counters.chunks_created;
  total.chunks_retired = counters.chunks_retired;
  total.puts_piggybacked = counters.puts_piggybacked;
  total.puts_helped = counters.puts_helped;
#endif
  return total;
}

template <typename Layout>
void KiWiMapT<Layout>::CompactAll() {
  // Quiescent helper: rebalance every data chunk once, forcing version
  // compaction and structure cleanup.
  std::vector<OwnedKey> min_keys;
  {
    reclaim::EbrGuard guard(ebr_);
    for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
      min_keys.push_back(Layout::OwnKey(c->MinKey()));
    }
  }
  for (const OwnedKey& key : min_keys) {
    reclaim::EbrGuard guard(ebr_);
    Chunk* c = LocateChunk(Layout::ViewKey(key));
    if (c->status.load(std::memory_order_acquire) == Chunk::Status::kNormal) {
      Rebalance(c, KeyView{}, ValueView{}, /*has_put=*/false);
    }
  }
}

template <typename Layout>
void KiWiMapT<Layout>::CheckInvariants() {
  reclaim::EbrGuard guard(ebr_);
  KIWI_ASSERT(sentinel_->status.load() == Chunk::Status::kSentinel,
              "head must be the sentinel");
  KeyView prev_min = Layout::SentinelMinKey();
  for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
    KIWI_ASSERT(Layout::KeyLess(prev_min, c->MinKey()) ||
                    c == sentinel_->Next(),
                "chunk minKeys must be strictly increasing");
    KIWI_ASSERT(!Layout::KeyLess(c->MinKey(), Layout::MinUserKey()),
                "data chunk below user domain");
    prev_min = c->MinKey();
    const Chunk* succ = c->Next();
    // In-chunk list: sorted by (key asc, version desc), all in range.
    std::int32_t curr = c->k[0].next.load(std::memory_order_acquire);
    KeyView last_key{};
    Version last_ver = 0;
    bool first = true;
    while (curr != Chunk::kNullIdx) {
      const typename Chunk::Cell& cell = c->k[curr];
      const KeyView cell_key = Layout::CellKeyView(c->a, cell.key);
      KIWI_ASSERT(!Layout::KeyLess(cell_key, c->MinKey()),
                  "cell below chunk range");
      KIWI_ASSERT(succ == nullptr || Layout::KeyLeq(cell_key, succ->MinKey()),
                  "cell above chunk range");
      if (!first) {
        KIWI_ASSERT(Layout::KeyLess(last_key, cell_key) ||
                        (Layout::KeyEq(cell_key, last_key) &&
                         cell.version < last_ver),
                    "in-chunk list out of order");
      }
      first = false;
      last_key = cell_key;
      last_ver = cell.version;
      curr = cell.next.load(std::memory_order_acquire);
    }
  }
}

template <typename Layout>
Xoshiro256& KiWiMapT<Layout>::ThreadRng() {
  thread_local Xoshiro256 rng(0x9e3779b97f4a7c15ULL ^
                              (ThreadRegistry::CurrentSlot() *
                               0x100000001b3ULL));
  return rng;
}

}  // namespace kiwi::core
