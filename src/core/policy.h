// Rebalance policy (paper §3.3.1, tuning from §6.1).
//
// "The policy will typically choose to rebalance C whenever C is full or
// under-utilized, as well as when its batched prefix becomes too small
// relative to the number of keys in C's linked list.  In order to stagger
// rebalance attempts ... the policy can make probabilistic decisions."
//
// Paper tuning: rebalance with probability 0.15 whenever the batched prefix
// is less than 0.625 of the linked list; engage the next chunk whenever
// doing so reduces the number of chunks in the list.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "core/layout.h"

namespace kiwi::core {

/// User-visible construction parameters of a KiWiMap.
struct KiWiConfig {
  /// Data cells per chunk (paper: 1024).
  std::uint32_t chunk_capacity = 1024;
  /// Probability of triggering rebalance on an unbalanced (but not full)
  /// chunk (paper: 0.15).
  double rebalance_probability = 0.15;
  /// A chunk is "unbalanced" when batched prefix < this fraction of its
  /// allocated cells (paper: 0.625).
  double batched_prefix_min_ratio = 0.625;
  /// New chunks are filled to this fraction of capacity (paper: one half).
  double fill_ratio = 0.5;
  /// A trailing new chunk below this fraction is folded into its
  /// predecessor (paper: one quarter).
  double sparse_ratio = 0.25;
  /// Maximum chunks engaged by one rebalance (bounds the freeze window).
  std::uint32_t max_engaged_chunks = 8;
  /// Insert the triggering put's pair during rebalance (paper §6.1 leaves
  /// this off and restarts the put instead; both paths are implemented).
  /// Does not gate PutBatch's bulk path, which always installs its run
  /// through the rebalance build.
  bool enable_put_piggyback = false;
  /// PutBatch switches from the per-key PPA path to bulk chunk building
  /// (rebalance-carried) once a chunk's covered run reaches this many
  /// entries.  0 = auto: max(4, chunk_capacity / 8).
  std::uint32_t batch_bulk_min_run = 0;
  /// Arena sizing for byte-layout maps (KiWiByteMap); ignored by the
  /// fixed-width int64 map.  See core/layout.h.
  ByteConfig bytes{};
};

/// Stateless policy decisions parameterized by KiWiConfig.  The RNG is the
/// calling thread's (decisions are per-thread probabilistic).
class RebalancePolicy {
 public:
  explicit RebalancePolicy(const KiWiConfig& config) : config_(config) {}

  /// Should checkRebalance trigger on this chunk?  `allocated` counts data
  /// cells handed out, `batched` the sorted prefix size.
  bool ShouldTrigger(std::uint32_t allocated, std::uint32_t batched,
                     Xoshiro256& rng) const {
    if (allocated >= config_.chunk_capacity) return true;  // full
    if (static_cast<double>(batched) <
        config_.batched_prefix_min_ratio * static_cast<double>(allocated)) {
      return rng.NextBool(config_.rebalance_probability);
    }
    return false;
  }

  /// Should rebalance engage the next chunk?  Engage whenever the projected
  /// number of replacement chunks stays below the engaged count, i.e. the
  /// merge reduces the chunk count (paper §6.1).
  bool ShouldEngageNext(std::uint32_t engaged_chunks,
                        std::uint64_t engaged_cells,
                        std::uint32_t next_cells) const {
    if (engaged_chunks >= config_.max_engaged_chunks) return false;
    const std::uint64_t per_chunk = std::uint64_t(
        config_.fill_ratio * static_cast<double>(config_.chunk_capacity));
    const std::uint64_t total = engaged_cells + next_cells;
    const std::uint64_t projected = (total + per_chunk - 1) / per_chunk;
    return projected <= engaged_chunks;  // engaging yields <= engaged chunks
  }

  /// Minimum chunk-covered run length at which PutBatch bulk-builds
  /// replacement chunks instead of inserting per key (see
  /// KiWiConfig::batch_bulk_min_run).
  std::uint32_t BulkRunThreshold() const {
    if (config_.batch_bulk_min_run != 0) return config_.batch_bulk_min_run;
    const std::uint32_t auto_threshold = config_.chunk_capacity / 8;
    return auto_threshold < 4 ? 4 : auto_threshold;
  }

  const KiWiConfig& config() const { return config_; }

 private:
  KiWiConfig config_;
};

}  // namespace kiwi::core
