#include "core/chunk.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <new>

#include "common/assert.h"
#include "common/thread_registry.h"
#include "core/rebalance_object.h"
#include "reclaim/pool.h"

namespace kiwi::core {

// The slab layout computes `k`/`v` as raw offsets past the header; cells
// are constructed by placement-new below, so they must not need cleanup
// beyond the slab free itself.
static_assert(std::is_trivially_destructible_v<Chunk::Cell>,
              "cells live in the slab and are never destroyed individually");
static_assert(sizeof(Chunk) % alignof(Chunk::Cell) == 0,
              "cell array must start aligned after the header");

Chunk* Chunk::Create(reclaim::SlabPool& pool, Key min_key,
                     std::uint32_t capacity, Chunk* parent, Status status,
                     std::span<const Item> batched) {
  void* slab = pool.Allocate(SlabBytes(capacity));
  return new (slab) Chunk(&pool, min_key, capacity, parent, status, batched);
}

void Chunk::Destroy(Chunk* chunk) {
  reclaim::SlabPool* pool = chunk->pool_;
  const std::size_t bytes = SlabBytes(chunk->capacity);
  chunk->~Chunk();
  pool->Deallocate(chunk, bytes);
}

Chunk::Chunk(reclaim::SlabPool* pool, Key min_key_arg,
             std::uint32_t capacity_arg, Chunk* parent_arg, Status status_arg,
             std::span<const Item> batched)
    : min_key(min_key_arg),
      capacity(capacity_arg),
      parent(parent_arg),
      status(status_arg),
      next(nullptr),
      k_counter(1 + static_cast<std::uint32_t>(batched.size())),
      v_counter(static_cast<std::uint32_t>(batched.size())),
      batched_count(static_cast<std::uint32_t>(batched.size())),
      birth_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())),
      k(reinterpret_cast<Cell*>(reinterpret_cast<char*>(this) +
                                sizeof(Chunk))),
      v(reinterpret_cast<Value*>(reinterpret_cast<char*>(this) +
                                 sizeof(Chunk) +
                                 (capacity_arg + 1) * sizeof(Cell))),
      pool_(pool) {
  KIWI_ASSERT(batched.size() <= capacity, "batched prefix exceeds capacity");
  // The slab tail holds raw storage: bring the cells to life (values are
  // write-before-read, like the `new Value[n]` default-init they replace).
  for (std::uint32_t i = 0; i <= capacity_arg; ++i) new (&k[i]) Cell();
  std::uninitialized_default_construct_n(v, capacity_arg);
  // Cell 0 is the list-head sentinel.
  k[0].key = kMinKeySentinel;
  k[0].version = kPendingVersion;  // never compared
  k[0].next.store(batched.empty() ? kNullIdx : 1, std::memory_order_relaxed);
  // Seed the sorted prefix: cell i holds batched[i-1] and points to v[i-1].
  for (std::size_t i = 0; i < batched.size(); ++i) {
    KIWI_DASSERT(i == 0 || !ItemBefore(batched[i], batched[i - 1]),
                 "batched prefix must be sorted");
    Cell& cell = k[i + 1];
    cell.key = batched[i].key;
    cell.version = batched[i].version;
    cell.val_ptr.store(static_cast<std::int32_t>(i),
                       std::memory_order_relaxed);
    cell.next.store(i + 1 < batched.size() ? static_cast<std::int32_t>(i + 2)
                                           : kNullIdx,
                    std::memory_order_relaxed);
    v[i] = batched[i].value;
  }
  for (auto& entry : ppa) entry.store(kPpaIdle, std::memory_order_relaxed);
}

Chunk::~Chunk() {
  if (RebalanceObject* engaged = ro.load(std::memory_order_acquire)) {
    RebalanceObject::Unref(engaged);
  }
}

std::int32_t Chunk::BatchedPredecessor(Key key) const {
  // Largest index in [1, batched_count] whose key is strictly below `key`
  // (the prefix is sorted by key; equal keys sit in descending-version order
  // but we only need a strict-lower bound here).  0 = sentinel if none.
  std::uint32_t lo = 0;
  std::uint32_t hi = batched_count;  // inclusive upper cell index
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo + 1) / 2;
    if (k[mid].key < key) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return static_cast<std::int32_t>(lo);
}

std::int32_t Chunk::FindCell(Key key, Version version, std::int32_t* pred,
                             std::int32_t* succ) const {
  return FindCellFrom(kNullIdx, key, version, pred, succ);
}

std::int32_t Chunk::FindCellFrom(std::int32_t start, Key key, Version version,
                                 std::int32_t* pred, std::int32_t* succ) const {
  KIWI_DASSERT(start == kNullIdx || k[start].key < key,
               "FindCellFrom hint must precede the target key");
  std::int32_t prev = start == kNullIdx ? BatchedPredecessor(key) : start;
  std::int32_t curr = k[prev].next.load(std::memory_order_acquire);
  while (curr != kNullIdx) {
    const Cell& cell = k[curr];
    if (cell.key > key || (cell.key == key && cell.version <= version)) break;
    prev = curr;
    curr = cell.next.load(std::memory_order_acquire);
  }
  if (pred != nullptr) *pred = prev;
  if (succ != nullptr) *succ = curr;
  if (curr != kNullIdx && k[curr].key == key && k[curr].version == version) {
    return curr;
  }
  return kNullIdx;
}

Chunk::LatestResult Chunk::FindLatest(Key key, Version max_version) const {
  LatestResult best;

  // PPA candidates first, list second.  The order matters: a put that links
  // its cell and then clears its PPA slot between our two passes is seen by
  // the list pass; the reverse order could miss it in both.
  //
  // Entries still at ⊥ were published after our helping pass and are ordered
  // after us; frozen entries belong to puts that will restart.
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t t = 0; t < high_water; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    const Version ver = PpaVer(word);
    if (ver == kPpaVerBottom || ver == kPpaVerFrozen || ver > max_version) {
      continue;
    }
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Cell& cell = k[idx];
    if (cell.key != key) continue;
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    if (!best.found || ver > best.version ||
        (ver == best.version && val_ptr > best.val_ptr)) {
      best.found = true;
      best.version = ver;
      best.val_ptr = val_ptr;
    }
  }

  // List candidate: versions of a key are chained in descending order, so
  // the first in-range cell is the latest visible one.
  std::int32_t curr =
      k[BatchedPredecessor(key)].next.load(std::memory_order_acquire);
  while (curr != kNullIdx) {
    const Cell& cell = k[curr];
    if (cell.key > key) break;
    if (cell.key == key && cell.version <= max_version) {
      const std::int32_t val_ptr =
          cell.val_ptr.load(std::memory_order_acquire);
      if (!best.found || cell.version > best.version ||
          (cell.version == best.version && val_ptr > best.val_ptr)) {
        best.found = true;
        best.version = cell.version;
        best.val_ptr = val_ptr;
      }
      break;
    }
    curr = cell.next.load(std::memory_order_acquire);
  }

  if (best.found) {
    best.value = v[best.val_ptr];
    best.is_tombstone = (best.value == kTombstoneValue);
  }
  return best;
}

void Chunk::HelpPendingPuts(GlobalVersion& gv, Key from, Key to) {
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t t = 0; t < high_water; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    if (PpaVer(word) != kPpaVerBottom) continue;
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Key key = k[idx].key;
    if (key < from || key > to) continue;
    const Version current = gv.Load();
    std::uint64_t expected = word;
    // Failure means the put assigned its own version, was helped by someone
    // else, or was frozen — all fine.
    ppa[t].compare_exchange_strong(expected, PackPpa(current, idx),
                                   std::memory_order_seq_cst);
  }
}

std::uint64_t Chunk::FreezePpa() {
  std::uint64_t retries = 0;
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    while (true) {
      const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
      if (PpaVer(word) != kPpaVerBottom) break;  // versioned or frozen
      std::uint64_t expected = word;
      if (ppa[t].compare_exchange_strong(expected,
                                         PackPpa(kPpaVerFrozen, PpaIdx(word)),
                                         std::memory_order_seq_cst)) {
        break;
      }
      ++retries;  // lost to a concurrent publish/help; re-read and retry
    }
  }
  return retries;
}

void Chunk::CollectPpaItems(std::vector<Item>& out, Key from, Key to,
                            Version max_version) const {
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    const std::uint64_t word = ppa[t].load(std::memory_order_seq_cst);
    const Version ver = PpaVer(word);
    if (ver == kPpaVerBottom || ver == kPpaVerFrozen || ver > max_version) {
      continue;
    }
    const std::uint32_t idx = PpaIdx(word);
    if (idx == kPpaNoIdx) continue;
    const Cell& cell = k[idx];
    if (cell.key < from || cell.key > to) continue;
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    out.push_back(Item{cell.key, ver, val_ptr, v[val_ptr]});
  }
}

void Chunk::CollectItems(std::vector<Item>& out) const {
  const std::size_t base = out.size();
  // PPA before list (same reasoning as FindLatest): a put that links and
  // clears between the passes must be caught by the list walk.
  CollectPpaItems(out, kMinUserKey, kMaxUserKey, kMaxReadVersion);
  std::int32_t curr = k[0].next.load(std::memory_order_acquire);
  while (curr != kNullIdx) {
    const Cell& cell = k[curr];
    const std::int32_t val_ptr = cell.val_ptr.load(std::memory_order_acquire);
    out.push_back(Item{cell.key, cell.version, val_ptr, v[val_ptr]});
    curr = cell.next.load(std::memory_order_acquire);
  }
  std::sort(out.begin() + base, out.end(), ItemBefore);
  // Drop exact duplicates (a completed put appears in both the list and a
  // not-yet-cleared PPA slot) and {key, version} duplicates (the smaller
  // valPtr lost the overwrite race).
  const auto duplicate = [](const Item& a, const Item& b) {
    return a.key == b.key && a.version == b.version;
  };
  out.erase(std::unique(out.begin() + base, out.end(), duplicate), out.end());
}

std::size_t Chunk::MemoryFootprint() const {
  // The whole chunk is one slab; report what the pool actually reserved.
  return reclaim::SlabPool::RoundedSize(SlabBytes(capacity));
}

}  // namespace kiwi::core
