#include "core/chunk.h"

#include <type_traits>

#include "core/rebalance_object.h"

namespace kiwi::core {

// The slab layout computes `k`/`v`/`a` as raw offsets past the header; cells
// are constructed by placement-new, so they must not need cleanup beyond the
// slab free itself.
static_assert(std::is_trivially_destructible_v<Chunk::Cell>,
              "cells live in the slab and are never destroyed individually");
static_assert(sizeof(Chunk) % alignof(Chunk::Cell) == 0,
              "cell array must start aligned after the header");
static_assert(
    std::is_trivially_destructible_v<ChunkT<ByteLayout>::Cell>,
    "cells live in the slab and are never destroyed individually");
static_assert(sizeof(ChunkT<ByteLayout>) %
                      alignof(ChunkT<ByteLayout>::Cell) ==
                  0,
              "cell array must start aligned after the header");
// The byte cell stays fixed-width and compact: {prefix, off, len} packs to
// 16 bytes, so a byte cell (key + version + val_ptr + next) is 32 bytes.
static_assert(sizeof(ByteLayout::CellKey) == 16, "byte cell key grew");
static_assert(sizeof(ByteLayout::StoredValue) == 8, "byte value slot grew");

template <typename Layout>
void UnrefRebalanceObject(RebalanceObjectT<Layout>* ro) {
  RebalanceObjectT<Layout>::Unref(ro);
}
template void UnrefRebalanceObject<Int64Layout>(
    RebalanceObjectT<Int64Layout>*);
template void UnrefRebalanceObject<ByteLayout>(RebalanceObjectT<ByteLayout>*);

template class ChunkT<Int64Layout>;
template class ChunkT<ByteLayout>;

}  // namespace kiwi::core
