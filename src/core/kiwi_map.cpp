// KiWiMap client operations: put / get / scan (paper Algorithm 2) plus
// construction, diagnostics and the scan merge logic.  Rebalancing lives in
// rebalance.cpp.
#include "core/kiwi_map.h"

#include <algorithm>

#include "common/assert.h"
#include "common/test_hooks.h"
#include "common/thread_registry.h"
#include "obs/trace.h"

namespace kiwi::core {

KiWiMap::KiWiMap(KiWiConfig config)
    : policy_(config), ebr_(), index_(ebr_) {
  KIWI_ASSERT(config.chunk_capacity >= 2 &&
                  config.chunk_capacity < Chunk::kPpaNoIdx,
              "chunk capacity must fit the PPA's 16-bit cell index");
  // Permanent sentinel head (minKey = -inf, capacity 0, never engaged) plus
  // one initial data chunk covering the entire user key domain.
  sentinel_ = Chunk::Create(pool_, kMinKeySentinel, 0, nullptr,
                            Chunk::Status::kSentinel);
  auto* first = Chunk::Create(pool_, kMinUserKey, config.chunk_capacity,
                              nullptr, Chunk::Status::kNormal);
  sentinel_->next.Store(MarkedPtr<Chunk>(first, false));
  index_.PutUnconditional(sentinel_->min_key, sentinel_);
  index_.PutUnconditional(first->min_key, first);
}

KiWiMap::KiWiMap(std::span<const Entry> sorted_entries, KiWiConfig config)
    : KiWiMap(config) {
  // Carve the input into half-filled normal chunks, exactly the layout a
  // rebalance would produce, and index them eagerly.
  const std::uint32_t capacity = config.chunk_capacity;
  const std::uint32_t fill = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.fill_ratio * capacity));
  Chunk* tail = sentinel_->Next();  // the initial empty chunk
  std::size_t begin = 0;
  while (begin < sorted_entries.size()) {
    const std::size_t end = std::min(begin + fill, sorted_entries.size());
    std::vector<Chunk::Item> items;
    items.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [key, value] = sorted_entries[i];
      KIWI_ASSERT(key >= kMinUserKey, "bulk-load key below the user domain");
      KIWI_ASSERT(value != kTombstoneValue, "bulk-load value is reserved");
      KIWI_ASSERT(items.empty() || key > items.back().key,
                  "bulk-load keys must be strictly ascending");
      KIWI_ASSERT(begin == 0 || sorted_entries[begin - 1].first < key,
                  "bulk-load keys must be strictly ascending");
      items.push_back(Chunk::Item{key, /*version=*/1,
                                  static_cast<std::int32_t>(i - begin),
                                  value});
    }
    // The very first segment loads into a chunk starting at kMinUserKey so
    // the whole domain stays covered; later chunks start at their first key.
    const Key min_key = begin == 0 ? kMinUserKey : items.front().key;
    auto* chunk =
        Chunk::Create(pool_, min_key, capacity, nullptr,
                      Chunk::Status::kNormal,
                      std::span<const Chunk::Item>(items));
    KIWI_OBS_INC(obs_, chunks_created);
    if (begin == 0) {
      // Replace the initial empty chunk outright (single-threaded ctor).
      Chunk* initial = sentinel_->Next();
      sentinel_->next.Store(MarkedPtr<Chunk>(chunk, false));
      index_.DeleteConditional(initial->min_key, initial);
      Chunk::Destroy(initial);
    } else {
      tail->next.Store(MarkedPtr<Chunk>(chunk, false));
    }
    index_.PutUnconditional(chunk->min_key, chunk);
    tail = chunk;
    begin = end;
  }
}

KiWiMap::~KiWiMap() {
  // Externally synchronized.  The metrics pump (if any) reads the structure
  // from its own thread, so it must be joined before anything is torn down.
  StopMetricsPump();
  // Live chunks are destroyed here; disconnected
  // chunks and rebalance objects drain with ebr_'s destructor.  Their slabs
  // all land in pool_, which frees them last (declared before ebr_).
  Chunk* chunk = sentinel_;
  while (chunk != nullptr) {
    Chunk* next = chunk->Next();
    Chunk::Destroy(chunk);
    chunk = next;
  }
}

Chunk* KiWiMap::LocateChunk(Key key) const {
  // The index may lag the list (lazy updates), so finish with a traversal —
  // but the lag can also hand back a chunk that was already spliced out.  A
  // retired chunk's next pointers still chain through its dead section,
  // whose frozen cells miss every put that completed in the replacement
  // chunks, so a reader that trusts it returns stale data (found by the
  // linearizability fuzzer, seed 74: a scan observed a value overwritten
  // before the scan began).  Same doctrine as FindListPredecessor: never
  // start from or walk through a retired chunk — restart from the sentinel,
  // which is never retired.  Each restart implies another thread's splice
  // completed in the meantime, so this cannot loop without global progress.
  while (true) {
    auto* chunk = static_cast<Chunk*>(index_.Lookup(key));
    if (chunk == nullptr || chunk->retired.load(std::memory_order_acquire)) {
      chunk = sentinel_;
    }
    bool dead_region = false;
    while (true) {
      Chunk* next = chunk->Next();
      if (next == nullptr || next->min_key > key) break;
      chunk = next;
      if (chunk->retired.load(std::memory_order_acquire)) {
        dead_region = true;
        break;
      }
    }
    if (!dead_region) return chunk;
    KIWI_OBS_INC(obs_, locate_restarts);
  }
}

void KiWiMap::Put(Key key, Value value) {
  KIWI_ASSERT(value != kTombstoneValue, "value reserved for tombstones");
  KIWI_OBS_INC(obs_, puts);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kPut, timer);
  PutImpl(key, value);
}

void KiWiMap::Remove(Key key) {
  // Deletion is a put of the tombstone (paper: "a put of the ⊥ value
  // removes the pair").  The tombstone flows through the same protocol and
  // is filtered on the read side; rebalance compacts it away.  Latencies
  // land in the put histogram (a remove IS a put).
  KIWI_OBS_INC(obs_, removes);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kPut, timer);
  PutImpl(key, kTombstoneValue);
}

void KiWiMap::PutImpl(Key key, Value value) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  const bool traced = KIWI_TRACE_SAMPLED(kPutOp, key, value);

  while (true) {
    reclaim::EbrGuard guard(ebr_);
    Chunk* chunk = LocateChunk(key);
    KIWI_ASSERT(chunk->status.load(std::memory_order_acquire) !=
                    Chunk::Status::kSentinel,
                "user key resolved to the sentinel chunk");

    // -- phase 0: maintenance check (Algorithm 3), before allocating so
    //    that infants never fill up.
    bool put_done = false;
    if (CheckRebalance(chunk, key, value, &put_done)) {
      if (put_done) return;
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, key, reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }

    // -- phase 1: allocate a value slot and a cell (F&A/F&I give every
    //    concurrent put distinct indices).
    const std::uint32_t j =
        chunk->v_counter.fetch_add(1, std::memory_order_seq_cst);
    const std::uint32_t i =
        chunk->k_counter.fetch_add(1, std::memory_order_seq_cst);
    if (j >= chunk->capacity || i > chunk->capacity) {
      KIWI_OBS_INC(obs_, cell_alloc_overflows);
      if (Rebalance(chunk, key, value, /*has_put=*/true)) {
        KIWI_OBS_INC(obs_, puts_piggybacked);
        KIWI_TRACE(kPutPiggyback, key, reinterpret_cast<std::uintptr_t>(chunk));
        return;
      }
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, key, reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }
    chunk->v[j] = value;
    Chunk::Cell& cell = chunk->k[i];
    cell.key = key;
    cell.version = kNoVersion;
    cell.val_ptr.store(static_cast<std::int32_t>(j),
                       std::memory_order_relaxed);
    cell.next.store(Chunk::kNullIdx, std::memory_order_relaxed);

    // -- phase 2: publish in the PPA, then acquire a version.  The publish
    //    is a CAS from the idle word so it fails if the chunk froze after
    //    phase 0 (paper line 14).
    std::uint64_t expected = Chunk::kPpaIdle;
    if (!chunk->ppa[slot].compare_exchange_strong(
            expected, Chunk::PackPpa(Chunk::kPpaVerBottom, i),
            std::memory_order_seq_cst)) {
      KIWI_OBS_INC(obs_, ppa_publish_fails);
      if (Rebalance(chunk, key, value, /*has_put=*/true)) {
        KIWI_OBS_INC(obs_, puts_piggybacked);
        KIWI_TRACE(kPutPiggyback, key, reinterpret_cast<std::uintptr_t>(chunk));
        return;
      }
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, key, reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }
    if (traced) KIWI_TRACE(kPutPpaPublish, key, i);
    TestHooks::Run(TestHooks::put_before_version_cas);
    const Version gv = gv_.Load();
    std::uint64_t published = Chunk::PackPpa(Chunk::kPpaVerBottom, i);
    const bool own_cas = chunk->ppa[slot].compare_exchange_strong(
        published, Chunk::PackPpa(gv, i), std::memory_order_seq_cst);
    // Whether our CAS, a helper's, or the freezer won, the entry is
    // authoritative (paper line 16).
    const Version version =
        Chunk::PpaVer(chunk->ppa[slot].load(std::memory_order_seq_cst));
    if (!own_cas && version != Chunk::kPpaVerFrozen) {
      KIWI_OBS_INC(obs_, puts_helped);  // a scan or get installed our version
      KIWI_TRACE(kPutHelped, key, version);
    }
    if (version == Chunk::kPpaVerFrozen) {
      // The chunk froze between our status check and version acquisition;
      // the entry stays frozen (this chunk is dead) and the put restarts.
      if (Rebalance(chunk, key, value, /*has_put=*/true)) {
        KIWI_OBS_INC(obs_, puts_piggybacked);
        KIWI_TRACE(kPutPiggyback, key, reinterpret_cast<std::uintptr_t>(chunk));
        return;
      }
      KIWI_OBS_INC(obs_, put_restarts);
      KIWI_TRACE(kPutRestart, key, reinterpret_cast<std::uintptr_t>(chunk));
      continue;
    }
    cell.version = version;

    // -- phase 3: link the cell into the intra-chunk list (paper 17-25).
    while (true) {
      std::int32_t pred;
      std::int32_t succ;
      const std::int32_t existing = chunk->FindCell(key, version, &pred, &succ);
      if (existing == Chunk::kNullIdx) {
        cell.next.store(succ, std::memory_order_relaxed);
        std::int32_t expected_succ = succ;
        if (chunk->k[pred].next.compare_exchange_strong(
                expected_succ, static_cast<std::int32_t>(i),
                std::memory_order_seq_cst)) {
          break;
        }
        KIWI_OBS_INC(obs_, put_link_retries);
        continue;  // list changed under us; re-find the insertion point
      }
      // Same {key, version} already linked: the larger value location wins
      // (it fetched-and-added later).
      const std::int32_t current =
          chunk->k[existing].val_ptr.load(std::memory_order_acquire);
      if (current >= static_cast<std::int32_t>(j)) break;  // we lost
      std::int32_t expected_ptr = current;
      chunk->k[existing].val_ptr.compare_exchange_strong(
          expected_ptr, static_cast<std::int32_t>(j),
          std::memory_order_seq_cst);
    }

    chunk->ppa[slot].store(Chunk::kPpaIdle, std::memory_order_seq_cst);
    return;
  }
}

void KiWiMap::PutBatch(std::span<const Entry> entries) {
  if (entries.empty()) return;
  KIWI_OBS_INC(obs_, put_batches);
  KIWI_OBS_ADD(obs_, batch_entries, entries.size());

  // Normalize the batch: sort by key (stable, so equal keys keep their
  // submission order), then keep only the last occurrence of each key —
  // the state the equivalent sequence of Puts would leave behind.
  std::vector<Entry> sorted(entries.begin(), entries.end());
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const Entry& a, const Entry& b) { return a.first < b.first; });
  std::size_t w = 0;
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    if (r + 1 < sorted.size() && sorted[r + 1].first == sorted[r].first) {
      continue;  // superseded by a later write to the same key
    }
    sorted[w++] = sorted[r];
  }
  sorted.resize(w);
  for (const auto& [key, value] : sorted) {
    KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
    KIWI_ASSERT(value != kTombstoneValue, "value reserved for tombstones");
  }
  KIWI_TRACE(kBatchStart, entries.size(), sorted.size());

  const std::size_t slot = ThreadRegistry::CurrentSlot();
  const std::uint32_t bulk_min = policy_.BulkRunThreshold();
  std::size_t done = 0;
  while (done < sorted.size()) {
    reclaim::EbrGuard guard(ebr_);
    Chunk* chunk = LocateChunk(sorted[done].first);
    KIWI_ASSERT(chunk->status.load(std::memory_order_acquire) !=
                    Chunk::Status::kSentinel,
                "user key resolved to the sentinel chunk");

    // Infant chunk: finish its parent's rebalance and retry (PutImpl's
    // phase 0; the policy trigger is folded into the run dispatch below).
    if (chunk->status.load(std::memory_order_acquire) ==
        Chunk::Status::kInfant) {
      RebalanceObject* ro = chunk->parent->ro.load(std::memory_order_acquire);
      KIWI_ASSERT(ro != nullptr, "infant chunk without a parent rebalance");
      Normalize(ro);
      continue;
    }

    // The run this chunk covers: keys below the successor's minKey.  The
    // bound stays valid even if the successor is concurrently replaced —
    // replacement heads inherit their sector's minKey.
    Chunk* succ = chunk->Next();
    std::size_t run_end = sorted.size();
    if (succ != nullptr) {
      run_end = done + 1;
      while (run_end < sorted.size() &&
             sorted[run_end].first < succ->min_key) {
        ++run_end;
      }
    }
    const std::span<const Entry> run(sorted.data() + done, run_end - done);

    const std::uint32_t allocated = chunk->AllocatedCells();
    const bool full =
        chunk->k_counter.load(std::memory_order_acquire) > chunk->capacity ||
        chunk->v_counter.load(std::memory_order_acquire) >= chunk->capacity;
    const bool frozen = chunk->status.load(std::memory_order_acquire) ==
                        Chunk::Status::kFrozen;
    if (run.size() >= bulk_min || full || frozen ||
        policy_.ShouldTrigger(allocated, chunk->batched_count, ThreadRng())) {
      // Bulk path: carry the run through the rebalance build, seeding the
      // replacement chunks' sorted prefixes straight from the batch — no
      // per-key PPA round trips.  0 means another thread's section won
      // consensus; re-locate and retry (lock-free: each loss implies a
      // competing splice completed).
      const std::size_t installed = Rebalance(chunk, run);
      if (installed > 0) {
        KIWI_OBS_ADD(obs_, batch_bulk_entries, installed);
        KIWI_TRACE(kBatchBulk, run[0].first, installed);
        done += installed;
      } else {
        KIWI_OBS_INC(obs_, put_restarts);
        KIWI_TRACE(kPutRestart, sorted[done].first,
                   reinterpret_cast<std::uintptr_t>(chunk));
      }
      continue;
    }

    // Short run: the per-key PPA protocol, with the two index claims
    // batched and the insertion point carried between keys.
    const std::size_t installed = PutRunPerOp(chunk, run, slot);
    if (installed > 0) {
      KIWI_TRACE(kBatchRun, run[0].first, installed);
      done += installed;
    }
    // installed < run.size(): the chunk filled or froze mid-run; the next
    // iteration re-locates the remainder and takes the rebalance path.
  }
}

std::size_t KiWiMap::PutRunPerOp(Chunk* chunk, std::span<const Entry> run,
                                 std::size_t slot) {
  // Claim cells and value slots for as much of the run as plausibly fits —
  // two fetch-adds instead of two per key.  The counters can still race
  // past capacity (other writers claim concurrently), so the post-claim
  // bounds below are authoritative.  Claimed-but-unused cells are benign:
  // never published, never linked; AllocatedCells is documented as an
  // upper bound on live entries.
  const std::uint32_t cap = chunk->capacity;
  const std::uint32_t v_seen =
      chunk->v_counter.load(std::memory_order_acquire);
  const std::uint32_t want = static_cast<std::uint32_t>(std::min<std::size_t>(
      run.size(), v_seen < cap ? cap - v_seen : 0));
  if (want == 0) return 0;
  const std::uint32_t j_base =
      chunk->v_counter.fetch_add(want, std::memory_order_seq_cst);
  const std::uint32_t i_base =
      chunk->k_counter.fetch_add(want, std::memory_order_seq_cst);
  const std::uint32_t usable_v =
      j_base < cap ? std::min(want, cap - j_base) : 0;
  const std::uint32_t usable_k =
      i_base <= cap ? std::min(want, cap - i_base + 1) : 0;
  const std::uint32_t n = std::min(usable_v, usable_k);

  // Keys ascend within the run, so each key's insertion point is at or
  // after the previous one's predecessor — thread it through as the next
  // list search's starting point.
  std::int32_t hint = Chunk::kNullIdx;
  for (std::uint32_t t = 0; t < n; ++t) {
    const auto [key, value] = run[t];
    const std::uint32_t j = j_base + t;
    const std::uint32_t i = i_base + t;
    chunk->v[j] = value;
    Chunk::Cell& cell = chunk->k[i];
    cell.key = key;
    cell.version = kNoVersion;
    cell.val_ptr.store(static_cast<std::int32_t>(j),
                       std::memory_order_relaxed);
    cell.next.store(Chunk::kNullIdx, std::memory_order_relaxed);

    // PutImpl's phases 2-3.  A failed publish or a frozen version means
    // the chunk froze under us: entries [t, n) are not installed and the
    // caller re-dispatches them after re-locating.
    std::uint64_t expected = Chunk::kPpaIdle;
    if (!chunk->ppa[slot].compare_exchange_strong(
            expected, Chunk::PackPpa(Chunk::kPpaVerBottom, i),
            std::memory_order_seq_cst)) {
      return t;
    }
    TestHooks::Run(TestHooks::put_before_version_cas);
    const Version gv = gv_.Load();
    std::uint64_t published = Chunk::PackPpa(Chunk::kPpaVerBottom, i);
    const bool own_cas = chunk->ppa[slot].compare_exchange_strong(
        published, Chunk::PackPpa(gv, i), std::memory_order_seq_cst);
    const Version version =
        Chunk::PpaVer(chunk->ppa[slot].load(std::memory_order_seq_cst));
    if (!own_cas && version != Chunk::kPpaVerFrozen) {
      KIWI_OBS_INC(obs_, puts_helped);
      KIWI_TRACE(kPutHelped, key, version);
    }
    if (version == Chunk::kPpaVerFrozen) return t;
    cell.version = version;

    while (true) {
      std::int32_t pred;
      std::int32_t succ;
      const std::int32_t existing =
          chunk->FindCellFrom(hint, key, version, &pred, &succ);
      if (existing == Chunk::kNullIdx) {
        cell.next.store(succ, std::memory_order_relaxed);
        std::int32_t expected_succ = succ;
        if (chunk->k[pred].next.compare_exchange_strong(
                expected_succ, static_cast<std::int32_t>(i),
                std::memory_order_seq_cst)) {
          hint = pred;
          break;
        }
        KIWI_OBS_INC(obs_, put_link_retries);
        continue;  // list changed under us; re-find the insertion point
      }
      // Same {key, version} already linked: the larger value location wins
      // (it fetched-and-added later).
      const std::int32_t current =
          chunk->k[existing].val_ptr.load(std::memory_order_acquire);
      if (current >= static_cast<std::int32_t>(j)) {
        hint = pred;
        break;  // we lost
      }
      std::int32_t expected_ptr = current;
      chunk->k[existing].val_ptr.compare_exchange_strong(
          expected_ptr, static_cast<std::int32_t>(j),
          std::memory_order_seq_cst);
    }
    chunk->ppa[slot].store(Chunk::kPpaIdle, std::memory_order_seq_cst);
  }
  return n;
}

std::optional<Value> KiWiMap::Get(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  KIWI_OBS_INC(obs_, gets);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kGet, timer);
  reclaim::EbrGuard guard(ebr_);
  Chunk* chunk = LocateChunk(key);
  // Help any pending put to this key acquire a version: ignoring it could
  // order this get inconsistently with a later scan (paper Figure 2).  The
  // fuzz mutant kSkipGetHelp re-breaks exactly this line.
  if (!TestHooks::MutantEnabled(TestHooks::kSkipGetHelp)) [[likely]] {
    chunk->HelpPendingPuts(gv_, key, key);
  }
  TestHooks::Run(TestHooks::get_after_help);
  const Chunk::LatestResult latest = chunk->FindLatest(key, kMaxReadVersion);
  const bool hit = latest.found && !latest.is_tombstone;
  (void)KIWI_TRACE_SAMPLED(kGetOp, key, hit);
  if (!hit) return std::nullopt;
  KIWI_OBS_INC(obs_, get_hits);
  return latest.value;
}

std::size_t KiWiMap::Scan(Key from_key, Key to_key,
                          const std::function<void(Key, Value)>& yield) {
  if (from_key < kMinUserKey) from_key = kMinUserKey;
  if (from_key > to_key) return 0;
  KIWI_OBS_INC(obs_, scans);
  KIWI_OBS_SAMPLED_TIMER(obs_, obs::Latency::kScan, timer);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  PsaEntry& entry = psa_.Slot(slot);
  const bool traced = KIWI_TRACE_SAMPLED(
      kScanBegin, static_cast<std::uint64_t>(from_key),
      static_cast<std::uint64_t>(to_key));

  // -- 1. acquire a read point, synchronizing with rebalance via the PSA
  //    (paper lines 32-35): publish intent, F&I GV, install (or adopt the
  //    version a helping rebalance installed).  The publish-before-F&I
  //    order is load-bearing (fuzz mutant kSkipScanPublish re-breaks it):
  //    a rebalance that cannot see this scan's entry may compact away
  //    versions at or below its read point.
  std::uint64_t seq = 0;
  Version read_point;
  const bool published =
      !TestHooks::MutantEnabled(TestHooks::kSkipScanPublish);
  if (published) [[likely]] {
    seq = entry.PublishPending(from_key, to_key);
    TestHooks::Run(TestHooks::scan_before_version_install);
    const Version fetched = gv_.FetchIncrement();
    read_point = entry.InstallOwn(seq, fetched);
    if (traced) KIWI_TRACE(kScanVersion, read_point, read_point != fetched);
  } else {
    read_point = gv_.FetchIncrement();  // mutant: invisible to rebalance
    // Fire the same site so the fuzzer can stall the mutant scan in its
    // vulnerable window (read point taken, chunks not yet read).
    TestHooks::Run(TestHooks::scan_before_version_install);
  }

  // -- 2. read every key in range at `read_point`.
  std::size_t emitted = 0;
  {
    reclaim::EbrGuard guard(ebr_);
    Chunk* chunk = LocateChunk(from_key);
    while (chunk != nullptr && chunk->min_key <= to_key) {
      chunk->HelpPendingPuts(gv_, from_key, to_key);
      EmitChunkRange(chunk, from_key, to_key, read_point, yield, &emitted);
      chunk = chunk->Next();
    }
  }

  if (published) [[likely]] entry.Clear(seq);
  KIWI_OBS_ADD(obs_, scan_keys, emitted);
  if (traced) KIWI_TRACE(kScanEnd, emitted, 0);
  return emitted;
}

std::size_t KiWiMap::Scan(Key from_key, Key to_key,
                          std::vector<Entry>& out) {
  out.clear();
  return Scan(from_key, to_key,
              [&out](Key k, Value v) { out.emplace_back(k, v); });
}

void KiWiMap::EmitChunkRange(Chunk* chunk, Key from, Key to,
                             Version read_point,
                             const std::function<void(Key, Value)>& yield,
                             std::size_t* emitted) {
  // Pending puts first (PPA-before-list, see Chunk::FindLatest), reduced to
  // the best candidate per key.
  std::vector<Chunk::Item> pending;
  chunk->CollectPpaItems(pending, from, to, read_point);
  std::sort(pending.begin(), pending.end(), Chunk::ItemBefore);
  std::size_t pi = 0;
  const auto pending_best = [&pending](std::size_t at) {
    return pending[at];  // first item of a key run is the best (sort order)
  };
  const auto skip_pending_run = [&pending](std::size_t at) {
    const Key key = pending[at].key;
    while (at < pending.size() && pending[at].key == key) ++at;
    return at;
  };
  const auto emit = [&](Key key, Value value) {
    if (value == kTombstoneValue) return;  // deleted at this read point
    yield(key, value);
    ++*emitted;
  };

  // Walk the in-chunk list, merging with the pending stream by key.
  std::int32_t curr =
      chunk->k[chunk->BatchedPredecessor(from)].next.load(
          std::memory_order_acquire);
  while (curr != Chunk::kNullIdx) {
    const Chunk::Cell& cell = chunk->k[curr];
    const Key key = cell.key;
    if (key > to) break;
    if (key < from) {
      curr = cell.next.load(std::memory_order_acquire);
      continue;
    }
    // Flush pending-only keys ordered before this one.
    while (pi < pending.size() && pending[pi].key < key) {
      emit(pending[pi].key, pending_best(pi).value);
      pi = skip_pending_run(pi);
    }
    // List candidate: first version in this key's (descending) run at or
    // below the read point.
    bool have_list = false;
    Chunk::Item list_item{key, kNoVersion, Chunk::kNullIdx, 0};
    std::int32_t cursor = curr;
    while (cursor != Chunk::kNullIdx) {
      const Chunk::Cell& c = chunk->k[cursor];
      if (c.key != key) break;
      if (!have_list && c.version <= read_point) {
        const std::int32_t vp = c.val_ptr.load(std::memory_order_acquire);
        list_item = Chunk::Item{key, c.version, vp, chunk->v[vp]};
        have_list = true;
      }
      cursor = c.next.load(std::memory_order_acquire);
    }
    curr = cursor;  // advanced past the whole key run
    // Combine with a same-key pending candidate, if any.
    if (pi < pending.size() && pending[pi].key == key) {
      const Chunk::Item p = pending_best(pi);
      pi = skip_pending_run(pi);
      if (!have_list || Chunk::ItemBefore(p, list_item)) {
        list_item = p;
        have_list = true;
      }
    }
    if (have_list) emit(key, list_item.value);
  }
  // Pending-only keys after the last list key.
  while (pi < pending.size() && pending[pi].key <= to) {
    emit(pending[pi].key, pending_best(pi).value);
    pi = skip_pending_run(pi);
  }
}

KiWiMap::Snapshot::Snapshot(KiWiMap& map)
    : map_(map), slot_(ThreadRegistry::CurrentSlot()) {
  // Identical to a scan's read-point acquisition (Algorithm 2 lines 32-35),
  // over the full key range — the entry stays pinned until destruction so
  // rebalance compaction preserves every version this view may read.
  // Snapshots use their own PSA arrays so concurrent scans by this thread
  // cannot displace the pin; only this thread touches its sub-slots.
  sub_slot_ = kMaxSnapshotsPerThread;
  for (std::size_t i = 0; i < kMaxSnapshotsPerThread; ++i) {
    if (map_.snapshot_psa_[i].Slot(slot_).Load().ver == kNoVersion) {
      sub_slot_ = i;
      break;
    }
  }
  KIWI_ASSERT(sub_slot_ < kMaxSnapshotsPerThread,
              "a thread may hold at most kMaxSnapshotsPerThread open "
              "Snapshots per map");
  PsaEntry& entry = map_.snapshot_psa_[sub_slot_].Slot(slot_);
  seq_ = entry.PublishPending(kMinUserKey, kMaxUserKey);
  const Version fetched = map_.gv_.FetchIncrement();
  read_point_ = entry.InstallOwn(seq_, fetched);
  KIWI_OBS_INC(map_.obs_, snapshots);
  KIWI_TRACE(kSnapshotOpen, read_point_, 0);
}

KiWiMap::Snapshot::~Snapshot() {
  KIWI_ASSERT(ThreadRegistry::CurrentSlot() == slot_,
              "snapshot released by a different thread");
  map_.snapshot_psa_[sub_slot_].Slot(slot_).Clear(seq_);
}

std::optional<Value> KiWiMap::Snapshot::Get(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(map_.ebr_);
  Chunk* chunk = map_.LocateChunk(key);
  // Helping is still required at a pinned read point: a put that loaded GV
  // before our fetch-and-increment could otherwise self-assign a version at
  // or below read_point_ after we looked.
  chunk->HelpPendingPuts(map_.gv_, key, key);
  const Chunk::LatestResult latest = chunk->FindLatest(key, read_point_);
  if (!latest.found || latest.is_tombstone) return std::nullopt;
  return latest.value;
}

std::size_t KiWiMap::Snapshot::Scan(
    Key from_key, Key to_key, const std::function<void(Key, Value)>& yield) {
  if (from_key < kMinUserKey) from_key = kMinUserKey;
  if (from_key > to_key) return 0;
  std::size_t emitted = 0;
  reclaim::EbrGuard guard(map_.ebr_);
  Chunk* chunk = map_.LocateChunk(from_key);
  while (chunk != nullptr && chunk->min_key <= to_key) {
    chunk->HelpPendingPuts(map_.gv_, from_key, to_key);
    map_.EmitChunkRange(chunk, from_key, to_key, read_point_, yield,
                        &emitted);
    chunk = chunk->Next();
  }
  return emitted;
}

std::size_t KiWiMap::Snapshot::Scan(Key from_key, Key to_key,
                                    std::vector<Entry>& out) {
  out.clear();
  return Scan(from_key, to_key,
              [&out](Key k, Value v) { out.emplace_back(k, v); });
}

std::size_t KiWiMap::Size() {
  std::size_t count = 0;
  Scan(kMinUserKey, kMaxUserKey, [&count](Key, Value) { ++count; });
  return count;
}

std::size_t KiWiMap::MemoryFootprint() {
  reclaim::EbrGuard guard(ebr_);
  std::size_t bytes = index_.MemoryFootprint() + sizeof(*this);
  for (Chunk* c = sentinel_; c != nullptr; c = c->Next()) {
    bytes += c->MemoryFootprint();
  }
  return bytes;
}

std::size_t KiWiMap::ChunkCount() {
  reclaim::EbrGuard guard(ebr_);
  std::size_t count = 0;
  for (Chunk* c = sentinel_; c != nullptr; c = c->Next()) ++count;
  return count;
}

KiWiMap::StructureReport KiWiMap::Report() {
  reclaim::EbrGuard guard(ebr_);
  StructureReport report;
  double fill_sum = 0;
  double batched_sum = 0;
  for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
    const std::uint32_t allocated = c->AllocatedCells();
    report.data_chunks++;
    report.allocated_cells += allocated;
    report.batched_cells += c->batched_count;
    fill_sum += static_cast<double>(allocated) / c->capacity;
    batched_sum += allocated > 0
                       ? static_cast<double>(c->batched_count) / allocated
                       : 1.0;
  }
  if (report.data_chunks > 0) {
    report.avg_fill = fill_sum / report.data_chunks;
    report.avg_batched_ratio = batched_sum / report.data_chunks;
  }
  return report;
}

KiWiStats KiWiMap::Stats() const {
  KiWiStats total;
#if KIWI_OBS_ENABLED
  const obs::OpCounters counters = obs_.Aggregate();
  total.rebalances = counters.rebalances;
  total.rebalance_wins = counters.rebalance_wins;
  total.put_restarts = counters.put_restarts;
  total.chunks_created = counters.chunks_created;
  total.chunks_retired = counters.chunks_retired;
  total.puts_piggybacked = counters.puts_piggybacked;
  total.puts_helped = counters.puts_helped;
#endif
  return total;
}

void KiWiMap::CompactAll() {
  // Quiescent helper: rebalance every data chunk once, forcing version
  // compaction and structure cleanup.
  std::vector<Key> min_keys;
  {
    reclaim::EbrGuard guard(ebr_);
    for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
      min_keys.push_back(c->min_key);
    }
  }
  for (const Key key : min_keys) {
    reclaim::EbrGuard guard(ebr_);
    Chunk* c = LocateChunk(key);
    if (c->status.load(std::memory_order_acquire) == Chunk::Status::kNormal) {
      Rebalance(c, 0, 0, /*has_put=*/false);
    }
  }
}

void KiWiMap::CheckInvariants() {
  reclaim::EbrGuard guard(ebr_);
  KIWI_ASSERT(sentinel_->status.load() == Chunk::Status::kSentinel,
              "head must be the sentinel");
  Key prev_min = kMinKeySentinel;
  for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
    KIWI_ASSERT(c->min_key > prev_min || c == sentinel_->Next(),
                "chunk minKeys must be strictly increasing");
    KIWI_ASSERT(c->min_key >= kMinUserKey, "data chunk below user domain");
    prev_min = c->min_key;
    const Chunk* succ = c->Next();
    const Key upper = succ != nullptr ? succ->min_key : kMaxUserKey;
    // In-chunk list: sorted by (key asc, version desc), all in range.
    std::int32_t curr = c->k[0].next.load(std::memory_order_acquire);
    Key last_key = kMinKeySentinel;
    Version last_ver = 0;
    bool first = true;
    while (curr != Chunk::kNullIdx) {
      const Chunk::Cell& cell = c->k[curr];
      KIWI_ASSERT(cell.key >= c->min_key, "cell below chunk range");
      KIWI_ASSERT(succ == nullptr || cell.key < upper || cell.key <= upper,
                  "cell above chunk range");
      if (!first) {
        KIWI_ASSERT(cell.key > last_key ||
                        (cell.key == last_key && cell.version < last_ver),
                    "in-chunk list out of order");
      }
      first = false;
      last_key = cell.key;
      last_ver = cell.version;
      curr = cell.next.load(std::memory_order_acquire);
    }
  }
}

Xoshiro256& KiWiMap::ThreadRng() {
  thread_local Xoshiro256 rng(0x9e3779b97f4a7c15ULL ^
                              (ThreadRegistry::CurrentSlot() * 0x100000001b3ULL));
  return rng;
}

}  // namespace kiwi::core
