// Explicit instantiations of the map core for both layouts.  The member
// definitions live in kiwi_map_impl.h / rebalance_impl.h (pulled in through
// kiwi_map.h); the obs-bound members (DebugReport, Census, the metrics pump)
// are intentionally *not* defined there — they are instantiated per member
// from src/obs/*.cpp, so core objects carry no observability code and the
// KIWI_STATS=OFF symbol gate keeps holding for every layout.
#include "core/kiwi_map.h"

namespace kiwi::core {

template class KiWiMapT<Int64Layout>;
template class KiWiMapT<ByteLayout>;

}  // namespace kiwi::core
