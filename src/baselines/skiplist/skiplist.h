// Lock-free concurrent skiplist — the repository's analogue of Java's
// ConcurrentSkipListMap [6], KiWi's "no atomic scans" competitor.
//
// Herlihy-Shavit LockFreeSkipList shape: towers of marked next pointers,
// logical deletion by marking, physical unlinking by the Find traversal.
// Gets are wait-free (no helping); Put/Remove are lock-free.
//
// Scan is a *weakly consistent* iterator over the bottom level, exactly like
// the Java map's: it never blocks and never throws, but concurrent updates
// may or may not be reflected — it is NOT atomic.  That non-atomicity is the
// property the paper's comparison hinges on (Table 1, Figure 3(c)).
//
// Memory reclamation: nodes retired through an epoch domain after full
// physical unlinking; all operations run inside EbrGuards.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/marked_ptr.h"
#include "common/random.h"
#include "reclaim/ebr.h"

namespace kiwi::baselines {

class SkipList {
 public:
  using Entry = std::pair<Key, Value>;

  SkipList();
  ~SkipList();
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Insert or overwrite.  Lock-free.
  void Put(Key key, Value value);

  /// Remove `key` if present.  Lock-free.
  void Remove(Key key);

  /// Wait-free read of the latest value.
  std::optional<Value> Get(Key key);

  /// Weakly-consistent (non-atomic) range read over [from, to], ascending.
  template <typename F>
  std::size_t Scan(Key from_key, Key to_key, F&& yield) {
    reclaim::EbrGuard guard(ebr_);
    std::size_t count = 0;
    Node* node = LowerBound(from_key);
    while (node != nullptr && node->key <= to_key) {
      // Skip logically deleted nodes; read the value before re-checking the
      // mark so a racing remove is either fully seen or fully missed.
      const Value value = node->value.load(std::memory_order_acquire);
      if (!node->next[0].Load().Mark()) {
        yield(node->key, value);
        ++count;
      }
      node = node->next[0].Load().Ptr();
    }
    return count;
  }

  std::size_t Scan(Key from_key, Key to_key, std::vector<Entry>& out) {
    out.clear();
    return Scan(from_key, to_key,
                [&out](Key k, Value v) { out.emplace_back(k, v); });
  }

  std::size_t Size();
  std::size_t MemoryFootprint() const;
  const reclaim::Ebr& Reclaimer() const { return ebr_; }

  static constexpr int kMaxHeight = 24;

 private:
  struct Node {
    const Key key;
    std::atomic<Value> value;
    const int height;
    AtomicMarkedPtr<Node> next[kMaxHeight];

    Node(Key k, Value v, int h) : key(k), value(v), height(h) {}
  };

  /// Standard lock-free Find: locates the window (preds[i], succs[i]) for
  /// `key` at every level, physically unlinking marked nodes on the way.
  /// Returns true if an unmarked node with `key` sits at the bottom level.
  bool Find(Key key, Node** preds, Node** succs);

  /// First live node with key >= from (scan entry point; no unlinking, so
  /// the scan itself stays wait-free).
  Node* LowerBound(Key from_key);

  int RandomHeight();

  Node* head_;  // full-height sentinel with key = kMinKeySentinel
  mutable reclaim::Ebr ebr_;
  std::atomic<std::size_t> node_count_{0};
};

}  // namespace kiwi::baselines
