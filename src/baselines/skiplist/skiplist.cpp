#include "baselines/skiplist/skiplist.h"

#include "common/assert.h"
#include "common/backoff.h"
#include "common/thread_registry.h"

namespace kiwi::baselines {

namespace {
thread_local Xoshiro256 t_rng(0x2545F4914F6CDD1DULL);
}  // namespace

SkipList::SkipList() {
  head_ = new Node(kMinKeySentinel, 0, kMaxHeight);
}

SkipList::~SkipList() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->next[0].Load().Ptr();
    delete node;
    node = next;
  }
}

int SkipList::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && (t_rng.Next() & 3u) == 0) ++height;
  return height;
}

bool SkipList::Find(Key key, Node** preds, Node** succs) {
retry:
  Node* pred = head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    while (true) {
      Node* curr = pred->next[level].Load().Ptr();
      // Physically unlink marked nodes sitting in the window.
      while (curr != nullptr) {
        const MarkedPtr<Node> succ_mp = curr->next[level].Load();
        if (!succ_mp.Mark()) break;
        if (!pred->next[level].CompareExchange(
                MarkedPtr<Node>(curr, false),
                MarkedPtr<Node>(succ_mp.Ptr(), false))) {
          goto retry;  // window moved; restart from the top
        }
        // The bottom-level unlink has a unique winner per node (links are
        // only ever removed), so it owns reclamation.
        if (level == 0) {
          ebr_.RetireObject(curr);
          node_count_.fetch_sub(1, std::memory_order_relaxed);
        }
        curr = succ_mp.Ptr();
      }
      if (curr == nullptr || curr->key >= key) {
        preds[level] = pred;
        succs[level] = curr;
        break;
      }
      pred = curr;
    }
  }
  return succs[0] != nullptr && succs[0]->key == key;
}

void SkipList::Put(Key key, Value value) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  const int height = RandomHeight();
  while (true) {
    if (Find(key, preds, succs)) {
      // Present: overwrite in place (Java CSLM semantics).  A concurrent
      // remove may race; the winner is decided by the mark, and an
      // overwritten-then-removed value is a legal linearization.
      succs[0]->value.store(value, std::memory_order_release);
      return;
    }
    Node* node = new Node(key, value, height);
    for (int level = 0; level < height; ++level) {
      node->next[level].Store(MarkedPtr<Node>(succs[level], false));
    }
    // Linearize by linking the bottom level.
    if (!preds[0]->next[0].CompareExchange(MarkedPtr<Node>(succs[0], false),
                                           MarkedPtr<Node>(node, false))) {
      delete node;  // never visible
      continue;
    }
    node_count_.fetch_add(1, std::memory_order_relaxed);
    // Link the upper levels best-effort.
    for (int level = 1; level < height; ++level) {
      while (true) {
        // Our node may have been removed already; stop linking then.
        if (node->next[level].Load().Mark()) return;
        if (preds[level]->next[level].CompareExchange(
                MarkedPtr<Node>(succs[level], false),
                MarkedPtr<Node>(node, false))) {
          break;
        }
        Find(key, preds, succs);  // recompute the window
        if (succs[0] != node) return;  // removed (and maybe re-inserted)
        node->next[level].Store(MarkedPtr<Node>(succs[level], false));
      }
    }
    return;
  }
}

void SkipList::Remove(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  if (!Find(key, preds, succs)) return;
  Node* victim = succs[0];
  // Mark top-down; the bottom-level mark is the linearization point and has
  // a unique winner, who triggers the physical unlink.
  for (int level = victim->height - 1; level >= 1; --level) {
    MarkedPtr<Node> succ = victim->next[level].Load();
    while (!succ.Mark()) {
      victim->next[level].CompareExchange(
          succ, MarkedPtr<Node>(succ.Ptr(), true));
      succ = victim->next[level].Load();
    }
  }
  MarkedPtr<Node> succ = victim->next[0].Load();
  while (true) {
    if (succ.Mark()) return;  // someone else removed it
    if (victim->next[0].CompareExchange(succ,
                                        MarkedPtr<Node>(succ.Ptr(), true))) {
      // We own the removal; physically unlink (Find does it) so memory is
      // bounded even without further traffic to this key range.
      Find(key, preds, succs);
      return;
    }
    succ = victim->next[0].Load();
  }
}

std::optional<Value> SkipList::Get(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  // Wait-free: traverse without unlinking or helping.
  Node* pred = head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    Node* curr = pred->next[level].Load().Ptr();
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = curr->next[level].Load().Ptr();
    }
  }
  Node* curr = pred->next[0].Load().Ptr();
  while (curr != nullptr && curr->key < key) {
    curr = curr->next[0].Load().Ptr();
  }
  if (curr == nullptr || curr->key != key) return std::nullopt;
  const Value value = curr->value.load(std::memory_order_acquire);
  if (curr->next[0].Load().Mark()) return std::nullopt;  // logically deleted
  return value;
}

SkipList::Node* SkipList::LowerBound(Key from_key) {
  Node* pred = head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    Node* curr = pred->next[level].Load().Ptr();
    while (curr != nullptr && curr->key < from_key) {
      pred = curr;
      curr = curr->next[level].Load().Ptr();
    }
  }
  return pred->next[0].Load().Ptr();
}

std::size_t SkipList::Size() {
  std::size_t count = 0;
  Scan(kMinUserKey, kMaxUserKey, [&count](Key, Value) { ++count; });
  return count;
}

std::size_t SkipList::MemoryFootprint() const {
  return node_count_.load(std::memory_order_relaxed) * sizeof(Node) +
         sizeof(*this);
}

}  // namespace kiwi::baselines
