// Copy-on-write snapshot tree — the repository's stand-in for SnapTree
// (Bronson et al. [14]), the paper's "lazy copy-on-write cloning" scan
// competitor.  DESIGN.md §2 records the substitution.
//
// Mechanism (generation-stamped lazy COW):
//  * every node carries the write generation it was created in;
//  * writers hold the shared side of a custom epoch lock and may mutate
//    only current-generation nodes (single-word atomic stores / child CAS);
//  * Snapshot() takes the lock's exclusive side for an instant — draining
//    in-flight writers exactly like SnapTree's clone() — bumps the
//    generation and captures the root: everything reachable from it is
//    frozen from that point on.  The exclusive section is what guarantees
//    no two writers ever run under different generations: otherwise a
//    stale-generation writer could keep linking children into a node a
//    newer writer already cloned, double-retiring the shared child.
//    (std::shared_mutex is unsuitable here: pthreads' reader preference
//    lets sustained writers starve the snapshot side indefinitely, so the
//    lock below prefers the exclusive (snapshot) side.)
//  * a writer that meets a stale-generation node clones it (stale ⇒
//    immutable ⇒ safe to copy), CASes the clone into its current-generation
//    parent, and continues inside the clone.
//
// Behavioural fidelity to SnapTree, which is what the benchmarks measure:
//  * snapshot acquisition is cheap and scans iterate unobstructed
//    (competitive large-range scan throughput, Figure 4(b-c));
//  * puts pay for live snapshots — path cloning after every scan — which
//    starves updates under scan-heavy load (Figure 4(d-f));
//  * gets are simple lock-free descents.
//
// Removal is a tombstone store (single word, keeps every mutation atomic);
// tombstoned nodes are revived in place on re-insertion.  The tree performs
// no rebalancing: with the uniform-random keys of every SnapTree experiment
// in the paper the expected depth is O(log n).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "reclaim/ebr.h"

namespace kiwi::baselines {

class CowTree {
 public:
  using Entry = std::pair<Key, Value>;

  CowTree();
  ~CowTree();
  CowTree(const CowTree&) = delete;
  CowTree& operator=(const CowTree&) = delete;

  /// Insert or overwrite.  Concurrent with other writers (shared lock).
  void Put(Key key, Value value);

  /// Remove `key` if present (tombstone).
  void Remove(Key key);

  /// Lock-free read of the latest value.
  std::optional<Value> Get(Key key);

  /// Atomic range query over [from, to], ascending: snapshots the tree and
  /// iterates the frozen version.
  std::size_t Scan(Key from_key, Key to_key, std::vector<Entry>& out);

  template <typename F>
  std::size_t Scan(Key from_key, Key to_key, F&& yield);

  std::size_t Size();
  std::size_t MemoryFootprint() const;

  /// Nodes cloned by writers because a snapshot froze them (diagnostics:
  /// the COW cost the paper's Figure 4(d-f) exposes).
  std::uint64_t CowClones() const {
    return cow_clones_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    const Key key;
    std::atomic<Value> value;
    std::atomic<bool> deleted{false};
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    const std::uint64_t gen;

    Node(Key k, Value v, std::uint64_t g) : key(k), value(v), gen(g) {}
  };

  /// The child slot of `node` on the search path towards `key`.
  static std::atomic<Node*>& ChildTowards(Node* node, Key key) {
    return key < node->key ? node->left : node->right;
  }

  /// Clone a frozen node into generation `gen` and install it in `slot`
  /// (whose current value is `stale`).  Returns the installed node (ours or
  /// a racing writer's).
  Node* CloneInto(std::atomic<Node*>& slot, Node* stale, std::uint64_t gen);

  void DestroySubtree(Node* node);

  /// Snapshot-preferring shared/exclusive lock.  One atomic word: the low
  /// bits count active writers, the top bit marks a pending snapshot.  New
  /// writers defer to a pending snapshot (no starvation of the exclusive
  /// side), and the exclusive section is held only across generation bump +
  /// root read (microseconds), so writers are delayed at most briefly.
  class EpochLock {
   public:
    void WriterEnter() {
      while (true) {
        std::uint64_t word = word_.load(std::memory_order_seq_cst);
        if ((word & kSnapshotBit) != 0) {
          std::this_thread::yield();  // a snapshot is draining: stand back
          continue;
        }
        if (word_.compare_exchange_weak(word, word + 1,
                                        std::memory_order_seq_cst)) {
          return;
        }
      }
    }
    void WriterExit() { word_.fetch_sub(1, std::memory_order_seq_cst); }

    void SnapshotEnter() {
      // Claim the exclusive bit (one snapshot drain at a time)...
      while (true) {
        std::uint64_t word = word_.load(std::memory_order_seq_cst);
        if ((word & kSnapshotBit) != 0) {
          std::this_thread::yield();
          continue;
        }
        if (word_.compare_exchange_weak(word, word | kSnapshotBit,
                                        std::memory_order_seq_cst)) {
          break;
        }
      }
      // ...then drain in-flight writers.
      while ((word_.load(std::memory_order_seq_cst) & ~kSnapshotBit) != 0) {
        std::this_thread::yield();
      }
    }
    void SnapshotExit() {
      word_.fetch_and(~kSnapshotBit, std::memory_order_seq_cst);
    }

   private:
    static constexpr std::uint64_t kSnapshotBit = std::uint64_t{1} << 62;
    std::atomic<std::uint64_t> word_{0};
  };

  class WriterPass {
   public:
    explicit WriterPass(EpochLock& lock) : lock_(lock) {
      lock_.WriterEnter();
    }
    ~WriterPass() { lock_.WriterExit(); }
    WriterPass(const WriterPass&) = delete;
    WriterPass& operator=(const WriterPass&) = delete;

   private:
    EpochLock& lock_;
  };

  EpochLock epoch_lock_;
  std::atomic<std::uint64_t> gen_{1};   // current write generation
  std::atomic<Node*> root_{nullptr};
  mutable reclaim::Ebr ebr_;
  std::atomic<std::size_t> node_count_{0};
  std::atomic<std::uint64_t> cow_clones_{0};
};

template <typename F>
std::size_t CowTree::Scan(Key from_key, Key to_key, F&& yield) {
  // Guard first: the snapshot's nodes may be retired by cloning writers as
  // soon as the exclusive section ends.
  reclaim::EbrGuard guard(ebr_);
  epoch_lock_.SnapshotEnter();  // drains in-flight writers
  gen_.fetch_add(1, std::memory_order_seq_cst);
  Node* snapshot = root_.load(std::memory_order_seq_cst);
  epoch_lock_.SnapshotExit();
  // In-order walk of the frozen tree (explicit stack; the tree is not
  // height-bounded).
  std::size_t count = 0;
  std::vector<Node*> stack;
  Node* node = snapshot;
  while (node != nullptr || !stack.empty()) {
    while (node != nullptr) {
      if (node->key < from_key) {
        node = node->right.load(std::memory_order_acquire);
        continue;
      }
      stack.push_back(node);
      node = node->left.load(std::memory_order_acquire);
    }
    if (stack.empty()) break;
    node = stack.back();
    stack.pop_back();
    if (node->key > to_key) break;  // in-order ⇒ everything after is bigger
    if (node->key >= from_key &&
        !node->deleted.load(std::memory_order_acquire)) {
      yield(node->key, node->value.load(std::memory_order_acquire));
      ++count;
    }
    node = node->right.load(std::memory_order_acquire);
  }
  return count;
}

}  // namespace kiwi::baselines
