#include "baselines/snaptree/cow_tree.h"

#include "common/assert.h"

namespace kiwi::baselines {

CowTree::CowTree() = default;

CowTree::~CowTree() { DestroySubtree(root_.load()); }

void CowTree::DestroySubtree(Node* node) {
  if (node == nullptr) return;
  DestroySubtree(node->left.load(std::memory_order_relaxed));
  DestroySubtree(node->right.load(std::memory_order_relaxed));
  delete node;
}

CowTree::Node* CowTree::CloneInto(std::atomic<Node*>& slot, Node* stale,
                                  std::uint64_t gen) {
  // `stale` belongs to an older generation, hence is immutable: its fields
  // can be read without synchronization concerns.
  auto* clone = new Node(stale->key,
                         stale->value.load(std::memory_order_relaxed), gen);
  clone->deleted.store(stale->deleted.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  clone->left.store(stale->left.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  clone->right.store(stale->right.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  Node* expected = stale;
  if (slot.compare_exchange_strong(expected, clone,
                                   std::memory_order_seq_cst)) {
    // The stale node is unreachable from the *current* tree; snapshots that
    // still reference it hold EBR guards.
    ebr_.RetireObject(stale);
    cow_clones_.fetch_add(1, std::memory_order_relaxed);
    return clone;
  }
  delete clone;  // a racing writer cloned it first (or replaced the slot)
  return expected;
}

void CowTree::Put(Key key, Value value) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  WriterPass pass(epoch_lock_);
  reclaim::EbrGuard guard(ebr_);
  // The generation read follows the turnstile entry: a scan that bumped it
  // earlier is fully visible, and a scan that bumps later waits for us.
  const std::uint64_t gen = gen_.load(std::memory_order_seq_cst);

  std::atomic<Node*>* slot = &root_;
  while (true) {
    Node* node = slot->load(std::memory_order_seq_cst);
    if (node == nullptr) {
      auto* fresh = new Node(key, value, gen);
      Node* expected = nullptr;
      if (slot->compare_exchange_strong(expected, fresh,
                                        std::memory_order_seq_cst)) {
        node_count_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      delete fresh;
      continue;  // re-read the slot
    }
    if (node->gen < gen) {
      node = CloneInto(*slot, node, gen);
      // Continue into whatever now sits in the slot (our clone or a racing
      // writer's); it is current-generation by construction.
      if (node->gen < gen) continue;  // paranoid re-check, slot changed
    }
    if (node->key == key) {
      // Current-generation node: in-place update with single-word stores.
      node->value.store(value, std::memory_order_seq_cst);
      node->deleted.store(false, std::memory_order_seq_cst);
      return;
    }
    slot = &ChildTowards(node, key);
  }
}

void CowTree::Remove(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  WriterPass pass(epoch_lock_);
  reclaim::EbrGuard guard(ebr_);
  const std::uint64_t gen = gen_.load(std::memory_order_seq_cst);

  std::atomic<Node*>* slot = &root_;
  while (true) {
    Node* node = slot->load(std::memory_order_seq_cst);
    if (node == nullptr) return;  // absent
    if (node->gen < gen) {
      // Clone even on the delete path: the tombstone store below must not
      // touch a frozen node.
      node = CloneInto(*slot, node, gen);
      if (node->gen < gen) continue;
    }
    if (node->key == key) {
      node->deleted.store(true, std::memory_order_seq_cst);
      return;
    }
    slot = &ChildTowards(node, key);
  }
}

std::optional<Value> CowTree::Get(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  Node* node = root_.load(std::memory_order_acquire);
  while (node != nullptr) {
    if (node->key == key) {
      // Value before deleted-flag: both orders linearize, this one never
      // returns a value the key no longer has.
      const Value value = node->value.load(std::memory_order_acquire);
      if (node->deleted.load(std::memory_order_acquire)) return std::nullopt;
      return value;
    }
    node = ChildTowards(node, key).load(std::memory_order_acquire);
  }
  return std::nullopt;
}

std::size_t CowTree::Scan(Key from_key, Key to_key, std::vector<Entry>& out) {
  out.clear();
  return Scan(from_key, to_key,
              [&out](Key k, Value v) { out.emplace_back(k, v); });
}

std::size_t CowTree::Size() {
  std::size_t count = 0;
  Scan(kMinUserKey, kMaxUserKey, [&count](Key, Value) { ++count; });
  return count;
}

std::size_t CowTree::MemoryFootprint() const {
  return node_count_.load(std::memory_order_relaxed) * sizeof(Node) +
         sizeof(*this);
}

}  // namespace kiwi::baselines
