#include "baselines/kary/kary_tree.h"

#include <algorithm>

#include "common/assert.h"
#include "common/backoff.h"

namespace kiwi::baselines {

KaryTree::KaryTree(std::uint32_t k) : k_(k) {
  KIWI_ASSERT(k_ >= 2, "arity must be at least 2");
  root_.store(new Node(std::vector<Entry>{}), std::memory_order_release);
}

KaryTree::~KaryTree() { DestroySubtree(root_.load()); }

void KaryTree::DestroySubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    for (auto& child : node->children) {
      DestroySubtree(child.load(std::memory_order_relaxed));
    }
  }
  delete node;
}

std::size_t KaryTree::ChildIndex(const Node* node, Key key) {
  const auto it =
      std::upper_bound(node->keys.begin(), node->keys.end(), key);
  return static_cast<std::size_t>(it - node->keys.begin());
}

bool KaryTree::ReplaceChild(Node* parent, std::size_t child_index,
                            Node* expected, Node* replacement) {
  Turnstile& turnstile =
      parent == nullptr ? root_turnstile_ : parent->turnstile;
  std::atomic<Node*>& slot =
      parent == nullptr ? root_ : parent->children[child_index];
  // Enter before the CAS, exit after: scans validate that no writer was
  // inside this window while they read the node's children.
  turnstile.entered.fetch_add(1, std::memory_order_seq_cst);
  const bool swapped =
      slot.compare_exchange_strong(expected, replacement,
                                   std::memory_order_seq_cst);
  turnstile.exited.fetch_add(1, std::memory_order_seq_cst);
  if (swapped) ebr_.RetireObject(expected);
  return swapped;
}

KaryTree::Node* KaryTree::BuildInsert(const Node* leaf, Key key, Value value) {
  const auto& pairs = leaf->pairs;
  const auto pos = std::lower_bound(
      pairs.begin(), pairs.end(), key,
      [](const Entry& e, Key k) { return e.first < k; });
  if (pos != pairs.end() && pos->first == key) {
    // Overwrite: copy with the one value changed.
    std::vector<Entry> copy(pairs);
    copy[static_cast<std::size_t>(pos - pairs.begin())].second = value;
    return new Node(std::move(copy));
  }
  std::vector<Entry> merged;
  merged.reserve(pairs.size() + 1);
  merged.insert(merged.end(), pairs.begin(), pos);
  merged.emplace_back(key, value);
  merged.insert(merged.end(), pos, pairs.end());
  if (merged.size() <= k_) return new Node(std::move(merged));

  // Leaf overflow: replace with a depth-1 subtree of k leaves (Brown &
  // Helga).  No rebalancing ever happens above this, which is what makes
  // ordered insertion degenerate into a path.
  const std::size_t total = merged.size();  // == k_ + 1
  const std::size_t base = total / k_;
  const std::size_t extra = total % k_;
  std::vector<Key> routing;
  routing.reserve(k_ - 1);
  auto* internal = new Node(std::vector<Key>{}, k_);
  std::size_t offset = 0;
  for (std::size_t child = 0; child < k_; ++child) {
    const std::size_t take = base + (child < extra ? 1 : 0);
    std::vector<Entry> bucket(merged.begin() + offset,
                              merged.begin() + offset + take);
    offset += take;
    if (child > 0) routing.push_back(bucket.empty() ? routing.back()
                                                    : bucket.front().first);
    internal->children[child].store(new Node(std::move(bucket)),
                                    std::memory_order_relaxed);
  }
  internal->keys = std::move(routing);
  internal_count_.fetch_add(1, std::memory_order_relaxed);
  leaf_count_.fetch_add(k_ - 1, std::memory_order_relaxed);
  return internal;
}

void KaryTree::Put(Key key, Value value) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  Backoff backoff;
  while (true) {
    Node* parent = nullptr;
    std::size_t child_index = 0;
    Node* node = root_.load(std::memory_order_acquire);
    while (!node->is_leaf) {
      parent = node;
      child_index = ChildIndex(node, key);
      node = node->children[child_index].load(std::memory_order_acquire);
    }
    Node* replacement = BuildInsert(node, key, value);
    if (ReplaceChild(parent, child_index, node, replacement)) return;
    // Lost the CAS: tear down the unpublished replacement (rolling back the
    // split accounting BuildInsert did) and retry.
    if (!replacement->is_leaf) {
      internal_count_.fetch_sub(1, std::memory_order_relaxed);
      leaf_count_.fetch_sub(k_ - 1, std::memory_order_relaxed);
    }
    DestroySubtree(replacement);
    backoff.Spin();
  }
}

void KaryTree::Remove(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  Backoff backoff;
  while (true) {
    Node* parent = nullptr;
    std::size_t child_index = 0;
    Node* node = root_.load(std::memory_order_acquire);
    while (!node->is_leaf) {
      parent = node;
      child_index = ChildIndex(node, key);
      node = node->children[child_index].load(std::memory_order_acquire);
    }
    const auto pos = std::lower_bound(
        node->pairs.begin(), node->pairs.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
    if (pos == node->pairs.end() || pos->first != key) return;  // absent
    std::vector<Entry> copy;
    copy.reserve(node->pairs.size() - 1);
    copy.insert(copy.end(), node->pairs.begin(), pos);
    copy.insert(copy.end(), pos + 1, node->pairs.end());
    Node* replacement = new Node(std::move(copy));
    if (ReplaceChild(parent, child_index, node, replacement)) return;
    delete replacement;
    backoff.Spin();
  }
}

std::optional<Value> KaryTree::Get(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  Node* node = root_.load(std::memory_order_acquire);
  while (!node->is_leaf) {
    node = node->children[ChildIndex(node, key)].load(
        std::memory_order_acquire);
  }
  const auto pos = std::lower_bound(
      node->pairs.begin(), node->pairs.end(), key,
      [](const Entry& e, Key k) { return e.first < k; });
  if (pos == node->pairs.end() || pos->first != key) return std::nullopt;
  return pos->second;
}

std::size_t KaryTree::Scan(Key from_key, Key to_key,
                           std::vector<Entry>& out) {
  reclaim::EbrGuard guard(ebr_);
  // Double-collect validation: before reading a node's children, record its
  // turnstile's `exited`; after the whole traversal, every recorded node
  // must satisfy entered == that snapshot — otherwise a conflicting update
  // ran inside the window and the scan restarts (k-ary trees restart scans
  // on every conflicting put; that is the measured behaviour).
  Backoff backoff;
  while (true) {
    out.clear();
    std::vector<std::pair<const Turnstile*, std::uint64_t>> validations;
    bool conflict = false;

    const std::uint64_t root_exited =
        root_turnstile_.exited.load(std::memory_order_seq_cst);
    Node* root = root_.load(std::memory_order_seq_cst);
    validations.emplace_back(&root_turnstile_, root_exited);

    // Explicit stack: a degenerated tree can be arbitrarily deep.
    std::vector<Node*> stack;
    stack.push_back(root);
    while (!stack.empty() && !conflict) {
      Node* node = stack.back();
      stack.pop_back();
      if (node->is_leaf) {
        for (const Entry& entry : node->pairs) {
          if (entry.first >= from_key && entry.first <= to_key) {
            out.push_back(entry);
          }
        }
        continue;
      }
      const std::uint64_t exited =
          node->turnstile.exited.load(std::memory_order_seq_cst);
      validations.emplace_back(&node->turnstile, exited);
      // Push only children whose routing interval intersects [from, to],
      // in reverse so the DFS emits ascending order.
      const std::size_t first_child = ChildIndex(node, from_key);
      std::size_t last_child = ChildIndex(node, to_key);
      for (std::size_t i = last_child + 1; i-- > first_child;) {
        Node* child = node->children[i].load(std::memory_order_seq_cst);
        stack.push_back(child);
      }
    }

    if (!conflict) {
      for (const auto& [turnstile, exited] : validations) {
        if (turnstile->entered.load(std::memory_order_seq_cst) != exited) {
          conflict = true;
          break;
        }
      }
    }
    if (!conflict) {
      std::sort(out.begin(), out.end());
      return out.size();
    }
    scan_restarts_.fetch_add(1, std::memory_order_relaxed);
    backoff.Spin();
  }
}

std::size_t KaryTree::Size() {
  std::vector<Entry> all;
  return Scan(kMinUserKey, kMaxUserKey, all);
}

std::size_t KaryTree::Depth() {
  reclaim::EbrGuard guard(ebr_);
  std::size_t depth = 0;
  Node* node = root_.load(std::memory_order_acquire);
  while (!node->is_leaf) {
    // Follow the first child: ordered insertion degenerates leftward or
    // rightward; take the deeper of first/last for a better estimate.
    node = node->children[node->children.size() - 1].load(
        std::memory_order_acquire);
    ++depth;
  }
  return depth;
}

std::size_t KaryTree::MemoryFootprint() const {
  const std::size_t leaves = leaf_count_.load(std::memory_order_relaxed);
  const std::size_t internals =
      internal_count_.load(std::memory_order_relaxed);
  return leaves * (sizeof(Node) + k_ * sizeof(Entry) / 2) +
         internals * (sizeof(Node) + k_ * sizeof(void*)) + sizeof(*this);
}

}  // namespace kiwi::baselines
