// Non-blocking k-ary search tree with atomic range queries — the analogue of
// Brown & Avni's LockFreeKSTRQ [15] (paper's strongest scan competitor).
//
// Shape follows Brown & Helga's k-ST [16]:
//  * external tree: all data in leaves (sorted arrays of <= k pairs);
//    internal nodes hold k-1 routing keys and k child pointers;
//  * leaves are immutable; an update copies the leaf and CASes the parent's
//    child slot (a full leaf is replaced by a depth-1 subtree);
//  * there is NO rebalancing, so a monotonically ordered insertion stream
//    degenerates the tree into a path — the behaviour behind the paper's
//    730x ordered-workload collapse (§6.2).
//
// Range queries are atomic via double-collect validation: every visited
// node's writer-turnstile is recorded before its children are read and
// re-checked after the whole traversal; any conflicting update restarts the
// scan from scratch.  This reproduces the progress envelope the paper
// measures: scans are atomic but starve under concurrent puts
// (Figure 4(a-c)).  DESIGN.md documents this substitution for the original's
// mark-based validation.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/config.h"
#include "reclaim/ebr.h"

namespace kiwi::baselines {

class KaryTree {
 public:
  using Entry = std::pair<Key, Value>;

  /// `k`: tree arity (the paper benchmarks the authors' optimal k = 64).
  explicit KaryTree(std::uint32_t k = 64);
  ~KaryTree();
  KaryTree(const KaryTree&) = delete;
  KaryTree& operator=(const KaryTree&) = delete;

  /// Insert or overwrite (copies the target leaf).  Lock-free.
  void Put(Key key, Value value);

  /// Remove `key` if present (copies the target leaf).  Lock-free.
  void Remove(Key key);

  /// Read the latest value.  Lock-free (simple descent, no helping).
  std::optional<Value> Get(Key key);

  /// Atomic range query over [from, to], ascending.  Restarts on conflict —
  /// may livelock under sustained conflicting updates (by design; this is
  /// the measured property).
  std::size_t Scan(Key from_key, Key to_key, std::vector<Entry>& out);

  template <typename F>
  std::size_t Scan(Key from_key, Key to_key, F&& yield) {
    std::vector<Entry> buffer;
    Scan(from_key, to_key, buffer);
    for (const Entry& entry : buffer) yield(entry.first, entry.second);
    return buffer.size();
  }

  std::size_t Size();
  std::size_t MemoryFootprint() const;

  /// Scan restarts caused by conflicting updates (diagnostics / benches).
  std::uint64_t ScanRestarts() const {
    return scan_restarts_.load(std::memory_order_relaxed);
  }

  /// Depth of the tree (diagnostics: shows ordered-insert degeneration).
  std::size_t Depth();

 private:
  struct Node;

  /// Writer turnstile: Scan validation checks that no child-slot CAS ran
  /// inside its read window (entered(after reads) == exited(before reads)).
  struct Turnstile {
    std::atomic<std::uint64_t> entered{0};
    std::atomic<std::uint64_t> exited{0};
  };

  struct Node {
    const bool is_leaf;
    // Leaf payload: sorted pairs (immutable after publication).
    std::vector<Entry> pairs;
    // Internal payload: routing keys (child i covers keys < keys[i], the
    // last child covers the rest) and child pointers.
    std::vector<Key> keys;
    std::vector<std::atomic<Node*>> children;
    Turnstile turnstile;

    explicit Node(std::vector<Entry> leaf_pairs)
        : is_leaf(true), pairs(std::move(leaf_pairs)) {}
    Node(std::vector<Key> routing, std::size_t fanout)
        : is_leaf(false), keys(std::move(routing)), children(fanout) {}
  };

  /// Index of the child covering `key`.
  static std::size_t ChildIndex(const Node* node, Key key);

  /// Replace `leaf` (found under `parent` at `child_index`; parent == null
  /// means root) by `replacement`.  Returns true on success and retires the
  /// old leaf.
  bool ReplaceChild(Node* parent, std::size_t child_index, Node* expected,
                    Node* replacement);

  /// Build the replacement for inserting (key, value) into `leaf`: a bigger
  /// leaf, or a depth-1 subtree when the leaf is full.
  Node* BuildInsert(const Node* leaf, Key key, Value value);

  void DestroySubtree(Node* node);

  const std::uint32_t k_;
  std::atomic<Node*> root_;
  Turnstile root_turnstile_;
  mutable reclaim::Ebr ebr_;
  std::atomic<std::size_t> leaf_count_{1};
  std::atomic<std::size_t> internal_count_{0};
  std::atomic<std::uint64_t> scan_restarts_{0};
};

}  // namespace kiwi::baselines
