#include "baselines/ctrie/hash_trie.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"

namespace kiwi::baselines {

HashTrie::HashTrie() {
  root_.store(new INode(new CNode(), 1), std::memory_order_release);
}

HashTrie::~HashTrie() {
  INode* root = root_.load(std::memory_order_relaxed);
  DestroyCNode(root->main.load(std::memory_order_relaxed));
  delete root;
  // Retired shells (CNode/INode/SNode objects replaced during operation)
  // drain with ebr_'s destructor; their children were shared with the live
  // tree and are freed exactly once above.
}

void HashTrie::DestroyCNode(CNode* cnode) {
  if (cnode == nullptr) return;
  for (const Branch& branch : cnode->children) {
    if (branch.IsLeaf()) {
      delete branch.AsLeaf();
    } else {
      INode* inode = branch.AsIndirect();
      DestroyCNode(inode->main.load(std::memory_order_relaxed));
      delete inode;
    }
  }
  delete cnode;
}

std::optional<Value> HashTrie::Get(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  const std::uint64_t hash = HashKey(key);
  const INode* inode = root_.load(std::memory_order_acquire);
  int level = 0;
  while (true) {
    const CNode* cnode = inode->main.load(std::memory_order_acquire);
    const std::uint64_t bit = BitAt(hash, level);
    if ((cnode->bitmap & bit) == 0) return std::nullopt;
    const Branch branch = cnode->children[cnode->SlotIndex(bit)];
    if (branch.IsLeaf()) {
      const SNode* leaf = branch.AsLeaf();
      if (leaf->key == key) return leaf->value;
      return std::nullopt;
    }
    inode = branch.AsIndirect();
    ++level;
  }
}

bool HashTrie::TryPut(Key key, Value value, std::uint64_t gen) {
  const std::uint64_t hash = HashKey(key);

  // Make the root indirection current-generation.
  INode* inode = root_.load(std::memory_order_seq_cst);
  if (inode->gen != gen) {
    auto* clone = new INode(inode->main.load(std::memory_order_seq_cst), gen);
    if (root_.compare_exchange_strong(inode, clone,
                                      std::memory_order_seq_cst)) {
      ebr_.RetireObject(inode);
      cow_clones_.fetch_add(1, std::memory_order_relaxed);
      inode = clone;
    } else {
      delete clone;
      return false;  // racing writer moved the root; restart
    }
  }

  int level = 0;
  while (true) {
    CNode* cnode = inode->main.load(std::memory_order_seq_cst);
    const std::uint64_t bit = BitAt(hash, level);

    if ((cnode->bitmap & bit) == 0) {
      // Empty slot: insert the leaf into a copy of this branch record.
      auto* leaf = new SNode{key, value};
      auto* copy = new CNode();
      copy->bitmap = cnode->bitmap | bit;
      copy->children.reserve(cnode->children.size() + 1);
      const int slot = copy->SlotIndex(bit);
      copy->children.assign(cnode->children.begin(), cnode->children.end());
      copy->children.insert(copy->children.begin() + slot,
                            Branch::Leaf(leaf));
      if (inode->main.compare_exchange_strong(cnode, copy,
                                              std::memory_order_seq_cst)) {
        ebr_.RetireObject(cnode);
        entry_count_.fetch_add(1, std::memory_order_relaxed);
        node_count_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      delete leaf;
      delete copy;
      return false;
    }

    const int slot = cnode->SlotIndex(bit);
    const Branch branch = cnode->children[slot];

    if (branch.IsLeaf()) {
      SNode* existing = branch.AsLeaf();
      if (existing->key == key) {
        // Overwrite: new leaf, new branch record, one CAS.
        auto* leaf = new SNode{key, value};
        auto* copy = new CNode(*cnode);
        copy->children[slot] = Branch::Leaf(leaf);
        if (inode->main.compare_exchange_strong(cnode, copy,
                                                std::memory_order_seq_cst)) {
          ebr_.RetireObject(cnode);
          ebr_.RetireObject(existing);
          return true;
        }
        delete leaf;
        delete copy;
        return false;
      }
      // Different key in the slot: grow a subtree separating the two
      // leaves at the first level where their hashes diverge.
      auto* leaf = new SNode{key, value};
      const std::uint64_t existing_hash = HashKey(existing->key);
      // Build bottom-up from the divergence level.
      int diverge = level + 1;
      while (BitAt(hash, diverge) == BitAt(existing_hash, diverge)) {
        ++diverge;
        KIWI_ASSERT(diverge * kBitsPerLevel < 70,
                    "bijective hashes cannot fully collide");
      }
      const std::uint64_t bit_new = BitAt(hash, diverge);
      const std::uint64_t bit_old = BitAt(existing_hash, diverge);
      auto* bottom = new CNode();
      bottom->bitmap = bit_new | bit_old;
      if (bit_new < bit_old) {
        bottom->children = {Branch::Leaf(leaf), Branch::Leaf(existing)};
      } else {
        bottom->children = {Branch::Leaf(existing), Branch::Leaf(leaf)};
      }
      Branch sub = Branch::Indirect(new INode(bottom, gen));
      std::size_t created = 2;  // bottom CNode + its INode
      for (int l = diverge - 1; l > level; --l) {
        auto* mid = new CNode();
        mid->bitmap = BitAt(hash, l);  // == BitAt(existing_hash, l)
        mid->children = {sub};
        sub = Branch::Indirect(new INode(mid, gen));
        created += 2;
      }
      auto* copy = new CNode(*cnode);
      copy->children[slot] = sub;
      if (inode->main.compare_exchange_strong(cnode, copy,
                                              std::memory_order_seq_cst)) {
        ebr_.RetireObject(cnode);
        entry_count_.fetch_add(1, std::memory_order_relaxed);
        node_count_.fetch_add(created + 1, std::memory_order_relaxed);
        return true;
      }
      // Tear down the unpublished subtree without touching `existing`.
      INode* walk = sub.AsIndirect();
      while (walk != nullptr) {
        CNode* main = walk->main.load(std::memory_order_relaxed);
        INode* next = nullptr;
        for (const Branch& child : main->children) {
          if (!child.IsLeaf()) next = child.AsIndirect();
        }
        delete main;
        delete walk;
        walk = next;
      }
      delete leaf;
      delete copy;
      return false;
    }

    // Indirection: make it current-generation, then descend.
    INode* child = branch.AsIndirect();
    if (child->gen != gen) {
      auto* clone =
          new INode(child->main.load(std::memory_order_seq_cst), gen);
      auto* copy = new CNode(*cnode);
      copy->children[slot] = Branch::Indirect(clone);
      if (inode->main.compare_exchange_strong(cnode, copy,
                                              std::memory_order_seq_cst)) {
        ebr_.RetireObject(cnode);
        ebr_.RetireObject(child);
        cow_clones_.fetch_add(1, std::memory_order_relaxed);
        inode = clone;
        ++level;
        continue;
      }
      delete clone;
      delete copy;
      return false;
    }
    inode = child;
    ++level;
  }
}

bool HashTrie::TryRemove(Key key, std::uint64_t gen) {
  const std::uint64_t hash = HashKey(key);
  INode* inode = root_.load(std::memory_order_seq_cst);
  if (inode->gen != gen) {
    auto* clone = new INode(inode->main.load(std::memory_order_seq_cst), gen);
    if (root_.compare_exchange_strong(inode, clone,
                                      std::memory_order_seq_cst)) {
      ebr_.RetireObject(inode);
      cow_clones_.fetch_add(1, std::memory_order_relaxed);
      inode = clone;
    } else {
      delete clone;
      return false;
    }
  }
  int level = 0;
  while (true) {
    CNode* cnode = inode->main.load(std::memory_order_seq_cst);
    const std::uint64_t bit = BitAt(hash, level);
    if ((cnode->bitmap & bit) == 0) return true;  // absent
    const int slot = cnode->SlotIndex(bit);
    const Branch branch = cnode->children[slot];
    if (branch.IsLeaf()) {
      SNode* leaf = branch.AsLeaf();
      if (leaf->key != key) return true;  // absent
      auto* copy = new CNode();
      copy->bitmap = cnode->bitmap & ~bit;
      copy->children.assign(cnode->children.begin(), cnode->children.end());
      copy->children.erase(copy->children.begin() + slot);
      if (inode->main.compare_exchange_strong(cnode, copy,
                                              std::memory_order_seq_cst)) {
        ebr_.RetireObject(cnode);
        ebr_.RetireObject(leaf);
        entry_count_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      delete copy;
      return false;
    }
    INode* child = branch.AsIndirect();
    if (child->gen != gen) {
      auto* clone =
          new INode(child->main.load(std::memory_order_seq_cst), gen);
      auto* copy = new CNode(*cnode);
      copy->children[slot] = Branch::Indirect(clone);
      if (inode->main.compare_exchange_strong(cnode, copy,
                                              std::memory_order_seq_cst)) {
        ebr_.RetireObject(cnode);
        ebr_.RetireObject(child);
        cow_clones_.fetch_add(1, std::memory_order_relaxed);
        inode = clone;
        ++level;
        continue;
      }
      delete clone;
      delete copy;
      return false;
    }
    inode = child;
    ++level;
  }
}

void HashTrie::Put(Key key, Value value) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  while (true) {
    WriterPassScope pass{epoch_lock_};
    const std::uint64_t gen = gen_.load(std::memory_order_seq_cst);
    if (TryPut(key, value, gen)) return;
  }
}

void HashTrie::Remove(Key key) {
  KIWI_ASSERT(key >= kMinUserKey, "key below the user key domain");
  reclaim::EbrGuard guard(ebr_);
  while (true) {
    WriterPassScope pass{epoch_lock_};
    const std::uint64_t gen = gen_.load(std::memory_order_seq_cst);
    if (TryRemove(key, gen)) return;
  }
}

void HashTrie::CollectAll(const CNode* cnode, Key from, Key to,
                          std::vector<Entry>& out) const {
  for (const Branch& branch : cnode->children) {
    if (branch.IsLeaf()) {
      const SNode* leaf = branch.AsLeaf();
      if (leaf->key >= from && leaf->key <= to) {
        out.emplace_back(leaf->key, leaf->value);
      }
    } else {
      CollectAll(branch.AsIndirect()->main.load(std::memory_order_acquire),
                 from, to, out);
    }
  }
}

std::size_t HashTrie::Scan(Key from_key, Key to_key,
                           std::vector<Entry>& out) {
  out.clear();
  reclaim::EbrGuard guard(ebr_);
  epoch_lock_.SnapshotEnter();
  gen_.fetch_add(1, std::memory_order_seq_cst);
  const INode* root = root_.load(std::memory_order_seq_cst);
  const CNode* main = root->main.load(std::memory_order_seq_cst);
  epoch_lock_.SnapshotExit();
  // Everything below `main` is frozen; a hash trie has no key order, so the
  // range read is full-walk + filter + sort — Ctrie's structural handicap.
  CollectAll(main, from_key, to_key, out);
  std::sort(out.begin(), out.end());
  return out.size();
}

std::size_t HashTrie::Size() {
  return entry_count_.load(std::memory_order_relaxed);
}

std::size_t HashTrie::MemoryFootprint() const {
  return entry_count_.load(std::memory_order_relaxed) * sizeof(SNode) +
         node_count_.load(std::memory_order_relaxed) *
             (sizeof(CNode) + 4 * sizeof(Branch) + sizeof(INode)) +
         sizeof(*this);
}

}  // namespace kiwi::baselines
