// Snapshot-capable concurrent hash trie — the repository's analogue of
// Ctrie (Prokopec et al. [32]), the remaining row of the paper's Table 1.
//
// Shape: a hash-array-mapped trie (6 hash bits per level).  Branch nodes
// (CNodes) are immutable bitmap+array records; each is held behind a
// mutable indirection cell (INode) that updates CAS.  Every INode carries
// the write generation it belongs to; Snapshot() bumps the generation (under
// the same snapshot-preferring epoch lock proven in the SnapTree
// substitute), freezing the entire current trie, and writers lazily clone
// stale INodes on their way down — Ctrie's lazy copy-on-write, with
// generation stamps standing in for the original's GCAS protocol.
//
// Faithful Table-1 properties:
//  * atomic snapshots, any number of them concurrently;
//  * NO partial snapshots: a range query must take a full snapshot, walk all
//    of it, filter and sort ("in Ctrie, partial snapshots cannot be
//    obtained") — which is why it loses the paper's scan benchmarks;
//  * puts are hampered while snapshots are live (every update copies its
//    path; an SNode update is a new SNode + new CNode + INode CAS).
//
// Keys are hashed with splitmix64 — a bijection on 64-bit values, so two
// distinct keys always diverge within the 11-level hash and the original's
// collision lists (LNodes) are unnecessary.  Removal does not contract
// single-child paths (no tomb/contract dance); the trie stays slightly
// larger after heavy deletion, which only handicaps ctrie itself.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/random.h"
#include "reclaim/ebr.h"

namespace kiwi::baselines {

class HashTrie {
 public:
  using Entry = std::pair<Key, Value>;

  HashTrie();
  ~HashTrie();
  HashTrie(const HashTrie&) = delete;
  HashTrie& operator=(const HashTrie&) = delete;

  /// Insert or overwrite.  Copies the leaf's branch node.
  void Put(Key key, Value value);

  /// Remove `key` if present.
  void Remove(Key key);

  /// Read the latest value.  Lock-free descent.
  std::optional<Value> Get(Key key);

  /// Atomic range read: takes a FULL snapshot, filters [from, to], sorts.
  /// This is the honest Ctrie cost — partial snapshots are unsupported.
  std::size_t Scan(Key from_key, Key to_key, std::vector<Entry>& out);

  template <typename F>
  std::size_t Scan(Key from_key, Key to_key, F&& yield) {
    std::vector<Entry> buffer;
    Scan(from_key, to_key, buffer);
    for (const Entry& entry : buffer) yield(entry.first, entry.second);
    return buffer.size();
  }

  std::size_t Size();
  std::size_t MemoryFootprint() const;

  /// Diagnostics: stale INodes cloned by writers (COW pressure).
  std::uint64_t CowClones() const {
    return cow_clones_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kBitsPerLevel = 6;
  static constexpr std::uint64_t kLevelMask = (1u << kBitsPerLevel) - 1;

  struct CNode;
  struct INode;

  /// Leaf: immutable key/value pair.
  struct SNode {
    Key key;
    Value value;
  };

  /// Tagged branch pointer: low bit 1 = SNode, 0 = INode.
  class Branch {
   public:
    Branch() = default;
    static Branch Leaf(SNode* node) {
      Branch b;
      b.bits_ = reinterpret_cast<std::uintptr_t>(node) | 1u;
      return b;
    }
    static Branch Indirect(INode* node) {
      Branch b;
      b.bits_ = reinterpret_cast<std::uintptr_t>(node);
      return b;
    }
    bool IsLeaf() const { return (bits_ & 1u) != 0; }
    SNode* AsLeaf() const {
      return reinterpret_cast<SNode*>(bits_ & ~std::uintptr_t{1});
    }
    INode* AsIndirect() const { return reinterpret_cast<INode*>(bits_); }

   private:
    std::uintptr_t bits_ = 0;
  };

  /// Immutable branch record: a bitmap of occupied slots and the packed
  /// children array (popcount addressing).
  struct CNode {
    std::uint64_t bitmap = 0;
    std::vector<Branch> children;

    int SlotIndex(std::uint64_t bit) const {
      return std::popcount(bitmap & (bit - 1));
    }
  };

  /// Mutable indirection cell; the only CAS target.  `gen` freezes it: a
  /// writer may CAS `main` only when gen matches the current generation.
  struct INode {
    std::atomic<CNode*> main;
    std::uint64_t gen;
    INode(CNode* cnode, std::uint64_t g) : main(cnode), gen(g) {}
  };

  /// Same snapshot-preferring shared/exclusive lock as the SnapTree
  /// substitute: it guarantees no two writers ever run under different
  /// generations (see cow_tree.h for the starvation/double-retire story).
  class EpochLock {
   public:
    void WriterEnter() {
      while (true) {
        std::uint64_t word = word_.load(std::memory_order_seq_cst);
        if ((word & kSnapshotBit) != 0) {
          std::this_thread::yield();
          continue;
        }
        if (word_.compare_exchange_weak(word, word + 1,
                                        std::memory_order_seq_cst)) {
          return;
        }
      }
    }
    void WriterExit() { word_.fetch_sub(1, std::memory_order_seq_cst); }
    void SnapshotEnter() {
      while (true) {
        std::uint64_t word = word_.load(std::memory_order_seq_cst);
        if ((word & kSnapshotBit) != 0) {
          std::this_thread::yield();
          continue;
        }
        if (word_.compare_exchange_weak(word, word | kSnapshotBit,
                                        std::memory_order_seq_cst)) {
          break;
        }
      }
      while ((word_.load(std::memory_order_seq_cst) & ~kSnapshotBit) != 0) {
        std::this_thread::yield();
      }
    }
    void SnapshotExit() {
      word_.fetch_and(~kSnapshotBit, std::memory_order_seq_cst);
    }

   private:
    static constexpr std::uint64_t kSnapshotBit = std::uint64_t{1} << 62;
    std::atomic<std::uint64_t> word_{0};
  };

  class WriterPassScope {
   public:
    explicit WriterPassScope(EpochLock& lock) : lock_(lock) {
      lock_.WriterEnter();
    }
    ~WriterPassScope() { lock_.WriterExit(); }
    WriterPassScope(const WriterPassScope&) = delete;
    WriterPassScope& operator=(const WriterPassScope&) = delete;

   private:
    EpochLock& lock_;
  };

  static std::uint64_t HashKey(Key key) {
    std::uint64_t state = static_cast<std::uint64_t>(key);
    return Splitmix64(state);
  }
  static std::uint64_t BitAt(std::uint64_t hash, int level) {
    return std::uint64_t{1} << ((hash >> (level * kBitsPerLevel)) &
                                kLevelMask);
  }

  /// Ensure the INode referenced by `branch` (sitting in `parent`'s slot)
  /// is current-generation, cloning it if needed.  Returns the live INode.
  INode* EnsureCurrent(INode* parent, const CNode* parent_main,
                       std::uint64_t bit, INode* child, std::uint64_t gen);

  /// One update attempt; false = CAS lost, restart from the root.
  bool TryPut(Key key, Value value, std::uint64_t gen);
  bool TryRemove(Key key, std::uint64_t gen);

  void CollectAll(const CNode* cnode, Key from, Key to,
                  std::vector<Entry>& out) const;
  void DestroyCNode(CNode* cnode);

  EpochLock epoch_lock_;
  std::atomic<std::uint64_t> gen_{1};
  std::atomic<INode*> root_;
  mutable reclaim::Ebr ebr_;
  std::atomic<std::size_t> entry_count_{0};
  std::atomic<std::size_t> node_count_{1};
  std::atomic<std::uint64_t> cow_clones_{0};
};

}  // namespace kiwi::baselines
