// Trivially correct reference map: std::map under a shared mutex.
//
// Not a performance baseline — it exists as (a) the linearizable oracle the
// property/stress tests compare every other structure against, and (b) a
// floor in the quickstart example.  Scans are atomic (they hold the shared
// lock for their whole duration, which is exactly the behaviour KiWi's
// design wants to avoid).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/config.h"

namespace kiwi::baselines {

class LockedMap {
 public:
  using Entry = std::pair<Key, Value>;

  void Put(Key key, Value value) {
    std::unique_lock lock(mutex_);
    map_[key] = value;
  }

  void Remove(Key key) {
    std::unique_lock lock(mutex_);
    map_.erase(key);
  }

  std::optional<Value> Get(Key key) {
    std::shared_lock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t Scan(Key from_key, Key to_key, std::vector<Entry>& out) {
    out.clear();
    std::shared_lock lock(mutex_);
    for (auto it = map_.lower_bound(from_key);
         it != map_.end() && it->first <= to_key; ++it) {
      out.emplace_back(it->first, it->second);
    }
    return out.size();
  }

  template <typename F>
  std::size_t Scan(Key from_key, Key to_key, F&& yield) {
    std::shared_lock lock(mutex_);
    std::size_t count = 0;
    for (auto it = map_.lower_bound(from_key);
         it != map_.end() && it->first <= to_key; ++it) {
      yield(it->first, it->second);
      ++count;
    }
    return count;
  }

  std::size_t Size() {
    std::shared_lock lock(mutex_);
    return map_.size();
  }

  std::size_t MemoryFootprint() {
    std::shared_lock lock(mutex_);
    // std::map node: 3 pointers + color + pair, rounded to allocator reality.
    return map_.size() * (sizeof(Entry) + 4 * sizeof(void*)) + sizeof(*this);
  }

 private:
  std::shared_mutex mutex_;
  std::map<Key, Value> map_;
};

}  // namespace kiwi::baselines
