#include "harness/driver.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/assert.h"
#include "common/barrier.h"
#include "harness/metrics.h"
#include "obs/trace.h"

namespace kiwi::harness {

namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

using Clock = std::chrono::steady_clock;

}  // namespace

const RoleResult& RunResult::Role(const std::string& name) const {
  for (const RoleResult& role : roles) {
    if (role.name == name) return role;
  }
  KIWI_ASSERT(false, "unknown role name");
  return roles.front();
}

DriverOptions DriverOptions::FromEnv(DriverOptions defaults) {
  defaults.warmup_ms = EnvOr("KIWI_BENCH_WARMUP_MS", defaults.warmup_ms);
  defaults.iteration_ms = EnvOr("KIWI_BENCH_ITER_MS", defaults.iteration_ms);
  defaults.iterations = static_cast<std::uint32_t>(
      EnvOr("KIWI_BENCH_ITERS", defaults.iterations));
  return defaults;
}

RunResult RunWorkload(api::IOrderedMap& map, const std::vector<Role>& roles,
                      const DriverOptions& options) {
  KIWI_ASSERT(!roles.empty(), "need at least one role");

  // Continuous telemetry opt-in: KIWI_METRICS=<interval>[:<path>] streams
  // JSONL samples for the run (no-op when unset, already running, or the
  // map is not KiWi).  The map's destructor stops the pump.
  StartEnvMetricsPump(map);

  if (options.initial_size > 0) {
    Prefill(map, roles.front().spec, options.initial_size, options.seed);
  }

  std::size_t total_threads = 0;
  for (const Role& role : roles) total_threads += role.threads;
  KIWI_ASSERT(total_threads >= 1 && total_threads < kMaxThreads,
              "thread count exceeds the map's kMaxThreads budget");

  // Phase control: 0 = warmup, 1..iterations = measured, stop afterwards.
  // Workers spin on `phase_` and flush per-phase counters through the
  // matching slot of their counter arrays, so the control thread never
  // blocks the workers.
  std::atomic<int> phase{-1};
  std::atomic<bool> stop{false};
  const std::uint32_t iterations = options.iterations;

  struct alignas(kCacheLineSize) WorkerCounters {
    std::vector<std::uint64_t> ops;   // per phase
    std::vector<std::uint64_t> keys;  // per phase
  };
  std::vector<WorkerCounters> counters(total_threads);
  for (auto& c : counters) {
    c.ops.assign(iterations + 1, 0);
    c.keys.assign(iterations + 1, 0);
  }

  std::vector<std::thread> workers;
  workers.reserve(total_threads);
  SpinBarrier barrier(total_threads + 1);

  std::size_t ordinal = 0;
  for (const Role& role : roles) {
    for (std::size_t t = 0; t < role.threads; ++t, ++ordinal) {
      workers.emplace_back([&, ordinal, role_spec = role.spec,
                            role_t = t, role_threads = role.threads] {
        OpStream stream(role_spec, options.seed + ordinal, role_t,
                        role_threads);
        std::vector<api::IOrderedMap::Entry> scan_buffer;
        WorkerCounters& mine = counters[ordinal];
        barrier.ArriveAndWait();
        int observed_phase = -1;  // ops before warmup-start are discarded
        std::uint64_t ops = 0;
        std::uint64_t keys = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const int now = phase.load(std::memory_order_acquire);
          if (now != observed_phase) {
            if (observed_phase >= 0 &&
                static_cast<std::size_t>(observed_phase) < mine.ops.size()) {
              mine.ops[observed_phase] = ops;
              mine.keys[observed_phase] = keys;
            }
            ops = keys = 0;
            observed_phase = now;
            if (now < 0) break;
          }
          const OpType op = stream.NextOp();
          const Key key = stream.NextKey();
          switch (op) {
            case OpType::kGet:
              map.Get(key);
              keys += 1;
              break;
            case OpType::kPut:
              map.Put(key, static_cast<Value>(key) + 1);
              keys += 1;
              break;
            case OpType::kRemove:
              map.Remove(key);
              keys += 1;
              break;
            case OpType::kScan: {
              const Key to = key + static_cast<Key>(stream.ScanSize()) - 1;
              keys += map.Scan(key, to, scan_buffer);
              break;
            }
          }
          ++ops;
        }
        // Flush whatever phase was live when stop arrived.
        if (observed_phase >= 0 &&
            static_cast<std::size_t>(observed_phase) < mine.ops.size()) {
          mine.ops[observed_phase] = ops;
          mine.keys[observed_phase] = keys;
        }
      });
    }
  }

  const auto sleep_ms = [](std::uint64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };

  barrier.ArriveAndWait();
  phase.store(0, std::memory_order_release);  // warmup
  sleep_ms(options.warmup_ms);

  std::vector<double> iteration_seconds(iterations);
  for (std::uint32_t i = 0; i < iterations; ++i) {
    const auto start = Clock::now();
    phase.store(static_cast<int>(i) + 1, std::memory_order_release);
    sleep_ms(options.iteration_ms);
    iteration_seconds[i] =
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  phase.store(-2, std::memory_order_release);
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();

  RunResult result;
  ordinal = 0;
  for (const Role& role : roles) {
    RoleResult role_result;
    role_result.name = role.name;
    role_result.threads = role.threads;
    for (std::size_t t = 0; t < role.threads; ++t, ++ordinal) {
      for (std::uint32_t i = 1; i <= iterations; ++i) {
        role_result.ops += counters[ordinal].ops[i];
        role_result.keys += counters[ordinal].keys[i];
      }
    }
    for (std::uint32_t i = 0; i < iterations; ++i) {
      role_result.seconds += iteration_seconds[i];
    }
    result.roles.push_back(std::move(role_result));
  }

  if (options.measure_memory) {
    map.DrainDeferredMemory();
    result.memory_bytes = map.MemoryFootprint();
  }

#if KIWI_TRACE_ENABLED
  // KIWI_BENCH_TRACE=<file> (or =1 for kiwi_trace.json): dump the flight
  // recorder now that every worker joined, so the export is exact.  Each run
  // overwrites the file; the rings hold only the newest events anyway.
  if (const char* env = std::getenv("KIWI_BENCH_TRACE");
      env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    const char* path = std::strcmp(env, "1") == 0 ? "kiwi_trace.json" : env;
    if (!obs::trace::DumpTraceToFile(path)) {
      std::fprintf(stderr, "KIWI_BENCH_TRACE: cannot write %s\n", path);
    }
  }
#endif
  return result;
}

}  // namespace kiwi::harness
