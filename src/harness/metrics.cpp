#include "harness/metrics.h"

#include <cstdio>
#include <vector>

#include "api/map_interface.h"

namespace kiwi::harness {

namespace {
/// The registry lives inside KiWiMap; other maps have no obs state.
core::KiWiMap* AsKiwi(api::IOrderedMap& map) {
  auto* adapter = dynamic_cast<api::MapAdapter<core::KiWiMap>*>(&map);
  return adapter != nullptr ? &adapter->Underlying() : nullptr;
}
}  // namespace

void EmitCsv(const std::string& figure, const std::string& series, double x,
             double y, const std::string& unit) {
  std::printf("csv,%s,%s,%.6g,%.6g,%s\n", figure.c_str(), series.c_str(), x,
              y, unit.c_str());
  std::fflush(stdout);
}

void Note(const std::string& text) {
  std::printf("# %s\n", text.c_str());
  std::fflush(stdout);
}

std::string FormatMps(double per_sec) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f M/s", per_sec / 1e6);
  return buffer;
}

std::string FormatMb(std::size_t bytes) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buffer;
}

bool ParseUintList(const std::string& text, std::vector<std::uint64_t>* out) {
  out->clear();
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    if (end == begin) return false;
    char* parse_end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str() + begin, &parse_end, 10);
    if (parse_end != text.c_str() + end) return false;
    out->push_back(value);
    begin = end + 1;
  }
  return !out->empty();
}

std::string DebugReportJson(api::IOrderedMap& map) {
  core::KiWiMap* kiwi = AsKiwi(map);
  return kiwi != nullptr ? kiwi->DebugReport().ToJson() : std::string();
}

std::string ObsDigest(api::IOrderedMap& map) {
  core::KiWiMap* kiwi = AsKiwi(map);
  if (kiwi == nullptr) return {};
  const obs::DebugReport report = kiwi->DebugReport();
  // One contention figure for the digest: every lost/retried CAS across the
  // put, PPA, rebalance and index hot loops.
  const obs::OpCounters& c = report.counters;
  const unsigned long long retries =
      c.put_link_retries + c.ppa_publish_fails + c.engage_cas_fails +
      c.freeze_cas_retries + c.splice_retries + c.index_cas_retries;
  char buffer[320];
  std::snprintf(
      buffer, sizeof(buffer),
      "obs: puts=%llu gets=%llu scans=%llu rebalances=%llu restarts=%llu "
      "retries=%llu chunks=%llu ebr_pending=%llu ebr_lag=%llu",
      (unsigned long long)c.puts, (unsigned long long)c.gets,
      (unsigned long long)c.scans, (unsigned long long)c.rebalances,
      (unsigned long long)c.put_restarts, retries,
      (unsigned long long)report.gauges.chunks,
      (unsigned long long)report.gauges.ebr_pending,
      (unsigned long long)report.gauges.ebr_epoch_lag);
  return buffer;
}

bool StartEnvMetricsPump(api::IOrderedMap& map) {
  core::KiWiMap* kiwi = AsKiwi(map);
  return kiwi != nullptr && kiwi->StartMetricsPumpFromEnv();
}

bool EmitObsJson(const std::string& figure, const std::string& series,
                 api::IOrderedMap& map) {
  const std::string json = DebugReportJson(map);
  if (json.empty()) return false;
  std::printf("obsjson,%s,%s,%s\n", figure.c_str(), series.c_str(),
              json.c_str());
  std::fflush(stdout);
  return true;
}

}  // namespace kiwi::harness
