#include "harness/metrics.h"

#include <cstdio>
#include <vector>

namespace kiwi::harness {

void EmitCsv(const std::string& figure, const std::string& series, double x,
             double y, const std::string& unit) {
  std::printf("csv,%s,%s,%.6g,%.6g,%s\n", figure.c_str(), series.c_str(), x,
              y, unit.c_str());
  std::fflush(stdout);
}

void Note(const std::string& text) {
  std::printf("# %s\n", text.c_str());
  std::fflush(stdout);
}

std::string FormatMps(double per_sec) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f M/s", per_sec / 1e6);
  return buffer;
}

std::string FormatMb(std::size_t bytes) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buffer;
}

bool ParseUintList(const std::string& text, std::vector<std::uint64_t>* out) {
  out->clear();
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    if (end == begin) return false;
    char* parse_end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str() + begin, &parse_end, 10);
    if (parse_end != text.c_str() + end) return false;
    out->push_back(value);
    begin = end + 1;
  }
  return !out->empty();
}

}  // namespace kiwi::harness
