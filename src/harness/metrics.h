// Reporting helpers shared by the benches: CSV rows mirroring the paper's
// figure axes plus human-readable summaries.
//
// Every figure bench emits lines of the form
//   csv,<figure>,<series>,<x>,<y>,<unit>
// so plots can be regenerated with a one-line grep + any plotting tool.
// Observability rows (obsjson,...) are digested from the single source of
// truth — the map's obs::StatsRegistry via DebugReport() — never from
// harness-side shadow counters, so bench reports and DebugReport can never
// disagree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kiwi::api {
class IOrderedMap;
}

namespace kiwi::harness {

/// Emit one CSV data point to stdout.
void EmitCsv(const std::string& figure, const std::string& series,
             double x, double y, const std::string& unit);

/// Emit a human-readable line (prefixed for easy filtering).
void Note(const std::string& text);

/// Pretty-print a throughput in M ops or keys per second.
std::string FormatMps(double per_sec);

/// Pretty-print a byte count (MB with two decimals).
std::string FormatMb(std::size_t bytes);

/// Parse "a,b,c" into integers (bench CLI helper).
bool ParseUintList(const std::string& text, std::vector<std::uint64_t>* out);

/// KiWi's DebugReport (the obs::StatsRegistry + structural gauges) as
/// one-line JSON; "" when `map` is not a KiWi instance.  This is the only
/// path by which harness/bench reporting reads observability state.
std::string DebugReportJson(api::IOrderedMap& map);

/// One-line human digest of the same registry (counters + structure), or
/// "" for non-KiWi maps.  Suitable for Note().
std::string ObsDigest(api::IOrderedMap& map);

/// Emit the `obsjson,<figure>,<series>,<json>` protocol row (schema in
/// docs/OBSERVABILITY.md, consumed by scripts/render_results.py).  Returns
/// true if a row was emitted (i.e. `map` is KiWi).
bool EmitObsJson(const std::string& figure, const std::string& series,
                 api::IOrderedMap& map);

/// Start the map's continuous-telemetry pump if KIWI_METRICS is set and
/// `map` is a KiWi instance (see docs/OBSERVABILITY.md).  Returns true iff
/// a pump started; the map's destructor stops it.  Benches call this right
/// after constructing a map so `KIWI_METRICS=1s kiwi_bench ...` just works.
bool StartEnvMetricsPump(api::IOrderedMap& map);

}  // namespace kiwi::harness
