// Reporting helpers shared by the benches: CSV rows mirroring the paper's
// figure axes plus human-readable summaries.
//
// Every figure bench emits lines of the form
//   csv,<figure>,<series>,<x>,<y>,<unit>
// so plots can be regenerated with a one-line grep + any plotting tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kiwi::harness {

/// Emit one CSV data point to stdout.
void EmitCsv(const std::string& figure, const std::string& series,
             double x, double y, const std::string& unit);

/// Emit a human-readable line (prefixed for easy filtering).
void Note(const std::string& text);

/// Pretty-print a throughput in M ops or keys per second.
std::string FormatMps(double per_sec);

/// Pretty-print a byte count (MB with two decimals).
std::string FormatMb(std::size_t bytes);

/// Parse "a,b,c" into integers (bench CLI helper).
bool ParseUintList(const std::string& text, std::vector<std::uint64_t>* out);

}  // namespace kiwi::harness
