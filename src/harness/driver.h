// Multithreaded workload driver: the paper's methodology (§6.1) — warmup,
// then N timed iterations, averaged — with per-role throughput accounting
// so scan and put throughput can be reported separately (Figure 4).
//
// Durations are scaled down by default so `ctest` and the full bench sweep
// finish in minutes on one core; the environment variables
// KIWI_BENCH_WARMUP_MS / KIWI_BENCH_ITER_MS / KIWI_BENCH_ITERS restore
// paper-scale runs (20000 / 5000 / 10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/map_interface.h"
#include "harness/workload.h"

namespace kiwi::harness {

/// A group of threads running one workload spec.
struct Role {
  std::string name;
  std::size_t threads = 1;
  WorkloadSpec spec;
};

struct RoleResult {
  std::string name;
  std::size_t threads = 0;
  std::uint64_t ops = 0;        // completed operations across iterations
  std::uint64_t keys = 0;       // keys touched (scan ops count their range)
  double seconds = 0;           // summed measured time
  double OpsPerSec() const { return seconds > 0 ? ops / seconds : 0; }
  double KeysPerSec() const { return seconds > 0 ? keys / seconds : 0; }
};

struct RunResult {
  std::vector<RoleResult> roles;
  std::size_t memory_bytes = 0;  // footprint after the run (drained)

  const RoleResult& Role(const std::string& name) const;
};

struct DriverOptions {
  std::uint64_t warmup_ms = 150;
  std::uint64_t iteration_ms = 400;
  std::uint32_t iterations = 3;
  std::uint64_t seed = 42;
  /// Prefill size; 0 skips prefill.
  std::uint64_t initial_size = 0;
  /// Spec whose key_range the prefill draws from (defaults to first role).
  bool measure_memory = false;

  /// Apply KIWI_BENCH_* environment overrides.
  static DriverOptions FromEnv(DriverOptions defaults);
  static DriverOptions FromEnv() { return FromEnv(DriverOptions{}); }
};

/// Run the workload: prefill, warmup, timed iterations.  Thread counts are
/// taken as given even when they exceed hardware parallelism (the paper's
/// machine has 32 cores; on smaller hosts the schedule is oversubscribed
/// and absolute numbers compress, but algorithmic effects survive).
RunResult RunWorkload(api::IOrderedMap& map, const std::vector<Role>& roles,
                      const DriverOptions& options);

}  // namespace kiwi::harness
