// Linearizability checking for single-key (register) histories, in the
// style of Wing & Gong: exhaustive search for a linearization of recorded
// operation intervals that satisfies register semantics.
//
// Usage pattern (see tests/linearizability_test.cpp): worker threads operate
// on ONE key of a map, stamping each operation with invoke/response ticks
// from a shared atomic clock; the checker then proves or refutes that some
// total order consistent with the real-time intervals explains every
// result.  The search is exponential in the number of *overlapping*
// operations, so recorded windows are kept small (tens of ops).
//
// This complements the invariant-based concurrency tests: those catch
// classes of violations cheaply at scale, the checker verifies full
// linearizability on small histories with no blind spots.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/config.h"

namespace kiwi::harness {

struct LinOp {
  enum class Kind : std::uint8_t { kWrite, kRemove, kRead };

  Kind kind = Kind::kRead;
  /// For kWrite: the written value.  For kRead: the returned value (only
  /// meaningful when found == true).
  Value value = 0;
  /// For kRead: whether the key was present.
  bool found = false;
  /// Real-time interval: ticks from a shared monotone clock, taken
  /// immediately before invocation and immediately after response.
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
};

/// True iff `history` has a linearization: a permutation that (a) respects
/// real-time order (op X before op Y whenever X.response < Y.invoke) and
/// (b) satisfies register semantics (a read returns the value of the latest
/// preceding write, or absent if none / a remove intervened).
///
/// `initially_present`/`initial_value`: register state before the history.
/// History size is capped at 63 ops (bitmask search).
bool IsLinearizableRegisterHistory(const std::vector<LinOp>& history,
                                   bool initially_present = false,
                                   Value initial_value = 0);

/// Convenience for building histories in tests: a shared monotone clock.
class HistoryClock {
 public:
  std::uint64_t Tick() { return next_.fetch_add(1, std::memory_order_seq_cst); }

 private:
  std::atomic<std::uint64_t> next_{1};
};

}  // namespace kiwi::harness
