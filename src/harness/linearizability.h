// Linearizability checking for single-key (register) histories, in the
// style of Wing & Gong: exhaustive search for a linearization of recorded
// operation intervals that satisfies register semantics.
//
// Usage pattern (see tests/linearizability_test.cpp): worker threads operate
// on ONE key of a map, stamping each operation with invoke/response ticks
// from a shared atomic clock; the checker then proves or refutes that some
// total order consistent with the real-time intervals explains every
// result.  The multi-key fuzz checker (src/fuzz/checker.h) decomposes
// put/get/remove/scan histories into per-key register histories and feeds
// them here (linearizability is local, so per-key decomposition is exact
// for single-key operations).
//
// Complexity and the overlapping-ops cap
// --------------------------------------
// The search cost is exponential in the number of *overlapping* operations,
// not in the history length.  The checker splits the history at real-time
// barriers — points where every earlier op's response precedes every later
// op's invoke — and searches each overlapping window independently,
// threading the set of feasible register states across windows.  A window
// of w ops costs O(2^w · w^2) time and O(2^w · w) memoized states in the
// worst case; in practice memoization keeps fuzz-sized windows (tens of
// ops) well below that.  Total history length is unbounded; any single
// window larger than kMaxOverlappingOps (63, the bitmask width) trips a
// KIWI_ASSERT with an explicit message instead of silently truncating —
// recorders should bound per-burst concurrency, not total history size.
//
// This complements the invariant-based concurrency tests: those catch
// classes of violations cheaply at scale, the checker verifies full
// linearizability on small histories with no blind spots.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/config.h"

namespace kiwi::harness {

struct LinOp {
  enum class Kind : std::uint8_t { kWrite, kRemove, kRead };

  Kind kind = Kind::kRead;
  /// For kWrite: the written value.  For kRead: the returned value (only
  /// meaningful when found == true).
  Value value = 0;
  /// For kRead: whether the key was present.
  bool found = false;
  /// Real-time interval: ticks from a shared monotone clock, taken
  /// immediately before invocation and immediately after response.
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
};

/// Maximum number of mutually overlapping operations one history window may
/// contain (the bitmask search width).  Exceeding it aborts with a clear
/// KIWI_ASSERT; it never silently truncates.
inline constexpr std::size_t kMaxOverlappingOps = 63;

/// A register state: one feasible (present, value) pair.
struct RegisterState {
  bool present = false;
  Value value = 0;
  friend bool operator==(const RegisterState&, const RegisterState&) = default;
};

/// True iff `history` has a linearization: a permutation that (a) respects
/// real-time order (op X before op Y whenever X.response < Y.invoke) and
/// (b) satisfies register semantics (a read returns the value of the latest
/// preceding write, or absent if none / a remove intervened).
///
/// `initially_present`/`initial_value`: register state before the history.
/// History length is unbounded; any window of mutually overlapping ops is
/// capped at kMaxOverlappingOps (see the header comment).
bool IsLinearizableRegisterHistory(const std::vector<LinOp>& history,
                                   bool initially_present = false,
                                   Value initial_value = 0);

/// The full check: every register state the history could leave behind
/// under some valid linearization (empty iff the history is not
/// linearizable).  Exposed for chained/windowed checking (the fuzz checker
/// threads these states through multi-burst histories).
std::vector<RegisterState> FeasibleFinalStates(
    const std::vector<LinOp>& history,
    const std::vector<RegisterState>& initial_states);

/// Convenience for building histories in tests: a shared monotone clock.
class HistoryClock {
 public:
  std::uint64_t Tick() { return next_.fetch_add(1, std::memory_order_seq_cst); }

 private:
  std::atomic<std::uint64_t> next_{1};
};

}  // namespace kiwi::harness
