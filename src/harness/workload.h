// Workload generation in the style of synchrobench [21], which the paper
// uses for all experiments (§6.1): operation mixes over uniform random keys
// (or a monotonically ordered stream for the §6.2 experiment), with a
// prefill phase that loads the map to its target size.
#pragma once

#include <cstdint>
#include <string>

#include "api/map_interface.h"
#include "common/config.h"
#include "common/random.h"

namespace kiwi::harness {

enum class OpType : std::uint8_t { kGet, kPut, kRemove, kScan };

/// One thread role's operation mix and key distribution.
struct WorkloadSpec {
  /// Operation mix; fractions must sum to 1.
  double get_fraction = 0.0;
  double put_fraction = 0.0;
  double remove_fraction = 0.0;
  double scan_fraction = 0.0;

  /// Keys are drawn uniformly from [kMinUserKey, kMinUserKey + key_range).
  std::uint64_t key_range = 2'000'000;
  /// Scans read [k, k + scan_size - 1] for a uniform lower bound k.
  std::uint64_t scan_size = 32 * 1024;
  /// Monotonically increasing keys instead of uniform (ordered workload,
  /// §6.2); each thread strides by the total thread count.
  bool ordered_keys = false;

  std::string Describe() const;

  // -- canned mixes matching the paper's scenarios -----------------------
  static WorkloadSpec GetOnly(std::uint64_t key_range);
  /// "random writes, half inserts/updates and half deletes"
  static WorkloadSpec PutOnly(std::uint64_t key_range);
  static WorkloadSpec ScanOnly(std::uint64_t key_range,
                               std::uint64_t scan_size);
  static WorkloadSpec OrderedPuts();
};

/// Per-thread operation stream.
class OpStream {
 public:
  OpStream(const WorkloadSpec& spec, std::uint64_t seed,
           std::uint64_t thread_ordinal, std::uint64_t thread_total);

  OpType NextOp();
  Key NextKey();
  std::uint64_t ScanSize() const { return spec_.scan_size; }

 private:
  WorkloadSpec spec_;
  Xoshiro256 rng_;
  // Ordered stream: thread i emits ordinal, ordinal + total, ...
  std::uint64_t ordered_next_;
  std::uint64_t ordered_stride_;
};

/// Load `map` with `count` distinct random keys (uniform in the spec's key
/// range) — the paper's "an iteration fills the map with random pairs".
void Prefill(api::IOrderedMap& map, const WorkloadSpec& spec,
             std::uint64_t count, std::uint64_t seed);

}  // namespace kiwi::harness
