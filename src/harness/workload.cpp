#include "harness/workload.h"

#include <cmath>

#include "common/assert.h"

namespace kiwi::harness {

std::string WorkloadSpec::Describe() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "get=%.2f put=%.2f rm=%.2f scan=%.2f range=%llu scan_size=%llu%s",
                get_fraction, put_fraction, remove_fraction, scan_fraction,
                static_cast<unsigned long long>(key_range),
                static_cast<unsigned long long>(scan_size),
                ordered_keys ? " ordered" : "");
  return buffer;
}

WorkloadSpec WorkloadSpec::GetOnly(std::uint64_t key_range) {
  WorkloadSpec spec;
  spec.get_fraction = 1.0;
  spec.key_range = key_range;
  return spec;
}

WorkloadSpec WorkloadSpec::PutOnly(std::uint64_t key_range) {
  WorkloadSpec spec;
  spec.put_fraction = 0.5;
  spec.remove_fraction = 0.5;
  spec.key_range = key_range;
  return spec;
}

WorkloadSpec WorkloadSpec::ScanOnly(std::uint64_t key_range,
                                    std::uint64_t scan_size) {
  WorkloadSpec spec;
  spec.scan_fraction = 1.0;
  spec.key_range = key_range;
  spec.scan_size = scan_size;
  return spec;
}

WorkloadSpec WorkloadSpec::OrderedPuts() {
  WorkloadSpec spec;
  spec.put_fraction = 1.0;
  spec.ordered_keys = true;
  spec.key_range = ~std::uint64_t{0} >> 2;  // effectively unbounded
  return spec;
}

OpStream::OpStream(const WorkloadSpec& spec, std::uint64_t seed,
                   std::uint64_t thread_ordinal, std::uint64_t thread_total)
    : spec_(spec),
      rng_(seed * 0x9E3779B97F4A7C15ULL + thread_ordinal + 1),
      ordered_next_(thread_ordinal),
      ordered_stride_(thread_total) {
  const double total = spec.get_fraction + spec.put_fraction +
                       spec.remove_fraction + spec.scan_fraction;
  KIWI_ASSERT(std::abs(total - 1.0) < 1e-9, "op mix must sum to 1");
}

OpType OpStream::NextOp() {
  const double draw = rng_.NextDouble();
  if (draw < spec_.get_fraction) return OpType::kGet;
  if (draw < spec_.get_fraction + spec_.put_fraction) return OpType::kPut;
  if (draw <
      spec_.get_fraction + spec_.put_fraction + spec_.remove_fraction) {
    return OpType::kRemove;
  }
  return OpType::kScan;
}

Key OpStream::NextKey() {
  if (spec_.ordered_keys) {
    const Key key = kMinUserKey + static_cast<Key>(ordered_next_);
    ordered_next_ += ordered_stride_;
    return key;
  }
  return kMinUserKey + static_cast<Key>(rng_.NextBounded(spec_.key_range));
}

void Prefill(api::IOrderedMap& map, const WorkloadSpec& spec,
             std::uint64_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x2545F4914F6CDD1DULL + 7);
  // Random inserts until the target size is reached; duplicates overwrite,
  // so draw ~count * range/(range-count)-ish extra attempts and stop by
  // counting actual size growth cheaply via a local set-free heuristic:
  // with range = 2 * count the expected attempts are ~1.39 * count, so just
  // loop on inserted-counting with a bitmap-free approach — insert until
  // `count` *distinct* keys were drawn, tracked by a dense bitmap when the
  // range is small enough, otherwise by accepting the approximation.
  if (spec.key_range <= (std::uint64_t{1} << 28)) {
    std::vector<bool> seen(spec.key_range, false);
    std::uint64_t inserted = 0;
    while (inserted < count) {
      const std::uint64_t offset = rng.NextBounded(spec.key_range);
      map.Put(kMinUserKey + static_cast<Key>(offset),
              static_cast<Value>(offset));
      if (!seen[offset]) {
        seen[offset] = true;
        ++inserted;
      }
    }
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t offset = rng.NextBounded(spec.key_range);
      map.Put(kMinUserKey + static_cast<Key>(offset),
              static_cast<Value>(offset));
    }
  }
}

}  // namespace kiwi::harness
