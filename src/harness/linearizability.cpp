#include "harness/linearizability.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace kiwi::harness {

namespace {

/// Register state is fully determined by the last applied write/remove (or
/// the window's entry state); reads do not change it.  The search therefore
/// memoizes (applied-set, index-of-last-mutator) pairs per entry state.
struct SearchState {
  std::uint64_t applied_mask;
  int last_mutator;  // -1 = window entry state

  bool operator==(const SearchState&) const = default;
};

struct SearchStateHash {
  std::size_t operator()(const SearchState& s) const {
    return std::hash<std::uint64_t>()(s.applied_mask * 31 +
                                      static_cast<std::uint64_t>(
                                          s.last_mutator + 1));
  }
};

/// Exhaustive search over one window of mutually overlapping ops: collects
/// every register state some valid linearization of the window can end in,
/// starting from one entry state.  Pruning on revisited (mask, last_mutator)
/// states is sound for *enumeration* too: the set of reachable final states
/// from a search state is a pure function of that state, so a second visit
/// can only rediscover finals already collected on the first.
class WindowChecker {
 public:
  WindowChecker(const LinOp* ops, std::size_t count, RegisterState entry)
      : ops_(ops), count_(count), entry_(entry) {}

  void CollectFinals(std::vector<RegisterState>& out) {
    finals_ = &out;
    Search(SearchState{0, -1});
  }

 private:
  RegisterState StateAfter(int last_mutator) const {
    if (last_mutator < 0) return entry_;
    const LinOp& m = ops_[last_mutator];
    return RegisterState{m.kind == LinOp::Kind::kWrite, m.value};
  }

  void Search(SearchState state) {
    if (state.applied_mask == (std::uint64_t{1} << count_) - 1) {
      const RegisterState final = StateAfter(state.last_mutator);
      if (std::find(finals_->begin(), finals_->end(), final) ==
          finals_->end()) {
        finals_->push_back(final);
      }
      return;
    }
    if (!visited_.insert(state).second) return;

    // An op may be linearized next iff no other *pending* op must precede
    // it in real time (i.e. no pending response is strictly before its
    // invoke).
    std::uint64_t min_pending_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < count_; ++i) {
      if ((state.applied_mask >> i) & 1) continue;
      min_pending_response = std::min(min_pending_response, ops_[i].response);
    }
    for (std::size_t i = 0; i < count_; ++i) {
      if ((state.applied_mask >> i) & 1) continue;
      const LinOp& op = ops_[i];
      if (op.invoke > min_pending_response) continue;  // someone must precede
      SearchState next = state;
      next.applied_mask |= (std::uint64_t{1} << i);
      switch (op.kind) {
        case LinOp::Kind::kWrite:
        case LinOp::Kind::kRemove:
          next.last_mutator = static_cast<int>(i);
          break;
        case LinOp::Kind::kRead: {
          const RegisterState reg = StateAfter(state.last_mutator);
          if (op.found != reg.present) continue;
          if (reg.present && op.value != reg.value) continue;
          break;
        }
      }
      Search(next);
    }
  }

  const LinOp* ops_;
  const std::size_t count_;
  const RegisterState entry_;
  std::vector<RegisterState>* finals_ = nullptr;
  std::unordered_set<SearchState, SearchStateHash> visited_;
};

}  // namespace

std::vector<RegisterState> FeasibleFinalStates(
    const std::vector<LinOp>& history,
    const std::vector<RegisterState>& initial_states) {
  for (const LinOp& op : history) {
    KIWI_ASSERT(op.invoke < op.response, "malformed operation interval");
  }

  // Sort by invoke so that windows of mutually overlapping ops are
  // contiguous; a barrier falls before op i whenever every earlier op's
  // response precedes op i's invoke, which forces every earlier op before
  // op i (and, since invokes are non-decreasing, before all later ops) in
  // any valid linearization.  The whole-history search thus decomposes
  // exactly into per-window searches chained through their feasible exit
  // states.
  std::vector<LinOp> sorted = history;
  std::sort(sorted.begin(), sorted.end(),
            [](const LinOp& a, const LinOp& b) { return a.invoke < b.invoke; });

  std::vector<RegisterState> states;
  for (const RegisterState& s : initial_states) {
    if (std::find(states.begin(), states.end(), s) == states.end()) {
      states.push_back(s);
    }
  }

  std::size_t window_start = 0;
  while (window_start < sorted.size()) {
    std::uint64_t max_response = sorted[window_start].response;
    std::size_t window_end = window_start + 1;  // exclusive
    while (window_end < sorted.size() &&
           sorted[window_end].invoke <= max_response) {
      max_response = std::max(max_response, sorted[window_end].response);
      ++window_end;
    }
    const std::size_t window_size = window_end - window_start;
    KIWI_ASSERT(window_size <= kMaxOverlappingOps,
                "linearizability window exceeds kMaxOverlappingOps (63) "
                "mutually overlapping operations; reduce per-burst "
                "concurrency in the recorder");

    std::vector<RegisterState> next_states;
    for (const RegisterState& entry : states) {
      WindowChecker(&sorted[window_start], window_size, entry)
          .CollectFinals(next_states);
    }
    states = std::move(next_states);
    if (states.empty()) return states;  // no valid linearization
    window_start = window_end;
  }
  return states;
}

bool IsLinearizableRegisterHistory(const std::vector<LinOp>& history,
                                   bool initially_present,
                                   Value initial_value) {
  const std::vector<RegisterState> initial{
      RegisterState{initially_present, initial_value}};
  return !FeasibleFinalStates(history, initial).empty();
}

}  // namespace kiwi::harness
