#include "harness/linearizability.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace kiwi::harness {

namespace {

/// Register state is fully determined by the last applied write/remove (or
/// the initial state); reads do not change it.  The search therefore
/// memoizes (applied-set, index-of-last-mutator) pairs.
struct SearchState {
  std::uint64_t applied_mask;
  int last_mutator;  // -1 = initial state

  bool operator==(const SearchState&) const = default;
};

struct SearchStateHash {
  std::size_t operator()(const SearchState& s) const {
    return std::hash<std::uint64_t>()(s.applied_mask * 31 +
                                      static_cast<std::uint64_t>(
                                          s.last_mutator + 1));
  }
};

class Checker {
 public:
  Checker(const std::vector<LinOp>& history, bool initially_present,
          Value initial_value)
      : history_(history),
        initially_present_(initially_present),
        initial_value_(initial_value) {}

  bool Run() {
    return Search(SearchState{0, -1});
  }

 private:
  bool RegisterPresent(int last_mutator) const {
    if (last_mutator < 0) return initially_present_;
    return history_[last_mutator].kind == LinOp::Kind::kWrite;
  }

  Value RegisterValue(int last_mutator) const {
    if (last_mutator < 0) return initial_value_;
    return history_[last_mutator].value;
  }

  bool Search(SearchState state) {
    const std::size_t n = history_.size();
    if (state.applied_mask == (std::uint64_t{1} << n) - 1) return true;
    if (visited_.contains(state)) return false;
    visited_.insert(state);

    // An op may be linearized next iff every other *pending* op's response
    // is not strictly before its invoke (i.e. nothing pending must come
    // first in real time).
    std::uint64_t min_pending_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      if ((state.applied_mask >> i) & 1) continue;
      min_pending_response =
          std::min(min_pending_response, history_[i].response);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if ((state.applied_mask >> i) & 1) continue;
      const LinOp& op = history_[i];
      if (op.invoke > min_pending_response) continue;  // someone must precede
      SearchState next = state;
      next.applied_mask |= (std::uint64_t{1} << i);
      switch (op.kind) {
        case LinOp::Kind::kWrite:
        case LinOp::Kind::kRemove:
          next.last_mutator = static_cast<int>(i);
          break;
        case LinOp::Kind::kRead: {
          const bool present = RegisterPresent(state.last_mutator);
          if (op.found != present) continue;
          if (present && op.value != RegisterValue(state.last_mutator)) {
            continue;
          }
          break;
        }
      }
      if (Search(next)) return true;
    }
    return false;
  }

  const std::vector<LinOp>& history_;
  const bool initially_present_;
  const Value initial_value_;
  std::unordered_set<SearchState, SearchStateHash> visited_;
};

}  // namespace

bool IsLinearizableRegisterHistory(const std::vector<LinOp>& history,
                                   bool initially_present,
                                   Value initial_value) {
  KIWI_ASSERT(history.size() <= 63, "history too large for bitmask search");
  for (const LinOp& op : history) {
    KIWI_ASSERT(op.invoke < op.response, "malformed operation interval");
  }
  return Checker(history, initially_present, initial_value).Run();
}

}  // namespace kiwi::harness
