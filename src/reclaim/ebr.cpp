#include "reclaim/ebr.h"

#include "common/assert.h"
#include "common/backoff.h"
#include "common/test_hooks.h"
#include "common/thread_registry.h"
#include "obs/trace.h"

namespace kiwi::reclaim {

EbrGuard::EbrGuard(Ebr& ebr)
    : ebr_(&ebr), slot_(ThreadRegistry::CurrentSlot()) {
  ebr_->Enter(slot_);
}

EbrGuard::~EbrGuard() { ebr_->Exit(slot_); }

Ebr::Ebr() = default;

Ebr::~Ebr() {
  // Destruction is externally synchronized: no guards may be active.  Free
  // everything still pending.
  for (auto& buffer : buffers_) {
    for (const Retired& r : buffer.items) r.deleter(r.object);
    buffer.items.clear();
  }
  for (const Retired& r : global_retired_) r.deleter(r.object);
  global_retired_.clear();
}

void Ebr::Enter(std::size_t slot) {
  Slot& s = slots_[slot];
  if (s.nesting++ > 0) return;  // re-entrant: already announced
  // seq_cst so the announcement is globally visible before any subsequent
  // read of shared structure data (store-load ordering with the collector's
  // scan of announced epochs).
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  s.announced.store(e, std::memory_order_seq_cst);
}

void Ebr::Exit(std::size_t slot) {
  Slot& s = slots_[slot];
  KIWI_ASSERT(s.nesting > 0, "guard exit without matching enter");
  if (--s.nesting == 0) {
    s.announced.store(kInactive, std::memory_order_release);
  }
}

void Ebr::Retire(void* object, Deleter deleter, std::size_t bytes) {
  // The object is already unreachable for new operations but guards may
  // still traverse it; a stall here stretches the window between logical
  // and physical retirement (grace-period + slab-recycling stress).
  TestHooks::Run(TestHooks::ebr_before_retire);
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  RetireBuffer& buffer = buffers_[slot];
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  KIWI_TRACE(kEbrRetire, reinterpret_cast<std::uintptr_t>(object), epoch);
  buffer.items.push_back(Retired{object, deleter, epoch, bytes});
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (bytes > 0) pending_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (++buffer.since_collect >= kCollectPeriod) {
    buffer.since_collect = 0;
    Collect();
  }
}

bool Ebr::TryAdvanceEpoch() {
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t i = 0; i < high_water; ++i) {
    const std::uint64_t announced =
        slots_[i].announced.load(std::memory_order_seq_cst);
    if (announced != kInactive && announced < e) return false;
  }
  if (global_epoch_.compare_exchange_strong(e, e + 1,
                                            std::memory_order_seq_cst)) {
    KIWI_TRACE(kEbrEpoch, e + 1, 0);
  }
  return true;  // either we advanced or someone else did
}

std::size_t Ebr::Collect() {
  // Fold the caller's buffer into the global list and free what is provably
  // unobservable.  A try-lock keeps collection single-threaded; losers just
  // return (their buffers will be folded on a later attempt).
  if (collect_lock_.test_and_set(std::memory_order_acquire)) return 0;

  const std::size_t slot = ThreadRegistry::CurrentSlot();
  RetireBuffer& buffer = buffers_[slot];
  global_retired_.insert(global_retired_.end(), buffer.items.begin(),
                         buffer.items.end());
  buffer.items.clear();

  TryAdvanceEpoch();
  const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
  std::size_t freed = 0;
  std::size_t freed_bytes = 0;
  if (now >= 2) {
    const std::uint64_t safe = now - 2;  // retired at epoch <= safe is free-able
    std::size_t write = 0;
    for (std::size_t read = 0; read < global_retired_.size(); ++read) {
      const Retired& r = global_retired_[read];
      if (r.epoch <= safe) {
        r.deleter(r.object);
        ++freed;
        freed_bytes += r.bytes;
      } else {
        global_retired_[write++] = r;
      }
    }
    global_retired_.resize(write);
  }
  pending_.fetch_sub(freed, std::memory_order_relaxed);
  if (freed_bytes > 0) {
    pending_bytes_.fetch_sub(freed_bytes, std::memory_order_relaxed);
  }
  if (freed > 0) {
    KIWI_TRACE(kEbrCollect, freed, pending_.load(std::memory_order_relaxed));
  }
  collect_lock_.clear(std::memory_order_release);
  return freed;
}

std::size_t Ebr::CollectAllQuiescent() {
  std::size_t freed = 0;
  for (auto& buffer : buffers_) {
    for (const Retired& r : buffer.items) {
      r.deleter(r.object);
      ++freed;
    }
    buffer.items.clear();
    buffer.since_collect = 0;
  }
  for (const Retired& r : global_retired_) {
    r.deleter(r.object);
    ++freed;
  }
  global_retired_.clear();
  pending_.store(0, std::memory_order_relaxed);
  pending_bytes_.store(0, std::memory_order_relaxed);
  return freed;
}

std::size_t Ebr::PendingCount() const {
  return pending_.load(std::memory_order_relaxed);
}

std::uint64_t Ebr::EpochLag() const {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  std::uint64_t slowest = e;
  const std::size_t high_water = ThreadRegistry::HighWater();
  for (std::size_t i = 0; i < high_water; ++i) {
    const std::uint64_t announced =
        slots_[i].announced.load(std::memory_order_acquire);
    if (announced != kInactive && announced < slowest) slowest = announced;
  }
  return e - slowest;
}

}  // namespace kiwi::reclaim
