#include "reclaim/hazard.h"

#include <algorithm>

#include "common/assert.h"
#include "common/thread_registry.h"

namespace kiwi::reclaim {

HazardPointer::HazardPointer(HazardDomain& domain)
    : domain_(&domain), index_(domain.AcquireIndex()) {}

HazardPointer::~HazardPointer() {
  Clear();
  domain_->ReleaseIndex(index_);
}

void HazardPointer::Set(void* ptr) {
  // seq_cst: publication must be ordered before the re-validation load in
  // ProtectFrom and before any dereference (store-load with the collector).
  domain_->hazards_[index_].value.store(ptr, std::memory_order_seq_cst);
}

void HazardPointer::Clear() {
  domain_->hazards_[index_].value.store(nullptr, std::memory_order_release);
}

HazardDomain::HazardDomain(std::size_t pointers_per_thread)
    : pointers_per_thread_(pointers_per_thread),
      hazards_(kMaxThreads * pointers_per_thread),
      index_used_(kMaxThreads * pointers_per_thread) {}

HazardDomain::~HazardDomain() {
  for (auto& buffer : buffers_) {
    for (const Retired& r : buffer.items) r.deleter(r.object);
    buffer.items.clear();
  }
}

std::size_t HazardDomain::AcquireIndex() {
  const std::size_t base =
      ThreadRegistry::CurrentSlot() * pointers_per_thread_;
  for (std::size_t i = 0; i < pointers_per_thread_; ++i) {
    // Only the owning thread touches its own index_used_ range, so a simple
    // load/store pair suffices.
    if (!index_used_[base + i].value.load(std::memory_order_relaxed)) {
      index_used_[base + i].value.store(true, std::memory_order_relaxed);
      return base + i;
    }
  }
  KIWI_ASSERT(false, "thread exhausted its hazard-pointer slots");
  return 0;
}

void HazardDomain::ReleaseIndex(std::size_t index) {
  index_used_[index].value.store(false, std::memory_order_relaxed);
}

void HazardDomain::Retire(void* object, Deleter deleter) {
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  RetireBuffer& buffer = buffers_[slot];
  buffer.items.push_back(Retired{object, deleter});
  pending_.fetch_add(1, std::memory_order_relaxed);
  // Amortized O(1): scan once the buffer is a constant factor larger than
  // the maximum number of simultaneously protected pointers.
  const std::size_t threshold =
      2 * kMaxThreads * pointers_per_thread_ + 16;
  if (buffer.items.size() >= threshold) Collect();
}

std::size_t HazardDomain::Collect() {
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  RetireBuffer& buffer = buffers_[slot];
  if (buffer.items.empty()) return 0;

  // Snapshot every published hazard.
  std::vector<void*> protected_ptrs;
  protected_ptrs.reserve(hazards_.size());
  for (const auto& h : hazards_) {
    if (void* p = h.value.load(std::memory_order_seq_cst)) {
      protected_ptrs.push_back(p);
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  std::size_t freed = 0;
  std::size_t write = 0;
  for (std::size_t read = 0; read < buffer.items.size(); ++read) {
    const Retired& r = buffer.items[read];
    const bool is_protected = std::binary_search(
        protected_ptrs.begin(), protected_ptrs.end(), r.object);
    if (is_protected) {
      buffer.items[write++] = r;
    } else {
      r.deleter(r.object);
      ++freed;
    }
  }
  buffer.items.resize(write);
  pending_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t HazardDomain::PendingCount() const {
  return pending_.load(std::memory_order_relaxed);
}

}  // namespace kiwi::reclaim
