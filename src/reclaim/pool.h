// SlabPool — size-classed slab recycling for the rebalance hot path.
//
// KiWi's churn unit is the chunk: every rebalance builds a replacement
// section of freshly allocated chunk slabs and retires the old sector
// through EBR.  With a general-purpose allocator each of those round trips
// costs a malloc/free pair of tens of kilobytes — under rebalance-heavy
// workloads the allocator, not the algorithm, dominates (cf. Jiffy, which
// lives or dies on allocation cost under churn).  This pool closes the
// loop: EBR's deferred deleters hand retired slabs here instead of to the
// OS, and rebalance's build stage allocates its infant chunks from the
// recycled stock.
//
// Shape:
//   - Allocations are rounded up to the cache line and served 64-byte
//     aligned (chunk slabs embed cache-aligned headers and atomics).
//   - Size classes are *exact* rounded sizes, registered first-come into a
//     small fixed table.  KiWi allocates only a handful of distinct sizes
//     (one chunk-slab size per configured capacity + the RebalanceObject),
//     so exact classes give byte-precise reuse with no power-of-two slack.
//     Sizes that overflow the table fall through to the OS (`unpooled`).
//   - Each thread owns a small bounded cache of free slabs per class
//     (ThreadRegistry slot-indexed, touched only by the owning thread — no
//     synchronization on the fast path).  Overflow spills to a global
//     per-class list under a spinlock; allocation misses on the local cache
//     refill from the spill before falling back to the OS.
//
// Reclamation safety is inherited from EBR, not re-implemented: a slab
// only reaches Deallocate() through an EBR deleter (or a provably-private
// path such as a consensus-losing section), so by the time it can be
// reissued every guard that could have observed the old object has exited.
// Under AddressSanitizer, pooled slabs are poisoned while idle so that a
// use-after-retire is reported with the same fidelity as a real free —
// this is what the `asan` CI job leans on.
//
// Thread safety: Allocate/Deallocate may be called from any registered
// thread.  Trim() and the destructor are quiescent-only (no concurrent
// pool calls), like Ebr::CollectAllQuiescent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/config.h"

namespace kiwi::reclaim {

class SlabPool {
 public:
  /// Every slab is aligned to (and sized in multiples of) the cache line.
  static constexpr std::size_t kAlignment = kCacheLineSize;
  /// Distinct slab sizes the pool will track; later sizes go unpooled.
  static constexpr std::size_t kMaxSizeClasses = 8;
  /// Default bound on free slabs cached per thread per class.
  static constexpr std::uint32_t kDefaultThreadCacheSlabs = 8;

  explicit SlabPool(std::uint32_t thread_cache_slabs = kDefaultThreadCacheSlabs)
      : thread_cache_slabs_(thread_cache_slabs) {}
  ~SlabPool();
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// A 64-byte-aligned block of at least `bytes`.  Recycles a pooled slab
  /// of the same class when one is available, else falls back to the OS.
  void* Allocate(std::size_t bytes);

  /// Return a block obtained from Allocate(`bytes`).  The block enters the
  /// calling thread's cache (or the global spill list once the cache is
  /// full) for reuse; its payload is poisoned under ASAN while pooled.
  void Deallocate(void* block, std::size_t bytes);

  /// Monotone counters + byte gauges, all readable concurrently (relaxed).
  struct Stats {
    std::uint64_t hits = 0;      // allocations served from pooled stock
    std::uint64_t misses = 0;    // allocations that went to the OS
    std::uint64_t recycled = 0;  // deallocations captured for reuse
    std::uint64_t spills = 0;    // thread-cache overflows to the spill list
    std::uint64_t unpooled = 0;  // ops on sizes beyond the class table
    std::uint64_t trims = 0;     // slabs released to the OS by Trim()
    std::uint64_t class_cas_retries = 0;  // lost size-class registration CASes
    std::uint64_t live_bytes = 0;    // handed out and not yet returned
    std::uint64_t pooled_bytes = 0;  // idle in caches + spill lists
  };
  Stats GetStats() const;

  /// Quiescent-only: release every pooled slab back to the OS.  Returns the
  /// number of slabs freed.
  std::size_t Trim();

  /// Rounded (actual) size of a block Allocate(bytes) returns.
  static constexpr std::size_t RoundedSize(std::size_t bytes) {
    return (bytes + kAlignment - 1) & ~(kAlignment - 1);
  }

 private:
  /// Intrusive free-list link, stored in the first word of an idle slab.
  struct FreeSlab {
    FreeSlab* next;
  };

  struct SizeClass {
    /// Rounded slab size; 0 while unregistered.  Registered once by CAS.
    std::atomic<std::size_t> bytes{0};
    /// Global overflow list, guarded by `lock`.
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    FreeSlab* spill_head = nullptr;
    std::size_t spill_count = 0;
  };

  struct ClassCache {
    FreeSlab* head = nullptr;
    std::uint32_t count = 0;
  };
  /// Per-thread caches, slot-indexed; only the owning thread touches its
  /// row (Trim/destructor excepted — quiescent by contract).
  struct alignas(kCacheLineSize) ThreadCache {
    ClassCache classes[kMaxSizeClasses];
  };

  /// Index of the class for `rounded` bytes, registering it if `create`.
  /// Returns kMaxSizeClasses when the table is full (unpooled).
  std::size_t ClassFor(std::size_t rounded, bool create);

  const std::uint32_t thread_cache_slabs_;
  SizeClass classes_[kMaxSizeClasses];
  ThreadCache caches_[kMaxThreads];

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> unpooled_{0};
  std::atomic<std::uint64_t> trims_{0};
  std::atomic<std::uint64_t> class_cas_retries_{0};
  std::atomic<std::uint64_t> live_bytes_{0};
  std::atomic<std::uint64_t> pooled_bytes_{0};
};

}  // namespace kiwi::reclaim
