// Epoch-based memory reclamation (EBR).
//
// The paper runs on a garbage-collected runtime and merely notes that "a
// complementary garbage-collection mechanism eventually removes disconnected
// frozen chunks".  In native code that mechanism must be built: operations
// (get/put/scan/rebalance) execute inside an epoch *guard*; retired objects
// (frozen chunks, skiplist nodes, tree nodes) are freed only once every
// guard that could have observed them has been released.
//
// Classic 3-epoch scheme (Fraser):
//   - a global epoch E advances only when every active thread has observed E;
//   - an object retired in epoch e is safe to free once the global epoch
//     reaches e + 2 (no active guard can date from before e + 1).
//
// Guards are reentrant: a put that triggers rebalance re-enters the same
// epoch without re-announcing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/padded.h"

namespace kiwi::reclaim {

class Ebr;

/// RAII critical-section marker.  Cheap to construct (one release store on
/// outermost entry).  Movable, not copyable.
class EbrGuard {
 public:
  explicit EbrGuard(Ebr& ebr);
  ~EbrGuard();
  EbrGuard(const EbrGuard&) = delete;
  EbrGuard& operator=(const EbrGuard&) = delete;

 private:
  Ebr* ebr_;
  std::size_t slot_;
};

class Ebr {
 public:
  using Deleter = void (*)(void*);

  Ebr();
  ~Ebr();
  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  /// Hand `object` to the reclaimer.  Must be called inside a guard (the
  /// object must already be unreachable for new operations).  `deleter` is
  /// invoked once it is provably unobservable.  `bytes` (optional) is the
  /// object's footprint, accumulated into PendingBytes() while the object
  /// sits in limbo — pass it where known so operators can see reclamation
  /// stalls in bytes, not just object counts.
  void Retire(void* object, Deleter deleter, std::size_t bytes = 0);

  /// Convenience: retire a typed object deleted with `delete`.
  template <typename T>
  void RetireObject(T* object) {
    Retire(object, [](void* p) { delete static_cast<T*>(p); });
  }

  /// Attempt to advance the epoch and free everything freeable.  Called
  /// automatically by Retire; exposed for tests and quiescent points.
  /// Returns the number of objects freed.
  std::size_t Collect();

  /// Quiescent-only: fold every thread's retire buffer (including exited
  /// threads') into the global list and free everything possible.  The
  /// caller must guarantee no concurrent guards or retires.
  std::size_t CollectAllQuiescent();

  /// Diagnostics: objects retired but not yet freed.
  std::size_t PendingCount() const;

  /// Diagnostics: bytes retired but not yet freed (sum of the `bytes`
  /// arguments of pending Retire calls; objects retired without a size
  /// contribute zero).
  std::size_t PendingBytes() const {
    return pending_bytes_.load(std::memory_order_relaxed);
  }

  /// Diagnostics: current global epoch.
  std::uint64_t GlobalEpoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Diagnostics: how far the slowest active guard trails the global epoch
  /// (0 when no guard is active or all are current).  A lag that stays >= 1
  /// across samples means a stalled reader is pinning reclamation.
  std::uint64_t EpochLag() const;

 private:
  friend class EbrGuard;

  struct Retired {
    void* object;
    Deleter deleter;
    std::uint64_t epoch;
    std::size_t bytes;
  };

  struct alignas(kCacheLineSize) Slot {
    /// Epoch announced by an active guard, or kInactive.
    std::atomic<std::uint64_t> announced{kInactive};
    /// Guard nesting depth; touched only by the owning thread.
    std::uint32_t nesting = 0;
  };

  static constexpr std::uint64_t kInactive = ~std::uint64_t{0};
  /// Collect() is attempted every kCollectPeriod retires per thread.
  static constexpr std::size_t kCollectPeriod = 64;

  void Enter(std::size_t slot);
  void Exit(std::size_t slot);
  bool TryAdvanceEpoch();
  std::size_t FreeUpTo(std::uint64_t safe_epoch);

  std::atomic<std::uint64_t> global_epoch_{0};
  Slot slots_[kMaxThreads];

  // Retired objects live in per-thread buffers to keep Retire lock-free in
  // the common case; Collect folds them into the global list under a small
  // spinlock (collection is rare and off the critical path).
  struct alignas(kCacheLineSize) RetireBuffer {
    std::vector<Retired> items;
    std::size_t since_collect = 0;
  };
  RetireBuffer buffers_[kMaxThreads];

  std::atomic_flag collect_lock_ = ATOMIC_FLAG_INIT;
  std::vector<Retired> global_retired_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> pending_bytes_{0};
};

}  // namespace kiwi::reclaim
