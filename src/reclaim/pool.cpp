#include "reclaim/pool.h"

#include <new>

#include "common/assert.h"
#include "common/thread_registry.h"

// Pooled slabs are poisoned while idle so ASAN reports a use-after-retire
// exactly like a use-after-free.  The first word (the intrusive link) stays
// readable; everything past it is off limits until the slab is reissued.
#if defined(__SANITIZE_ADDRESS__)
#define KIWI_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KIWI_POOL_ASAN 1
#endif
#endif
#ifdef KIWI_POOL_ASAN
#include <sanitizer/asan_interface.h>
#define KIWI_POOL_POISON(ptr, size) __asan_poison_memory_region(ptr, size)
#define KIWI_POOL_UNPOISON(ptr, size) __asan_unpoison_memory_region(ptr, size)
#else
#define KIWI_POOL_POISON(ptr, size) ((void)0)
#define KIWI_POOL_UNPOISON(ptr, size) ((void)0)
#endif

namespace kiwi::reclaim {

namespace {

void* OsAllocate(std::size_t rounded) {
  return ::operator new(rounded, std::align_val_t{SlabPool::kAlignment});
}

void OsFree(void* block) {
  ::operator delete(block, std::align_val_t{SlabPool::kAlignment});
}

}  // namespace

SlabPool::~SlabPool() { Trim(); }

std::size_t SlabPool::ClassFor(std::size_t rounded, bool create) {
  for (std::size_t i = 0; i < kMaxSizeClasses; ++i) {
    std::size_t current = classes_[i].bytes.load(std::memory_order_acquire);
    if (current == rounded) return i;
    if (current == 0) {
      if (!create) return kMaxSizeClasses;
      if (classes_[i].bytes.compare_exchange_strong(
              current, rounded, std::memory_order_acq_rel)) {
        return i;
      }
      class_cas_retries_.fetch_add(1, std::memory_order_relaxed);
      if (current == rounded) return i;  // lost the race to the same size
    }
  }
  return kMaxSizeClasses;
}

void* SlabPool::Allocate(std::size_t bytes) {
  const std::size_t rounded = RoundedSize(bytes);
  live_bytes_.fetch_add(rounded, std::memory_order_relaxed);
  const std::size_t cls = ClassFor(rounded, /*create=*/true);
  if (cls == kMaxSizeClasses) {
    unpooled_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return OsAllocate(rounded);
  }

  // Fast path: the calling thread's own cache — no synchronization.
  ClassCache& cache = caches_[ThreadRegistry::CurrentSlot()].classes[cls];
  if (cache.head != nullptr) {
    FreeSlab* slab = cache.head;
    cache.head = slab->next;
    cache.count--;
    hits_.fetch_add(1, std::memory_order_relaxed);
    pooled_bytes_.fetch_sub(rounded, std::memory_order_relaxed);
    KIWI_POOL_UNPOISON(slab, rounded);
    return slab;
  }

  // Miss: refill one slab from the global spill list.
  SizeClass& sc = classes_[cls];
  FreeSlab* slab = nullptr;
  while (sc.lock.test_and_set(std::memory_order_acquire)) {
  }
  if (sc.spill_head != nullptr) {
    slab = sc.spill_head;
    sc.spill_head = slab->next;
    sc.spill_count--;
  }
  sc.lock.clear(std::memory_order_release);
  if (slab != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    pooled_bytes_.fetch_sub(rounded, std::memory_order_relaxed);
    KIWI_POOL_UNPOISON(slab, rounded);
    return slab;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  return OsAllocate(rounded);
}

void SlabPool::Deallocate(void* block, std::size_t bytes) {
  KIWI_DASSERT((reinterpret_cast<std::uintptr_t>(block) % kAlignment) == 0,
               "deallocating a block the pool never issued");
  const std::size_t rounded = RoundedSize(bytes);
  live_bytes_.fetch_sub(rounded, std::memory_order_relaxed);
  const std::size_t cls = ClassFor(rounded, /*create=*/true);
  if (cls == kMaxSizeClasses) {
    unpooled_.fetch_add(1, std::memory_order_relaxed);
    OsFree(block);
    return;
  }

  auto* slab = static_cast<FreeSlab*>(block);
  recycled_.fetch_add(1, std::memory_order_relaxed);
  pooled_bytes_.fetch_add(rounded, std::memory_order_relaxed);

  ClassCache& cache = caches_[ThreadRegistry::CurrentSlot()].classes[cls];
  if (cache.count < thread_cache_slabs_) {
    slab->next = cache.head;
    cache.head = slab;
    cache.count++;
    KIWI_POOL_POISON(reinterpret_cast<char*>(slab) + sizeof(FreeSlab),
                     rounded - sizeof(FreeSlab));
    return;
  }

  // Cache full: spill to the global list.
  spills_.fetch_add(1, std::memory_order_relaxed);
  SizeClass& sc = classes_[cls];
  while (sc.lock.test_and_set(std::memory_order_acquire)) {
  }
  slab->next = sc.spill_head;
  sc.spill_head = slab;
  sc.spill_count++;
  sc.lock.clear(std::memory_order_release);
  KIWI_POOL_POISON(reinterpret_cast<char*>(slab) + sizeof(FreeSlab),
                   rounded - sizeof(FreeSlab));
}

std::size_t SlabPool::Trim() {
  // Quiescent by contract: no concurrent Allocate/Deallocate, so walking
  // other threads' caches is safe.
  std::size_t freed = 0;
  std::uint64_t freed_bytes = 0;
  const auto drain = [&](FreeSlab*& head, std::size_t rounded) {
    while (head != nullptr) {
      FreeSlab* slab = head;
      KIWI_POOL_UNPOISON(slab, rounded);
      head = slab->next;
      OsFree(slab);
      ++freed;
      freed_bytes += rounded;
    }
  };
  for (std::size_t cls = 0; cls < kMaxSizeClasses; ++cls) {
    const std::size_t rounded =
        classes_[cls].bytes.load(std::memory_order_acquire);
    if (rounded == 0) continue;
    for (auto& thread_cache : caches_) {
      ClassCache& cache = thread_cache.classes[cls];
      drain(cache.head, rounded);
      cache.count = 0;
    }
    SizeClass& sc = classes_[cls];
    drain(sc.spill_head, rounded);
    sc.spill_count = 0;
  }
  pooled_bytes_.fetch_sub(freed_bytes, std::memory_order_relaxed);
  trims_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

SlabPool::Stats SlabPool::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.recycled = recycled_.load(std::memory_order_relaxed);
  stats.spills = spills_.load(std::memory_order_relaxed);
  stats.unpooled = unpooled_.load(std::memory_order_relaxed);
  stats.trims = trims_.load(std::memory_order_relaxed);
  stats.class_cas_retries = class_cas_retries_.load(std::memory_order_relaxed);
  stats.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  stats.pooled_bytes = pooled_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace kiwi::reclaim
