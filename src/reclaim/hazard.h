// Hazard-pointer reclamation (Michael, 2004).
//
// Alternative backend to EBR with per-object protection instead of
// per-operation epochs: bounded unreclaimed garbage even if a thread stalls
// inside an operation (EBR's weakness).  KiWi itself uses EBR — chunk
// traversals touch many chunks and per-chunk hazard acquisition would put
// two fences on every hop — but the skiplist baseline can run on either
// backend, and tests exercise both.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/config.h"
#include "common/padded.h"

namespace kiwi::reclaim {

class HazardDomain;

/// One owned hazard slot.  Protect() publishes a pointer; the destructor (or
/// Clear) retracts it.
class HazardPointer {
 public:
  HazardPointer(HazardDomain& domain);
  ~HazardPointer();
  HazardPointer(const HazardPointer&) = delete;
  HazardPointer& operator=(const HazardPointer&) = delete;

  /// Publish `ptr` and re-validate it is still reachable through `source`.
  /// Returns the protected pointer, or nullptr if the source moved on (the
  /// caller must restart its traversal).
  template <typename T>
  T* ProtectFrom(const std::atomic<T*>& source) {
    T* ptr = source.load(std::memory_order_acquire);
    while (true) {
      Set(ptr);
      T* again = source.load(std::memory_order_acquire);
      if (again == ptr) return ptr;
      ptr = again;
    }
  }

  /// Publish a pointer the caller already knows is safe to dereference.
  void Set(void* ptr);

  /// Retract the protection.
  void Clear();

 private:
  friend class HazardDomain;
  HazardDomain* domain_;
  std::size_t index_;
};

class HazardDomain {
 public:
  using Deleter = void (*)(void*);

  /// `pointers_per_thread`: hazard slots available to each thread at once
  /// (a skiplist search needs 3: prev, curr, next).
  explicit HazardDomain(std::size_t pointers_per_thread = 4);
  ~HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  /// Retire an unreachable object; freed once no hazard slot points at it.
  void Retire(void* object, Deleter deleter);

  template <typename T>
  void RetireObject(T* object) {
    Retire(object, [](void* p) { delete static_cast<T*>(p); });
  }

  /// Scan hazards and free unprotected retired objects.  Returns #freed.
  std::size_t Collect();

  std::size_t PendingCount() const;
  std::size_t PointersPerThread() const { return pointers_per_thread_; }

 private:
  friend class HazardPointer;

  struct Retired {
    void* object;
    Deleter deleter;
  };

  std::size_t AcquireIndex();
  void ReleaseIndex(std::size_t index);

  const std::size_t pointers_per_thread_;
  /// Flat array: slot (thread, i) at [thread * pointers_per_thread + i].
  std::vector<PaddedAtomic<void*>> hazards_;
  std::vector<PaddedAtomic<bool>> index_used_;

  struct alignas(kCacheLineSize) RetireBuffer {
    std::vector<Retired> items;
  };
  RetireBuffer buffers_[kMaxThreads];
  std::atomic<std::size_t> pending_{0};
};

}  // namespace kiwi::reclaim
