// Environment knobs for test sizing, so one compiled binary serves both the
// quick PR-CI configuration and the long nightly one.
//
// KIWI_TEST_ITERS is a scale factor applied to every stress/soak iteration
// count that opts in via ScaledIters(): unset or "1" keeps the checked-in
// defaults, "10" makes the nightly run ten times longer, "0.2" gives a
// quick smoke.  Fractions are allowed; results are clamped to at least 1.
#pragma once

#include <algorithm>
#include <cstdlib>

namespace kiwi {

/// The KIWI_TEST_ITERS multiplier (1.0 when unset or unparseable).
inline double TestIterScale() {
  static const double scale = [] {
    const char* env = std::getenv("KIWI_TEST_ITERS");
    if (env == nullptr || *env == '\0') return 1.0;
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end == env || parsed <= 0.0) return 1.0;
    return parsed;
  }();
  return scale;
}

/// `base` iterations scaled by KIWI_TEST_ITERS, never below 1.
inline int ScaledIters(int base) {
  return std::max(1, static_cast<int>(static_cast<double>(base) *
                                      TestIterScale()));
}

}  // namespace kiwi
