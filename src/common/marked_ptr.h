// Pointer with a mark bit packed into the (always-zero) low bit.
//
// KiWi marks the `next` pointer of the last engaged chunk immutable before
// splicing replacement chunks into the list (rebalance stage 5); the
// baseline skiplist uses the same trick for logical deletion (Harris-style).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/assert.h"

namespace kiwi {

/// Value-type view of a pointer+mark pair.
template <typename T>
class MarkedPtr {
 public:
  MarkedPtr() = default;
  MarkedPtr(T* ptr, bool mark)
      : bits_(reinterpret_cast<std::uintptr_t>(ptr) |
              static_cast<std::uintptr_t>(mark)) {
    KIWI_ASSERT((reinterpret_cast<std::uintptr_t>(ptr) & 1u) == 0,
                "pointer not 2-byte aligned");
  }

  T* Ptr() const noexcept { return reinterpret_cast<T*>(bits_ & ~std::uintptr_t{1}); }
  bool Mark() const noexcept { return (bits_ & 1u) != 0; }
  std::uintptr_t Raw() const noexcept { return bits_; }
  static MarkedPtr FromRaw(std::uintptr_t raw) noexcept {
    MarkedPtr p;
    p.bits_ = raw;
    return p;
  }

  friend bool operator==(MarkedPtr a, MarkedPtr b) { return a.bits_ == b.bits_; }

 private:
  std::uintptr_t bits_ = 0;
};

/// Atomic pointer+mark word.
template <typename T>
class AtomicMarkedPtr {
 public:
  AtomicMarkedPtr() : bits_(0) {}
  explicit AtomicMarkedPtr(T* ptr) : bits_(MarkedPtr<T>(ptr, false).Raw()) {}

  MarkedPtr<T> Load(std::memory_order order = std::memory_order_acquire) const {
    return MarkedPtr<T>::FromRaw(bits_.load(order));
  }

  void Store(MarkedPtr<T> value,
             std::memory_order order = std::memory_order_release) {
    bits_.store(value.Raw(), order);
  }

  bool CompareExchange(MarkedPtr<T> expected, MarkedPtr<T> desired) {
    std::uintptr_t exp = expected.Raw();
    return bits_.compare_exchange_strong(exp, desired.Raw(),
                                         std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uintptr_t> bits_;
};

}  // namespace kiwi
