#include "common/thread_registry.h"

#include <atomic>

#include "common/assert.h"

namespace kiwi {
namespace {

// One bit per slot; set = in use.  A single word would cap kMaxThreads at 64
// which happens to be our limit, but we keep an array of flags for clarity
// and to allow raising kMaxThreads.
std::atomic<bool> g_slot_used[kMaxThreads];
std::atomic<std::size_t> g_high_water{0};

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

std::size_t AcquireSlot() {
  for (std::size_t s = 0; s < kMaxThreads; ++s) {
    bool expected = false;
    if (g_slot_used[s].compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      // Bump the high-water mark.
      std::size_t hw = g_high_water.load(std::memory_order_relaxed);
      while (hw < s + 1 && !g_high_water.compare_exchange_weak(
                               hw, s + 1, std::memory_order_relaxed)) {
      }
      return s;
    }
  }
  KIWI_ASSERT(false, "more than kMaxThreads concurrent threads");
  return kNoSlot;
}

}  // namespace

struct ThreadSlotReleaser {
  std::size_t slot = kNoSlot;
  ~ThreadSlotReleaser() {
    if (slot != kNoSlot) ThreadRegistry::Release(slot);
  }
};

namespace {
thread_local ThreadSlotReleaser t_releaser;
}  // namespace

std::size_t ThreadRegistry::CurrentSlot() {
  if (t_releaser.slot == kNoSlot) t_releaser.slot = AcquireSlot();
  return t_releaser.slot;
}

std::size_t ThreadRegistry::HighWater() {
  return g_high_water.load(std::memory_order_acquire);
}

bool ThreadRegistry::IsRegistered() { return t_releaser.slot != kNoSlot; }

void ThreadRegistry::Release(std::size_t slot) {
  g_slot_used[slot].store(false, std::memory_order_release);
}

}  // namespace kiwi
