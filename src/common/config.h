// Core type and constant definitions shared by every kiwi module.
//
// The paper evaluates (integer, integer) pairs; the default KiWiMap follows
// it with fixed-width 64-bit keys and values.  Values go through a level of
// indirection inside a chunk (the `valPtr` of Algorithm 1) so the
// tie-breaking rule between puts with equal versions ("break ties by
// valPtr") is expressible exactly as in the paper.  Variable-length byte
// keys/values are a separate layout, not a payload swap behind valPtr: cells
// stay fixed-width holding an order-preserving 8-byte prefix plus
// (offset, length) into a per-chunk byte arena, and `v` slots hold
// (offset, length) — see core/layout.h (ByteLayout) and api/byte_map.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace kiwi {

/// Key type of every map in this repository.
using Key = std::int64_t;
/// Value type of every map in this repository.
using Value = std::int64_t;
/// Version numbers handed out by the global version counter (GV).
using Version = std::uint64_t;

/// The smallest representable key is reserved for the sentinel head chunk
/// (minKey = -inf in the paper); user keys must be strictly greater.  The
/// byte layout reserves the analogous bottom of its order — the empty
/// string — as its sentinel min key, so byte user keys must be non-empty
/// (ByteLayout::SentinelMinKey / IsUserKey in core/layout.h).
inline constexpr Key kMinKeySentinel = std::numeric_limits<Key>::min();
/// Smallest key a user may insert.
inline constexpr Key kMinUserKey = kMinKeySentinel + 1;
/// Largest key a user may insert.
inline constexpr Key kMaxUserKey = std::numeric_limits<Key>::max();

/// The paper removes a key by putting the bottom value; we reserve the
/// smallest Value as that tombstone.  User values must be strictly greater.
inline constexpr Value kTombstoneValue = std::numeric_limits<Value>::min();

/// Maximum number of threads that may ever touch a map concurrently.  Sizes
/// the per-chunk pending put array (PPA) and the global pending scan array
/// (PSA).  Thread slots are recycled on thread exit (see thread_registry.h).
inline constexpr std::size_t kMaxThreads = 64;

/// Cache line size used for padding shared hot words.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace kiwi
