// Bounded exponential backoff for CAS retry loops.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace kiwi {

/// Pause the CPU briefly (PAUSE on x86, yield elsewhere).
inline void CpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Bounded exponential backoff.  After `kYieldThreshold` rounds of spinning
/// it starts yielding the OS thread, which matters on over-subscribed
/// machines (more worker threads than cores).
class Backoff {
 public:
  void Spin() noexcept {
    if (round_ >= kYieldThreshold) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < (1u << round_); ++i) CpuRelax();
    ++round_;
  }

  void Reset() noexcept { round_ = 0; }

 private:
  static constexpr std::uint32_t kYieldThreshold = 10;
  std::uint32_t round_ = 0;
};

}  // namespace kiwi
