// Cache-line padded wrappers to prevent false sharing between hot shared
// words (GV, PSA entries, per-thread counters).
#pragma once

#include <atomic>
#include <cstddef>

#include "common/config.h"

namespace kiwi {

/// A T padded out to a full cache line.  Use for elements of arrays indexed
/// by thread id, where neighbouring entries are written by different threads.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// Cache-line padded atomic.
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic {
  std::atomic<T> value{};
};

}  // namespace kiwi
