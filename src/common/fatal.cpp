#include "common/assert.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace kiwi {

namespace {
std::atomic<FatalHookFn> g_fatal_hook{nullptr};
}  // namespace

void SetFatalHook(FatalHookFn hook) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

void Fatal(const char* file, int line, const char* expr, const char* detail) {
  std::fprintf(stderr, "KIWI_ASSERT failed at %s:%d: %s (%s)\n", file, line,
               expr, detail != nullptr ? detail : "");
  std::fflush(stderr);
  if (FatalHookFn hook = g_fatal_hook.load(std::memory_order_acquire);
      hook != nullptr) {
    hook();
  }
  std::abort();
}

}  // namespace kiwi
