// Always-on invariant checks for cheap assertions plus debug-only heavy ones.
#pragma once

#include <cstdio>
#include <cstdlib>

// KIWI_ASSERT: enabled in all build types.  Concurrent-algorithm invariant
// violations must never be silently ignored; the cost of these checks is
// negligible next to the atomic operations they sit beside.
#define KIWI_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      std::fprintf(stderr, "KIWI_ASSERT failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// KIWI_DASSERT: debug-only (e.g. O(n) structural scans).
#ifdef NDEBUG
#define KIWI_DASSERT(cond, msg) ((void)0)
#else
#define KIWI_DASSERT(cond, msg) KIWI_ASSERT(cond, msg)
#endif
