// Always-on invariant checks for cheap assertions plus debug-only heavy ones.
#pragma once

namespace kiwi {

/// The single fatal-error interception point.  Every invariant failure
/// (KIWI_ASSERT, deviation-9 double-retire/double-discard aborts, explicit
/// unreachable paths) funnels through here: the message and file:line go to
/// stderr, the registered fatal hook runs (the flight recorder uses it to
/// write a post-mortem, see src/obs/trace.h), then the process aborts.
/// `detail` may be null.
[[noreturn]] void Fatal(const char* file, int line, const char* expr,
                        const char* detail);

/// Hook invoked by Fatal() after printing the message, before abort().
/// Raw function pointer (no std::function) so src/common stays free of
/// allocation and of obs symbols — the KIWI_STATS=OFF `nm` check relies on
/// that.  Passing nullptr uninstalls.  Not thread-safe; install at startup.
using FatalHookFn = void (*)();
void SetFatalHook(FatalHookFn hook);

}  // namespace kiwi

// KIWI_ASSERT: enabled in all build types.  Concurrent-algorithm invariant
// violations must never be silently ignored; the cost of these checks is
// negligible next to the atomic operations they sit beside.
#define KIWI_ASSERT(cond, msg)                            \
  do {                                                    \
    if (!(cond)) [[unlikely]] {                           \
      ::kiwi::Fatal(__FILE__, __LINE__, #cond, msg);      \
    }                                                     \
  } while (0)

// KIWI_DASSERT: debug-only (e.g. O(n) structural scans).
#ifdef NDEBUG
#define KIWI_DASSERT(cond, msg) ((void)0)
#else
#define KIWI_DASSERT(cond, msg) KIWI_ASSERT(cond, msg)
#endif
