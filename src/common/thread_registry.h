// Stable small thread ids.
//
// KiWi's pending put array (PPA, one per chunk) and pending scan array (PSA,
// global) are indexed by thread: `ppa[NUM_THREADS]` in Algorithm 1.  C++
// std::thread::id is neither small nor dense, so this registry hands out
// slots in [0, kMaxThreads) on a thread's first map access and recycles the
// slot when the thread exits (via a thread_local destructor).
//
// Slot recycling is safe for the PPA/PSA protocols because a thread always
// clears its entries before finishing an operation, and a thread only exits
// between operations.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/config.h"

namespace kiwi {

class ThreadRegistry {
 public:
  /// The calling thread's slot, assigned on first use.  Aborts if more than
  /// kMaxThreads threads are simultaneously registered.
  static std::size_t CurrentSlot();

  /// Number of slots ever handed out simultaneously (high-water mark).
  /// Arrays indexed by slot may be scanned up to this bound instead of
  /// kMaxThreads.
  static std::size_t HighWater();

  /// Test hook: true if the calling thread currently holds a slot.
  static bool IsRegistered();

 private:
  friend struct ThreadSlotReleaser;
  static void Release(std::size_t slot);
};

}  // namespace kiwi
