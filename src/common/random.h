// Small fast per-thread PRNGs for workload generation and probabilistic
// policy decisions.  Not cryptographic; chosen for speed and statistical
// quality adequate for benchmarking (splitmix64 seeding + xoshiro256**).
#pragma once

#include <cstdint>

namespace kiwi {

/// splitmix64: used to expand a single seed into generator state.
inline std::uint64_t Splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna.  One instance per thread.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = Splitmix64(sm);
  }

  std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift: unbiased enough for workload generation and
    // branch-free, via a 128-bit multiply.
    __extension__ using uint128 = unsigned __int128;
    return static_cast<std::uint64_t>((uint128{Next()} * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) noexcept { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace kiwi
