// Spin barrier used by the benchmark driver and stress tests to release all
// worker threads at once (std::barrier parks threads, which skews short
// measurement windows).
#pragma once

#include <atomic>
#include <cstddef>

#include "common/backoff.h"

namespace kiwi {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  /// Block (spinning) until `parties` threads have arrived.  Reusable.
  void ArriveAndWait() {
    const std::size_t generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    Backoff backoff;
    while (generation_.load(std::memory_order_acquire) == generation) {
      backoff.Spin();
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::size_t> generation_{0};
};

}  // namespace kiwi
