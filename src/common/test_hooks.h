// Test-only failure injection points and mutant switches.
//
// Concurrency races the paper reasons about (a put stalling between
// publishing in the PPA and acquiring a version; a rebalancer stalling
// between freeze and build; a helper stalling before the splice) have
// windows of a few instructions — too narrow for a scheduler to hit
// reliably.  Tests widen them by installing a hook (typically a yield or a
// short sleep) at the exact point.  Default is a single relaxed load per
// site: negligible next to the adjacent fenced atomics.
//
// The schedule fuzzer (src/fuzz/schedule.h) drives every site at once with
// seeded random perturbations; AllSites() enumerates them so the fuzzer and
// its minimizer need no per-site knowledge.
//
// Mutants re-break fixed bugs on demand (see docs/TESTING.md): each bit of
// `mutants` re-introduces one historical or paper-derived defect so the
// linearizability fuzzer can prove it still has teeth.  The check is one
// relaxed load on the affected path, zero when the mask is never set.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace kiwi {

struct TestHooks {
  using Hook = void (*)();

  /// Put published its cell in the PPA but has not yet CASed a version —
  /// the window scans/gets must help across (paper Figure 2).
  static std::atomic<Hook> put_before_version_cas;

  /// Rebalance froze the engaged chunks but has not yet built replacements —
  /// puts landing here must restart, reads must still be served.
  static std::atomic<Hook> rebalance_after_freeze;

  /// Replacement section agreed but not yet spliced — the longest window in
  /// which old and new chunks coexist.
  static std::atomic<Hook> replace_before_splice;

  /// Scan published its pending PSA entry but has not yet fetched/installed
  /// its version — the window rebalance must help across (paper lines
  /// 91-95); a stall here forces helpers to install the scan's read point.
  static std::atomic<Hook> scan_before_version_install;

  /// Get finished helping pending puts but has not yet read — a version
  /// installed (by us or a racing helper) must be visible to this read and
  /// to every later read (paper Figure 2's get/scan ordering).
  static std::atomic<Hook> get_after_help;

  /// Rebalance spliced the replacement section but has not yet fixed the
  /// index — lookups served from the lazy index race the update (stage 6).
  static std::atomic<Hook> rebalance_before_index_update;

  /// Inside the engage loop, between observing ro->next and attempting the
  /// engagement CAS — the window in which competing helpers observe
  /// different engaged-run lengths (what the last_engaged consensus,
  /// DESIGN.md deviation 9, exists to reconcile).
  static std::atomic<Hook> rebalance_during_engage;

  /// An object (chunk, rebalance object) is about to be handed to EBR —
  /// readers holding guards may still traverse it; widening this window
  /// stresses grace-period correctness and the slab-recycling pool.
  static std::atomic<Hook> ebr_before_retire;

  static void Run(const std::atomic<Hook>& site) {
    if (Hook hook = site.load(std::memory_order_relaxed)) hook();
  }

  /// Enumerable site table for the schedule fuzzer: index here is the
  /// site's stable id in schedules, minimized repros and docs (the
  /// hook-site map in docs/TESTING.md mirrors this order).
  struct Site {
    const char* name;
    std::atomic<Hook>* site;
  };
  static constexpr std::size_t kSiteCount = 8;
  static const std::array<Site, kSiteCount>& AllSites() {
    static const std::array<Site, kSiteCount> sites = {{
        {"put_before_version_cas", &put_before_version_cas},
        {"rebalance_after_freeze", &rebalance_after_freeze},
        {"replace_before_splice", &replace_before_splice},
        {"scan_before_version_install", &scan_before_version_install},
        {"get_after_help", &get_after_help},
        {"rebalance_before_index_update", &rebalance_before_index_update},
        {"rebalance_during_engage", &rebalance_during_engage},
        {"ebr_before_retire", &ebr_before_retire},
    }};
    return sites;
  }

  // ---- mutants ---------------------------------------------------------

  /// Deliberately re-broken behaviours, one bit each.  See docs/TESTING.md
  /// for what each one reverts and which fuzz seed pins its detection.
  enum Mutant : std::uint32_t {
    /// Revert the PR1 `ro->last_engaged` consensus: every rebalance helper
    /// acts on its own view of the engaged run (the seed tree's latent
    /// double-retire race).
    kLastEngagedRace = 1u << 0,
    /// Scan takes a read point without publishing a pending PSA entry, so
    /// rebalance cannot see (or help) it — compaction may drop versions the
    /// scan still needs (the Enhancing-KiWi scan-publication ordering bug
    /// class).
    kSkipScanPublish = 1u << 1,
    /// Get skips helping pending puts before reading (paper Figure 2's
    /// required get-side helping).
    kSkipGetHelp = 1u << 2,
    /// Rebalance compaction drops a tombstone and everything older
    /// unconditionally — the paper's literal pseudocode, reverting DESIGN.md
    /// deviation 1 (can lose a value a pending scan still needs).
    kEagerTombstonePurge = 1u << 3,
  };

  static std::atomic<std::uint32_t> mutants;

  static bool MutantEnabled(Mutant m) {
    return (mutants.load(std::memory_order_relaxed) & m) != 0;
  }

  /// RAII installer for one site.
  class Scoped {
   public:
    Scoped(std::atomic<Hook>& site, Hook hook) : site_(site) {
      site_.store(hook, std::memory_order_relaxed);
    }
    ~Scoped() { site_.store(nullptr, std::memory_order_relaxed); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    std::atomic<Hook>& site_;
  };

  /// RAII installer for a mutant mask (replaces the whole mask; nesting
  /// scopes would be a test bug, so the previous mask is asserted clear by
  /// restore-to-zero semantics).
  class ScopedMutants {
   public:
    explicit ScopedMutants(std::uint32_t mask) {
      mutants.store(mask, std::memory_order_relaxed);
    }
    ~ScopedMutants() { mutants.store(0, std::memory_order_relaxed); }
    ScopedMutants(const ScopedMutants&) = delete;
    ScopedMutants& operator=(const ScopedMutants&) = delete;
  };
};

inline std::atomic<TestHooks::Hook> TestHooks::put_before_version_cas{nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::rebalance_after_freeze{nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::replace_before_splice{nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::scan_before_version_install{
    nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::get_after_help{nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::rebalance_before_index_update{
    nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::rebalance_during_engage{
    nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::ebr_before_retire{nullptr};
inline std::atomic<std::uint32_t> TestHooks::mutants{0};

}  // namespace kiwi
