// Test-only failure injection points.
//
// Concurrency races the paper reasons about (a put stalling between
// publishing in the PPA and acquiring a version; a rebalancer stalling
// between freeze and build; a helper stalling before the splice) have
// windows of a few instructions — too narrow for a scheduler to hit
// reliably.  Tests widen them by installing a hook (typically a yield or a
// short sleep) at the exact point.  Default is a single relaxed load per
// site: negligible next to the adjacent fenced atomics.
#pragma once

#include <atomic>

namespace kiwi {

struct TestHooks {
  using Hook = void (*)();

  /// Put published its cell in the PPA but has not yet CASed a version —
  /// the window scans/gets must help across (paper Figure 2).
  static std::atomic<Hook> put_before_version_cas;

  /// Rebalance froze the engaged chunks but has not yet built replacements —
  /// puts landing here must restart, reads must still be served.
  static std::atomic<Hook> rebalance_after_freeze;

  /// Replacement section agreed but not yet spliced — the longest window in
  /// which old and new chunks coexist.
  static std::atomic<Hook> replace_before_splice;

  static void Run(const std::atomic<Hook>& site) {
    if (Hook hook = site.load(std::memory_order_relaxed)) hook();
  }

  /// RAII installer for one site.
  class Scoped {
   public:
    Scoped(std::atomic<Hook>& site, Hook hook) : site_(site) {
      site_.store(hook, std::memory_order_relaxed);
    }
    ~Scoped() { site_.store(nullptr, std::memory_order_relaxed); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    std::atomic<Hook>& site_;
  };
};

inline std::atomic<TestHooks::Hook> TestHooks::put_before_version_cas{nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::rebalance_after_freeze{nullptr};
inline std::atomic<TestHooks::Hook> TestHooks::replace_before_splice{nullptr};

}  // namespace kiwi
