#include "index/chunk_index.h"

namespace kiwi::index {

template class ChunkIndexT<core::Int64Layout>;
template class ChunkIndexT<core::ByteLayout>;

}  // namespace kiwi::index
