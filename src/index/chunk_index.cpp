#include "index/chunk_index.h"

#include "common/assert.h"

namespace kiwi::index {

ChunkIndex::ChunkIndex(reclaim::Ebr& ebr) : ebr_(ebr) {
  head_ = new Node(kMinKeySentinel, nullptr, kMaxHeight);
}

ChunkIndex::~ChunkIndex() {
  // Externally synchronized; walk level 0 and free directly.
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->next[0].load(std::memory_order_relaxed);
    delete node;
    node = next;
  }
}

ChunkIndex::Node* ChunkIndex::FindLessOrEqual(Key key, Node** preds) const {
  Node* pred = head_;
  Node* candidate = nullptr;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    Node* curr = pred->next[level].load(std::memory_order_acquire);
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = pred->next[level].load(std::memory_order_acquire);
    }
    if (preds != nullptr) preds[level] = pred;
    // An exact match sits immediately after pred at some level.
    if (curr != nullptr && curr->key == key) candidate = curr;
  }
  if (candidate != nullptr) return candidate;
  return pred == head_ ? nullptr : pred;
}

ChunkIndex::Handle ChunkIndex::Lookup(Key key) const {
  Node* node = FindLessOrEqual(key, nullptr);
  return node == nullptr ? nullptr
                         : node->handle.load(std::memory_order_acquire);
}

bool ChunkIndex::PutConditional(Key key, Handle prev, Handle handle) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  Node* preds[kMaxHeight];
  Node* best = FindLessOrEqual(key, preds);
  const Handle current =
      best == nullptr ? nullptr : best->handle.load(std::memory_order_acquire);
  if (current != prev) return false;

  if (best != nullptr && best->key == key) {
    // Key already indexed (mapped to prev): replace the mapping in place.
    best->handle.store(handle, std::memory_order_release);
    return true;
  }

  const int height = RandomHeight();
  Node* node = new Node(key, handle, height);
  for (int level = 0; level < height; ++level) {
    node->next[level].store(
        preds[level]->next[level].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  // Publish bottom-up; once the level-0 link is visible the node is live.
  for (int level = 0; level < height; ++level) {
    preds[level]->next[level].store(node, std::memory_order_release);
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ChunkIndex::DeleteConditional(Key key, Handle handle) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  Node* preds[kMaxHeight];
  Node* best = FindLessOrEqual(key, preds);
  if (best == nullptr || best->key != key) return true;  // idempotent
  if (best->handle.load(std::memory_order_acquire) != handle) return false;

  // Unlink top-down; readers that already hold the node keep following its
  // intact next pointers.
  for (int level = best->height - 1; level >= 0; --level) {
    // preds[level] may not directly precede best at this level if best is
    // shorter than the search path; only unlink where it does.
    if (preds[level]->next[level].load(std::memory_order_relaxed) == best) {
      preds[level]->next[level].store(
          best->next[level].load(std::memory_order_relaxed),
          std::memory_order_release);
    }
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  ebr_.RetireObject(best);
  return true;
}

void ChunkIndex::PutUnconditional(Key key, Handle handle) {
  const bool inserted = PutConditional(key, Lookup(key), handle);
  KIWI_ASSERT(inserted, "unconditional index put failed");
}

std::size_t ChunkIndex::MemoryFootprint() const {
  return Size() * sizeof(Node) + sizeof(*this);
}

int ChunkIndex::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && (height_rng_.Next() & 3u) == 0) ++height;
  return height;
}

}  // namespace kiwi::index
