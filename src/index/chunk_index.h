// The auxiliary chunk index (paper §3.1, §3.3.2 stage 6).
//
// Maps minKey -> chunk.  The index is an *accelerator*, not the source of
// truth: it may lag behind the chunk linked list (updates are lazy, done only
// by rebalance), so every user of Lookup must continue with a traversal of
// the chunk list.  Required API, from the paper:
//
//   - Lookup(k)/LoadPrev(k): wait-free; the chunk mapped to the highest
//     indexed key that does not exceed k.
//   - PutConditional(k, prev, c): map k to c provided the highest indexed
//     key not exceeding k is currently mapped to prev (semantic LL/SC).
//   - DeleteConditional(k, c): remove k only if currently mapped to c.
//
// "Such an index can be implemented in non-blocking ways using low-level
// atomic operations; in our implementation, we instead use locks."  We do
// the same: a skiplist whose readers are lock-free (per-level atomic next
// pointers, no helping required) and whose writers serialize on one mutex —
// index writes happen only during rebalance, which is rare by design.
//
// Readers may hold references to nodes a concurrent writer unlinks, so
// unlinked nodes are retired through the owning map's EBR domain; callers
// must invoke Lookup/LoadPrev inside an EbrGuard.
//
// Templated on the core key Layout (core/layout.h): nodes own their key
// (a plain int64 for Int64Layout, a std::string for ByteLayout — owning is
// fine here, writes are rare and lock-held) and compares go through the
// layout's view comparison.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

#include "common/assert.h"
#include "common/config.h"
#include "common/random.h"
#include "core/layout.h"
#include "reclaim/ebr.h"

namespace kiwi::index {

template <typename Layout>
class ChunkIndexT {
 public:
  using KeyView = typename Layout::KeyView;
  using OwnedKey = typename Layout::OwnedKey;

  /// Opaque handle to whatever the index maps to (the core stores Chunk*).
  using Handle = void*;

  explicit ChunkIndexT(reclaim::Ebr& ebr) : ebr_(ebr) {
    head_ = new Node(Layout::OwnKey(Layout::SentinelMinKey()), nullptr,
                     kMaxHeight);
  }

  ~ChunkIndexT() {
    // Externally synchronized; walk level 0 and free directly.
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next[0].load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  ChunkIndexT(const ChunkIndexT&) = delete;
  ChunkIndexT& operator=(const ChunkIndexT&) = delete;

  /// Wait-free: handle mapped to the highest indexed key <= key, or nullptr
  /// if no such key is indexed.  Must be called inside an EbrGuard.
  Handle Lookup(KeyView key) const {
    Node* node = FindLessOrEqual(key, nullptr);
    return node == nullptr ? nullptr
                           : node->handle.load(std::memory_order_acquire);
  }

  /// Wait-free: handle mapped to the highest indexed key strictly *below*
  /// `key`, or nullptr.  Rebalance's list-predecessor search uses this
  /// instead of Lookup(key - 1) — byte keys have no "- 1".
  Handle LookupBelow(KeyView key) const {
    Node* pred = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr != nullptr &&
             Layout::KeyLess(Layout::ViewKey(curr->key), key)) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
    }
    return pred == head_ ? nullptr
                         : pred->handle.load(std::memory_order_acquire);
  }

  /// Paper name for the same query, used by the normalize stage.
  Handle LoadPrev(KeyView key) const { return Lookup(key); }

  /// Insert/overwrite the mapping key -> handle iff Lookup(key) would
  /// currently return prev.  Returns true on success.
  bool PutConditional(KeyView key, Handle prev, Handle handle) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    Node* preds[kMaxHeight];
    Node* best = FindLessOrEqual(key, preds);
    const Handle current = best == nullptr
                               ? nullptr
                               : best->handle.load(std::memory_order_acquire);
    if (current != prev) return false;

    if (best != nullptr && Layout::KeyEq(Layout::ViewKey(best->key), key)) {
      // Key already indexed (mapped to prev): replace the mapping in place.
      best->handle.store(handle, std::memory_order_release);
      return true;
    }

    const int height = RandomHeight();
    Node* node = new Node(Layout::OwnKey(key), handle, height);
    for (int level = 0; level < height; ++level) {
      node->next[level].store(
          preds[level]->next[level].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    // Publish bottom-up; once the level-0 link is visible the node is live.
    for (int level = 0; level < height; ++level) {
      preds[level]->next[level].store(node, std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Remove key iff it is currently mapped to handle.  Returns true if the
  /// mapping was removed (also true if the key was already absent, which is
  /// an idempotent success for rebalance retries).
  bool DeleteConditional(KeyView key, Handle handle) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    Node* preds[kMaxHeight];
    Node* best = FindLessOrEqual(key, preds);
    if (best == nullptr || !Layout::KeyEq(Layout::ViewKey(best->key), key)) {
      return true;  // idempotent
    }
    if (best->handle.load(std::memory_order_acquire) != handle) return false;

    // Unlink top-down; readers that already hold the node keep following its
    // intact next pointers.
    for (int level = best->height - 1; level >= 0; --level) {
      // preds[level] may not directly precede best at this level if best is
      // shorter than the search path; only unlink where it does.
      if (preds[level]->next[level].load(std::memory_order_relaxed) == best) {
        preds[level]->next[level].store(
            best->next[level].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    ebr_.RetireObject(best);
    return true;
  }

  /// Unconditional insert, used only for initial construction.
  void PutUnconditional(KeyView key, Handle handle) {
    const bool inserted = PutConditional(key, Lookup(key), handle);
    KIWI_ASSERT(inserted, "unconditional index put failed");
  }

  /// Number of indexed entries (approximate under concurrency).
  std::size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Approximate bytes held by index nodes, for the memory-footprint bench.
  std::size_t MemoryFootprint() const {
    return Size() * sizeof(Node) + sizeof(*this);
  }

 private:
  static constexpr int kMaxHeight = 20;

  struct Node {
    OwnedKey key;
    std::atomic<Handle> handle;
    int height;
    std::atomic<Node*> next[kMaxHeight];

    Node(OwnedKey k, Handle h, int ht)
        : key(std::move(k)), handle(h), height(ht) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
  };

  /// Greatest node with key <= target (never the head sentinel), or nullptr.
  /// Also fills preds[level] = last node with key < target at each level
  /// when preds != nullptr (writer path, called under lock).
  Node* FindLessOrEqual(KeyView key, Node** preds) const {
    Node* pred = head_;
    Node* candidate = nullptr;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr != nullptr &&
             Layout::KeyLess(Layout::ViewKey(curr->key), key)) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (preds != nullptr) preds[level] = pred;
      // An exact match sits immediately after pred at some level.
      if (curr != nullptr && Layout::KeyEq(Layout::ViewKey(curr->key), key)) {
        candidate = curr;
      }
    }
    if (candidate != nullptr) return candidate;
    return pred == head_ ? nullptr : pred;
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && (height_rng_.Next() & 3u) == 0) ++height;
    return height;
  }

  Node* head_;  // sentinel, key irrelevant, full height
  mutable std::mutex write_mutex_;
  reclaim::Ebr& ebr_;
  std::atomic<std::size_t> size_{0};
  Xoshiro256 height_rng_{0x1db7d1cdULL};  // guarded by write_mutex_
};

/// The fixed-width map's index — the original spelling.
using ChunkIndex = ChunkIndexT<core::Int64Layout>;

extern template class ChunkIndexT<core::Int64Layout>;
extern template class ChunkIndexT<core::ByteLayout>;

}  // namespace kiwi::index
