// The auxiliary chunk index (paper §3.1, §3.3.2 stage 6).
//
// Maps minKey -> chunk.  The index is an *accelerator*, not the source of
// truth: it may lag behind the chunk linked list (updates are lazy, done only
// by rebalance), so every user of Lookup must continue with a traversal of
// the chunk list.  Required API, from the paper:
//
//   - Lookup(k)/LoadPrev(k): wait-free; the chunk mapped to the highest
//     indexed key that does not exceed k.
//   - PutConditional(k, prev, c): map k to c provided the highest indexed
//     key not exceeding k is currently mapped to prev (semantic LL/SC).
//   - DeleteConditional(k, c): remove k only if currently mapped to c.
//
// "Such an index can be implemented in non-blocking ways using low-level
// atomic operations; in our implementation, we instead use locks."  We do
// the same: a skiplist whose readers are lock-free (per-level atomic next
// pointers, no helping required) and whose writers serialize on one mutex —
// index writes happen only during rebalance, which is rare by design.
//
// Readers may hold references to nodes a concurrent writer unlinks, so
// unlinked nodes are retired through the owning map's EBR domain; callers
// must invoke Lookup/LoadPrev inside an EbrGuard.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

#include "common/config.h"
#include "common/random.h"
#include "reclaim/ebr.h"

namespace kiwi::index {

class ChunkIndex {
 public:
  /// Opaque handle to whatever the index maps to (the core stores Chunk*).
  using Handle = void*;

  explicit ChunkIndex(reclaim::Ebr& ebr);
  ~ChunkIndex();
  ChunkIndex(const ChunkIndex&) = delete;
  ChunkIndex& operator=(const ChunkIndex&) = delete;

  /// Wait-free: handle mapped to the highest indexed key <= key, or nullptr
  /// if no such key is indexed.  Must be called inside an EbrGuard.
  Handle Lookup(Key key) const;

  /// Paper name for the same query, used by the normalize stage.
  Handle LoadPrev(Key key) const { return Lookup(key); }

  /// Insert/overwrite the mapping key -> handle iff Lookup(key) would
  /// currently return prev.  Returns true on success.
  bool PutConditional(Key key, Handle prev, Handle handle);

  /// Remove key iff it is currently mapped to handle.  Returns true if the
  /// mapping was removed (also true if the key was already absent, which is
  /// an idempotent success for rebalance retries).
  bool DeleteConditional(Key key, Handle handle);

  /// Unconditional insert, used only for initial construction.
  void PutUnconditional(Key key, Handle handle);

  /// Number of indexed entries (approximate under concurrency).
  std::size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Approximate bytes held by index nodes, for the memory-footprint bench.
  std::size_t MemoryFootprint() const;

 private:
  static constexpr int kMaxHeight = 20;

  struct Node {
    Key key;
    std::atomic<Handle> handle;
    int height;
    std::atomic<Node*> next[kMaxHeight];

    Node(Key k, Handle h, int ht) : key(k), handle(h), height(ht) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
  };

  /// Greatest node with key <= target (never the head sentinel), or nullptr.
  /// Also fills preds[level] = last node with key < target at each level
  /// when preds != nullptr (writer path, called under lock).
  Node* FindLessOrEqual(Key key, Node** preds) const;

  int RandomHeight();

  Node* head_;  // sentinel, key irrelevant, full height
  mutable std::mutex write_mutex_;
  reclaim::Ebr& ebr_;
  std::atomic<std::size_t> size_{0};
  Xoshiro256 height_rng_{0x1db7d1cdULL};  // guarded by write_mutex_
};

}  // namespace kiwi::index
