// DebugReport assembly and rendering.
//
// KiWiMap::DebugReport() lives here, not in src/core/, so that core objects
// carry no reference to the rendering code (and, in a KIWI_STATS=OFF build,
// no obs references at all).  The JSON schema emitted by ToJson() is the
// contract documented in docs/OBSERVABILITY.md — change them together.
#include "obs/report.h"

#include <cstdarg>
#include <cstdio>

#include "core/kiwi_map.h"

namespace kiwi::obs {

namespace {

// printf-append onto a std::string (keeps formatting snprintf-exact, which
// matters for the JSON contract: %.17g round-trips doubles, no locale).
void Append(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

LatencySummary Summarize(const LatencyHistogram& hist) {
  const HistogramSnapshot snap = hist.Snapshot();
  LatencySummary summary;
  summary.count = snap.count;
  summary.p50 = snap.P50();
  summary.p99 = snap.P99();
  summary.p999 = snap.P999();
  summary.max = snap.max;
  summary.mean_ns = snap.Mean();
  return summary;
}

}  // namespace

std::string DebugReport::ToText() const {
  std::string out;
  Append(out, "KiWi DebugReport (stats %s)\n",
         stats_enabled ? "on" : "off — counters/latency read zero");
  const OpCounters& c = counters;
  Append(out, " counters:\n");
  Append(out,
         "  puts=%llu removes=%llu gets=%llu get_hits=%llu scans=%llu "
         "scan_keys=%llu snapshots=%llu\n",
         (unsigned long long)c.puts, (unsigned long long)c.removes,
         (unsigned long long)c.gets, (unsigned long long)c.get_hits,
         (unsigned long long)c.scans, (unsigned long long)c.scan_keys,
         (unsigned long long)c.snapshots);
  Append(out,
         "  put_batches=%llu batch_entries=%llu batch_bulk_entries=%llu\n",
         (unsigned long long)c.put_batches,
         (unsigned long long)c.batch_entries,
         (unsigned long long)c.batch_bulk_entries);
  Append(out,
         "  rebalances=%llu rebalance_wins=%llu put_restarts=%llu "
         "puts_piggybacked=%llu puts_helped=%llu scans_helped=%llu\n",
         (unsigned long long)c.rebalances,
         (unsigned long long)c.rebalance_wins,
         (unsigned long long)c.put_restarts,
         (unsigned long long)c.puts_piggybacked,
         (unsigned long long)c.puts_helped,
         (unsigned long long)c.scans_helped);
  Append(out, "  chunks_created=%llu chunks_retired=%llu\n",
         (unsigned long long)c.chunks_created,
         (unsigned long long)c.chunks_retired);
  Append(out,
         "  put_link_retries=%llu ppa_publish_fails=%llu "
         "cell_alloc_overflows=%llu locate_restarts=%llu\n",
         (unsigned long long)c.put_link_retries,
         (unsigned long long)c.ppa_publish_fails,
         (unsigned long long)c.cell_alloc_overflows,
         (unsigned long long)c.locate_restarts);
  Append(out,
         "  engage_cas_fails=%llu freeze_cas_retries=%llu splice_retries=%llu "
         "splice_helps=%llu index_cas_retries=%llu\n",
         (unsigned long long)c.engage_cas_fails,
         (unsigned long long)c.freeze_cas_retries,
         (unsigned long long)c.splice_retries,
         (unsigned long long)c.splice_helps,
         (unsigned long long)c.index_cas_retries);
  Append(out,
         " latency (ns; put/get/scan sampled 1 in %u, rebalance exhaustive):\n",
         1u << StatsRegistry::kSampleShift);
  for (std::size_t i = 0; i < kLatencyCount; ++i) {
    const LatencySummary& s = latency[i];
    Append(out,
           "  %-17s count=%-8llu p50=%-8llu p99=%-8llu p999=%-8llu "
           "max=%-8llu mean=%.1f\n",
           LatencyName(static_cast<Latency>(i)), (unsigned long long)s.count,
           (unsigned long long)s.p50, (unsigned long long)s.p99,
           (unsigned long long)s.p999, (unsigned long long)s.max, s.mean_ns);
  }
  Append(out, " gauges:\n");
  Append(out,
         "  chunks=%llu allocated_cells=%llu batched_cells=%llu "
         "avg_fill=%.3f batched_ratio=%.3f\n",
         (unsigned long long)gauges.chunks,
         (unsigned long long)gauges.allocated_cells,
         (unsigned long long)gauges.batched_cells, gauges.avg_fill,
         gauges.batched_ratio);
  Append(out,
         "  psa_active=%llu snapshot_pins=%llu ebr_pending=%llu "
         "ebr_pending_bytes=%llu ebr_epoch=%llu ebr_epoch_lag=%llu "
         "global_version=%llu memory_bytes=%llu\n",
         (unsigned long long)gauges.psa_active,
         (unsigned long long)gauges.snapshot_pins,
         (unsigned long long)gauges.ebr_pending,
         (unsigned long long)gauges.ebr_pending_bytes,
         (unsigned long long)gauges.ebr_epoch,
         (unsigned long long)gauges.ebr_epoch_lag,
         (unsigned long long)gauges.global_version,
         (unsigned long long)gauges.memory_bytes);
  Append(out,
         "  pool_hits=%llu pool_misses=%llu pool_recycled=%llu "
         "pool_class_retries=%llu pool_live_bytes=%llu "
         "pool_pooled_bytes=%llu\n",
         (unsigned long long)gauges.pool_hits,
         (unsigned long long)gauges.pool_misses,
         (unsigned long long)gauges.pool_recycled,
         (unsigned long long)gauges.pool_class_retries,
         (unsigned long long)gauges.pool_live_bytes,
         (unsigned long long)gauges.pool_pooled_bytes);
  return out;
}

std::string DebugReport::ToJson() const {
  std::string out;
  out += "{\"kiwi_debug_report\":1,\"stats_enabled\":";
  out += stats_enabled ? "true" : "false";
  const OpCounters& c = counters;
  const auto field = [&out](const char* name, std::uint64_t value,
                            bool last = false) {
    Append(out, "\"%s\":%llu%s", name, (unsigned long long)value,
           last ? "" : ",");
  };
  // The counter object is generated from the canonical field list, so the
  // JSON order *is* KIWI_OBS_COUNTER_FIELDS order by construction.
  out += ",\"counters\":{";
#define KIWI_OBS_EMIT_COUNTER(name) field(#name, c.name);
  KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_EMIT_COUNTER)
#undef KIWI_OBS_EMIT_COUNTER
  out.pop_back();  // trailing comma from the last field
  out += "},\"latency_ns\":{";
  for (std::size_t i = 0; i < kLatencyCount; ++i) {
    const LatencySummary& s = latency[i];
    Append(out, "\"%s\":{", LatencyName(static_cast<Latency>(i)));
    field("count", s.count);
    field("p50", s.p50);
    field("p99", s.p99);
    field("p999", s.p999);
    field("max", s.max);
    Append(out, "\"mean\":%.17g}%s", s.mean_ns,
           i + 1 < kLatencyCount ? "," : "");
  }
  // Integer gauges in KIWI_OBS_GAUGE_FIELDS order, then the two doubles.
  out += "},\"gauges\":{";
#define KIWI_OBS_EMIT_GAUGE(name) field(#name, gauges.name);
  KIWI_OBS_GAUGE_FIELDS(KIWI_OBS_EMIT_GAUGE)
#undef KIWI_OBS_EMIT_GAUGE
  Append(out, "\"avg_fill\":%.17g,\"batched_ratio\":%.17g}}", gauges.avg_fill,
         gauges.batched_ratio);
  return out;
}

}  // namespace kiwi::obs

namespace kiwi::core {

template <typename Layout>
obs::DebugReport KiWiMapT<Layout>::DebugReport() {
  obs::DebugReport report;
#if KIWI_OBS_ENABLED
  report.stats_enabled = true;
  report.counters = obs_.Aggregate();
  for (std::size_t i = 0; i < obs::kLatencyCount; ++i) {
    report.latency[i] =
        obs::Summarize(obs_.Hist(static_cast<obs::Latency>(i)));
  }
#endif
  // Gauges are computed from the live structure regardless of the stats
  // gate.  Structure numbers reuse Report(); the PSA walks look at every
  // slot (64 loads — occupancy must count exited threads' leaks too).
  const StructureReport structure = Report();
  report.gauges.chunks = structure.data_chunks;
  report.gauges.allocated_cells = structure.allocated_cells;
  report.gauges.batched_cells = structure.batched_cells;
  report.gauges.avg_fill = structure.avg_fill;
  report.gauges.batched_ratio = structure.avg_batched_ratio;
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    if (psa_.Slot(t).Load().ver != kNoVersion) report.gauges.psa_active++;
    for (const auto& array : snapshot_psa_) {
      if (array.Slot(t).Load().ver != kNoVersion) {
        report.gauges.snapshot_pins++;
      }
    }
  }
  report.gauges.ebr_pending = ebr_.PendingCount();
  report.gauges.ebr_pending_bytes = ebr_.PendingBytes();
  report.gauges.ebr_epoch = ebr_.GlobalEpoch();
  report.gauges.ebr_epoch_lag = ebr_.EpochLag();
  report.gauges.global_version = gv_.Load();
  report.gauges.memory_bytes = MemoryFootprint();
  const reclaim::SlabPool::Stats pool = pool_.GetStats();
  report.gauges.pool_hits = pool.hits;
  report.gauges.pool_misses = pool.misses;
  report.gauges.pool_recycled = pool.recycled;
  report.gauges.pool_class_retries = pool.class_cas_retries;
  report.gauges.pool_live_bytes = pool.live_bytes;
  report.gauges.pool_pooled_bytes = pool.pooled_bytes;
  return report;
}

// Member instantiations (the core TU's class-level instantiation skips
// obs-bound members; see kiwi_map.cpp).
template obs::DebugReport KiWiMapT<Int64Layout>::DebugReport();
template obs::DebugReport KiWiMapT<ByteLayout>::DebugReport();

}  // namespace kiwi::core
