// DebugReport assembly and rendering.
//
// KiWiMap::DebugReport() lives here, not in src/core/, so that core objects
// carry no reference to the rendering code (and, in a KIWI_STATS=OFF build,
// no obs references at all).  The JSON schema emitted by ToJson() is the
// contract documented in docs/OBSERVABILITY.md — change them together.
#include "obs/report.h"

#include <cstdarg>
#include <cstdio>

#include "core/kiwi_map.h"

namespace kiwi::obs {

namespace {

// printf-append onto a std::string (keeps formatting snprintf-exact, which
// matters for the JSON contract: %.17g round-trips doubles, no locale).
void Append(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

LatencySummary Summarize(const LatencyHistogram& hist) {
  const HistogramSnapshot snap = hist.Snapshot();
  LatencySummary summary;
  summary.count = snap.count;
  summary.p50 = snap.P50();
  summary.p99 = snap.P99();
  summary.p999 = snap.P999();
  summary.max = snap.max;
  summary.mean_ns = snap.Mean();
  return summary;
}

}  // namespace

std::string DebugReport::ToText() const {
  std::string out;
  Append(out, "KiWi DebugReport (stats %s)\n",
         stats_enabled ? "on" : "off — counters/latency read zero");
  const OpCounters& c = counters;
  Append(out, " counters:\n");
  Append(out,
         "  puts=%llu removes=%llu gets=%llu get_hits=%llu scans=%llu "
         "scan_keys=%llu snapshots=%llu\n",
         (unsigned long long)c.puts, (unsigned long long)c.removes,
         (unsigned long long)c.gets, (unsigned long long)c.get_hits,
         (unsigned long long)c.scans, (unsigned long long)c.scan_keys,
         (unsigned long long)c.snapshots);
  Append(out,
         "  put_batches=%llu batch_entries=%llu batch_bulk_entries=%llu\n",
         (unsigned long long)c.put_batches,
         (unsigned long long)c.batch_entries,
         (unsigned long long)c.batch_bulk_entries);
  Append(out,
         "  rebalances=%llu rebalance_wins=%llu put_restarts=%llu "
         "puts_piggybacked=%llu puts_helped=%llu scans_helped=%llu\n",
         (unsigned long long)c.rebalances,
         (unsigned long long)c.rebalance_wins,
         (unsigned long long)c.put_restarts,
         (unsigned long long)c.puts_piggybacked,
         (unsigned long long)c.puts_helped,
         (unsigned long long)c.scans_helped);
  Append(out, "  chunks_created=%llu chunks_retired=%llu\n",
         (unsigned long long)c.chunks_created,
         (unsigned long long)c.chunks_retired);
  Append(out,
         " latency (ns; put/get/scan sampled 1 in %u, rebalance exhaustive):\n",
         1u << StatsRegistry::kSampleShift);
  for (std::size_t i = 0; i < kLatencyCount; ++i) {
    const LatencySummary& s = latency[i];
    Append(out,
           "  %-17s count=%-8llu p50=%-8llu p99=%-8llu p999=%-8llu "
           "max=%-8llu mean=%.1f\n",
           LatencyName(static_cast<Latency>(i)), (unsigned long long)s.count,
           (unsigned long long)s.p50, (unsigned long long)s.p99,
           (unsigned long long)s.p999, (unsigned long long)s.max, s.mean_ns);
  }
  Append(out, " gauges:\n");
  Append(out,
         "  chunks=%llu allocated_cells=%llu batched_cells=%llu "
         "avg_fill=%.3f batched_ratio=%.3f\n",
         (unsigned long long)gauges.chunks,
         (unsigned long long)gauges.allocated_cells,
         (unsigned long long)gauges.batched_cells, gauges.avg_fill,
         gauges.batched_ratio);
  Append(out,
         "  psa_active=%llu snapshot_pins=%llu ebr_pending=%llu "
         "ebr_epoch=%llu global_version=%llu memory_bytes=%llu\n",
         (unsigned long long)gauges.psa_active,
         (unsigned long long)gauges.snapshot_pins,
         (unsigned long long)gauges.ebr_pending,
         (unsigned long long)gauges.ebr_epoch,
         (unsigned long long)gauges.global_version,
         (unsigned long long)gauges.memory_bytes);
  Append(out,
         "  pool_hits=%llu pool_misses=%llu pool_recycled=%llu "
         "pool_live_bytes=%llu pool_pooled_bytes=%llu\n",
         (unsigned long long)gauges.pool_hits,
         (unsigned long long)gauges.pool_misses,
         (unsigned long long)gauges.pool_recycled,
         (unsigned long long)gauges.pool_live_bytes,
         (unsigned long long)gauges.pool_pooled_bytes);
  return out;
}

std::string DebugReport::ToJson() const {
  std::string out;
  out += "{\"kiwi_debug_report\":1,\"stats_enabled\":";
  out += stats_enabled ? "true" : "false";
  const OpCounters& c = counters;
  const auto field = [&out](const char* name, std::uint64_t value,
                            bool last = false) {
    Append(out, "\"%s\":%llu%s", name, (unsigned long long)value,
           last ? "" : ",");
  };
  out += ",\"counters\":{";
  field("puts", c.puts);
  field("removes", c.removes);
  field("gets", c.gets);
  field("get_hits", c.get_hits);
  field("scans", c.scans);
  field("scan_keys", c.scan_keys);
  field("snapshots", c.snapshots);
  field("put_batches", c.put_batches);
  field("batch_entries", c.batch_entries);
  field("batch_bulk_entries", c.batch_bulk_entries);
  field("rebalances", c.rebalances);
  field("rebalance_wins", c.rebalance_wins);
  field("put_restarts", c.put_restarts);
  field("chunks_created", c.chunks_created);
  field("chunks_retired", c.chunks_retired);
  field("puts_piggybacked", c.puts_piggybacked);
  field("puts_helped", c.puts_helped);
  field("scans_helped", c.scans_helped, /*last=*/true);
  out += "},\"latency_ns\":{";
  for (std::size_t i = 0; i < kLatencyCount; ++i) {
    const LatencySummary& s = latency[i];
    Append(out, "\"%s\":{", LatencyName(static_cast<Latency>(i)));
    field("count", s.count);
    field("p50", s.p50);
    field("p99", s.p99);
    field("p999", s.p999);
    field("max", s.max);
    Append(out, "\"mean\":%.17g}%s", s.mean_ns,
           i + 1 < kLatencyCount ? "," : "");
  }
  out += "},\"gauges\":{";
  field("chunks", gauges.chunks);
  field("allocated_cells", gauges.allocated_cells);
  field("batched_cells", gauges.batched_cells);
  Append(out, "\"avg_fill\":%.17g,\"batched_ratio\":%.17g,", gauges.avg_fill,
         gauges.batched_ratio);
  field("psa_active", gauges.psa_active);
  field("snapshot_pins", gauges.snapshot_pins);
  field("ebr_pending", gauges.ebr_pending);
  field("ebr_epoch", gauges.ebr_epoch);
  field("global_version", gauges.global_version);
  field("memory_bytes", gauges.memory_bytes);
  field("pool_hits", gauges.pool_hits);
  field("pool_misses", gauges.pool_misses);
  field("pool_recycled", gauges.pool_recycled);
  field("pool_live_bytes", gauges.pool_live_bytes);
  field("pool_pooled_bytes", gauges.pool_pooled_bytes, /*last=*/true);
  out += "}}";
  return out;
}

}  // namespace kiwi::obs

namespace kiwi::core {

obs::DebugReport KiWiMap::DebugReport() {
  obs::DebugReport report;
#if KIWI_OBS_ENABLED
  report.stats_enabled = true;
  report.counters = obs_.Aggregate();
  for (std::size_t i = 0; i < obs::kLatencyCount; ++i) {
    report.latency[i] =
        obs::Summarize(obs_.Hist(static_cast<obs::Latency>(i)));
  }
#endif
  // Gauges are computed from the live structure regardless of the stats
  // gate.  Structure numbers reuse Report(); the PSA walks look at every
  // slot (64 loads — occupancy must count exited threads' leaks too).
  const StructureReport structure = Report();
  report.gauges.chunks = structure.data_chunks;
  report.gauges.allocated_cells = structure.allocated_cells;
  report.gauges.batched_cells = structure.batched_cells;
  report.gauges.avg_fill = structure.avg_fill;
  report.gauges.batched_ratio = structure.avg_batched_ratio;
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    if (psa_.Slot(t).Load().ver != kNoVersion) report.gauges.psa_active++;
    for (const Psa& array : snapshot_psa_) {
      if (array.Slot(t).Load().ver != kNoVersion) {
        report.gauges.snapshot_pins++;
      }
    }
  }
  report.gauges.ebr_pending = ebr_.PendingCount();
  report.gauges.ebr_epoch = ebr_.GlobalEpoch();
  report.gauges.global_version = gv_.Load();
  report.gauges.memory_bytes = MemoryFootprint();
  const reclaim::SlabPool::Stats pool = pool_.GetStats();
  report.gauges.pool_hits = pool.hits;
  report.gauges.pool_misses = pool.misses;
  report.gauges.pool_recycled = pool.recycled;
  report.gauges.pool_live_bytes = pool.live_bytes;
  report.gauges.pool_pooled_bytes = pool.pooled_bytes;
  return report;
}

}  // namespace kiwi::core
