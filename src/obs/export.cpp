// Metrics pump, aggregator and export formats (JSONL + Prometheus).
//
// KiWiMap::StartMetricsPump / StartMetricsPumpFromEnv / StopMetricsPump are
// defined at the bottom of this file — not in src/core/ — so that core
// objects reference the pump only through the opaque `pump_` pointer and a
// KIWI_STATS=OFF build keeps core symbol sets obs-free (the same split as
// DebugReport and Census).
#include "obs/export.h"

#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>

#include "core/kiwi_map.h"

namespace kiwi::obs {

namespace {

// printf-append onto a std::string (snprintf-exact formatting: %.17g
// round-trips doubles, no locale surprises).
void Append(std::string& out, const char* fmt, ...) {
  char buffer[320];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

// Emit {"<field>":<u64>,...} over the counter X-macro list.
void AppendCounterObject(std::string& out, const OpCounters& c) {
  out += "{";
#define KIWI_OBS_EMIT(name) \
  Append(out, "\"%s\":%llu,", #name, (unsigned long long)c.name);
  KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_EMIT)
#undef KIWI_OBS_EMIT
  out.pop_back();  // trailing comma
  out += "}";
}

// Per-second rates, same key set as the counters.
void AppendRateObject(std::string& out, const OpCounters& deltas,
                      double interval_s) {
  const double denom = interval_s > 0 ? interval_s : 1.0;
  out += "{";
#define KIWI_OBS_EMIT(name) \
  Append(out, "\"%s\":%.6g,", #name, static_cast<double>(deltas.name) / denom);
  KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_EMIT)
#undef KIWI_OBS_EMIT
  out.pop_back();
  out += "}";
}

/// Process-wide pump instance ids, so interleaved JSONL streams stay
/// groupable (field "pump"; monotone from 1).
std::atomic<std::uint64_t> g_next_pump_id{1};

}  // namespace

// ---- aggregator --------------------------------------------------------

MetricsSample MetricsAggregator::Ingest(const DebugReport& report,
                                        const ChunkCensus& census,
                                        double elapsed_s) {
  MetricsSample sample;
  sample.pump = pump_id_;
  sample.seq = next_seq_++;
  sample.report = report;
  sample.census = census;
  if (have_prev_) {
    uptime_s_ += elapsed_s;
    sample.interval_s = elapsed_s;
    sample.have_deltas = true;
    // Counters are monotone per shard but aggregated concurrently, so a
    // racing read can momentarily run a field backwards; clamp at zero so
    // deltas (and the JSONL stream's rates) never go negative.
    const OpCounters& now = report.counters;
#define KIWI_OBS_DELTA(name) \
  sample.deltas.name = now.name >= prev_.name ? now.name - prev_.name : 0;
    KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_DELTA)
#undef KIWI_OBS_DELTA
  } else {
    // First sample: deltas == cumulative (everything since map creation).
    sample.deltas = report.counters;
    sample.interval_s = 0;
  }
  sample.uptime_s = uptime_s_;
  prev_ = report.counters;
  have_prev_ = true;
  return sample;
}

// ---- JSONL --------------------------------------------------------------

std::string MetricsSample::ToJsonl() const {
  std::string out;
  // "kiwi_metrics":1 is the stream marker kiwi_top (and any consumer of a
  // mixed stdout stream) keys on; bump it if the schema breaks.
  Append(out, "{\"kiwi_metrics\":1,\"pump\":%llu,\"seq\":%llu,",
         (unsigned long long)pump, (unsigned long long)seq);
  Append(out, "\"uptime_s\":%.6g,\"interval_s\":%.6g,\"stats_enabled\":%s,",
         uptime_s, interval_s, report.stats_enabled ? "true" : "false");
  out += "\"counters\":";
  AppendCounterObject(out, report.counters);
  out += ",\"deltas\":";
  AppendCounterObject(out, deltas);
  out += ",\"rates\":";
  AppendRateObject(out, deltas, interval_s);
  // Integer gauges in KIWI_OBS_GAUGE_FIELDS order, then the two doubles —
  // the same shape as DebugReport::ToJson's "gauges" object.
  out += ",\"gauges\":{";
#define KIWI_OBS_EMIT(name) \
  Append(out, "\"%s\":%llu,", #name, (unsigned long long)report.gauges.name);
  KIWI_OBS_GAUGE_FIELDS(KIWI_OBS_EMIT)
#undef KIWI_OBS_EMIT
  Append(out, "\"avg_fill\":%.17g,\"batched_ratio\":%.17g}",
         report.gauges.avg_fill, report.gauges.batched_ratio);
  out += ",\"latency_ns\":{";
  for (std::size_t i = 0; i < kLatencyCount; ++i) {
    const LatencySummary& s = report.latency[i];
    Append(out,
           "\"%s\":{\"count\":%llu,\"p50\":%llu,\"p99\":%llu,\"p999\":%llu,"
           "\"max\":%llu,\"mean\":%.17g}%s",
           LatencyName(static_cast<Latency>(i)), (unsigned long long)s.count,
           (unsigned long long)s.p50, (unsigned long long)s.p99,
           (unsigned long long)s.p999, (unsigned long long)s.max, s.mean_ns,
           i + 1 < kLatencyCount ? "," : "");
  }
  out += "},\"census\":";
  out += census.ToJson();
  out += "}";
  return out;
}

// ---- Prometheus ---------------------------------------------------------

namespace {

void PromDecileHistogram(
    std::ostream& out, const char* name,
    const std::array<std::uint64_t, ChunkCensus::kDecileBuckets>& hist,
    double approx_sum) {
  out << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  char le[16];
  for (std::size_t i = 0; i < hist.size(); ++i) {
    cumulative += hist[i];
    std::snprintf(le, sizeof(le), "%.1f", (i + 1) * 0.1);
    out << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
  out << name << "_sum " << approx_sum << "\n";
  out << name << "_count " << cumulative << "\n";
}

}  // namespace

void MetricsSample::WriteProm(std::ostream& out) const {
  // Pump meta.
  out << "# TYPE kiwi_pump_seq counter\nkiwi_pump_seq{pump=\"" << pump
      << "\"} " << seq << "\n";
  out << "# TYPE kiwi_pump_uptime_seconds gauge\nkiwi_pump_uptime_seconds "
      << uptime_s << "\n";
  // Counters: cumulative, kiwi_<field>_total.
#define KIWI_OBS_EMIT(name)                            \
  out << "# TYPE kiwi_" #name "_total counter\n"       \
      << "kiwi_" #name "_total " << report.counters.name << "\n";
  KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_EMIT)
#undef KIWI_OBS_EMIT
  // Gauges: kiwi_<field>.
#define KIWI_OBS_EMIT(name)                  \
  out << "# TYPE kiwi_" #name " gauge\n"     \
      << "kiwi_" #name " " << report.gauges.name << "\n";
  KIWI_OBS_GAUGE_FIELDS(KIWI_OBS_EMIT)
#undef KIWI_OBS_EMIT
  out << "# TYPE kiwi_avg_fill gauge\nkiwi_avg_fill " << report.gauges.avg_fill
      << "\n";
  out << "# TYPE kiwi_batched_ratio gauge\nkiwi_batched_ratio "
      << report.gauges.batched_ratio << "\n";
  // Census population (the cell totals already surface as gauges above).
  out << "# TYPE kiwi_census_chunks gauge\nkiwi_census_chunks "
      << census.chunks << "\n";
  out << "# TYPE kiwi_census_infant gauge\nkiwi_census_infant "
      << census.infant << "\n";
  out << "# TYPE kiwi_census_normal gauge\nkiwi_census_normal "
      << census.normal << "\n";
  out << "# TYPE kiwi_census_frozen gauge\nkiwi_census_frozen "
      << census.frozen << "\n";
  out << "# TYPE kiwi_census_engaged gauge\nkiwi_census_engaged "
      << census.engaged << "\n";
  out << "# TYPE kiwi_census_age_max_ns gauge\nkiwi_census_age_max_ns "
      << census.age_max_ns << "\n";
  // Distribution histograms.  The _sum fields are approximations derived
  // from the per-chunk averages (the census stores deciles, not raw sums).
  PromDecileHistogram(out, "kiwi_chunk_fill", census.fill_hist,
                      report.gauges.avg_fill *
                          static_cast<double>(census.chunks));
  PromDecileHistogram(out, "kiwi_chunk_batched_ratio", census.batched_hist,
                      report.gauges.batched_ratio *
                          static_cast<double>(census.chunks));
  // Latency digests as labeled gauges (the histograms are internal;
  // percentile gauges are what dashboards actually plot).
  out << "# TYPE kiwi_latency_ns gauge\n";
  static const char* const kStats[] = {"count", "p50", "p99", "p999", "max"};
  for (std::size_t i = 0; i < kLatencyCount; ++i) {
    const LatencySummary& s = report.latency[i];
    const std::uint64_t values[] = {s.count, s.p50, s.p99, s.p999, s.max};
    const char* op = LatencyName(static_cast<Latency>(i));
    for (std::size_t j = 0; j < 5; ++j) {
      out << "kiwi_latency_ns{op=\"" << op << "\",stat=\"" << kStats[j]
          << "\"} " << values[j] << "\n";
    }
  }
}

// ---- env parsing --------------------------------------------------------

bool ParseMetricsInterval(const std::string& text,
                          std::chrono::milliseconds* out) {
  std::size_t i = 0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == 0) return false;
  const std::uint64_t value = std::strtoull(text.substr(0, i).c_str(),
                                            nullptr, 10);
  const std::string suffix = text.substr(i);
  std::uint64_t ms;
  if (suffix.empty() || suffix == "ms") {
    ms = value;
  } else if (suffix == "s") {
    ms = value * 1000;
  } else {
    return false;
  }
  if (ms == 0) return false;
  *out = std::chrono::milliseconds(ms);
  return true;
}

bool ParseMetricsEnv(const char* spec, const char* prom_path,
                     MetricsPumpOptions* out) {
  if (spec == nullptr || spec[0] == '\0') return false;
  const std::string text(spec);
  const std::size_t colon = text.find(':');
  MetricsPumpOptions options;
  if (!ParseMetricsInterval(text.substr(0, colon), &options.interval)) {
    return false;
  }
  // No ":<path>" means stdout — `KIWI_METRICS=1s kiwi_bench | kiwi_top.py`.
  options.jsonl_path =
      colon == std::string::npos ? "-" : text.substr(colon + 1);
  if (prom_path != nullptr && prom_path[0] != '\0') {
    options.prom_path = prom_path;
  }
  *out = options;
  return true;
}

// ---- pump ---------------------------------------------------------------

struct MetricsPump::Impl {
  MetricsSource source;
  MetricsPumpOptions options;
  MetricsAggregator agg;

  std::FILE* jsonl = nullptr;  // nullptr = no JSONL channel
  bool jsonl_owned = false;    // false when jsonl aliases stdout

  mutable std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  bool stopped = false;  // Stop() ran to completion (idempotence)
  bool have_latest = false;
  MetricsSample latest;
  std::thread thread;
  std::chrono::steady_clock::time_point prev;

  Impl(MetricsSource source_arg, MetricsPumpOptions options_arg,
       std::uint64_t pump_id)
      : source(std::move(source_arg)),
        options(std::move(options_arg)),
        agg(pump_id) {}

  void Tick() {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - prev).count();
    prev = now;
    const DebugReport report = source.report();
    const ChunkCensus census = source.census();
    const MetricsSample sample = agg.Ingest(report, census, elapsed);
    if (jsonl != nullptr) {
      const std::string line = sample.ToJsonl();
      std::fwrite(line.data(), 1, line.size(), jsonl);
      std::fputc('\n', jsonl);
      std::fflush(jsonl);  // tailers (kiwi_top) want whole lines promptly
    }
    if (!options.prom_path.empty()) {
      // Write-then-rename so a concurrent scraper never reads a torn file.
      const std::string tmp = options.prom_path + ".tmp";
      {
        std::ofstream prom(tmp, std::ios::trunc);
        if (prom) sample.WriteProm(prom);
      }
      std::rename(tmp.c_str(), options.prom_path.c_str());
    }
    if (options.sink) options.sink(sample);
    {
      std::lock_guard<std::mutex> lock(mu);
      latest = sample;
      have_latest = true;
    }
  }

  void Run() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stop) {
      if (cv.wait_for(lock, options.interval, [this] { return stop; })) {
        break;
      }
      lock.unlock();
      Tick();
      lock.lock();
    }
    // The final flush happens in Stop(), after the join, so it also covers
    // runs shorter than one interval.
  }
};

MetricsPump::MetricsPump(MetricsSource source, MetricsPumpOptions options)
    : pump_id_(g_next_pump_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options.interval < std::chrono::milliseconds(1)) {
    options.interval = std::chrono::milliseconds(1);
  }
  impl_ = new Impl(std::move(source), std::move(options), pump_id_);
  if (impl_->options.jsonl_path == "-") {
    impl_->jsonl = stdout;
  } else if (!impl_->options.jsonl_path.empty()) {
    impl_->jsonl = std::fopen(impl_->options.jsonl_path.c_str(), "ae");
    if (impl_->jsonl == nullptr) {  // "e" (O_CLOEXEC) may be unsupported
      impl_->jsonl = std::fopen(impl_->options.jsonl_path.c_str(), "a");
    }
    impl_->jsonl_owned = impl_->jsonl != nullptr;
  }
  impl_->prev = std::chrono::steady_clock::now();
  impl_->thread = std::thread([impl = impl_] { impl->Run(); });
}

MetricsPump::~MetricsPump() {
  Stop();
  if (impl_->jsonl_owned) std::fclose(impl_->jsonl);
  delete impl_;
}

void MetricsPump::Stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stopped) return;
    impl_->stopped = true;
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->Tick();  // final sample: short runs still produce >= 1
}

bool MetricsPump::WriteProm(std::ostream& out) const {
  MetricsSample sample;
  if (!LatestSample(&sample)) return false;
  sample.WriteProm(out);
  return true;
}

bool MetricsPump::LatestSample(MetricsSample* out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->have_latest) return false;
  *out = impl_->latest;
  return true;
}

}  // namespace kiwi::obs

// ---- KiWiMap wiring -----------------------------------------------------

namespace kiwi::core {

template <typename Layout>
bool KiWiMapT<Layout>::StartMetricsPump(
    const obs::MetricsPumpOptions& options) {
  if (pump_ != nullptr) return false;
  pump_ = new obs::MetricsPump(
      obs::MetricsSource{[this] { return this->DebugReport(); },
                         [this] { return this->Census(); }},
      options);
  return true;
}

template <typename Layout>
bool KiWiMapT<Layout>::StartMetricsPumpFromEnv() {
  obs::MetricsPumpOptions options;
  if (!obs::ParseMetricsEnv(std::getenv("KIWI_METRICS"),
                            std::getenv("KIWI_METRICS_PROM"), &options)) {
    return false;
  }
  return StartMetricsPump(options);
}

template <typename Layout>
void KiWiMapT<Layout>::StopMetricsPump() {
  delete pump_;  // MetricsPump's destructor stops, joins and flushes
  pump_ = nullptr;
}

// Member instantiations (the core TU's class-level instantiation skips
// obs-bound members; see kiwi_map.cpp).
template bool KiWiMapT<Int64Layout>::StartMetricsPump(
    const obs::MetricsPumpOptions&);
template bool KiWiMapT<ByteLayout>::StartMetricsPump(
    const obs::MetricsPumpOptions&);
template bool KiWiMapT<Int64Layout>::StartMetricsPumpFromEnv();
template bool KiWiMapT<ByteLayout>::StartMetricsPumpFromEnv();
template void KiWiMapT<Int64Layout>::StopMetricsPump();
template void KiWiMapT<ByteLayout>::StopMetricsPump();

}  // namespace kiwi::core
