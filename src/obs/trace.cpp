// Flight-recorder consumers: ring merge, Chrome trace-event JSON export,
// and the crash post-mortem path.  The hot recording path is entirely in
// trace.h; nothing here is ever reached by a map operation.
#include "obs/trace.h"

#if KIWI_TRACE_ENABLED

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/assert.h"

namespace kiwi::obs::trace {

// Defined out-of-line so every binary shares one BSS instance (64 rings x
// 256 KiB is virtual, zero-backed until a thread actually records).
Ring g_trace_rings[kMaxThreads];

Ring* Rings() { return g_trace_rings; }

std::uint64_t NowFallbackNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// (tsc, wall-ns) pair; two of them turn tsc into trace microseconds.
struct ClockAnchor {
  std::uint64_t tsc;
  std::uint64_t ns;
};

ClockAnchor AnchorNow() { return ClockAnchor{Now(), NowFallbackNs()}; }

// Captured at load time so every recorded tsc postdates it.
const ClockAnchor g_anchor = AnchorNow();

/// Cycles per nanosecond, measured against the load-time anchor.  On
/// targets where Now() already returns nanoseconds this comes out as 1.
double CyclesPerNs() {
  const ClockAnchor now = AnchorNow();
  if (now.ns <= g_anchor.ns || now.tsc <= g_anchor.tsc) return 1.0;
  const double ratio = static_cast<double>(now.tsc - g_anchor.tsc) /
                       static_cast<double>(now.ns - g_anchor.ns);
  return ratio > 0 ? ratio : 1.0;
}

/// Copy the live tail of every ring and sort by timestamp.  Concurrent
/// emitters may tear at most the newest in-flight slot per ring; events
/// with an invalid id are dropped.
std::vector<Event> CollectMerged() {
  std::vector<Event> all;
  for (std::size_t slot = 0; slot < kMaxThreads; ++slot) {
    const Ring& ring = g_trace_rings[slot];
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    const std::uint64_t count = head < kRingCapacity ? head : kRingCapacity;
    for (std::uint64_t i = head - count; i < head; ++i) {
      const Event e = ring.events[i & kRingMask];
      if (e.id == 0 || e.id >= kEventKindCount) continue;
      all.push_back(e);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) { return a.tsc < b.tsc; });
  return all;
}

/// Arg rendering: which of a0/a1 are pointers (hex strings in JSON).
constexpr unsigned kA0Hex = 1, kA1Hex = 2;

unsigned ArgHexMask(Ev id) {
  switch (id) {
    case Ev::kPutRestart:
    case Ev::kPutPiggyback:
      return kA1Hex;
    case Ev::kScanHelpInstall:
      return kA0Hex;
    case Ev::kRebStart:
      return kA0Hex;
    case Ev::kRebEngage:
    case Ev::kRebEngageAdopt:
      return kA0Hex | kA1Hex;
    case Ev::kRebFreeze:
    case Ev::kRebMinVersion:
    case Ev::kRebBuild:
    case Ev::kRebReplace:
    case Ev::kRebIndex:
    case Ev::kRebNormalize:
    case Ev::kRebDone:
      return kA0Hex;
    case Ev::kChunkDiscard:
    case Ev::kEbrRetire:
      return kA0Hex;
    default:
      return 0;
  }
}

/// Span phases: which events open/close a duration slice in the export.
enum class Phase { kInstant, kBegin, kEnd };

Phase PhaseOf(Ev id) {
  switch (id) {
    case Ev::kRebStart:
    case Ev::kScanBegin:
      return Phase::kBegin;
    case Ev::kRebDone:
    case Ev::kScanEnd:
      return Phase::kEnd;
    default:
      return Phase::kInstant;
  }
}

/// Display name of the span an event opens/closes.
const char* SpanName(Ev id) {
  switch (id) {
    case Ev::kRebStart:
    case Ev::kRebDone:
      return "rebalance";
    case Ev::kScanBegin:
    case Ev::kScanEnd:
      return "scan";
    default:
      return TraceEventName(id);
  }
}

void WriteArgsJson(std::FILE* out, const Event& e) {
  const unsigned hex = ArgHexMask(static_cast<Ev>(e.id));
  if (hex & kA0Hex) {
    std::fprintf(out, "\"a0\":\"0x%llx\",", (unsigned long long)e.a0);
  } else {
    std::fprintf(out, "\"a0\":%llu,", (unsigned long long)e.a0);
  }
  if (hex & kA1Hex) {
    std::fprintf(out, "\"a1\":\"0x%llx\"", (unsigned long long)e.a1);
  } else {
    std::fprintf(out, "\"a1\":%llu", (unsigned long long)e.a1);
  }
}

// ---- async-signal-safe formatting -------------------------------------

void SafeWrite(int fd, const char* text, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, text, len);
    if (n <= 0) return;
    text += n;
    len -= static_cast<std::size_t>(n);
  }
}

void SafeWriteStr(int fd, const char* text) {
  SafeWrite(fd, text, std::strlen(text));
}

/// Append a decimal u64; returns chars written.  No snprintf (not
/// async-signal-safe in theory; this path runs inside SIGSEGV handlers).
std::size_t AppendDec(char* buffer, std::uint64_t value) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value > 0);
  for (std::size_t i = 0; i < n; ++i) buffer[i] = digits[n - 1 - i];
  return n;
}

std::size_t AppendHex(char* buffer, std::uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  buffer[0] = '0';
  buffer[1] = 'x';
  char digits[16];
  std::size_t n = 0;
  do {
    digits[n++] = kHex[value & 0xf];
    value >>= 4;
  } while (value > 0);
  for (std::size_t i = 0; i < n; ++i) buffer[2 + i] = digits[n - 1 - i];
  return 2 + n;
}

std::size_t AppendStr(char* buffer, const char* text) {
  const std::size_t n = std::strlen(text);
  std::memcpy(buffer, text, n);
  return n;
}

// ---- crash handler ----------------------------------------------------

std::sig_atomic_t g_post_mortem_done = 0;
CrashReportFn g_crash_report_fn = nullptr;
void* g_crash_report_ctx = nullptr;
char g_crash_file[256] = {0};  // cached at install; getenv is not ASS

void WritePostMortem(int sig) {
  if (g_post_mortem_done) return;  // Fatal already dumped; SIGABRT follows
  g_post_mortem_done = 1;
  int fd = 2;
  if (g_crash_file[0] != '\0') {
    const int file_fd = ::open(g_crash_file, O_WRONLY | O_CREAT | O_TRUNC,
                               0644);
    if (file_fd >= 0) fd = file_fd;
  }
  char line[160];
  std::size_t at = AppendStr(line, "=== KiWi flight recorder post-mortem (");
  at += AppendStr(line + at, sig == 0 ? "fatal" : "signal ");
  if (sig != 0) at += AppendDec(line + at, static_cast<std::uint64_t>(sig));
  at += AppendStr(line + at, ") ===\n");
  SafeWrite(fd, line, at);
  DumpTailText(fd, kCrashDumpEvents);
  if (g_crash_report_fn != nullptr) {
    g_crash_report_fn(g_crash_report_ctx, fd);
  }
  SafeWriteStr(fd, "=== end post-mortem ===\n");
  if (fd != 2) ::close(fd);
}

extern "C" void KiwiCrashSignalHandler(int sig) {
  WritePostMortem(sig);
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // dies with the original signal (core dumps, CI failure, etc.).
  ::raise(sig);
}

void FatalHookImpl() {
  Emit(Ev::kFatal, 0, 0);
  WritePostMortem(0);
}

}  // namespace

const char* TraceEventName(Ev id) {
  switch (id) {
    case Ev::kNone: return "none";
    case Ev::kPutOp: return "put";
    case Ev::kPutPpaPublish: return "put_ppa_publish";
    case Ev::kPutRestart: return "put_restart";
    case Ev::kPutHelped: return "put_helped";
    case Ev::kPutPiggyback: return "put_piggyback";
    case Ev::kGetOp: return "get";
    case Ev::kScanBegin: return "scan_begin";
    case Ev::kScanVersion: return "scan_version";
    case Ev::kScanEnd: return "scan_end";
    case Ev::kScanHelpInstall: return "scan_help_install";
    case Ev::kSnapshotOpen: return "snapshot_open";
    case Ev::kRebStart: return "reb_start";
    case Ev::kRebEngage: return "reb_engage";
    case Ev::kRebEngageAdopt: return "reb_engage_adopt";
    case Ev::kRebFreeze: return "reb_freeze";
    case Ev::kRebMinVersion: return "reb_min_version";
    case Ev::kRebBuild: return "reb_build";
    case Ev::kRebReplace: return "reb_replace";
    case Ev::kRebIndex: return "reb_index";
    case Ev::kRebNormalize: return "reb_normalize";
    case Ev::kRebDone: return "reb_done";
    case Ev::kChunkDiscard: return "chunk_discard";
    case Ev::kEbrRetire: return "ebr_retire";
    case Ev::kEbrEpoch: return "ebr_epoch";
    case Ev::kEbrCollect: return "ebr_collect";
    case Ev::kFatal: return "fatal";
    case Ev::kBatchStart: return "batch_start";
    case Ev::kBatchRun: return "batch_run";
    case Ev::kBatchBulk: return "batch_bulk";
    case Ev::kCount_: break;
  }
  return "?";
}

std::size_t DumpTrace(std::FILE* out) {
  const std::vector<Event> events = CollectMerged();
  const double cycles_per_us = CyclesPerNs() * 1000.0;
  const std::uint64_t t0 = events.empty() ? 0 : events.front().tsc;
  const int pid = static_cast<int>(::getpid());

  std::fprintf(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  const auto comma = [&] {
    if (!first) std::fputc(',', out);
    first = false;
  };

  // Per-thread stack of open duration slices, so ring wraparound (a lost
  // begin or end) can never emit an unbalanced B/E pair — Perfetto refuses
  // those.  Entries are span names.
  std::vector<const char*> open[kMaxThreads];
  double last_ts[kMaxThreads] = {0};

  for (const Event& e : events) {
    const Ev id = static_cast<Ev>(e.id);
    const double ts = static_cast<double>(e.tsc - t0) / cycles_per_us;
    const std::uint32_t tid = e.tid < kMaxThreads ? e.tid : 0;
    last_ts[tid] = ts;
    Phase phase = PhaseOf(id);
    if (phase == Phase::kEnd) {
      // Close only a matching open span; otherwise degrade to an instant
      // (its begin predates the ring's history).
      if (!open[tid].empty() &&
          std::strcmp(open[tid].back(), SpanName(id)) == 0) {
        open[tid].pop_back();
      } else {
        phase = Phase::kInstant;
      }
    } else if (phase == Phase::kBegin) {
      open[tid].push_back(SpanName(id));
    }
    comma();
    const char ph = phase == Phase::kBegin ? 'B'
                    : phase == Phase::kEnd ? 'E'
                                           : 'i';
    std::fprintf(out,
                 "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,"
                 "\"pid\":%d,\"tid\":%u",
                 phase == Phase::kInstant ? TraceEventName(id) : SpanName(id),
                 ph, ts, pid, tid);
    if (phase == Phase::kInstant) std::fprintf(out, ",\"s\":\"t\"");
    std::fprintf(out, ",\"args\":{\"ev\":\"%s\",", TraceEventName(id));
    WriteArgsJson(out, e);
    std::fprintf(out, "}}");
  }

  // Close spans truncated by the dump point (e.g. a rebalance still
  // running, or whose end the ring evicted).
  for (std::size_t tid = 0; tid < kMaxThreads; ++tid) {
    while (!open[tid].empty()) {
      comma();
      std::fprintf(out,
                   "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":%d,"
                   "\"tid\":%zu,\"args\":{\"truncated\":1}}",
                   open[tid].back(), last_ts[tid], pid, tid);
      open[tid].pop_back();
    }
  }

  std::fprintf(out, "]}\n");
  std::fflush(out);
  return events.size();
}

bool DumpTraceToFile(const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return false;
  DumpTrace(out);
  std::fclose(out);
  return true;
}

void DumpTailText(int fd, std::size_t max_events) {
  // Merge the newest `max_events` without allocating: per-ring backward
  // cursors, repeatedly taking the ring whose next-older event is newest.
  std::uint64_t cursor[kMaxThreads];
  std::uint64_t remaining[kMaxThreads];
  for (std::size_t slot = 0; slot < kMaxThreads; ++slot) {
    const std::uint64_t head =
        g_trace_rings[slot].head.load(std::memory_order_relaxed);
    cursor[slot] = head;
    remaining[slot] = head < kRingCapacity ? head : kRingCapacity;
  }
  if (max_events > kCrashDumpEvents) max_events = kCrashDumpEvents;
  Event tail[kCrashDumpEvents];
  std::size_t collected = 0;
  while (collected < max_events) {
    std::size_t best = kMaxThreads;
    std::uint64_t best_tsc = 0;
    for (std::size_t slot = 0; slot < kMaxThreads; ++slot) {
      if (remaining[slot] == 0) continue;
      const Event& e =
          g_trace_rings[slot].events[(cursor[slot] - 1) & kRingMask];
      if (best == kMaxThreads || e.tsc >= best_tsc) {
        best = slot;
        best_tsc = e.tsc;
      }
    }
    if (best == kMaxThreads) break;  // all rings drained
    tail[collected++] =
        g_trace_rings[best].events[(cursor[best] - 1) & kRingMask];
    cursor[best]--;
    remaining[best]--;
  }
  // `tail` holds newest -> oldest; print oldest first with cycle offsets
  // relative to the newest event.
  const std::uint64_t newest = collected > 0 ? tail[0].tsc : 0;
  char line[192];
  std::size_t at = AppendStr(line, "last ");
  at += AppendDec(line + at, collected);
  at += AppendStr(line + at, " events (newest last, -cycles before crash):\n");
  SafeWrite(fd, line, at);
  for (std::size_t i = collected; i-- > 0;) {
    const Event& e = tail[i];
    if (e.id == 0 || e.id >= kEventKindCount) continue;
    at = AppendStr(line, "  [-");
    at += AppendDec(line + at, newest - e.tsc);
    at += AppendStr(line + at, "c] t");
    at += AppendDec(line + at, e.tid);
    at += AppendStr(line + at, " ");
    at += AppendStr(line + at, TraceEventName(static_cast<Ev>(e.id)));
    at += AppendStr(line + at, " a0=");
    at += AppendHex(line + at, e.a0);
    at += AppendStr(line + at, " a1=");
    at += AppendHex(line + at, e.a1);
    at += AppendStr(line + at, "\n");
    SafeWrite(fd, line, at);
  }
}

void SetCrashReportCallback(CrashReportFn fn, void* ctx) {
  g_crash_report_fn = fn;
  g_crash_report_ctx = ctx;
}

void InstallCrashHandler() {
  if (const char* file = std::getenv("KIWI_TRACE_CRASH_FILE");
      file != nullptr && *file != '\0') {
    std::strncpy(g_crash_file, file, sizeof(g_crash_file) - 1);
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = KiwiCrashSignalHandler;
  // One shot: the handler runs once, then the default disposition kills the
  // process on the re-raise (and any crash *inside* the handler).
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  for (const int sig : {SIGABRT, SIGSEGV, SIGBUS, SIGILL}) {
    ::sigaction(sig, &action, nullptr);
  }
  SetFatalHook(&FatalHookImpl);
}

std::size_t LiveEventCount() {
  std::size_t total = 0;
  for (std::size_t slot = 0; slot < kMaxThreads; ++slot) {
    const std::uint64_t head =
        g_trace_rings[slot].head.load(std::memory_order_relaxed);
    total += head < kRingCapacity ? head : kRingCapacity;
  }
  return total;
}

void ResetForTest() {
  for (std::size_t slot = 0; slot < kMaxThreads; ++slot) {
    g_trace_rings[slot].head.store(0, std::memory_order_relaxed);
    g_trace_rings[slot].op_sample_tick = 0;
  }
}

}  // namespace kiwi::obs::trace

#endif  // KIWI_TRACE_ENABLED
