// Flight recorder: always-on, lock-free, per-thread event tracing.
//
// Aggregates (stats_registry.h) answer "how much / how slow on average";
// they cannot explain an *individual* anomaly — one p999 scan stall, one
// rebalance that looped through engage/freeze helping, one double-retire
// abort.  The flight recorder keeps the causally ordered recent history
// needed for that: every thread owns a fixed-size ring of compact binary
// events (32 bytes each: tsc timestamp, event id, thread id, two u64
// arguments), written with plain stores to memory no other thread writes.
// The newest events win; nothing ever blocks or allocates on the hot path.
//
// Consumers (all in trace.cpp):
//  * DumpTrace() / DumpTraceToFile() — merge the rings by timestamp into
//    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing):
//    rebalances become duration spans keyed by rebalance object, their
//    stage transitions nested instants, operations sampled instants.
//  * InstallCrashHandler() — SIGABRT/SIGSEGV/SIGBUS/SIGILL + kiwi::Fatal
//    hook that writes the last-N merged events (plus a registered
//    DebugReport callback) to stderr, turning an invariant abort into an
//    actionable post-mortem.
//
// Compile-time gate: KIWI_TRACE=OFF (or KIWI_STATS=OFF, which removes the
// whole obs layer) defines KIWI_NO_TRACE; the KIWI_TRACE_* macros then
// expand to nothing and no kiwi::obs::trace symbol survives in any object
// (CI checks with `nm`, mirroring the KIWI_STATS=OFF check).
//
// Event cost when ON: one thread-local ring lookup, one rdtsc, four plain
// stores — ~4-6 ns.  Hot-path operation events are additionally sampled
// 1-in-2^kOpSampleShift so puts/gets/scans pay amortized well under a
// nanosecond; rebalance / reclamation / fatal events are always recorded
// (they are rare and each one matters).  See docs/OBSERVABILITY.md for the
// event schema and ring-sizing guidance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "common/config.h"
#include "common/thread_registry.h"

#if !defined(KIWI_NO_STATS) && !defined(KIWI_NO_TRACE)
#define KIWI_TRACE_ENABLED 1
#else
#define KIWI_TRACE_ENABLED 0
#endif

#if KIWI_TRACE_ENABLED

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace kiwi::obs::trace {

/// Event identifiers.  Stable names (TraceEventName) are part of the trace
/// JSON contract; append new ids before kCount_, never reorder.
enum class Ev : std::uint16_t {
  kNone = 0,
  // ---- put path (sampled unless noted) ---------------------------------
  kPutOp,           // a0=key, a1=value          (sampled instant)
  kPutPpaPublish,   // a0=key, a1=cell index     (sampled)
  kPutRestart,      // a0=key, a1=chunk ptr      (always: restarts are rare)
  kPutHelped,       // a0=key, a1=version        (always: helping is rare)
  kPutPiggyback,    // a0=key, a1=chunk ptr      (always)
  // ---- get / scan -------------------------------------------------------
  kGetOp,           // a0=key, a1=hit(1)/miss(0) (sampled instant)
  kScanBegin,       // a0=from, a1=to            (sampled; begins a span)
  kScanVersion,     // a0=read point, a1=own(0)/helped(1)  (sampled w/ begin)
  kScanEnd,         // a0=keys emitted, a1=0     (sampled w/ begin)
  kScanHelpInstall, // a0=psa slot, a1=version   (always: rebalance helped)
  kSnapshotOpen,    // a0=read point, a1=0       (always)
  // ---- rebalance stage transitions (always) -----------------------------
  kRebStart,        // a0=trigger chunk, a1=#carried puts
  kRebEngage,       // a0=ro, a1=last engaged chunk
  kRebEngageAdopt,  // a0=our observed last, a1=adopted last (emitted only
                    //   when another helper's consensus view won)
  kRebFreeze,       // a0=ro, a1=chunks frozen
  kRebMinVersion,   // a0=ro, a1=min version
  kRebBuild,        // a0=ro, a1=chunks built
  kRebReplace,      // a0=ro, a1=bit0 splice win | bit1 consensus win
  kRebIndex,        // a0=ro, a1=0
  kRebNormalize,    // a0=ro, a1=chunks normalized
  kRebDone,         // a0=ro, a1=bit0 splice win | bit1 consensus win
  kChunkDiscard,    // a0=chunk ptr, a1=0   (consensus-losing section)
  // ---- reclamation (always) ---------------------------------------------
  kEbrRetire,       // a0=object ptr, a1=epoch at retire
  kEbrEpoch,        // a0=new epoch, a1=0
  kEbrCollect,      // a0=objects freed, a1=still pending
  // ---- crash path -------------------------------------------------------
  kFatal,           // a0=line number, a1=0 (message goes to stderr)
  // ---- batch ingest (always; appended in PR 7) --------------------------
  kBatchStart,      // a0=entries submitted, a1=entries after dedup
  kBatchRun,        // a0=first key of run, a1=#entries installed per-op
  kBatchBulk,       // a0=first key of run, a1=#entries installed via build
  kCount_,
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(Ev::kCount_);

/// Stable short names used by the JSON export and the post-mortem text dump.
const char* TraceEventName(Ev id);

/// One recorded event.  Exactly 32 bytes; written by the owning thread with
/// plain stores, read (racily, relaxed) by dump consumers.
struct Event {
  std::uint64_t tsc = 0;  // rdtsc (or steady_clock ns fallback)
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint32_t id = 0;   // Ev
  std::uint32_t tid = 0;  // ThreadRegistry slot
};
static_assert(sizeof(Event) == 32, "events are packed to 32 bytes");

/// Ring capacity per thread, in events.  Must be a power of two.  8192
/// events x 32 B = 256 KiB per thread; see docs/OBSERVABILITY.md for sizing
/// guidance.  Override at configure time with -DKIWI_TRACE_RING_BITS=n.
#ifndef KIWI_TRACE_RING_BITS
#define KIWI_TRACE_RING_BITS 13
#endif
inline constexpr std::size_t kRingCapacity = std::size_t{1}
                                             << KIWI_TRACE_RING_BITS;
inline constexpr std::uint64_t kRingMask = kRingCapacity - 1;

/// Hot-path operation events keep 1 in 2^kOpSampleShift per thread.
inline constexpr unsigned kOpSampleShift = 6;

/// One thread's ring.  `head` counts events ever written; the slot written
/// next is head & kRingMask, so the newest min(head, capacity) events are
/// always live.  Only the owning thread writes; consumers read relaxed and
/// tolerate a torn in-flight slot (at most one per ring).
struct alignas(kCacheLineSize) Ring {
  Event events[kRingCapacity];
  // Owner-written with relaxed stores (plain movs on x86); dump consumers
  // read it relaxed from other threads.
  std::atomic<std::uint64_t> head{0};
  std::uint64_t op_sample_tick = 0;
};

/// The process-wide recorder: one ring per ThreadRegistry slot.  Global (not
/// per-map) so reclamation code and the crash handler reach it without a map
/// pointer, and so one timeline covers every map in the process.
Ring* Rings();

/// steady_clock nanoseconds, for targets without a cheap cycle counter.
std::uint64_t NowFallbackNs();

/// Timestamp source: rdtsc where available (sub-ns read, globally monotone
/// on invariant-TSC hardware), else a steady_clock read.
inline std::uint64_t Now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return NowFallbackNs();
#endif
}

/// Record one event into the calling thread's ring.  Plain stores only.
inline void Emit(Ev id, std::uint64_t a0, std::uint64_t a1) {
  const std::size_t slot = ThreadRegistry::CurrentSlot();
  Ring& ring = Rings()[slot];
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Event& e = ring.events[head & kRingMask];
  e.tsc = Now();
  e.a0 = a0;
  e.a1 = a1;
  e.id = static_cast<std::uint32_t>(id);
  e.tid = static_cast<std::uint32_t>(slot);
  // The head bump is the last write: a merge that reads head sees complete
  // events at every index below it (same-thread program order; cross-thread
  // consumers are post-mortem/quiescent and tolerate the final in-flight
  // slot tearing).
  ring.head.store(head + 1, std::memory_order_relaxed);
}

/// True 1 in 2^kOpSampleShift calls per thread; callers use it to gate the
/// per-operation events so tracing stays under a nanosecond amortized.
inline bool OpSampleTick() {
  Ring& ring = Rings()[ThreadRegistry::CurrentSlot()];
  return (++ring.op_sample_tick & ((1u << kOpSampleShift) - 1)) == 0;
}

// ---- consumers (trace.cpp) -------------------------------------------

/// Merge every ring by timestamp into Chrome trace-event / Perfetto JSON on
/// `out`.  Returns the number of events exported.  Safe to call while
/// threads run (the newest in-flight event per ring may tear; the export
/// drops events whose id fails validation).  Quiescent callers get an exact
/// dump.
std::size_t DumpTrace(std::FILE* out);

/// DumpTrace into a file at `path`.  Returns false if the file cannot be
/// opened (errno preserved).
bool DumpTraceToFile(const char* path);

/// Write the newest `max_events` merged events as plain text to file
/// descriptor `fd`.  Async-signal-safe: fixed stack buffers, write(2) only.
void DumpTailText(int fd, std::size_t max_events);

/// Callback invoked by the crash handler after the event tail (e.g. to
/// print a map's DebugReport).  Runs in signal context for real crashes —
/// keep it to formatting + write(2) where possible.
using CrashReportFn = void (*)(void* ctx, int fd);
void SetCrashReportCallback(CrashReportFn fn, void* ctx);

/// Install SIGABRT/SIGSEGV/SIGBUS/SIGILL handlers plus the kiwi::Fatal
/// hook.  On any of them: the last kCrashDumpEvents merged events, then the
/// registered crash callback, go to stderr (or the file named by the
/// KIWI_TRACE_CRASH_FILE environment variable); then the signal's default
/// disposition runs (the process still dies with the original signal).
/// Idempotent.
void InstallCrashHandler();

/// Events printed by the crash path.
inline constexpr std::size_t kCrashDumpEvents = 128;

/// Test hook: number of events currently live in every ring combined.
std::size_t LiveEventCount();

/// Test hook: reset every ring (quiescent callers only).
void ResetForTest();

}  // namespace kiwi::obs::trace

// ---- hook macros ------------------------------------------------------
// Core/reclaim hot paths are instrumented exclusively through these, so a
// KIWI_TRACE=OFF (or KIWI_STATS=OFF) build compiles every hook away with
// its arguments unevaluated.
#define KIWI_TRACE(id, a0, a1)                                \
  ::kiwi::obs::trace::Emit(::kiwi::obs::trace::Ev::id,        \
                           static_cast<std::uint64_t>(a0),    \
                           static_cast<std::uint64_t>(a1))
/// Emit only for the sampled 1-in-2^kOpSampleShift operations per thread.
/// Evaluates to the sampling verdict so a caller can emit a correlated
/// group of events for one sampled operation.
#define KIWI_TRACE_SAMPLED(id, a0, a1)                        \
  (::kiwi::obs::trace::OpSampleTick()                         \
       ? (KIWI_TRACE(id, a0, a1), true)                       \
       : false)

#else  // !KIWI_TRACE_ENABLED

#define KIWI_TRACE(id, a0, a1) ((void)0)
#define KIWI_TRACE_SAMPLED(id, a0, a1) (false)

#endif  // KIWI_TRACE_ENABLED
