// DebugReport: one consistent-enough snapshot of everything a KiWiMap
// exposes about itself — operation counters, latency distributions, and
// structural-health gauges — renderable as human-readable text or as a
// single JSON line for machine consumption (bench output, dashboards).
//
// The exact meaning of every field and the JSON schema are documented in
// docs/OBSERVABILITY.md; keep the two in sync.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/stats_registry.h"

// Every integer DebugReport gauge, in the canonical (wire/JSON) order.  The
// two double gauges (avg_fill, batched_ratio) are emitted after the integer
// fields and are handled explicitly by the renderers.
// Like KIWI_OBS_COUNTER_FIELDS, this single list drives ToJson, the metrics
// pump, and the Prometheus gauge names (kiwi_<name>) — a field added to
// DebugReport::Gauges without a row here fails to compile in report.cpp.
#define KIWI_OBS_GAUGE_FIELDS(X) \
  X(chunks)                      \
  X(allocated_cells)             \
  X(batched_cells)               \
  X(psa_active)                  \
  X(snapshot_pins)               \
  X(ebr_pending)                 \
  X(ebr_pending_bytes)           \
  X(ebr_epoch)                   \
  X(ebr_epoch_lag)               \
  X(global_version)              \
  X(memory_bytes)                \
  X(pool_hits)                   \
  X(pool_misses)                 \
  X(pool_recycled)               \
  X(pool_class_retries)          \
  X(pool_live_bytes)             \
  X(pool_pooled_bytes)

namespace kiwi::obs {

/// Percentile digest of one latency histogram, in nanoseconds.
struct LatencySummary {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
  double mean_ns = 0;
};

struct DebugReport {
  /// False in a KIWI_STATS=OFF build: counters and latency are all zero
  /// then, but the gauges (computed on demand) remain live.
  bool stats_enabled = false;

  /// Aggregated over all thread shards (see StatsRegistry::Aggregate).
  OpCounters counters;

  /// Indexed by obs::Latency.  Hot-path entries (put/get/scan) reflect a
  /// 1-in-2^kSampleShift sample of operations; rebalance entries reflect
  /// every execution.
  std::array<LatencySummary, kLatencyCount> latency{};

  /// Structural health, computed from the live structure at report time.
  struct Gauges {
    std::uint64_t chunks = 0;           // data chunks in the list
    std::uint64_t allocated_cells = 0;  // cells handed out across chunks
    std::uint64_t batched_cells = 0;    // cells in sorted prefixes
    double avg_fill = 0;                // allocated / capacity, averaged
    double batched_ratio = 0;           // batched / allocated, averaged
    std::uint64_t psa_active = 0;       // in-flight transient scan entries
    std::uint64_t snapshot_pins = 0;    // open Snapshot-view read points
    std::uint64_t ebr_pending = 0;      // retired, not-yet-freed objects
    std::uint64_t ebr_pending_bytes = 0;  // bytes in EBR limbo
    std::uint64_t ebr_epoch = 0;        // current global epoch
    std::uint64_t ebr_epoch_lag = 0;    // epoch minus slowest active guard
    std::uint64_t global_version = 0;   // GV (scans performed + 1)
    std::uint64_t memory_bytes = 0;     // chunks + index footprint
    // Slab-pool recycling (see src/reclaim/pool.h).  hits/misses are
    // monotone allocation counters; the byte gauges split the pool's view
    // of memory into handed-out (live) vs idle recycled stock (pooled).
    std::uint64_t pool_hits = 0;         // allocations served from the pool
    std::uint64_t pool_misses = 0;       // allocations that went to the OS
    std::uint64_t pool_recycled = 0;     // slabs captured for reuse
    std::uint64_t pool_class_retries = 0;  // lost size-class registry CASes
    std::uint64_t pool_live_bytes = 0;   // slab bytes handed out, unreturned
    std::uint64_t pool_pooled_bytes = 0;  // idle slab bytes held for reuse
  } gauges;

  /// Multi-line human-readable rendering (for terminals and logs).
  std::string ToText() const;

  /// One-line JSON rendering; schema in docs/OBSERVABILITY.md.
  std::string ToJson() const;
};

}  // namespace kiwi::obs
