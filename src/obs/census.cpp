// Census walk + JSON rendering.  KiWiMap::Census() lives here (not in
// src/core/) for the same reason as DebugReport: core objects must carry no
// obs references, so a KIWI_STATS=OFF build keeps its symbol set clean.
#include "obs/census.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "core/kiwi_map.h"
#include "core/rebalance_object.h"

namespace kiwi::obs {

namespace {

void Append(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

void AppendHist(std::string& out, const char* name,
                const std::array<std::uint64_t, ChunkCensus::kDecileBuckets>&
                    hist) {
  Append(out, "\"%s\":[", name);
  for (std::size_t i = 0; i < hist.size(); ++i) {
    Append(out, "%llu%s", (unsigned long long)hist[i],
           i + 1 < hist.size() ? "," : "");
  }
  out += "]";
}

}  // namespace

std::string ChunkCensus::ToJson() const {
  std::string out;
  out += "{";
  Append(out,
         "\"chunks\":%llu,\"infant\":%llu,\"normal\":%llu,\"frozen\":%llu,"
         "\"engaged\":%llu,",
         (unsigned long long)chunks, (unsigned long long)infant,
         (unsigned long long)normal, (unsigned long long)frozen,
         (unsigned long long)engaged);
  Append(out, "\"allocated_cells\":%llu,\"batched_cells\":%llu,",
         (unsigned long long)allocated_cells,
         (unsigned long long)batched_cells);
  AppendHist(out, "fill_hist", fill_hist);
  out += ",";
  AppendHist(out, "batched_hist", batched_hist);
  Append(out, ",\"arena_used_bytes\":%llu,\"arena_capacity_bytes\":%llu,",
         (unsigned long long)arena_used_bytes,
         (unsigned long long)arena_capacity_bytes);
  AppendHist(out, "arena_hist", arena_hist);
  Append(out, ",\"age_min_ns\":%llu,\"age_max_ns\":%llu,\"age_mean_ns\":%.17g}",
         (unsigned long long)age_min_ns, (unsigned long long)age_max_ns,
         age_mean_ns);
  return out;
}

}  // namespace kiwi::obs

namespace kiwi::core {

template <typename Layout>
obs::ChunkCensus KiWiMapT<Layout>::Census() {
  obs::ChunkCensus census;
  const std::uint64_t now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  // The guard pins every chunk we can reach; concurrent rebalances may
  // splice sectors mid-walk, so the numbers are a consistent-enough estimate
  // (exact when quiescent), like Report().
  reclaim::EbrGuard guard(ebr_);
  double age_sum = 0;
  for (Chunk* c = sentinel_->Next(); c != nullptr; c = c->Next()) {
    census.chunks++;
    switch (c->status.load(std::memory_order_acquire)) {
      case Chunk::Status::kInfant: census.infant++; break;
      case Chunk::Status::kNormal: census.normal++; break;
      case Chunk::Status::kFrozen: census.frozen++; break;
      case Chunk::Status::kSentinel: break;  // unreachable: walk skips it
    }
    if (auto* ro = c->ro.load(std::memory_order_acquire)) {
      if (!ro->done.load(std::memory_order_acquire)) census.engaged++;
    }
    const std::uint64_t allocated = c->AllocatedCells();
    census.allocated_cells += allocated;
    census.batched_cells += c->batched_count;
    const double fill =
        c->capacity > 0 ? static_cast<double>(allocated) / c->capacity : 0;
    census.fill_hist[obs::ChunkCensus::DecileFor(fill)]++;
    const double batched_ratio =
        allocated > 0 ? static_cast<double>(c->batched_count) / allocated : 1.0;
    census.batched_hist[obs::ChunkCensus::DecileFor(batched_ratio)]++;
    if (c->arena_capacity > 0) {  // arena-bearing (byte-layout) chunks only
      const std::uint64_t used = c->ArenaUsed();
      census.arena_used_bytes += used;
      census.arena_capacity_bytes += c->arena_capacity;
      census.arena_hist[obs::ChunkCensus::DecileFor(
          static_cast<double>(used) / c->arena_capacity)]++;
    }
    const std::uint64_t age = now_ns > c->birth_ns ? now_ns - c->birth_ns : 0;
    if (census.chunks == 1 || age < census.age_min_ns) {
      census.age_min_ns = age;
    }
    if (age > census.age_max_ns) census.age_max_ns = age;
    age_sum += static_cast<double>(age);
  }
  if (census.chunks > 0) {
    census.age_mean_ns = age_sum / static_cast<double>(census.chunks);
  }
  return census;
}

// The core TU's `template class KiWiMapT<...>` skips members whose
// definitions are not visible there; these member instantiations are what
// links the obs-bound symbols, keeping core objects obs-free.
template obs::ChunkCensus KiWiMapT<Int64Layout>::Census();
template obs::ChunkCensus KiWiMapT<ByteLayout>::Census();

}  // namespace kiwi::core
