// Continuous telemetry: the metrics pump and its export formats.
//
// A MetricsPump is an optional background thread that, every `interval`,
// snapshots a map's DebugReport (cumulative counters, latency digests,
// gauges) and ChunkCensus, computes counter deltas and per-second rates
// against the previous tick, and ships the sample out through any of three
// channels:
//
//   * JSONL — one self-describing JSON object per line appended to a file
//     ("-" = stdout), the format scripts/kiwi_top.py tails;
//   * Prometheus text exposition — the latest sample rendered to a file
//     each tick (atomically: write temp, rename) or on demand through
//     MetricsPump::WriteProm(std::ostream&);
//   * MetricsSink — an in-process callback per sample.
//
// The pump is observation-only: it holds no map locks, and its snapshots
// cost what DebugReport + Census cost (an O(chunks) walk and a shard sum).
// It works in a KIWI_STATS=OFF build too — counters and latency read zero
// there, but gauges and the census stay live.
//
// Schema and metric names are documented in docs/OBSERVABILITY.md
// ("Continuous telemetry"); change them together.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "obs/census.h"
#include "obs/report.h"

namespace kiwi::obs {

/// One pump tick: the cumulative snapshot plus the derived deltas/rates.
struct MetricsSample {
  /// Process-unique pump instance id (monotone from 1).  JSONL streams from
  /// several maps (or one map restarted) can share a file; consumers group
  /// by (pump, seq) — within one pump id, seq and every cumulative counter
  /// are monotone.
  std::uint64_t pump = 0;
  std::uint64_t seq = 0;        // 0 for the first sample of a pump
  double uptime_s = 0;          // seconds since the pump started
  double interval_s = 0;        // measured seconds since the previous sample

  DebugReport report;           // cumulative counters, latency, gauges
  ChunkCensus census;

  /// Counter increments since the previous sample (== report.counters on
  /// the first sample of a pump).
  OpCounters deltas;

  /// True from the second sample on: deltas/rates are meaningful.
  bool have_deltas = false;

  /// One JSONL line (no trailing newline); schema in docs/OBSERVABILITY.md.
  /// Rates are emitted as deltas / interval_s, so they are derivable — the
  /// line carries them pre-computed for dumb consumers (kiwi_top, jq).
  std::string ToJsonl() const;

  /// Prometheus text exposition (# TYPE'd counters, gauges, the census fill
  /// histogram as a native histogram, latency percentiles as labeled
  /// gauges).  Counter names follow kiwi_<field>_total, gauges kiwi_<field>.
  void WriteProm(std::ostream& out) const;
};

/// Per-sample callback (runs on the pump thread; keep it quick).
using MetricsSink = std::function<void(const MetricsSample&)>;

struct MetricsPumpOptions {
  /// Tick period.  Clamped to >= 1ms by the pump.
  std::chrono::milliseconds interval{1000};
  /// JSONL destination: "" = none, "-" = stdout, else a path opened in
  /// append mode.
  std::string jsonl_path;
  /// Prometheus destination: "" = none, else a path rewritten every tick
  /// (write temp + rename, so scrapers never see a torn file).
  std::string prom_path;
  /// Optional in-process consumer.
  MetricsSink sink;
};

/// The delta/rate math, separated from the pump thread so it is unit-testable
/// with hand-built reports: feed successive cumulative snapshots, get
/// samples with deltas filled in.
class MetricsAggregator {
 public:
  explicit MetricsAggregator(std::uint64_t pump_id) : pump_id_(pump_id) {}

  /// Ingest the next cumulative snapshot taken `elapsed_s` seconds after
  /// the previous one (ignored for the first).  Returns the derived sample.
  MetricsSample Ingest(const DebugReport& report, const ChunkCensus& census,
                       double elapsed_s);

 private:
  std::uint64_t pump_id_;
  std::uint64_t next_seq_ = 0;
  double uptime_s_ = 0;
  bool have_prev_ = false;
  OpCounters prev_;
};

/// Parse a KIWI_METRICS-style duration: decimal digits with an "ms" or "s"
/// suffix ("250ms", "1s"); bare digits mean milliseconds.  Returns false
/// (out untouched) on anything else, including zero.
bool ParseMetricsInterval(const std::string& text,
                          std::chrono::milliseconds* out);

/// Build pump options from a KIWI_METRICS value ("<interval>[:<path>]") and
/// an optional KIWI_METRICS_PROM path (may be nullptr/empty).  With no
/// ":<path>" the JSONL stream goes to stdout — the pipe-into-kiwi_top
/// quickstart.  Returns false and leaves `out` untouched on a malformed
/// interval or an empty/null spec.
bool ParseMetricsEnv(const char* spec, const char* prom_path,
                     MetricsPumpOptions* out);

/// What the pump samples each tick.  The pump is layout-agnostic: any map
/// instantiation (int64 or bytes) plugs in by binding its DebugReport() and
/// Census() members; both callables run on the pump thread.
struct MetricsSource {
  std::function<DebugReport()> report;
  std::function<ChunkCensus()> census;
};

/// The background thread.  Construction starts it; destruction (or Stop())
/// joins it after one final flush tick, so short runs still produce at
/// least one sample.  Owned by KiWiMap through an opaque pointer — see
/// KiWiMap::StartMetricsPump / StopMetricsPump.
class MetricsPump {
 public:
  MetricsPump(MetricsSource source, MetricsPumpOptions options);
  ~MetricsPump();
  MetricsPump(const MetricsPump&) = delete;
  MetricsPump& operator=(const MetricsPump&) = delete;

  /// Signal the thread, wait for it to flush a final sample, and join.
  /// Idempotent.
  void Stop();

  /// Render the most recent sample as Prometheus text exposition.  Returns
  /// false (writes nothing) before the first tick lands.
  bool WriteProm(std::ostream& out) const;

  /// The most recent sample (copy).  False before the first tick.
  bool LatestSample(MetricsSample* out) const;

  /// This pump's process-unique id (what the JSONL "pump" field carries).
  std::uint64_t PumpId() const { return pump_id_; }

 private:
  struct Impl;
  Impl* impl_;
  std::uint64_t pump_id_;
};

}  // namespace kiwi::obs
