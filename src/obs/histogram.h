// Log-bucketed latency histogram (HDR-style).
//
// Fixed-size bucket array covering [0, 2^64) nanoseconds: values below
// kSubCount land in exact unit buckets; above that, each power-of-two octave
// is split into kSubCount equal sub-buckets, bounding the relative error of
// any reconstructed quantile by 1/kSubCount (6.25%).  Bucket selection is a
// count-leading-zeros plus a shift — no loops, no floating point.
//
// The record path is wait-free: three relaxed fetch_adds (bucket, count,
// sum).  The monotone max is maintained with a bounded CAS loop (lock-free;
// it retries only while larger maxima land concurrently).  Reads copy the
// buckets into a Snapshot and do the percentile walk there, so a reader
// never blocks a writer and vice versa.
//
// Memory: kBucketCount (976) 8-byte counters, ~7.6 KiB per histogram.
// Histograms are shared across threads (unlike the per-thread counter
// shards in stats_registry.h) because the hot paths only reach them on
// sampled operations — see StatsRegistry::SampleTick.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace kiwi::obs {

class LatencyHistogram;

/// A consistent-enough copy of a histogram (counters are read relaxed, so a
/// snapshot taken under concurrent recording may be mid-update by a few
/// events; quiescent readers get exact numbers).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, 976> buckets{};

  /// Value at quantile `q` in (0, 1]: the lower bound of the bucket holding
  /// the ceil(q * count)-th smallest recorded value.  The true value lies
  /// within one sub-bucket width above the returned bound (<= 6.25%).
  /// Returns 0 for an empty histogram.
  std::uint64_t Percentile(double q) const;

  std::uint64_t P50() const { return Percentile(0.50); }
  std::uint64_t P99() const { return Percentile(0.99); }
  std::uint64_t P999() const { return Percentile(0.999); }
  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits sub-buckets per octave.
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubCount = 1u << kSubBits;
  /// Buckets 0..kSubCount-1 are exact units; each of the 60 octaves above
  /// contributes kSubCount sub-buckets: (64 - kSubBits + 1) * kSubCount.
  static constexpr std::size_t kBucketCount = (64 - kSubBits + 1) * kSubCount;
  static_assert(kBucketCount ==
                std::tuple_size_v<decltype(HistogramSnapshot::buckets)>);

  /// Bucket index of `value`; monotone in `value`.
  static constexpr std::size_t BucketFor(std::uint64_t value) {
    if (value < kSubCount) return static_cast<std::size_t>(value);
    const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(value));
    return (msb - kSubBits + 1) * kSubCount +
           ((value >> (msb - kSubBits)) & (kSubCount - 1));
  }

  /// Smallest value mapping to bucket `index` (exact inverse of BucketFor on
  /// bucket boundaries).
  static constexpr std::uint64_t BucketLowerBound(std::size_t index) {
    if (index < kSubCount) return index;
    const std::size_t octave = index / kSubCount;  // >= 1
    const std::uint64_t sub = index % kSubCount;
    const unsigned msb = kSubBits + static_cast<unsigned>(octave) - 1;
    return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
  }

  /// Record one observation.  Wait-free bucket/count/sum updates plus a
  /// lock-free monotone max.  Callable from any thread.
  void Record(std::uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

inline std::uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  // Rank of the target observation, clamped into [1, count].
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.9999999);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return LatencyHistogram::BucketLowerBound(i);
  }
  return max;  // unreachable unless the snapshot tore; max is a safe answer
}

}  // namespace kiwi::obs
