// Chunk-health census: one O(chunks) epoch-guarded walk of the chunk list,
// summarizing per-chunk structural health — fill factor, sorted-prefix vs
// linked-suffix ratio, rebalance state, age — into fixed-bucket distribution
// histograms cheap enough to ship on every metrics-pump tick.
//
// The census is a *structure* observation like DebugReport's gauges: it is
// live regardless of KIWI_STATS (nothing here touches the counter shards).
// KiWiMap::Census() is defined in census.cpp so core objects stay obs-free.
//
// The JSON schema emitted by ToJson() is documented in docs/OBSERVABILITY.md
// ("The chunk-health census"); change them together.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace kiwi::obs {

/// One walk's aggregate.  All ratios are per-chunk values bucketed into
/// deciles: bucket i of fill_hist counts chunks with fill factor in
/// [i/10, (i+1)/10), except the last bucket which is closed at 1.0 (and
/// absorbs overfull chunks whose k_counter ran past capacity).
struct ChunkCensus {
  static constexpr std::size_t kDecileBuckets = 10;

  // ---- population -------------------------------------------------------
  std::uint64_t chunks = 0;  // data chunks walked (sentinel excluded)
  std::uint64_t infant = 0;  // status counts at observation time...
  std::uint64_t normal = 0;
  std::uint64_t frozen = 0;
  /// Chunks engaged in a still-running rebalance (ro set, not done): the
  /// "pending rebalance" population.  Frozen-but-done chunks are retired
  /// stragglers a guard still pins; they count under `frozen` only.
  std::uint64_t engaged = 0;

  // ---- cells -------------------------------------------------------------
  std::uint64_t allocated_cells = 0;  // cells handed out across chunks
  std::uint64_t batched_cells = 0;    // cells in binary-searchable prefixes

  // ---- distributions ------------------------------------------------------
  /// Fill factor per chunk (allocated / capacity), deciles.
  std::array<std::uint64_t, kDecileBuckets> fill_hist{};
  /// Sorted-prefix share per chunk (batched / allocated; empty chunks count
  /// as fully batched), deciles.  A left-leaning distribution means lookups
  /// are degenerating into linear list walks and rebalance is overdue.
  std::array<std::uint64_t, kDecileBuckets> batched_hist{};

  // ---- byte arenas --------------------------------------------------------
  /// Per-chunk byte-arena occupancy (KiWiByteMap; always zero for the
  /// fixed-width int64 map, whose chunks carry no arena).  A chunk whose
  /// arena fills before its cell array still rebalances — a right-heavy
  /// arena_hist with a left-heavy fill_hist means values are outsizing the
  /// configured ByteConfig::arena_bytes_per_cell.
  std::uint64_t arena_used_bytes = 0;      // claimed bytes across chunks
  std::uint64_t arena_capacity_bytes = 0;  // total arena bytes provisioned
  /// Arena fill per arena-bearing chunk (used / capacity), deciles.  Counts
  /// only chunks with a non-zero arena, so it stays all-zero for int64 maps.
  std::array<std::uint64_t, kDecileBuckets> arena_hist{};

  /// Chunk age (steady-clock ns since Chunk::Create).  Age extremes spot
  /// both churn (max ≈ 0: nothing survives) and stagnation (a hot chunk
  /// that never rebalances).
  std::uint64_t age_min_ns = 0;
  std::uint64_t age_max_ns = 0;
  double age_mean_ns = 0;

  /// Decile index (0..9) for a ratio in [0, 1]; out-of-range clamps.
  static std::size_t DecileFor(double ratio) {
    if (ratio <= 0) return 0;
    if (ratio >= 1) return kDecileBuckets - 1;
    return static_cast<std::size_t>(ratio * kDecileBuckets);
  }

  /// One-line JSON object (no trailing newline); schema in
  /// docs/OBSERVABILITY.md.
  std::string ToJson() const;
};

}  // namespace kiwi::obs
