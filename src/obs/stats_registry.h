// Per-thread-sharded operation statistics for a KiWiMap.
//
// Counters live in cache-line-padded per-thread shards keyed off
// ThreadRegistry::CurrentSlot() — the hot-path increment is one plain add to
// a line no other thread writes (lock-free, no RMW) — and are summed over
// all shards on read.  Latency histograms (histogram.h) are shared, reached
// only on sampled operations: SampleTick() elects 1 in 2^kSampleShift
// operations per thread, amortizing the two steady_clock reads a timing
// needs (~20ns each) to well under a nanosecond per operation.
//
// Compile-time gate: building with -DKIWI_NO_STATS (CMake -DKIWI_STATS=OFF)
// sets KIWI_OBS_ENABLED to 0 and the KIWI_OBS_* hook macros expand to
// nothing, so the core hot paths carry no instrumentation at all — no
// counter writes, no ticks, no clock reads, no obs symbols in core objects.
// The types here stay defined either way (tests and tools may use them
// directly); only the map wiring disappears.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/config.h"
#include "common/thread_registry.h"
#include "obs/histogram.h"

#ifndef KIWI_NO_STATS
#define KIWI_OBS_ENABLED 1
#else
#define KIWI_OBS_ENABLED 0
#endif

namespace kiwi::obs {

// Every OpCounters field, in the canonical (wire/JSON) order.  This single
// list generates the struct fields, operator+=, the DebugReport JSON field
// order, the metrics-pump delta/rate maps, and the Prometheus metric names
// (kiwi_<name>_total), so the schema cannot drift between them.  Append new
// counters at the end of their section; docs/OBSERVABILITY.md's counter
// table is pinned against this list by tests/export_test.cpp.
#define KIWI_OBS_COUNTER_FIELDS(X)                                          \
  /* ---- client operation volume ------------------------------------- */ \
  X(puts)               /* Put() calls (excl. removes) */                   \
  X(removes)            /* Remove() calls (tombstone puts) */               \
  X(gets)               /* Get() calls */                                   \
  X(get_hits)           /* gets that found a live value */                  \
  X(scans)              /* Scan() calls */                                  \
  X(scan_keys)          /* pairs yielded across all scans */                \
  X(snapshots)          /* Snapshot views opened */                         \
  X(put_batches)        /* PutBatch() calls */                              \
  X(batch_entries)      /* entries submitted (pre-dedup) */                 \
  X(batch_bulk_entries) /* entries installed via bulk build */              \
  /* ---- KiWi internals (superset of the legacy KiWiStats) ----------- */ \
  X(rebalances)         /* rebalance executions (incl. helpers) */          \
  X(rebalance_wins)     /* replace-stage splice-CAS wins */                 \
  X(put_restarts)       /* puts restarted by rebalance */                   \
  X(chunks_created)                                                         \
  X(chunks_retired)                                                         \
  X(puts_piggybacked)   /* puts completed inside a rebalance */             \
  X(puts_helped)        /* put version installed by a scan/get */           \
  X(scans_helped)       /* scan version installed by a rebalance */         \
  /* ---- contention: retries/failures on the hot CAS loops ----------- */ \
  X(put_link_retries)   /* put phase-3 list-link CAS retries */             \
  X(ppa_publish_fails)  /* PPA publish CAS lost to freeze/help */           \
  X(cell_alloc_overflows) /* put saw a full cell/value array */             \
  X(locate_restarts)    /* LocateChunk restarted on a retired chunk */      \
  X(engage_cas_fails)   /* rebalance stage-1 engagement CAS losses */       \
  X(freeze_cas_retries) /* PPA-freeze CAS retries (stage 2) */              \
  X(splice_retries)     /* replace-stage splice loop re-iterations */       \
  X(splice_helps)       /* replace-stage recursive helps of a stuck pred */ \
  X(index_cas_retries)  /* normalize-stage index PutConditional retries */

/// Monotone operation counters.  One instance per thread shard; Aggregate()
/// sums them.  Documented field-by-field in docs/OBSERVABILITY.md.
struct OpCounters {
#define KIWI_OBS_DECLARE_FIELD(name) std::uint64_t name = 0;
  KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_DECLARE_FIELD)
#undef KIWI_OBS_DECLARE_FIELD

  OpCounters& operator+=(const OpCounters& other) {
#define KIWI_OBS_ADD_FIELD(name) name += other.name;
    KIWI_OBS_COUNTER_FIELDS(KIWI_OBS_ADD_FIELD)
#undef KIWI_OBS_ADD_FIELD
    return *this;
  }
};

/// The latency distributions a map maintains.  kPut/kGet/kScan time whole
/// client operations (sampled); the rebalance entries time every execution
/// of the whole procedure and of each §3.3.2 stage.
enum class Latency : std::size_t {
  kPut = 0,
  kGet,
  kScan,
  kRebalance,         // whole Rebalance() execution
  kRebalanceEngage,   // stage 1
  kRebalanceFreeze,   // stage 2
  kRebalanceBuild,    // stages 3-4 (min-version + build)
  kRebalanceReplace,  // stage 5 (consensus + splice)
  kRebalanceIndex,    // stages 6-7 (index update + normalize)
  kCount_,
};

inline constexpr std::size_t kLatencyCount =
    static_cast<std::size_t>(Latency::kCount_);

/// Stable short names, used by DebugReport's text and JSON output.
inline const char* LatencyName(Latency metric) {
  switch (metric) {
    case Latency::kPut: return "put";
    case Latency::kGet: return "get";
    case Latency::kScan: return "scan";
    case Latency::kRebalance: return "rebalance";
    case Latency::kRebalanceEngage: return "rebalance_engage";
    case Latency::kRebalanceFreeze: return "rebalance_freeze";
    case Latency::kRebalanceBuild: return "rebalance_build";
    case Latency::kRebalanceReplace: return "rebalance_replace";
    case Latency::kRebalanceIndex: return "rebalance_index";
    case Latency::kCount_: break;
  }
  return "?";
}

class StatsRegistry {
 public:
  /// Sampling period for hot-path latency timers: 1 in 2^kSampleShift
  /// operations per thread is timed.
  static constexpr unsigned kSampleShift = 6;

  /// The calling thread's counter shard.  Increments need no atomics: the
  /// shard is written by one thread and only read (relaxed, via Aggregate)
  /// by others.
  OpCounters& Local() {
    return shards_[ThreadRegistry::CurrentSlot()].counters;
  }

  /// Sum of every shard.  Counters are monotone per shard, so concurrent
  /// aggregation yields a value between two quiescent readings.
  OpCounters Aggregate() const {
    OpCounters total;
    for (const Shard& shard : shards_) total += shard.counters;
    return total;
  }

  /// True for 1 operation in 2^kSampleShift on the calling thread.
  bool SampleTick() {
    Shard& shard = shards_[ThreadRegistry::CurrentSlot()];
    return (++shard.sample_tick & ((1u << kSampleShift) - 1)) == 0;
  }

  LatencyHistogram& Hist(Latency metric) {
    return histograms_[static_cast<std::size_t>(metric)];
  }
  const LatencyHistogram& Hist(Latency metric) const {
    return histograms_[static_cast<std::size_t>(metric)];
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    OpCounters counters;
    std::uint64_t sample_tick = 0;
  };
  Shard shards_[kMaxThreads];
  LatencyHistogram histograms_[kLatencyCount];
};

/// RAII span timer: records the elapsed nanoseconds into `hist` on scope
/// exit.  Construct with nullptr to make it a no-op (the sampled-out case) —
/// then no clock is read at all.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    hist_->Record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kiwi::obs

// ---- hook macros ------------------------------------------------------
// The core hot paths are instrumented exclusively through these, so a
// KIWI_STATS=OFF build compiles every hook away (the macro arguments are
// dropped unevaluated).
#if KIWI_OBS_ENABLED
/// Add 1 / `n` to a counter field of the calling thread's shard.
#define KIWI_OBS_INC(registry, field) ((registry).Local().field += 1)
#define KIWI_OBS_ADD(registry, field, n) \
  ((registry).Local().field += static_cast<std::uint64_t>(n))
/// Unconditionally time the enclosing scope into `metric`.
#define KIWI_OBS_TIMER(registry, metric, var) \
  ::kiwi::obs::ScopedTimer var(&(registry).Hist(metric))
/// Time the enclosing scope for 1 in 2^kSampleShift calls per thread.
#define KIWI_OBS_SAMPLED_TIMER(registry, metric, var) \
  ::kiwi::obs::ScopedTimer var(                       \
      (registry).SampleTick() ? &(registry).Hist(metric) : nullptr)
#else
#define KIWI_OBS_INC(registry, field) ((void)0)
#define KIWI_OBS_ADD(registry, field, n) ((void)0)
#define KIWI_OBS_TIMER(registry, metric, var) ((void)0)
#define KIWI_OBS_SAMPLED_TIMER(registry, metric, var) ((void)0)
#endif
