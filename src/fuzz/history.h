// Recorded multi-key operation histories for the linearizability fuzzer.
//
// Worker threads record one FuzzOp per completed map operation, stamped with
// invoke/response ticks from a shared monotone clock (taken immediately
// before calling into the map and immediately after it returns).  Scans
// additionally record their full observed result set.  The checker
// (fuzz/checker.h) consumes the merged history; Dump() renders it for
// failure artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "harness/linearizability.h"

namespace kiwi::fuzz {

struct FuzzOp {
  enum class Kind : std::uint8_t { kPut, kGet, kRemove, kScan };

  Kind kind = Kind::kGet;
  std::uint32_t thread = 0;
  Key key = 0;       // put/get/remove key, or scan's from_key
  Key to_key = 0;    // scan only: inclusive upper bound
  Value value = 0;   // put: written value; get: returned value when found
  bool found = false;  // get: present?  remove: removed an existing key?
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  /// Scan only: observed (key, value) pairs, in the order returned.
  std::vector<std::pair<Key, Value>> scan_result;
};

struct History {
  std::vector<FuzzOp> ops;
  /// Keys present before the recorded window, with their values (the
  /// preload).  The checker treats these as the initial register states.
  std::vector<std::pair<Key, Value>> initial;

  /// Human-readable rendering for failure artifacts: one line per op,
  /// sorted by invoke tick.
  std::string Dump() const;
};

/// Per-thread recording with no cross-thread synchronization beyond the
/// shared tick clock; Merge() is called after all workers join.
class Recorder {
 public:
  explicit Recorder(std::size_t threads) : per_thread_(threads) {}

  harness::HistoryClock& Clock() { return clock_; }

  void Record(std::uint32_t thread, FuzzOp op) {
    per_thread_[thread].push_back(std::move(op));
  }

  /// Reserve per-thread capacity up front so recording never reallocates
  /// mid-run (reallocation would perturb timing).
  void Reserve(std::size_t ops_per_thread) {
    for (auto& v : per_thread_) v.reserve(ops_per_thread);
  }

  History Merge() && {
    History h;
    std::size_t total = 0;
    for (const auto& v : per_thread_) total += v.size();
    h.ops.reserve(total);
    for (auto& v : per_thread_) {
      for (auto& op : v) h.ops.push_back(std::move(op));
      v.clear();
    }
    return h;
  }

 private:
  harness::HistoryClock clock_;
  std::vector<std::vector<FuzzOp>> per_thread_;
};

}  // namespace kiwi::fuzz
