#include "fuzz/schedule.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "common/random.h"

namespace kiwi::fuzz {

namespace {

std::atomic<PerturbationEngine*> g_engine{nullptr};

/// Deterministic per-thread ordinal: the Nth thread to fire any hook gets
/// ordinal N.  Thread creation order is stable under a fixed harness, so
/// the per-thread RNG streams replay with the seed.
std::atomic<std::uint64_t> g_thread_ordinal{0};

struct ThreadRng {
  Xoshiro256 rng;
  std::uint64_t seeded_for = ~std::uint64_t{0};
};

ThreadRng& LocalRng(std::uint64_t seed) {
  thread_local ThreadRng tl;
  if (tl.seeded_for != seed) {
    const std::uint64_t ordinal =
        g_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
    tl.rng = Xoshiro256(seed ^ (0x9e3779b97f4a7c15ULL * (ordinal + 1)));
    tl.seeded_for = seed;
  }
  return tl;
}

void SpinPause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

template <std::size_t I>
void Trampoline() {
  if (PerturbationEngine* engine = g_engine.load(std::memory_order_acquire)) {
    engine->Fire(I);
  }
}

template <std::size_t... Is>
constexpr std::array<TestHooks::Hook, TestHooks::kSiteCount> MakeTrampolines(
    std::index_sequence<Is...>) {
  return {&Trampoline<Is>...};
}

constexpr auto kTrampolines =
    MakeTrampolines(std::make_index_sequence<TestHooks::kSiteCount>{});

}  // namespace

const char* ActionName(SiteAction a) {
  switch (a) {
    case SiteAction::kOff: return "off";
    case SiteAction::kYield: return "yield";
    case SiteAction::kSleep: return "sleep";
    case SiteAction::kSpin: return "spin";
  }
  return "?";
}

Schedule Schedule::FromSeed(std::uint64_t seed) {
  Schedule s;
  s.seed = seed;
  Xoshiro256 rng(seed);
  for (SiteConfig& site : s.sites) {
    // ~1/4 of sites stay off so rounds explore different site subsets; the
    // rest draw an action, a firing probability and a strength.
    if (rng.NextBounded(4) == 0) continue;
    switch (rng.NextBounded(3)) {
      case 0: site.action = SiteAction::kYield; break;
      case 1: site.action = SiteAction::kSleep; break;
      default: site.action = SiteAction::kSpin; break;
    }
    site.probability_pct =
        static_cast<std::uint8_t>(5 + rng.NextBounded(76));  // 5-80%
    switch (site.action) {
      case SiteAction::kYield:
        site.intensity = 1 + static_cast<std::uint32_t>(rng.NextBounded(4));
        break;
      case SiteAction::kSleep:  // 1-200us: wide enough to cross a rebalance
        site.intensity = 1 + static_cast<std::uint32_t>(rng.NextBounded(200));
        break;
      case SiteAction::kSpin:  // 64-16k pause steps
        site.intensity =
            64 + static_cast<std::uint32_t>(rng.NextBounded(16 * 1024));
        break;
      case SiteAction::kOff:
        break;
    }
  }
  return s;
}

std::uint64_t Schedule::ActiveMask() const {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].action != SiteAction::kOff) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

Schedule Schedule::WithActiveMask(std::uint64_t mask) const {
  Schedule s = *this;
  for (std::size_t i = 0; i < s.sites.size(); ++i) {
    if (((mask >> i) & 1) == 0) s.sites[i] = SiteConfig{};
  }
  return s;
}

std::string Schedule::Describe() const {
  std::ostringstream os;
  os << "seed=0x" << std::hex << seed << std::dec << " sites:";
  const auto& names = TestHooks::AllSites();
  bool any = false;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].action == SiteAction::kOff) continue;
    any = true;
    os << " " << names[i].name << "=" << ActionName(sites[i].action) << "(p"
       << static_cast<int>(sites[i].probability_pct) << ",i"
       << sites[i].intensity << ")";
  }
  if (!any) os << " (none)";
  return os.str();
}

PerturbationEngine::PerturbationEngine(const Schedule& schedule)
    : schedule_(schedule) {
  PerturbationEngine* expected = nullptr;
  const bool won = g_engine.compare_exchange_strong(
      expected, this, std::memory_order_acq_rel);
  KIWI_ASSERT(won, "only one PerturbationEngine may be live at a time");
  const auto& sites = TestHooks::AllSites();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (schedule_.sites[i].action != SiteAction::kOff) {
      sites[i].site->store(kTrampolines[i], std::memory_order_release);
    }
  }
}

PerturbationEngine::~PerturbationEngine() {
  for (const auto& site : TestHooks::AllSites()) {
    site.site->store(nullptr, std::memory_order_release);
  }
  g_engine.store(nullptr, std::memory_order_release);
}

void PerturbationEngine::Fire(std::size_t site_index) {
  const SiteConfig& cfg = schedule_.sites[site_index];
  if (cfg.action == SiteAction::kOff) return;
  ThreadRng& tl = LocalRng(schedule_.seed);
  if (tl.rng.NextBounded(100) >= cfg.probability_pct) return;
  switch (cfg.action) {
    case SiteAction::kYield:
      for (std::uint32_t i = 0; i < cfg.intensity; ++i) {
        std::this_thread::yield();
      }
      break;
    case SiteAction::kSleep:
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.intensity));
      break;
    case SiteAction::kSpin:
      for (std::uint32_t i = 0; i < cfg.intensity; ++i) SpinPause();
      break;
    case SiteAction::kOff:
      break;
  }
}

}  // namespace kiwi::fuzz
