#include "fuzz/scenario.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/test_hooks.h"
#include "core/kiwi_map.h"

namespace kiwi::core {

/// Friend of KiWiMap (declared in kiwi_map.h): lets directed scenarios
/// trigger a rebalance on one specific chunk instead of relying on policy
/// probabilities.
class FuzzScenarioPeer {
 public:
  explicit FuzzScenarioPeer(KiWiMap& map) : map_(map) {}

  Chunk* Locate(Key key) {
    reclaim::EbrGuard guard(map_.ebr_);
    return map_.LocateChunk(key);
  }

  void Rebalance(Chunk* chunk) {
    map_.Rebalance(chunk, 0, 0, /*has_put=*/false);
  }

 private:
  KiWiMap& map_;
};

}  // namespace kiwi::core

namespace kiwi::fuzz {
namespace {

using core::Chunk;
using core::FuzzScenarioPeer;
using core::KiWiConfig;
using core::KiWiMap;

// ---- handshake gates ----------------------------------------------------
//
// TestHooks hooks are plain function pointers, so the choreography lives in
// file-scope state: each participating thread sets a role, and the hook
// trampolines block specific (role, firing-count) pairs on explicit gates.
// Every wait has a generous deadline — a timeout aborts the choreography
// and reports a setup note instead of hanging the suite.

thread_local char t_role = 0;          // 'A' leader, 'B' straggler
thread_local int t_engage_fires = 0;   // per-thread rebalance_during_engage
thread_local int t_splice_fires = 0;   // per-thread replace_before_splice

struct Gate {
  std::atomic<bool> arrived{false};
  std::atomic<bool> released{false};
  void Reset() {
    arrived.store(false, std::memory_order_relaxed);
    released.store(false, std::memory_order_relaxed);
  }
};

Gate g_a_at_seal;    // A holds a stale ro->next, about to cap-seal
Gate g_b_in_loop;    // B holds the same stale ro->next
Gate g_a_at_splice;  // A finished consensus, about to splice

bool AwaitFlag(const std::atomic<bool>& flag) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!flag.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return true;
}

void ReleaseAllGates() {
  g_a_at_seal.released.store(true, std::memory_order_release);
  g_b_in_loop.released.store(true, std::memory_order_release);
  g_a_at_splice.released.store(true, std::memory_order_release);
}

/// rebalance_during_engage: A passes its first iteration (engaging X) and
/// blocks on the second (holding next=Y, about to cap-seal); B blocks on
/// its first (holding the same next=Y).
void EngageGateHook() {
  ++t_engage_fires;
  if (t_role == 'A' && t_engage_fires == 2) {
    g_a_at_seal.arrived.store(true, std::memory_order_release);
    AwaitFlag(g_a_at_seal.released);
  } else if (t_role == 'B' && t_engage_fires == 1) {
    g_b_in_loop.arrived.store(true, std::memory_order_release);
    AwaitFlag(g_b_in_loop.released);
  }
}

/// replace_before_splice: A blocks after winning consensus so B can run
/// its whole divergent rebalance first; B passes.
void SpliceGateHook() {
  ++t_splice_fires;
  if (t_role == 'A' && t_splice_fires == 1) {
    g_a_at_splice.arrived.store(true, std::memory_order_release);
    AwaitFlag(g_a_at_splice.released);
  }
}

}  // namespace

ScenarioResult RunEngageStragglerScenario() {
  g_a_at_seal.Reset();
  g_b_in_loop.Reset();
  g_a_at_splice.Reset();

  // Layout: four chunks [1-4][5-8][9-12][13-16] at capacity 8 (bulk fill
  // ratio 1/2), then sparsify the first three to one live cell each.  With
  // per-replacement-chunk budget fill_ratio*capacity = 4 cells, the engage
  // policy approves merging adjacent one-cell chunks, and max_engaged=2
  // forces the cap seal the disagreement window needs (policy-based seals
  // are arithmetically consistent across helpers; only the cap seal can
  // split their views).
  KiWiConfig config;
  config.chunk_capacity = 8;
  config.max_engaged_chunks = 2;
  config.rebalance_probability = 0;  // only explicit rebalances below
  std::vector<KiWiMap::Entry> entries;
  for (Key k = 1; k <= 16; ++k) {
    entries.emplace_back(k, static_cast<Value>(k) * 100);
  }
  KiWiMap map(std::span<const KiWiMap::Entry>(entries), config);
  for (const Key k : {2, 3, 4, 6, 7, 8, 10, 11, 12}) map.Remove(k);
  map.CompactAll();  // rebuild each chunk alone: V{1} X{5} Y{9} Z{13-16}
  map.DrainReclamation();

  FuzzScenarioPeer peer(map);
  Chunk* v = peer.Locate(1);
  Chunk* x = peer.Locate(5);
  Chunk* y = peer.Locate(9);
  // The choreography keeps these chunks alive until their roles are done
  // (nothing retires V/X before A and B are both inside the rebalance), so
  // holding raw pointers across the thread launches is safe here.
  if (v == x || x == y || v->Next() != x || x->Next() != y ||
      v->AllocatedCells() != 1 || x->AllocatedCells() != 1 ||
      y->AllocatedCells() != 1) {
    return {true, "setup: expected three adjacent one-cell chunks"};
  }

  ScenarioResult result;
  {
    TestHooks::Scoped engage_gate(TestHooks::rebalance_during_engage,
                                  &EngageGateHook);
    TestHooks::Scoped splice_gate(TestHooks::replace_before_splice,
                                  &SpliceGateHook);

    // A: engages V then X; blocks holding next=Y just before the cap seal.
    std::thread a([&] {
      t_role = 'A';
      peer.Rebalance(v);
    });
    if (!AwaitFlag(g_a_at_seal.arrived)) {
      ReleaseAllGates();
      a.join();
      return {true, "setup: leader never reached the seal gate"};
    }

    // B: joins A's rebalance object at X; blocks holding the same next=Y.
    std::thread b([&] {
      t_role = 'B';
      peer.Rebalance(x);
    });
    if (!AwaitFlag(g_b_in_loop.arrived)) {
      ReleaseAllGates();
      a.join();
      b.join();
      return {true, "setup: straggler never entered the engage loop"};
    }

    // A seals at the cap, computes last=X, freezes, builds {1,5}, wins the
    // replacement consensus, and blocks before its splice.
    g_a_at_seal.released.store(true, std::memory_order_release);
    if (!AwaitFlag(g_a_at_splice.arrived)) {
      ReleaseAllGates();
      a.join();
      b.join();
      return {true, "setup: leader never reached the splice gate"};
    }

    // B wakes with the stale next=Y: its engagement CAS lands after A's
    // last-engaged walk, so B sees last=Y.  With the consensus intact B
    // adopts A's answer and Y survives as an orphan; under the mutant B
    // keeps its own view, splices A's {1,5}-only replacement, and retires
    // Y — dropping key 9.
    g_b_in_loop.released.store(true, std::memory_order_release);
    b.join();
    g_a_at_splice.released.store(true, std::memory_order_release);
    a.join();
  }

  map.CheckInvariants();
  std::ostringstream lost;
  for (const Key k : {Key{1}, Key{5}, Key{9}, Key{13}, Key{14}, Key{15},
                      Key{16}}) {
    const auto got = map.Get(k);
    if (got != static_cast<Value>(k) * 100) {
      if (!lost.str().empty()) lost << ", ";
      lost << "key " << k << (got ? " corrupted" : " lost");
    }
  }
  if (!lost.str().empty()) {
    result.ok = false;
    result.message = "engage-straggler interleaving: " + lost.str() +
                     " (engaged-sector views diverged past the splice)";
  }
  return result;
}

std::vector<const char*> ScenarioNames() { return {"engage_straggler"}; }

ScenarioResult RunScenario(const std::string& name) {
  if (name == "engage_straggler") return RunEngageStragglerScenario();
  return {false, "unknown scenario: " + name};
}

}  // namespace kiwi::fuzz
