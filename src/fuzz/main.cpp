// kiwi_fuzz: linearizability fuzzer driver.
//
//   kiwi_fuzz                          # sweep seeds 1..N on the clean tree
//   kiwi_fuzz --seed=42                # replay one seed (also KIWI_FUZZ_SEED)
//   kiwi_fuzz --mutant=skip_scan_publish --expect-violation
//                                      # prove the harness catches a mutant
//
// Exit codes: 0 = clean sweep (or, with --expect-violation, the mutant WAS
// detected); 1 = violation/crash found (or mutant escaped detection);
// 2 = usage error.
//
// With --expect-violation each round runs in a forked child so that
// assertion aborts (some mutants die in KIWI_ASSERT rather than producing a
// checkable history) count as detections.  See docs/TESTING.md.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/test_hooks.h"
#include "fuzz/fuzzer.h"
#include "fuzz/scenario.h"
#include "obs/trace.h"

namespace {

using kiwi::TestHooks;
using kiwi::fuzz::DumpFailureArtifacts;
using kiwi::fuzz::Minimize;
using kiwi::fuzz::MinimizeResult;
using kiwi::fuzz::RoundParams;
using kiwi::fuzz::RoundResult;
using kiwi::fuzz::RunRound;
using kiwi::fuzz::Schedule;

struct MutantName {
  const char* name;
  TestHooks::Mutant bit;
};
constexpr MutantName kMutants[] = {
    {"last_engaged_race", TestHooks::kLastEngagedRace},
    {"skip_scan_publish", TestHooks::kSkipScanPublish},
    {"skip_get_help", TestHooks::kSkipGetHelp},
    {"eager_tombstone_purge", TestHooks::kEagerTombstonePurge},
};

struct Options {
  RoundParams params;
  bool seed_fixed = false;   // --seed / KIWI_FUZZ_SEED given: run exactly it
  std::uint64_t seeds = 20;  // sweep width when no fixed seed
  std::uint64_t budget_s = 0;  // 0 = unlimited
  bool expect_violation = false;
  bool minimize = true;
  std::string artifact_dir;
  std::string scenario;  // directed scenario instead of seeded rounds
};

/// Seed the crash handler prints so an aborting round is still reproducible.
std::atomic<std::uint64_t> g_current_seed{0};

#if KIWI_TRACE_ENABLED
void CrashSeedReport(void*, int fd) {
  char buf[96];
  const int n = std::snprintf(
      buf, sizeof(buf), "\nkiwi_fuzz repro: KIWI_FUZZ_SEED=%llu\n",
      static_cast<unsigned long long>(
          g_current_seed.load(std::memory_order_relaxed)));
  if (n > 0) {
    const ssize_t ignored = write(fd, buf, static_cast<std::size_t>(n));
    (void)ignored;
  }
}
#endif  // KIWI_TRACE_ENABLED

void Usage(FILE* to) {
  std::fprintf(
      to,
      "usage: kiwi_fuzz [options]\n"
      "  --seed=N            run exactly this seed (env: KIWI_FUZZ_SEED)\n"
      "  --seeds=N           seeds to sweep when --seed absent (default 20)\n"
      "  --budget-s=N        wall-clock budget in seconds (default: none)\n"
      "  --threads=N         worker threads per round (default 4)\n"
      "  --ops=N             ops per thread (default 100)\n"
      "  --keys=N            keyspace size (default 16)\n"
      "  --chunk-capacity=N  chunk capacity (default 8)\n"
      "  --mix=P:R:G         op mix percent put:remove:get, rest scans\n"
      "                      (default 35:15:30)\n"
      "  --batch-pct=N       PutBatch share of the mix, carved out of the\n"
      "                      scan remainder (default 0: batches off)\n"
      "  --batch-max=N       max entries per fuzzed batch (default 6)\n"
      "  --bytes             fuzz KiWiByteMap: keys go through an\n"
      "                      order-preserving byte codec sharing one 8-byte\n"
      "                      prefix, so every comparison takes the arena\n"
      "                      memcmp tie-break path (checker unchanged)\n"
      "  --max-engaged=N     max chunks engaged per rebalance (default 8)\n"
      "  --site-mask=M       restrict perturbed hook sites (bitmask)\n"
      "  --force-site=I:A:P:N  pin site I to action A (yield|sleep|spin)\n"
      "                      with probability P%% and intensity N\n"
      "                      (repeatable; see --list-sites for indices)\n"
      "  --mutant=NAME       enable a mutant (repeatable; see "
      "--list-mutants)\n"
      "  --mutant-mask=M     enable mutants by raw bitmask\n"
      "  --scenario=NAME     run a directed deterministic scenario instead\n"
      "                      of seeded rounds (see --list-scenarios)\n"
      "  --expect-violation  exit 0 iff a violation/crash IS found "
      "(fork-per-round)\n"
      "  --artifact-dir=DIR  failure artifact dir (env: "
      "KIWI_FUZZ_ARTIFACT_DIR)\n"
      "  --no-minimize       skip schedule minimization on failure\n"
      "  --list-mutants      list mutant names and exit\n"
      "  --list-sites        list perturbation hook sites and exit\n");
}

bool ParseU64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 0);
  return end != s && *end == '\0';
}

/// "I:A:P:N" -> forced site config (see --force-site in Usage()).
bool ParseForceSite(const char* s, RoundParams::SiteOverride& out) {
  std::string spec(s);
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t colon; (colon = spec.find(':', start)) != std::string::npos;
       start = colon + 1) {
    parts.push_back(spec.substr(start, colon - start));
  }
  parts.push_back(spec.substr(start));
  if (parts.size() != 4) return false;
  std::uint64_t site = 0, prob = 0, intensity = 0;
  if (!ParseU64(parts[0].c_str(), site) || site >= TestHooks::kSiteCount ||
      !ParseU64(parts[2].c_str(), prob) || prob > 100 ||
      !ParseU64(parts[3].c_str(), intensity)) {
    return false;
  }
  kiwi::fuzz::SiteAction action;
  if (parts[1] == "yield") {
    action = kiwi::fuzz::SiteAction::kYield;
  } else if (parts[1] == "sleep") {
    action = kiwi::fuzz::SiteAction::kSleep;
  } else if (parts[1] == "spin") {
    action = kiwi::fuzz::SiteAction::kSpin;
  } else {
    return false;
  }
  out.site = static_cast<std::uint32_t>(site);
  out.config.action = action;
  out.config.probability_pct = static_cast<std::uint8_t>(prob);
  out.config.intensity = static_cast<std::uint32_t>(intensity);
  return true;
}

int ParseArgs(int argc, char** argv, Options& opt) {
  if (const char* env = std::getenv("KIWI_FUZZ_SEED")) {
    if (ParseU64(env, opt.params.seed)) opt.seed_fixed = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    std::uint64_t v = 0;
    if (const char* s = value("--seed=")) {
      if (!ParseU64(s, opt.params.seed)) return 2;
      opt.seed_fixed = true;
    } else if (const char* s = value("--seeds=")) {
      if (!ParseU64(s, opt.seeds) || opt.seeds == 0) return 2;
    } else if (const char* s = value("--budget-s=")) {
      if (!ParseU64(s, opt.budget_s)) return 2;
    } else if (const char* s = value("--threads=")) {
      if (!ParseU64(s, v) || v == 0 || v > 64) return 2;
      opt.params.threads = static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--ops=")) {
      if (!ParseU64(s, v) || v == 0) return 2;
      opt.params.ops_per_thread = static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--keys=")) {
      if (!ParseU64(s, v) || v == 0) return 2;
      opt.params.keys = static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--chunk-capacity=")) {
      if (!ParseU64(s, v) || v < 2) return 2;
      opt.params.chunk_capacity = static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--max-engaged=")) {
      if (!ParseU64(s, v) || v == 0) return 2;
      opt.params.max_engaged_chunks = static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--mix=")) {
      unsigned put = 0, remove = 0, get = 0;
      if (std::sscanf(s, "%u:%u:%u", &put, &remove, &get) != 3 ||
          put + remove + get > 100) {
        std::fprintf(stderr, "bad --mix spec '%s' (want PUT:REMOVE:GET)\n", s);
        return 2;
      }
      opt.params.put_pct = put;
      opt.params.remove_pct = remove;
      opt.params.get_pct = get;
    } else if (const char* s = value("--batch-pct=")) {
      if (!ParseU64(s, v) || v > 100) return 2;
      opt.params.batch_pct = static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--batch-max=")) {
      if (!ParseU64(s, v) || v == 0) return 2;
      opt.params.max_batch = static_cast<std::uint32_t>(v);
    } else if (arg == "--bytes") {
      opt.params.byte_keys = true;
    } else if (const char* s = value("--site-mask=")) {
      if (!ParseU64(s, opt.params.site_mask)) return 2;
    } else if (const char* s = value("--force-site=")) {
      RoundParams::SiteOverride forced;
      if (!ParseForceSite(s, forced)) {
        std::fprintf(stderr, "bad --force-site spec '%s'\n", s);
        return 2;
      }
      opt.params.forced_sites.push_back(forced);
    } else if (const char* s = value("--mutant-mask=")) {
      if (!ParseU64(s, v)) return 2;
      opt.params.mutants |= static_cast<std::uint32_t>(v);
    } else if (const char* s = value("--mutant=")) {
      bool known = false;
      for (const MutantName& m : kMutants) {
        if (std::strcmp(s, m.name) == 0) {
          opt.params.mutants |= m.bit;
          known = true;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown mutant '%s' (see --list-mutants)\n", s);
        return 2;
      }
    } else if (const char* s = value("--artifact-dir=")) {
      opt.artifact_dir = s;
    } else if (arg == "--expect-violation") {
      opt.expect_violation = true;
    } else if (arg == "--no-minimize") {
      opt.minimize = false;
    } else if (const char* s = value("--scenario=")) {
      bool known = false;
      for (const char* name : kiwi::fuzz::ScenarioNames()) {
        if (std::strcmp(s, name) == 0) known = true;
      }
      if (!known) {
        std::fprintf(stderr, "unknown scenario '%s' (see --list-scenarios)\n",
                     s);
        return 2;
      }
      opt.scenario = s;
    } else if (arg == "--list-scenarios") {
      for (const char* name : kiwi::fuzz::ScenarioNames()) {
        std::printf("%s\n", name);
      }
      return -1;
    } else if (arg == "--list-mutants") {
      for (const MutantName& m : kMutants) {
        std::printf("%-24s 0x%x\n", m.name, m.bit);
      }
      return -1;
    } else if (arg == "--list-sites") {
      const auto& sites = TestHooks::AllSites();
      for (std::size_t j = 0; j < sites.size(); ++j) {
        std::printf("%zu  %s\n", j, sites[j].name);
      }
      return -1;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return -1;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }
  return 0;
}

/// One failing round in the main process: minimize, dump, report.
int HandleFailure(const Options& opt, RoundParams params,
                  RoundResult result) {
  std::printf("VIOLATION seed=%llu: %s\n",
              static_cast<unsigned long long>(params.seed),
              result.message.c_str());
  if (opt.minimize) {
    std::printf("minimizing (this re-runs the failing schedule)...\n");
    const MinimizeResult min = Minimize(params, /*retries=*/8,
                                        /*max_rounds=*/200);
    if (min.reproduced) {
      params = min.params;
      std::printf("minimized: site_mask=0x%llx ops=%u (%u rounds spent)\n",
                  static_cast<unsigned long long>(min.site_mask),
                  params.ops_per_thread, min.rounds_spent);
      RoundResult again = RunRound(params);
      if (!again.ok) result = std::move(again);
    } else {
      std::printf("failure did not re-fire during minimization; "
                  "keeping the original round\n");
    }
  }
  if (auto path = DumpFailureArtifacts(params, result, opt.artifact_dir)) {
    std::printf("artifacts: %s\n", path->c_str());
  } else {
    std::printf("artifact dump failed (check --artifact-dir)\n");
  }
  std::printf("repro: KIWI_FUZZ_SEED=%llu kiwi_fuzz --threads=%u --ops=%u "
              "--keys=%u --chunk-capacity=%u --site-mask=0x%llx%s%s%s\n",
              static_cast<unsigned long long>(params.seed), params.threads,
              params.ops_per_thread, params.keys, params.chunk_capacity,
              static_cast<unsigned long long>(params.site_mask),
              params.byte_keys ? " --bytes" : "",
              params.mutants ? " --mutant-mask=" : "",
              params.mutants ? std::to_string(params.mutants).c_str() : "");
  return 1;
}

/// Fork-per-round: returns true when the child found a violation OR died
/// (assert/crash) — either way the harness detected the defect.
bool RoundDetectsInChild(const RoundParams& params) {
  const pid_t pid = fork();
  if (pid == 0) {
    const RoundResult r = RunRound(params);
    if (!r.ok) {
      std::printf("  child seed=%llu: %s\n",
                  static_cast<unsigned long long>(params.seed),
                  r.message.c_str());
      std::fflush(stdout);
      _exit(1);
    }
    _exit(0);
  }
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    std::printf("  child seed=%llu: died with signal %d (detection)\n",
                static_cast<unsigned long long>(params.seed),
                WTERMSIG(status));
    return true;
  }
  return WIFEXITED(status) && WEXITSTATUS(status) != 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const int parsed = ParseArgs(argc, argv, opt);
  if (parsed == -1) return 0;
  if (parsed != 0) return parsed;

#if KIWI_TRACE_ENABLED
  kiwi::obs::trace::InstallCrashHandler();
  kiwi::obs::trace::SetCrashReportCallback(&CrashSeedReport, nullptr);
#endif
  if (!opt.artifact_dir.empty()) {
    setenv("KIWI_FUZZ_ARTIFACT_DIR", opt.artifact_dir.c_str(), 1);
  }

  const auto start = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (opt.budget_s == 0) return true;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return elapsed < std::chrono::seconds(opt.budget_s);
  };

  const std::uint64_t first = opt.params.seed;
  const std::uint64_t count = opt.seed_fixed ? 1 : opt.seeds;

  if (!opt.scenario.empty()) {
    // Directed scenarios are deterministic: one run decides.  Mutants that
    // die in an assert instead of corrupting data still count as detected,
    // so expect-violation mode forks the scenario like a seeded round.
    TestHooks::ScopedMutants mutants(opt.params.mutants);
    auto run_scenario = [&]() -> int {  // 0 = consistent, 1 = violation
      const kiwi::fuzz::ScenarioResult r =
          kiwi::fuzz::RunScenario(opt.scenario);
      if (!r.message.empty()) {
        std::printf("scenario %s: %s\n", opt.scenario.c_str(),
                    r.message.c_str());
        std::fflush(stdout);
      }
      return r.ok ? 0 : 1;
    };
    if (!opt.expect_violation) {
      const int rc = run_scenario();
      if (rc == 0) std::printf("scenario %s: consistent\n",
                               opt.scenario.c_str());
      return rc;
    }
    const pid_t pid = fork();
    if (pid == 0) _exit(run_scenario());
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    int status = 0;
    waitpid(pid, &status, 0);
    const bool detected =
        WIFSIGNALED(status) ||
        (WIFEXITED(status) && WEXITSTATUS(status) != 0);
    std::printf("scenario %s: mutant-mask=0x%x %s\n", opt.scenario.c_str(),
                opt.params.mutants, detected ? "DETECTED" : "NOT detected");
    return detected ? 0 : 1;
  }

  if (opt.expect_violation) {
    std::printf("expect-violation mode: mutant-mask=0x%x, up to %llu seeds\n",
                opt.params.mutants, static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < count && budget_left(); ++i) {
      RoundParams params = opt.params;
      params.seed = first + i;
      g_current_seed.store(params.seed, std::memory_order_relaxed);
      if (RoundDetectsInChild(params)) {
        std::printf("DETECTED at seed=%llu\n",
                    static_cast<unsigned long long>(params.seed));
        return 0;
      }
    }
    std::printf("mutant NOT detected within budget\n");
    return 1;
  }

  std::uint64_t ran = 0;
  for (std::uint64_t i = 0; i < count && budget_left(); ++i) {
    RoundParams params = opt.params;
    params.seed = first + i;
    g_current_seed.store(params.seed, std::memory_order_relaxed);
    RoundResult result = RunRound(params);
    ++ran;
    if (!result.ok) return HandleFailure(opt, params, std::move(result));
  }
  std::printf("clean: %llu round%s, no violations\n",
              static_cast<unsigned long long>(ran), ran == 1 ? "" : "s");
  return 0;
}
