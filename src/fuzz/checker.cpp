#include "fuzz/checker.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "harness/linearizability.h"

namespace kiwi::fuzz {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

const char* KindName(FuzzOp::Kind k) {
  switch (k) {
    case FuzzOp::Kind::kPut: return "put";
    case FuzzOp::Kind::kGet: return "get";
    case FuzzOp::Kind::kRemove: return "remove";
    case FuzzOp::Kind::kScan: return "scan";
  }
  return "?";
}

struct Interval {
  std::uint64_t invoke;
  std::uint64_t response;
};

/// Everything the checker needs about one key, projected from the history.
struct KeyOps {
  std::vector<harness::LinOp> register_history;  // layer 1 input
  std::vector<Interval> writes;                  // puts (for absence check)
  std::vector<Interval> removes;
  /// All mutators (puts + removes), for the observed-value upper bound.
  std::vector<Interval> mutators;
  /// value -> writer interval; preload maps to {0, 0}.
  std::unordered_map<Value, Interval> writer_of;
  bool duplicate_values = false;  // some value written twice: skip cut LB/UB
  bool preloaded = false;
  Value preload_value = 0;
  bool touched = false;  // any op or preload mentions this key
};

std::string DescribeOp(const FuzzOp& op) {
  std::ostringstream os;
  os << KindName(op.kind) << " t" << op.thread << " key=" << op.key;
  if (op.kind == FuzzOp::Kind::kScan) os << ".." << op.to_key;
  if (op.kind == FuzzOp::Kind::kPut) os << " val=" << op.value;
  if (op.kind == FuzzOp::Kind::kGet) {
    os << (op.found ? " -> hit val=" : " -> miss");
    if (op.found) os << op.value;
  }
  os << " [" << op.invoke << "," << op.response << "]";
  return os.str();
}

void AddWriter(KeyOps& ops, Value value, Interval iv) {
  if (!ops.writer_of.emplace(value, iv).second) ops.duplicate_values = true;
}

/// Layer 2 for one scan: does some tick t in [scan.invoke, scan.response]
/// satisfy every per-key necessary condition?
CheckResult CheckScanCut(const FuzzOp& scan,
                         const std::map<Key, KeyOps>& keys) {
  std::uint64_t lo = scan.invoke;
  std::uint64_t hi = scan.response;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> exclusions;

  std::set<Key> observed;
  for (const auto& [k, v] : scan.scan_result) observed.insert(k);

  for (const auto& [k, v] : scan.scan_result) {
    const auto it = keys.find(k);
    // An unknown observed key/value is a layer-1 failure; don't constrain.
    if (it == keys.end() || it->second.duplicate_values) continue;
    const KeyOps& ops = it->second;
    const auto writer = ops.writer_of.find(v);
    if (writer == ops.writer_of.end()) continue;  // layer 1 reports this
    const Interval w = writer->second;
    lo = std::max(lo, w.invoke);
    for (const Interval& m : ops.mutators) {
      if (m.invoke == w.invoke && m.response == w.response) continue;  // W
      if (m.invoke >= w.response) hi = std::min(hi, m.response);
    }
  }

  for (auto it = keys.lower_bound(scan.key);
       it != keys.end() && it->first <= scan.to_key; ++it) {
    if (observed.contains(it->first)) continue;
    const KeyOps& ops = it->second;
    if (!ops.touched) continue;
    // Key absent from the scan: every write W that surely completed before
    // the cut must be covered by a remove that can land between W and the
    // cut.  r_w is the earliest remove that could follow W; ticks in
    // (W.response, r_w) have no covering remove, so the key must be present
    // there -- exclude them.
    auto exclude_for_write = [&](Interval w) {
      std::uint64_t r_w = kInf;
      for (const Interval& r : ops.removes) {
        if (r.response >= w.invoke) r_w = std::min(r_w, r.invoke);
      }
      const std::uint64_t begin = w.response + 1;
      const std::uint64_t end = (r_w == kInf) ? kInf : r_w - 1;  // inclusive
      if (begin <= end) exclusions.emplace_back(begin, end);
    };
    if (ops.preloaded) exclude_for_write(Interval{0, 0});
    for (const Interval& w : ops.writes) exclude_for_write(w);
  }

  if (lo <= hi) {
    // Sweep the exclusions over [lo, hi] looking for one admissible tick.
    std::sort(exclusions.begin(), exclusions.end());
    std::uint64_t cursor = lo;
    bool feasible = false;
    for (const auto& [begin, end] : exclusions) {
      if (begin > cursor) break;  // cursor tick is unexcluded
      if (end >= cursor) {
        if (end >= hi) { cursor = hi + 1; break; }
        cursor = end + 1;
      }
    }
    feasible = cursor <= hi;
    if (feasible) return {};
  }

  std::ostringstream os;
  os << "torn scan snapshot: no single linearization tick in ["
     << scan.invoke << "," << scan.response
     << "] is consistent with all observations of " << DescribeOp(scan)
     << " (feasible interval collapsed to [" << lo << "," << hi << "]"
     << (exclusions.empty() ? "" : " minus absence exclusions") << ")";
  return {false, os.str()};
}

}  // namespace

CheckResult CheckHistory(const History& history) {
  std::map<Key, KeyOps> keys;
  for (const auto& [k, v] : history.initial) {
    KeyOps& ops = keys[k];
    ops.preloaded = true;
    ops.preload_value = v;
    ops.touched = true;
    AddWriter(ops, v, Interval{0, 0});
  }

  // Project single-key ops; remember scans for a second pass (their per-key
  // reads need the final `touched` map so misses on never-touched keys can
  // be skipped).
  std::vector<const FuzzOp*> scans;
  for (const FuzzOp& op : history.ops) {
    KIWI_ASSERT(op.invoke < op.response, "malformed fuzz op interval");
    switch (op.kind) {
      case FuzzOp::Kind::kPut: {
        KeyOps& ops = keys[op.key];
        ops.touched = true;
        ops.register_history.push_back({harness::LinOp::Kind::kWrite,
                                        op.value, false, op.invoke,
                                        op.response});
        ops.writes.push_back({op.invoke, op.response});
        ops.mutators.push_back({op.invoke, op.response});
        AddWriter(ops, op.value, Interval{op.invoke, op.response});
        break;
      }
      case FuzzOp::Kind::kRemove: {
        // The remove's `found` result is not modelled (register semantics
        // treat remove as a blind mutator); dropping it is sound.
        KeyOps& ops = keys[op.key];
        ops.touched = true;
        ops.register_history.push_back({harness::LinOp::Kind::kRemove, 0,
                                        false, op.invoke, op.response});
        ops.removes.push_back({op.invoke, op.response});
        ops.mutators.push_back({op.invoke, op.response});
        break;
      }
      case FuzzOp::Kind::kGet: {
        KeyOps& ops = keys[op.key];
        ops.touched = true;
        ops.register_history.push_back({harness::LinOp::Kind::kRead,
                                        op.value, op.found, op.invoke,
                                        op.response});
        break;
      }
      case FuzzOp::Kind::kScan:
        scans.push_back(&op);
        break;
    }
  }

  for (const FuzzOp* scan : scans) {
    // Structural contract: ascending unique keys, all within range.
    Key prev = 0;
    bool first = true;
    for (const auto& [k, v] : scan->scan_result) {
      if (k < scan->key || k > scan->to_key) {
        return {false, "scan returned out-of-range key " + std::to_string(k) +
                           ": " + DescribeOp(*scan)};
      }
      if (!first && k <= prev) {
        return {false, "scan keys not strictly ascending at key " +
                           std::to_string(k) + ": " + DescribeOp(*scan)};
      }
      prev = k;
      first = false;
    }
    // Fold per-key observations into the register histories.
    std::set<Key> observed;
    for (const auto& [k, v] : scan->scan_result) {
      observed.insert(k);
      keys[k].register_history.push_back({harness::LinOp::Kind::kRead, v,
                                          true, scan->invoke,
                                          scan->response});
    }
    for (auto it = keys.lower_bound(scan->key);
         it != keys.end() && it->first <= scan->to_key; ++it) {
      if (observed.contains(it->first) || !it->second.touched) continue;
      it->second.register_history.push_back({harness::LinOp::Kind::kRead, 0,
                                             false, scan->invoke,
                                             scan->response});
    }
  }

  // Layer 1: each key's projected register history must linearize.
  for (auto& [k, ops] : keys) {
    if (ops.register_history.empty()) continue;
    if (!harness::IsLinearizableRegisterHistory(
            ops.register_history, ops.preloaded, ops.preload_value)) {
      std::ostringstream os;
      os << "key " << k << ": no valid linearization of its "
         << ops.register_history.size() << "-op register history"
         << (ops.preloaded
                 ? " (preloaded val=" + std::to_string(ops.preload_value) + ")"
                 : "");
      return {false, os.str()};
    }
  }

  // Layer 2: each scan needs one consistent cut.
  for (const FuzzOp* scan : scans) {
    CheckResult r = CheckScanCut(*scan, keys);
    if (!r.ok) return r;
  }
  return {};
}

}  // namespace kiwi::fuzz
