// Directed fuzz scenarios: deterministic interleavings the random schedule
// fuzzer cannot reach at a useful rate.
//
// The schedule fuzzer explores interleavings statistically; some bug
// classes need a coincidence of three or more independent stalls and a
// hand-built chunk layout, putting their natural hit rate below one in
// tens of thousands of rounds (measured: the reverted last_engaged
// consensus needs a cap-sealed multi-chunk engage run with a straggling
// helper — ~1 hit in 30k seeded rounds).  A scenario pins that exact
// interleaving through the SAME TestHooks sites the fuzzer perturbs, but
// gates threads on explicit handshakes instead of sleeps, so it detects
// the corresponding mutant deterministically in milliseconds.
//
// Scenarios honour the currently-installed TestHooks::mutants mask: run one
// on the clean tree and it must pass; run it with the matching mutant
// enabled and it must fail (that asymmetry is the harness teeth proof —
// see docs/TESTING.md and tests/fuzz_harness_test.cpp).
#pragma once

#include <string>
#include <vector>

namespace kiwi::fuzz {

struct ScenarioResult {
  bool ok = true;
  /// Violation description when !ok; setup/skip notes otherwise.
  std::string message;
};

/// Names accepted by RunScenario, for --list-scenarios.
std::vector<const char*> ScenarioNames();

/// Run one named scenario under the current mutant mask.  Unknown names
/// return ok=false with an "unknown scenario" message (a usage error, not
/// a detection — the driver checks the name against ScenarioNames() first).
ScenarioResult RunScenario(const std::string& name);

/// The engage-straggler interleaving (DESIGN.md deviation 9): helper B
/// stalls in the engage loop holding a stale ro->next while helper A
/// cap-seals the run and computes its last-engaged view; B's engagement
/// CAS then lands late, so A and B disagree on where the engaged sector
/// ends.  With the last_engaged consensus intact the late chunk survives
/// as a recoverable orphan; with the kLastEngagedRace mutant the splice
/// winner retires a chunk whose data the consensus replacement never
/// included — a key vanishes.
ScenarioResult RunEngageStragglerScenario();

}  // namespace kiwi::fuzz
