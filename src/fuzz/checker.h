// Multi-key linearizability checker for recorded fuzz histories.
//
// Two layers, both sound (a reported violation is always a genuine
// linearizability violation):
//
// Layer 1 — per-key register decomposition.  Linearizability is local, so a
// multi-key history of single-key put/get/remove ops is linearizable iff
// each key's projected register history is.  Each scan contributes one read
// per key it covers (hit with the observed value, or miss), over the scan's
// full [invoke, response] interval.  This layer is complete for single-key
// operations; for scans it only checks that each per-key observation is
// *individually* explainable, not that all observations come from one
// atomic cut.
//
// Layer 2 — scan cut consistency.  Requires each key's written values to be
// unique (the fuzzer guarantees this; keys with duplicate written values
// skip their observed-value constraints, preserving soundness).  For each
// scan, intersect the necessary real-time conditions on a single
// linearization tick t in [scan.invoke, scan.response]:
//   * observed k=v with writer W:       t >= W.invoke, and
//     t <= min{ M.response : mutator M != W on k with M.invoke >= W.response }
//     (such an M is after W in real time; were t beyond M's response, M
//     would be linearized before t and W would no longer be latest);
//   * absent k, write W on k:           t outside (W.response, r_W) where
//     r_W = min{ R.invoke : remove R on k with R.response >= W.invoke }
//     (with no remove able to land between W and t, k must be present).
// An empty intersection means no single cut explains the scan: a torn
// snapshot.  This layer is deliberately incomplete (necessary, not
// sufficient, conditions) but catches the realistic tear — a scan
// observing key A from before a concurrent rebalance and key B from after.
//
// Boundary handling is generous throughout (>= / +1 in the direction that
// admits more linearizations) so integer tick granularity can never turn a
// legal history into a reported violation.
#pragma once

#include <string>

#include "fuzz/history.h"

namespace kiwi::fuzz {

struct CheckResult {
  bool ok = true;
  /// First violation found, with key / op / scan details for the artifact.
  std::string message;
};

/// Check a recorded history (layer 1 then layer 2).  Also validates scan
/// structure: results must be strictly ascending and within [key, to_key].
CheckResult CheckHistory(const History& history);

}  // namespace kiwi::fuzz
