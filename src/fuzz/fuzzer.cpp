#include "fuzz/fuzzer.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "api/byte_map.h"
#include "common/random.h"
#include "common/test_hooks.h"
#include "core/kiwi_map.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace kiwi::fuzz {

using core::KiWiConfig;
using core::KiWiMap;

namespace {

/// Globally unique written value: never 0, never the tombstone, and
/// disjoint from the preload value space (plain key numbers).
Value OpValue(std::uint32_t thread, std::uint32_t counter) {
  return (static_cast<Value>(thread + 1) << 32) | counter;
}

// --- Byte-key codec (RoundParams::byte_keys) ------------------------------
//
// Order-preserving and injective on the fixed-width decimal field, so logical
// key order, scan ranges and the checker all survive the translation.  The
// shared 8-byte "fuzzkey:" prefix makes every cell-prefix comparison tie; the
// per-key variable-length suffix varies arena claim sizes.

std::string ByteKey(Key key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "fuzzkey:%06lld",
                static_cast<long long>(key));
  std::string out(buf);
  out.append(static_cast<std::size_t>(key % 5),
             static_cast<char>('a' + key % 26));
  return out;
}

Key DecodeKey(std::string_view key) {
  return static_cast<Key>(std::strtoll(std::string(key.substr(8, 6)).c_str(),
                                       nullptr, 10));
}

std::string ByteValue(Value value) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<char>((static_cast<std::uint64_t>(value) >> (56 - 8 * i)) &
                          0xff);
  }
  return out;
}

Value DecodeValue(std::string_view value) {
  std::uint64_t out = 0;
  for (char c : value) out = (out << 8) | static_cast<unsigned char>(c);
  return static_cast<Value>(out);
}

/// The worker below is written against the logical int64 op domain; these
/// two drivers bind it to either map layout.  The byte driver translates at
/// the call boundary so the recorded history (and therefore the checker)
/// never sees byte strings.
struct Int64Driver {
  KiWiMap& map;
  void Put(Key key, Value value) { map.Put(key, value); }
  void Remove(Key key) { map.Remove(key); }
  std::optional<Value> Get(Key key) { return map.Get(key); }
  void Scan(Key from, Key to, std::vector<KiWiMap::Entry>& out) {
    map.Scan(from, to, out);
  }
  void PutBatch(const std::vector<KiWiMap::Entry>& batch) {
    map.PutBatch(batch);
  }
  void CheckInvariants() { map.CheckInvariants(); }
  std::string DebugReportText() { return map.DebugReport().ToText(); }
};

struct ByteDriver {
  api::KiWiByteMap& map;
  std::vector<api::KiWiByteMap::Entry> batch_buf{};
  void Put(Key key, Value value) { map.Put(ByteKey(key), ByteValue(value)); }
  void Remove(Key key) { map.Remove(ByteKey(key)); }
  std::optional<Value> Get(Key key) {
    const std::optional<std::string> got = map.Get(ByteKey(key));
    if (!got) return std::nullopt;
    return DecodeValue(*got);
  }
  void Scan(Key from, Key to, std::vector<KiWiMap::Entry>& out) {
    out.clear();
    map.Scan(ByteKey(from), ByteKey(to),
             [&out](std::string_view key, std::string_view value) {
               out.emplace_back(DecodeKey(key), DecodeValue(value));
             });
  }
  void PutBatch(const std::vector<KiWiMap::Entry>& batch) {
    batch_buf.clear();
    batch_buf.reserve(batch.size());
    for (const KiWiMap::Entry& entry : batch) {
      batch_buf.emplace_back(ByteKey(entry.first), ByteValue(entry.second));
    }
    map.PutBatch(batch_buf);
  }
  void CheckInvariants() { map.CheckInvariants(); }
  std::string DebugReportText() { return map.DebugReport().ToText(); }
};

template <class Driver>
void Worker(Driver& map, Recorder& recorder, const RoundParams& params,
            std::uint32_t thread) {
  Xoshiro256 rng(params.seed ^ (0xa076'1d64'78bd'642fULL * (thread + 1)));
  std::vector<KiWiMap::Entry> scan_buf;
  std::vector<KiWiMap::Entry> batch_buf;
  // Monotone per-thread counter feeding OpValue: one bump per *written*
  // value, so batch entries and plain puts never collide.
  std::uint32_t value_counter = 0;
  const std::uint64_t kPutCut = params.put_pct;
  const std::uint64_t kRemoveCut = kPutCut + params.remove_pct;
  const std::uint64_t kGetCut = kRemoveCut + params.get_pct;
  const std::uint64_t kBatchCut = kGetCut + params.batch_pct;
  for (std::uint32_t i = 0; i < params.ops_per_thread; ++i) {
    const std::uint64_t roll = rng.NextBounded(100);
    const Key key = 1 + static_cast<Key>(rng.NextBounded(params.keys));
    FuzzOp op;
    op.thread = thread;
    op.key = key;
    if (roll < kPutCut) {
      op.kind = FuzzOp::Kind::kPut;
      op.value = OpValue(thread, value_counter++);
      op.invoke = recorder.Clock().Tick();
      map.Put(key, op.value);
      op.response = recorder.Clock().Tick();
    } else if (roll < kRemoveCut) {
      op.kind = FuzzOp::Kind::kRemove;
      op.invoke = recorder.Clock().Tick();
      map.Remove(key);
      op.response = recorder.Clock().Tick();
    } else if (roll < kGetCut) {
      op.kind = FuzzOp::Kind::kGet;
      op.invoke = recorder.Clock().Tick();
      const std::optional<Value> got = map.Get(key);
      op.response = recorder.Clock().Tick();
      op.found = got.has_value();
      op.value = got.value_or(0);
    } else if (roll < kBatchCut) {
      // One PutBatch call; the raw batch (duplicates and all) goes to the
      // map, and each entry that survives the batch's keep-last duplicate
      // rule is recorded as an individual put over the shared window —
      // entries lost to an in-batch overwrite are never published, so
      // recording them would claim writes that cannot be observed.
      const std::uint64_t batch_size = 1 + rng.NextBounded(params.max_batch);
      batch_buf.clear();
      batch_buf.emplace_back(key, OpValue(thread, value_counter++));
      for (std::uint64_t e = 1; e < batch_size; ++e) {
        batch_buf.emplace_back(
            1 + static_cast<Key>(rng.NextBounded(params.keys)),
            OpValue(thread, value_counter++));
      }
      const auto invoke = recorder.Clock().Tick();
      map.PutBatch(batch_buf);
      const auto response = recorder.Clock().Tick();
      for (std::size_t e = 0; e < batch_buf.size(); ++e) {
        bool last_occurrence = true;
        for (std::size_t l = e + 1; l < batch_buf.size(); ++l) {
          if (batch_buf[l].first == batch_buf[e].first) {
            last_occurrence = false;
            break;
          }
        }
        if (!last_occurrence) continue;
        FuzzOp entry_op;
        entry_op.thread = thread;
        entry_op.kind = FuzzOp::Kind::kPut;
        entry_op.key = batch_buf[e].first;
        entry_op.value = batch_buf[e].second;
        entry_op.invoke = invoke;
        entry_op.response = response;
        recorder.Record(thread, std::move(entry_op));
      }
      continue;
    } else {
      op.kind = FuzzOp::Kind::kScan;
      const std::uint64_t span = 1 + rng.NextBounded(params.max_scan_span);
      op.to_key = std::min<Key>(key + static_cast<Key>(span) - 1,
                                static_cast<Key>(params.keys));
      op.invoke = recorder.Clock().Tick();
      map.Scan(op.key, op.to_key, scan_buf);
      op.response = recorder.Clock().Tick();
      op.scan_result.assign(scan_buf.begin(), scan_buf.end());
    }
    recorder.Record(thread, std::move(op));
  }
}

/// The layout-independent round body: spawn a per-thread Driver over the
/// shared map, run the workers under the schedule, check invariants, then
/// check the recorded history (always in the logical int64 domain).
template <class Driver, class MapT>
void RunRoundOn(MapT& map, Recorder& recorder, const RoundParams& params,
                const Schedule& schedule, RoundResult& result,
                const std::vector<KiWiMap::Entry>& preload) {
  {
    TestHooks::ScopedMutants mutants(params.mutants);
    PerturbationEngine engine(schedule);
    std::vector<std::thread> workers;
    workers.reserve(params.threads);
    for (std::uint32_t t = 0; t < params.threads; ++t) {
      workers.emplace_back([&map, &recorder, &params, t] {
        Driver driver{map};
        Worker(driver, recorder, params, t);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  map.CheckInvariants();

  result.history = std::move(recorder).Merge();
  result.history.initial.assign(preload.begin(), preload.end());
  const CheckResult check = CheckHistory(result.history);
  result.ok = check.ok;
  result.message = check.message;
  if (!result.ok) result.debug_report = map.DebugReport().ToText();
}

}  // namespace

RoundResult RunRound(const RoundParams& params) {
  Schedule schedule =
      Schedule::FromSeed(params.seed).WithActiveMask(params.site_mask);
  for (const RoundParams::SiteOverride& f : params.forced_sites) {
    if (f.site < TestHooks::kSiteCount) schedule.sites[f.site] = f.config;
  }
  RoundResult result;
  result.schedule = schedule.Describe();

  std::vector<KiWiMap::Entry> preload;
  for (std::uint32_t k = 1; k <= params.preload && k <= params.keys; ++k) {
    preload.emplace_back(static_cast<Key>(k), static_cast<Value>(k));
  }

  KiWiConfig config;
  config.chunk_capacity = params.chunk_capacity;
  config.max_engaged_chunks = params.max_engaged_chunks;

  Recorder recorder(params.threads);
  recorder.Reserve(params.ops_per_thread);

  if (params.byte_keys) {
    // A tight arena (keys run ~14-18 bytes + 8-byte values) keeps
    // arena-overflow rebalances firing alongside the cell-count ones.
    config.bytes.arena_bytes_per_cell = 32;
    std::vector<api::KiWiByteMap::Entry> byte_preload;
    byte_preload.reserve(preload.size());
    for (const KiWiMap::Entry& entry : preload) {
      byte_preload.emplace_back(ByteKey(entry.first), ByteValue(entry.second));
    }
    api::KiWiByteMap map(
        std::span<const api::KiWiByteMap::Entry>(byte_preload), config);
    RunRoundOn<ByteDriver>(map, recorder, params, schedule, result, preload);
  } else {
    KiWiMap map(std::span<const KiWiMap::Entry>(preload), config);
    RunRoundOn<Int64Driver>(map, recorder, params, schedule, result, preload);
  }
  return result;
}

namespace {

/// True if `params` fails at least once within `retries` attempts.
bool Refails(const RoundParams& params, std::uint32_t retries,
             std::uint32_t& rounds_spent, std::uint32_t max_rounds) {
  for (std::uint32_t i = 0; i < retries; ++i) {
    if (rounds_spent >= max_rounds) return false;
    ++rounds_spent;
    if (!RunRound(params).ok) return true;
  }
  return false;
}

}  // namespace

MinimizeResult Minimize(const RoundParams& failing, std::uint32_t retries,
                        std::uint32_t max_rounds) {
  MinimizeResult out;
  out.params = failing;
  out.site_mask =
      Schedule::FromSeed(failing.seed).ActiveMask() & failing.site_mask;
  out.params.site_mask = out.site_mask;

  if (!Refails(out.params, retries, out.rounds_spent, max_rounds)) {
    return out;  // reproduced == false
  }
  out.reproduced = true;

  // Greedily drop one active site at a time; keep a drop when the failure
  // still fires without it.
  for (std::size_t i = 0; i < TestHooks::kSiteCount; ++i) {
    const std::uint64_t bit = std::uint64_t{1} << i;
    if ((out.site_mask & bit) == 0) continue;
    RoundParams candidate = out.params;
    candidate.site_mask = out.site_mask & ~bit;
    if (Refails(candidate, retries, out.rounds_spent, max_rounds)) {
      out.site_mask = candidate.site_mask;
      out.params.site_mask = out.site_mask;
    }
  }

  // Then shrink the op window while the failure still reproduces.
  while (out.params.ops_per_thread > 8) {
    RoundParams candidate = out.params;
    candidate.ops_per_thread = out.params.ops_per_thread / 2;
    if (!Refails(candidate, retries, out.rounds_spent, max_rounds)) break;
    out.params = candidate;
  }
  return out;
}

std::optional<std::string> DumpFailureArtifacts(const RoundParams& params,
                                                const RoundResult& result,
                                                std::string dir) {
  if (dir.empty()) {
    if (const char* env = std::getenv("KIWI_FUZZ_ARTIFACT_DIR")) dir = env;
  }
  if (dir.empty()) dir = "/tmp/kiwi_fuzz_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;

  std::ostringstream name;
  name << "kiwi_fuzz_seed_0x" << std::hex << params.seed;
  const std::string base = dir + "/" + name.str();

  std::ofstream out(base + ".txt");
  if (!out) return std::nullopt;
  out << "# kiwi_fuzz failure artifact\n"
      << "# repro: KIWI_FUZZ_SEED=" << params.seed << " kiwi_fuzz --seed="
      << params.seed << " --threads=" << params.threads << " --ops="
      << params.ops_per_thread << " --keys=" << params.keys
      << " --chunk-capacity=" << params.chunk_capacity
      << " --mix=" << params.put_pct << ":" << params.remove_pct << ":"
      << params.get_pct << " --max-engaged=" << params.max_engaged_chunks;
  if (params.byte_keys) out << " --bytes";
  if (params.batch_pct != 0) {
    out << " --batch-pct=" << params.batch_pct
        << " --batch-max=" << params.max_batch;
  }
  if (params.site_mask != ~std::uint64_t{0}) {
    out << " --site-mask=0x" << std::hex << params.site_mask << std::dec;
  }
  if (params.mutants != 0) {
    out << " --mutant-mask=0x" << std::hex << params.mutants << std::dec;
  }
  for (const RoundParams::SiteOverride& f : params.forced_sites) {
    out << " --force-site=" << f.site << ":" << ActionName(f.config.action)
        << ":" << static_cast<unsigned>(f.config.probability_pct) << ":"
        << f.config.intensity;
  }
  out << "\n\n"
      << "violation: " << result.message << "\n"
      << "schedule:  " << result.schedule << "\n\n"
      << "== history ==\n"
      << result.history.Dump() << "\n"
      << "== debug report ==\n"
      << result.debug_report << "\n";
  out.close();

  // Perfetto-compatible trace when tracing is compiled in; best-effort.
#if KIWI_TRACE_ENABLED
  obs::trace::DumpTraceToFile((base + ".trace.json").c_str());
#endif
  return base + ".txt";
}

}  // namespace kiwi::fuzz
