#include "fuzz/fuzzer.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/test_hooks.h"
#include "core/kiwi_map.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace kiwi::fuzz {

using core::KiWiConfig;
using core::KiWiMap;

namespace {

/// Globally unique written value: never 0, never the tombstone, and
/// disjoint from the preload value space (plain key numbers).
Value OpValue(std::uint32_t thread, std::uint32_t counter) {
  return (static_cast<Value>(thread + 1) << 32) | counter;
}

void Worker(KiWiMap& map, Recorder& recorder, const RoundParams& params,
            std::uint32_t thread) {
  Xoshiro256 rng(params.seed ^ (0xa076'1d64'78bd'642fULL * (thread + 1)));
  std::vector<KiWiMap::Entry> scan_buf;
  std::vector<KiWiMap::Entry> batch_buf;
  // Monotone per-thread counter feeding OpValue: one bump per *written*
  // value, so batch entries and plain puts never collide.
  std::uint32_t value_counter = 0;
  const std::uint64_t kPutCut = params.put_pct;
  const std::uint64_t kRemoveCut = kPutCut + params.remove_pct;
  const std::uint64_t kGetCut = kRemoveCut + params.get_pct;
  const std::uint64_t kBatchCut = kGetCut + params.batch_pct;
  for (std::uint32_t i = 0; i < params.ops_per_thread; ++i) {
    const std::uint64_t roll = rng.NextBounded(100);
    const Key key = 1 + static_cast<Key>(rng.NextBounded(params.keys));
    FuzzOp op;
    op.thread = thread;
    op.key = key;
    if (roll < kPutCut) {
      op.kind = FuzzOp::Kind::kPut;
      op.value = OpValue(thread, value_counter++);
      op.invoke = recorder.Clock().Tick();
      map.Put(key, op.value);
      op.response = recorder.Clock().Tick();
    } else if (roll < kRemoveCut) {
      op.kind = FuzzOp::Kind::kRemove;
      op.invoke = recorder.Clock().Tick();
      map.Remove(key);
      op.response = recorder.Clock().Tick();
    } else if (roll < kGetCut) {
      op.kind = FuzzOp::Kind::kGet;
      op.invoke = recorder.Clock().Tick();
      const std::optional<Value> got = map.Get(key);
      op.response = recorder.Clock().Tick();
      op.found = got.has_value();
      op.value = got.value_or(0);
    } else if (roll < kBatchCut) {
      // One PutBatch call; the raw batch (duplicates and all) goes to the
      // map, and each entry that survives the batch's keep-last duplicate
      // rule is recorded as an individual put over the shared window —
      // entries lost to an in-batch overwrite are never published, so
      // recording them would claim writes that cannot be observed.
      const std::uint64_t batch_size = 1 + rng.NextBounded(params.max_batch);
      batch_buf.clear();
      batch_buf.emplace_back(key, OpValue(thread, value_counter++));
      for (std::uint64_t e = 1; e < batch_size; ++e) {
        batch_buf.emplace_back(
            1 + static_cast<Key>(rng.NextBounded(params.keys)),
            OpValue(thread, value_counter++));
      }
      const auto invoke = recorder.Clock().Tick();
      map.PutBatch(batch_buf);
      const auto response = recorder.Clock().Tick();
      for (std::size_t e = 0; e < batch_buf.size(); ++e) {
        bool last_occurrence = true;
        for (std::size_t l = e + 1; l < batch_buf.size(); ++l) {
          if (batch_buf[l].first == batch_buf[e].first) {
            last_occurrence = false;
            break;
          }
        }
        if (!last_occurrence) continue;
        FuzzOp entry_op;
        entry_op.thread = thread;
        entry_op.kind = FuzzOp::Kind::kPut;
        entry_op.key = batch_buf[e].first;
        entry_op.value = batch_buf[e].second;
        entry_op.invoke = invoke;
        entry_op.response = response;
        recorder.Record(thread, std::move(entry_op));
      }
      continue;
    } else {
      op.kind = FuzzOp::Kind::kScan;
      const std::uint64_t span = 1 + rng.NextBounded(params.max_scan_span);
      op.to_key = std::min<Key>(key + static_cast<Key>(span) - 1,
                                static_cast<Key>(params.keys));
      op.invoke = recorder.Clock().Tick();
      map.Scan(op.key, op.to_key, scan_buf);
      op.response = recorder.Clock().Tick();
      op.scan_result.assign(scan_buf.begin(), scan_buf.end());
    }
    recorder.Record(thread, std::move(op));
  }
}

}  // namespace

RoundResult RunRound(const RoundParams& params) {
  Schedule schedule =
      Schedule::FromSeed(params.seed).WithActiveMask(params.site_mask);
  for (const RoundParams::SiteOverride& f : params.forced_sites) {
    if (f.site < TestHooks::kSiteCount) schedule.sites[f.site] = f.config;
  }
  RoundResult result;
  result.schedule = schedule.Describe();

  std::vector<KiWiMap::Entry> preload;
  for (std::uint32_t k = 1; k <= params.preload && k <= params.keys; ++k) {
    preload.emplace_back(static_cast<Key>(k), static_cast<Value>(k));
  }

  KiWiConfig config;
  config.chunk_capacity = params.chunk_capacity;
  config.max_engaged_chunks = params.max_engaged_chunks;
  KiWiMap map(std::span<const KiWiMap::Entry>(preload), config);

  Recorder recorder(params.threads);
  recorder.Reserve(params.ops_per_thread);
  {
    TestHooks::ScopedMutants mutants(params.mutants);
    PerturbationEngine engine(schedule);
    std::vector<std::thread> workers;
    workers.reserve(params.threads);
    for (std::uint32_t t = 0; t < params.threads; ++t) {
      workers.emplace_back(Worker, std::ref(map), std::ref(recorder),
                           std::cref(params), t);
    }
    for (std::thread& w : workers) w.join();
  }
  map.CheckInvariants();

  result.history = std::move(recorder).Merge();
  result.history.initial.assign(preload.begin(), preload.end());
  const CheckResult check = CheckHistory(result.history);
  result.ok = check.ok;
  result.message = check.message;
  if (!result.ok) result.debug_report = map.DebugReport().ToText();
  return result;
}

namespace {

/// True if `params` fails at least once within `retries` attempts.
bool Refails(const RoundParams& params, std::uint32_t retries,
             std::uint32_t& rounds_spent, std::uint32_t max_rounds) {
  for (std::uint32_t i = 0; i < retries; ++i) {
    if (rounds_spent >= max_rounds) return false;
    ++rounds_spent;
    if (!RunRound(params).ok) return true;
  }
  return false;
}

}  // namespace

MinimizeResult Minimize(const RoundParams& failing, std::uint32_t retries,
                        std::uint32_t max_rounds) {
  MinimizeResult out;
  out.params = failing;
  out.site_mask =
      Schedule::FromSeed(failing.seed).ActiveMask() & failing.site_mask;
  out.params.site_mask = out.site_mask;

  if (!Refails(out.params, retries, out.rounds_spent, max_rounds)) {
    return out;  // reproduced == false
  }
  out.reproduced = true;

  // Greedily drop one active site at a time; keep a drop when the failure
  // still fires without it.
  for (std::size_t i = 0; i < TestHooks::kSiteCount; ++i) {
    const std::uint64_t bit = std::uint64_t{1} << i;
    if ((out.site_mask & bit) == 0) continue;
    RoundParams candidate = out.params;
    candidate.site_mask = out.site_mask & ~bit;
    if (Refails(candidate, retries, out.rounds_spent, max_rounds)) {
      out.site_mask = candidate.site_mask;
      out.params.site_mask = out.site_mask;
    }
  }

  // Then shrink the op window while the failure still reproduces.
  while (out.params.ops_per_thread > 8) {
    RoundParams candidate = out.params;
    candidate.ops_per_thread = out.params.ops_per_thread / 2;
    if (!Refails(candidate, retries, out.rounds_spent, max_rounds)) break;
    out.params = candidate;
  }
  return out;
}

std::optional<std::string> DumpFailureArtifacts(const RoundParams& params,
                                                const RoundResult& result,
                                                std::string dir) {
  if (dir.empty()) {
    if (const char* env = std::getenv("KIWI_FUZZ_ARTIFACT_DIR")) dir = env;
  }
  if (dir.empty()) dir = "/tmp/kiwi_fuzz_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;

  std::ostringstream name;
  name << "kiwi_fuzz_seed_0x" << std::hex << params.seed;
  const std::string base = dir + "/" + name.str();

  std::ofstream out(base + ".txt");
  if (!out) return std::nullopt;
  out << "# kiwi_fuzz failure artifact\n"
      << "# repro: KIWI_FUZZ_SEED=" << params.seed << " kiwi_fuzz --seed="
      << params.seed << " --threads=" << params.threads << " --ops="
      << params.ops_per_thread << " --keys=" << params.keys
      << " --chunk-capacity=" << params.chunk_capacity
      << " --mix=" << params.put_pct << ":" << params.remove_pct << ":"
      << params.get_pct << " --max-engaged=" << params.max_engaged_chunks;
  if (params.batch_pct != 0) {
    out << " --batch-pct=" << params.batch_pct
        << " --batch-max=" << params.max_batch;
  }
  if (params.site_mask != ~std::uint64_t{0}) {
    out << " --site-mask=0x" << std::hex << params.site_mask << std::dec;
  }
  if (params.mutants != 0) {
    out << " --mutant-mask=0x" << std::hex << params.mutants << std::dec;
  }
  for (const RoundParams::SiteOverride& f : params.forced_sites) {
    out << " --force-site=" << f.site << ":" << ActionName(f.config.action)
        << ":" << static_cast<unsigned>(f.config.probability_pct) << ":"
        << f.config.intensity;
  }
  out << "\n\n"
      << "violation: " << result.message << "\n"
      << "schedule:  " << result.schedule << "\n\n"
      << "== history ==\n"
      << result.history.Dump() << "\n"
      << "== debug report ==\n"
      << result.debug_report << "\n";
  out.close();

  // Perfetto-compatible trace when tracing is compiled in; best-effort.
#if KIWI_TRACE_ENABLED
  obs::trace::DumpTraceToFile((base + ".trace.json").c_str());
#endif
  return base + ".txt";
}

}  // namespace kiwi::fuzz
