// Round runner, schedule minimizer and failure-artifact writer for the
// linearizability fuzzer (driver binary: src/fuzz/main.cpp; in-test use:
// tests/fuzz_harness_test.cpp).
//
// One *round* = one fresh KiWiMap (small chunks so rebalance fires
// constantly), preloaded keys, N worker threads running a random op mix
// (put/get/remove/scan) under one seeded perturbation schedule, recording a
// full history that CheckHistory() then validates.  Every written value is
// globally unique so the checker's scan cut layer applies.
//
// Replay: RoundParams + seed fully determine the schedule and every
// thread's op stream; KIWI_FUZZ_SEED=<seed> re-runs one seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/checker.h"
#include "fuzz/history.h"
#include "fuzz/schedule.h"

namespace kiwi::fuzz {

struct RoundParams {
  std::uint64_t seed = 1;
  std::uint32_t threads = 4;
  /// Ops per thread.  Keep threads*ops/keys comfortably under the checker's
  /// 63-overlapping-op window cap (see linearizability.h); the defaults
  /// leave a ~2x margin even if one stalled op merges a whole key's history
  /// into a single window.
  std::uint32_t ops_per_thread = 100;
  std::uint32_t keys = 16;
  /// Keys preloaded (bulk constructor) before the round: key i -> unique
  /// value, for i in [0, preload).
  std::uint32_t preload = 8;
  std::uint32_t chunk_capacity = 8;
  /// KiWiConfig::max_engaged_chunks for the round.  The engage-consensus
  /// disagreement window only opens on a *cap* seal (policy-based seals are
  /// arithmetically consistent across helpers), so a low cap over a sparse
  /// merge-heavy keyspace is what exercises the last_engaged consensus.
  std::uint32_t max_engaged_chunks = 8;
  /// Widest scan range drawn (inclusive key span).
  std::uint32_t max_scan_span = 4;
  /// Op mix in percent; the remainder after put+remove+get+batch is the
  /// scan share.  Remove-heavy mixes produce sparse chunks and therefore
  /// chunk *merges* — required to exercise the multi-chunk engage consensus.
  std::uint32_t put_pct = 35;
  std::uint32_t remove_pct = 15;
  std::uint32_t get_pct = 30;
  /// PutBatch share of the mix.  Each batch op draws 1..max_batch keys
  /// (duplicates allowed — the raw batch goes to PutBatch unmodified) and
  /// records every surviving entry (duplicate keys: last occurrence) as an
  /// individual put sharing the batch's invoke/response window, which is
  /// exactly the linearization contract (each entry linearizes on its own
  /// inside the call).  Default 0 keeps legacy seeds' op streams intact;
  /// the kiwi_fuzz driver and CI sweeps opt in via --batch-pct.
  std::uint32_t batch_pct = 0;
  std::uint32_t max_batch = 6;
  /// Run the round over KiWiByteMap instead of the int64 KiWiMap: logical
  /// keys map through an order-preserving byte codec whose keys all share
  /// one 8-byte prefix ("fuzzkey:") plus a fixed-width decimal and a
  /// variable-length suffix, so *every* key comparison falls through the
  /// cell prefix to the arena memcmp — the byte layout's distinctive path.
  /// Values encode as 8-byte big-endian (embedded NULs included).  The
  /// recorded history and the checker stay in the logical int64 domain, so
  /// one checker covers both layouts.
  bool byte_keys = false;
  /// Mutant mask installed for the round (TestHooks::Mutant bits).
  std::uint32_t mutants = 0;
  /// Restrict the seed-derived schedule to these sites (bit i = site i in
  /// TestHooks::AllSites() order); default leaves the schedule as drawn.
  /// The minimizer shrinks failures by clearing bits here.
  std::uint64_t site_mask = ~std::uint64_t{0};
  /// Directed mode: pin these sites to fixed configs after the seed-derived
  /// schedule (and site_mask) are applied.  Used to aim the fuzzer at one
  /// race window whose natural firing rate is too low for a sweep — e.g.
  /// the engage-consensus mutant smoke.  Forced sites are exempt from
  /// minimization (the minimizer only clears site_mask bits).
  struct SiteOverride {
    std::uint32_t site = 0;
    SiteConfig config;
  };
  std::vector<SiteOverride> forced_sites;
};

struct RoundResult {
  bool ok = true;
  std::string message;    // checker message (or assert text) when !ok
  History history;        // recorded history (moved out for artifacts)
  std::string schedule;   // Schedule::Describe() of what ran
  /// Map DebugReport text, captured before teardown when the check failed.
  std::string debug_report;
};

/// Run one seeded round: build the map, perturb, record, check.
RoundResult RunRound(const RoundParams& params);

/// Shrink a failing round: greedily mask schedule sites off, then halve
/// ops_per_thread, re-running each candidate `retries` times (failures are
/// probabilistic — a candidate counts as still-failing if any retry fails).
/// Returns the smallest params that still failed, and how many rounds were
/// spent.
struct MinimizeResult {
  RoundParams params;
  std::uint64_t site_mask;  // minimized active-site mask
  std::uint32_t rounds_spent = 0;
  bool reproduced = false;  // false: original failure never re-fired
};
MinimizeResult Minimize(const RoundParams& failing, std::uint32_t retries,
                        std::uint32_t max_rounds);

/// Write the failure artifacts for a round into `dir` (created if needed):
/// history dump, map DebugReport text, Perfetto trace (when tracing is
/// compiled in) and a repro line.  Returns the artifact file path written,
/// or nullopt on I/O failure.  `dir` defaults from KIWI_FUZZ_ARTIFACT_DIR,
/// then /tmp.
std::optional<std::string> DumpFailureArtifacts(const RoundParams& params,
                                                const RoundResult& result,
                                                std::string dir = {});

}  // namespace kiwi::fuzz
