// Seeded schedule perturbation for the linearizability fuzzer.
//
// A Schedule maps every TestHooks site to an action (off / yield / short
// sleep / spin) with a firing probability and intensity, all derived
// deterministically from one 64-bit seed.  PerturbationEngine installs a
// trampoline at each active site; when a thread passes the site, a
// thread-local PRNG (seeded from the schedule seed and a deterministic
// thread ordinal) decides whether and how hard to stall.
//
// Determinism: the same seed always produces the same schedule and the same
// per-thread decision streams.  The OS still schedules threads, so replay
// reproduces the *distribution* of interleavings, not one exact execution —
// in practice failing seeds re-fail within a few iterations (CI replays with
// the seed's full round budget).
//
// The minimizer (fuzz/fuzzer.h) shrinks a failing schedule by masking sites
// off, which is why actions are per-site rather than global.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/test_hooks.h"

namespace kiwi::fuzz {

enum class SiteAction : std::uint8_t { kOff, kYield, kSleep, kSpin };

/// "off" / "yield" / "sleep" / "spin" (repro lines, --force-site specs).
const char* ActionName(SiteAction a);

struct SiteConfig {
  SiteAction action = SiteAction::kOff;
  /// Probability (percent, 0-100) that a pass through the site stalls.
  std::uint8_t probability_pct = 0;
  /// Action strength: yield repetitions, sleep microseconds, or spin
  /// iterations (x64 pause-loop steps).
  std::uint32_t intensity = 0;
};

struct Schedule {
  std::uint64_t seed = 0;
  std::array<SiteConfig, TestHooks::kSiteCount> sites;

  /// Derive a full schedule from a seed.  Roughly half the sites end up
  /// active; actions and strengths are drawn per site.
  static Schedule FromSeed(std::uint64_t seed);

  /// Bitmask of active (non-kOff) sites, for minimization bookkeeping.
  std::uint64_t ActiveMask() const;

  /// Turn the masked-out sites off (minimizer support).
  Schedule WithActiveMask(std::uint64_t mask) const;

  /// One-line human rendering, e.g. "seed=0xdead sites: 0:yield(p40,i3) ...".
  std::string Describe() const;
};

/// Installs the schedule into TestHooks on construction, clears all sites on
/// destruction.  At most one engine may be live at a time (the trampolines
/// reference a single global).  Not thread-safe to construct/destruct while
/// worker threads are inside the map.
class PerturbationEngine {
 public:
  explicit PerturbationEngine(const Schedule& schedule);
  ~PerturbationEngine();

  PerturbationEngine(const PerturbationEngine&) = delete;
  PerturbationEngine& operator=(const PerturbationEngine&) = delete;

  /// Called by the per-site trampolines.
  void Fire(std::size_t site_index);

 private:
  Schedule schedule_;
};

}  // namespace kiwi::fuzz
