#include "fuzz/history.h"

#include <algorithm>
#include <sstream>

namespace kiwi::fuzz {

std::string History::Dump() const {
  std::vector<const FuzzOp*> by_invoke;
  by_invoke.reserve(ops.size());
  for (const FuzzOp& op : ops) by_invoke.push_back(&op);
  std::sort(by_invoke.begin(), by_invoke.end(),
            [](const FuzzOp* a, const FuzzOp* b) {
              return a->invoke < b->invoke;
            });

  std::ostringstream os;
  os << "# history: " << ops.size() << " ops, " << initial.size()
     << " preloaded keys\n";
  if (!initial.empty()) {
    os << "# preload:";
    for (const auto& [k, v] : initial) os << " " << k << "=" << v;
    os << "\n";
  }
  for (const FuzzOp* op : by_invoke) {
    os << "[" << op->invoke << "," << op->response << "] t" << op->thread
       << " ";
    switch (op->kind) {
      case FuzzOp::Kind::kPut:
        os << "put " << op->key << "=" << op->value;
        break;
      case FuzzOp::Kind::kGet:
        os << "get " << op->key << " -> ";
        if (op->found) {
          os << op->value;
        } else {
          os << "miss";
        }
        break;
      case FuzzOp::Kind::kRemove:
        os << "remove " << op->key << " -> "
           << (op->found ? "hit" : "miss");
        break;
      case FuzzOp::Kind::kScan:
        os << "scan [" << op->key << "," << op->to_key << "] ->";
        for (const auto& [k, v] : op->scan_result) {
          os << " " << k << "=" << v;
        }
        if (op->scan_result.empty()) os << " (empty)";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace kiwi::fuzz
