file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy.dir/ablation_policy.cpp.o"
  "CMakeFiles/ablation_policy.dir/ablation_policy.cpp.o.d"
  "ablation_policy"
  "ablation_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
