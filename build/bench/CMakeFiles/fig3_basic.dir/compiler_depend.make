# Empty compiler generated dependencies file for fig3_basic.
# This may be replaced when dependencies are built.
