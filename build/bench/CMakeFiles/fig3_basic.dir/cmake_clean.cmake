file(REMOVE_RECURSE
  "CMakeFiles/fig3_basic.dir/fig3_basic.cpp.o"
  "CMakeFiles/fig3_basic.dir/fig3_basic.cpp.o.d"
  "fig3_basic"
  "fig3_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
