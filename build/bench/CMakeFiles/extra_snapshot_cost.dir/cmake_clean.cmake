file(REMOVE_RECURSE
  "CMakeFiles/extra_snapshot_cost.dir/extra_snapshot_cost.cpp.o"
  "CMakeFiles/extra_snapshot_cost.dir/extra_snapshot_cost.cpp.o.d"
  "extra_snapshot_cost"
  "extra_snapshot_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_snapshot_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
