# Empty dependencies file for extra_snapshot_cost.
# This may be replaced when dependencies are built.
