# Empty compiler generated dependencies file for fig6_ordered.
# This may be replaced when dependencies are built.
