file(REMOVE_RECURSE
  "CMakeFiles/fig6_ordered.dir/fig6_ordered.cpp.o"
  "CMakeFiles/fig6_ordered.dir/fig6_ordered.cpp.o.d"
  "fig6_ordered"
  "fig6_ordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
