file(REMOVE_RECURSE
  "CMakeFiles/ablation_chunk_size.dir/ablation_chunk_size.cpp.o"
  "CMakeFiles/ablation_chunk_size.dir/ablation_chunk_size.cpp.o.d"
  "ablation_chunk_size"
  "ablation_chunk_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
