file(REMOVE_RECURSE
  "CMakeFiles/fig4_mixed.dir/fig4_mixed.cpp.o"
  "CMakeFiles/fig4_mixed.dir/fig4_mixed.cpp.o.d"
  "fig4_mixed"
  "fig4_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
