# Empty dependencies file for fig4_mixed.
# This may be replaced when dependencies are built.
