
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ctrie/hash_trie.cpp" "src/CMakeFiles/kiwi.dir/baselines/ctrie/hash_trie.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/baselines/ctrie/hash_trie.cpp.o.d"
  "/root/repo/src/baselines/kary/kary_tree.cpp" "src/CMakeFiles/kiwi.dir/baselines/kary/kary_tree.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/baselines/kary/kary_tree.cpp.o.d"
  "/root/repo/src/baselines/skiplist/skiplist.cpp" "src/CMakeFiles/kiwi.dir/baselines/skiplist/skiplist.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/baselines/skiplist/skiplist.cpp.o.d"
  "/root/repo/src/baselines/snaptree/cow_tree.cpp" "src/CMakeFiles/kiwi.dir/baselines/snaptree/cow_tree.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/baselines/snaptree/cow_tree.cpp.o.d"
  "/root/repo/src/common/thread_registry.cpp" "src/CMakeFiles/kiwi.dir/common/thread_registry.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/common/thread_registry.cpp.o.d"
  "/root/repo/src/core/chunk.cpp" "src/CMakeFiles/kiwi.dir/core/chunk.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/core/chunk.cpp.o.d"
  "/root/repo/src/core/kiwi_map.cpp" "src/CMakeFiles/kiwi.dir/core/kiwi_map.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/core/kiwi_map.cpp.o.d"
  "/root/repo/src/core/rebalance.cpp" "src/CMakeFiles/kiwi.dir/core/rebalance.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/core/rebalance.cpp.o.d"
  "/root/repo/src/core/version.cpp" "src/CMakeFiles/kiwi.dir/core/version.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/core/version.cpp.o.d"
  "/root/repo/src/harness/driver.cpp" "src/CMakeFiles/kiwi.dir/harness/driver.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/harness/driver.cpp.o.d"
  "/root/repo/src/harness/linearizability.cpp" "src/CMakeFiles/kiwi.dir/harness/linearizability.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/harness/linearizability.cpp.o.d"
  "/root/repo/src/harness/metrics.cpp" "src/CMakeFiles/kiwi.dir/harness/metrics.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/harness/metrics.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/kiwi.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/harness/workload.cpp.o.d"
  "/root/repo/src/index/chunk_index.cpp" "src/CMakeFiles/kiwi.dir/index/chunk_index.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/index/chunk_index.cpp.o.d"
  "/root/repo/src/reclaim/ebr.cpp" "src/CMakeFiles/kiwi.dir/reclaim/ebr.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/reclaim/ebr.cpp.o.d"
  "/root/repo/src/reclaim/hazard.cpp" "src/CMakeFiles/kiwi.dir/reclaim/hazard.cpp.o" "gcc" "src/CMakeFiles/kiwi.dir/reclaim/hazard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
