# Empty dependencies file for kiwi.
# This may be replaced when dependencies are built.
