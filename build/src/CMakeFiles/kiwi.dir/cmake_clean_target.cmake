file(REMOVE_RECURSE
  "libkiwi.a"
)
