# Empty dependencies file for snapshot_backup.
# This may be replaced when dependencies are built.
