file(REMOVE_RECURSE
  "CMakeFiles/snapshot_backup.dir/snapshot_backup.cpp.o"
  "CMakeFiles/snapshot_backup.dir/snapshot_backup.cpp.o.d"
  "snapshot_backup"
  "snapshot_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
