file(REMOVE_RECURSE
  "CMakeFiles/analytics_dashboard.dir/analytics_dashboard.cpp.o"
  "CMakeFiles/analytics_dashboard.dir/analytics_dashboard.cpp.o.d"
  "analytics_dashboard"
  "analytics_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
