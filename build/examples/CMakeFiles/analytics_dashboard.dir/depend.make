# Empty dependencies file for analytics_dashboard.
# This may be replaced when dependencies are built.
