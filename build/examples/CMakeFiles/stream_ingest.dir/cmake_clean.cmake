file(REMOVE_RECURSE
  "CMakeFiles/stream_ingest.dir/stream_ingest.cpp.o"
  "CMakeFiles/stream_ingest.dir/stream_ingest.cpp.o.d"
  "stream_ingest"
  "stream_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
