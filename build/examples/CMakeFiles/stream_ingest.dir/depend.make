# Empty dependencies file for stream_ingest.
# This may be replaced when dependencies are built.
