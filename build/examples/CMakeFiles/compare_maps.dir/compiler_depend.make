# Empty compiler generated dependencies file for compare_maps.
# This may be replaced when dependencies are built.
