file(REMOVE_RECURSE
  "CMakeFiles/compare_maps.dir/compare_maps.cpp.o"
  "CMakeFiles/compare_maps.dir/compare_maps.cpp.o.d"
  "compare_maps"
  "compare_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
