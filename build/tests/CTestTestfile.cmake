# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/reclaim_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/chunk_test[1]_include.cmake")
include("/root/repo/build/tests/version_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/kiwi_map_test[1]_include.cmake")
include("/root/repo/build/tests/kiwi_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/skiplist_test[1]_include.cmake")
include("/root/repo/build/tests/kary_test[1]_include.cmake")
include("/root/repo/build/tests/snaptree_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_property_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/hash_trie_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/kiwi_whitebox_test[1]_include.cmake")
include("/root/repo/build/tests/kiwi_race_injection_test[1]_include.cmake")
include("/root/repo/build/tests/kiwi_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/kary_param_test[1]_include.cmake")
include("/root/repo/build/tests/kiwi_bulkload_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_render_test[1]_include.cmake")
include("/root/repo/build/tests/cowtree_param_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
