file(REMOVE_RECURSE
  "CMakeFiles/metrics_render_test.dir/metrics_render_test.cpp.o"
  "CMakeFiles/metrics_render_test.dir/metrics_render_test.cpp.o.d"
  "metrics_render_test"
  "metrics_render_test.pdb"
  "metrics_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
