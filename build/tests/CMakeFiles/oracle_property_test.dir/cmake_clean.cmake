file(REMOVE_RECURSE
  "CMakeFiles/oracle_property_test.dir/oracle_property_test.cpp.o"
  "CMakeFiles/oracle_property_test.dir/oracle_property_test.cpp.o.d"
  "oracle_property_test"
  "oracle_property_test.pdb"
  "oracle_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
