# Empty dependencies file for hash_trie_test.
# This may be replaced when dependencies are built.
