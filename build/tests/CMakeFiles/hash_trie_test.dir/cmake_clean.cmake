file(REMOVE_RECURSE
  "CMakeFiles/hash_trie_test.dir/hash_trie_test.cpp.o"
  "CMakeFiles/hash_trie_test.dir/hash_trie_test.cpp.o.d"
  "hash_trie_test"
  "hash_trie_test.pdb"
  "hash_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
