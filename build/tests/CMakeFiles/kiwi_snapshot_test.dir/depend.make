# Empty dependencies file for kiwi_snapshot_test.
# This may be replaced when dependencies are built.
