file(REMOVE_RECURSE
  "CMakeFiles/kiwi_snapshot_test.dir/kiwi_snapshot_test.cpp.o"
  "CMakeFiles/kiwi_snapshot_test.dir/kiwi_snapshot_test.cpp.o.d"
  "kiwi_snapshot_test"
  "kiwi_snapshot_test.pdb"
  "kiwi_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiwi_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
