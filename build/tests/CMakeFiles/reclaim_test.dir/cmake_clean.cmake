file(REMOVE_RECURSE
  "CMakeFiles/reclaim_test.dir/reclaim_test.cpp.o"
  "CMakeFiles/reclaim_test.dir/reclaim_test.cpp.o.d"
  "reclaim_test"
  "reclaim_test.pdb"
  "reclaim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
