# Empty compiler generated dependencies file for reclaim_test.
# This may be replaced when dependencies are built.
