# Empty dependencies file for kiwi_map_test.
# This may be replaced when dependencies are built.
