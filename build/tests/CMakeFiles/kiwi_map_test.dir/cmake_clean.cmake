file(REMOVE_RECURSE
  "CMakeFiles/kiwi_map_test.dir/kiwi_map_test.cpp.o"
  "CMakeFiles/kiwi_map_test.dir/kiwi_map_test.cpp.o.d"
  "kiwi_map_test"
  "kiwi_map_test.pdb"
  "kiwi_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiwi_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
