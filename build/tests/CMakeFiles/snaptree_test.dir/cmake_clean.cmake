file(REMOVE_RECURSE
  "CMakeFiles/snaptree_test.dir/snaptree_test.cpp.o"
  "CMakeFiles/snaptree_test.dir/snaptree_test.cpp.o.d"
  "snaptree_test"
  "snaptree_test.pdb"
  "snaptree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snaptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
