# Empty dependencies file for snaptree_test.
# This may be replaced when dependencies are built.
