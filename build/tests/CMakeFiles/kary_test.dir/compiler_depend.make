# Empty compiler generated dependencies file for kary_test.
# This may be replaced when dependencies are built.
