file(REMOVE_RECURSE
  "CMakeFiles/kary_test.dir/kary_test.cpp.o"
  "CMakeFiles/kary_test.dir/kary_test.cpp.o.d"
  "kary_test"
  "kary_test.pdb"
  "kary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
