file(REMOVE_RECURSE
  "CMakeFiles/version_test.dir/version_test.cpp.o"
  "CMakeFiles/version_test.dir/version_test.cpp.o.d"
  "version_test"
  "version_test.pdb"
  "version_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
