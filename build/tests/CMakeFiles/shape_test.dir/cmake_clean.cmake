file(REMOVE_RECURSE
  "CMakeFiles/shape_test.dir/shape_test.cpp.o"
  "CMakeFiles/shape_test.dir/shape_test.cpp.o.d"
  "shape_test"
  "shape_test.pdb"
  "shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
