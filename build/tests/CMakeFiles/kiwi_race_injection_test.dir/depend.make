# Empty dependencies file for kiwi_race_injection_test.
# This may be replaced when dependencies are built.
