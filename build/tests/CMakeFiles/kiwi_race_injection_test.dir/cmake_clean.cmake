file(REMOVE_RECURSE
  "CMakeFiles/kiwi_race_injection_test.dir/kiwi_race_injection_test.cpp.o"
  "CMakeFiles/kiwi_race_injection_test.dir/kiwi_race_injection_test.cpp.o.d"
  "kiwi_race_injection_test"
  "kiwi_race_injection_test.pdb"
  "kiwi_race_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiwi_race_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
