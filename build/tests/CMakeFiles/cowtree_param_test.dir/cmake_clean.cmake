file(REMOVE_RECURSE
  "CMakeFiles/cowtree_param_test.dir/cowtree_param_test.cpp.o"
  "CMakeFiles/cowtree_param_test.dir/cowtree_param_test.cpp.o.d"
  "cowtree_param_test"
  "cowtree_param_test.pdb"
  "cowtree_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowtree_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
