# Empty dependencies file for cowtree_param_test.
# This may be replaced when dependencies are built.
