# Empty dependencies file for kiwi_whitebox_test.
# This may be replaced when dependencies are built.
