file(REMOVE_RECURSE
  "CMakeFiles/kiwi_whitebox_test.dir/kiwi_whitebox_test.cpp.o"
  "CMakeFiles/kiwi_whitebox_test.dir/kiwi_whitebox_test.cpp.o.d"
  "kiwi_whitebox_test"
  "kiwi_whitebox_test.pdb"
  "kiwi_whitebox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiwi_whitebox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
