file(REMOVE_RECURSE
  "CMakeFiles/kary_param_test.dir/kary_param_test.cpp.o"
  "CMakeFiles/kary_param_test.dir/kary_param_test.cpp.o.d"
  "kary_param_test"
  "kary_param_test.pdb"
  "kary_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kary_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
