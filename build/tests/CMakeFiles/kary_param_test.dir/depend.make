# Empty dependencies file for kary_param_test.
# This may be replaced when dependencies are built.
