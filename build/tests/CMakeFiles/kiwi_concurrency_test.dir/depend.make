# Empty dependencies file for kiwi_concurrency_test.
# This may be replaced when dependencies are built.
