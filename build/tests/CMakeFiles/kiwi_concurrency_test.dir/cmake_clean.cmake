file(REMOVE_RECURSE
  "CMakeFiles/kiwi_concurrency_test.dir/kiwi_concurrency_test.cpp.o"
  "CMakeFiles/kiwi_concurrency_test.dir/kiwi_concurrency_test.cpp.o.d"
  "kiwi_concurrency_test"
  "kiwi_concurrency_test.pdb"
  "kiwi_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiwi_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
