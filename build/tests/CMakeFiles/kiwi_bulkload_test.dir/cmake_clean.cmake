file(REMOVE_RECURSE
  "CMakeFiles/kiwi_bulkload_test.dir/kiwi_bulkload_test.cpp.o"
  "CMakeFiles/kiwi_bulkload_test.dir/kiwi_bulkload_test.cpp.o.d"
  "kiwi_bulkload_test"
  "kiwi_bulkload_test.pdb"
  "kiwi_bulkload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiwi_bulkload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
