# Empty compiler generated dependencies file for kiwi_bulkload_test.
# This may be replaced when dependencies are built.
