// Real-time analytics dashboard — the paper's motivating scenario (§1):
// a Flurry-style pipeline where ingestion threads stream metric updates
// into the map while analytics threads concurrently compute aggregate
// reports over key ranges.
//
// Keyspace layout: key = app_id * kMetricSlots + metric_slot, so one app's
// metrics occupy a contiguous range and a per-app report is a range scan.
//
// The consistency KiWi guarantees (and this example checks): every app
// updates its metrics so their SUM is invariant (it moves counts between
// buckets).  Because scans are atomic, every report sees the invariant sum
// — a non-atomic map would routinely report torn totals.
//
//   $ ./build/examples/analytics_dashboard [seconds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/kiwi_map.h"

using kiwi::Key;
using kiwi::Value;
using kiwi::Xoshiro256;
using kiwi::core::KiWiMap;

namespace {

constexpr Key kApps = 200;
constexpr Key kMetricSlots = 64;
constexpr Value kBudgetPerApp = 1000;  // invariant sum per app

Key SlotKey(Key app, Key slot) { return app * kMetricSlots + slot; }

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  KiWiMap map;

  // Seed every app: the whole budget in slot 0.
  for (Key app = 0; app < kApps; ++app) {
    map.Put(SlotKey(app, 0), kBudgetPerApp);
    for (Key slot = 1; slot < kMetricSlots; ++slot) {
      map.Put(SlotKey(app, slot), 0);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};

  // Ingestion: move small amounts between two metric slots of one app.
  // Each writer owns a disjoint set of apps (ownership sharding, as real
  // ingestion pipelines do), so a transfer is two uncontended puts.  The
  // two puts are separate linearization points, so an atomic scan may catch
  // the midpoint of at most ONE in-flight transfer — the aggregate can be
  // off by at most a single transfer amount, and never drifts.  A
  // non-atomic scan has no such bound: it can interleave with arbitrarily
  // many transfers and even observe one slot twice at different times.
  std::vector<std::thread> ingesters;
  const unsigned n_ingest = 3;
  for (unsigned t = 0; t < n_ingest; ++t) {
    ingesters.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const Key app = t + n_ingest * rng.NextBounded(kApps / n_ingest);
        const Key from_slot = rng.NextBounded(kMetricSlots);
        const Key to_slot = rng.NextBounded(kMetricSlots);
        if (from_slot == to_slot) continue;
        const Value source =
            map.Get(SlotKey(app, from_slot)).value_or(0);
        if (source <= 0) continue;
        const Value amount = 1 + static_cast<Value>(
                                     rng.NextBounded(source > 8 ? 8 : source));
        // Two puts; a scan may land between them and see the app's total
        // off by at most `amount` (bounded tear on the *aggregate*, never a
        // torn individual value, and never drift: the next scan re-sees a
        // consistent total).
        map.Put(SlotKey(app, from_slot), source - amount);
        const Value target = map.Get(SlotKey(app, to_slot)).value_or(0);
        map.Put(SlotKey(app, to_slot), target + amount);
        ingested.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Analytics: per-app reports via atomic range scans.
  std::atomic<std::uint64_t> reports{0};
  std::atomic<std::uint64_t> max_observed_deviation{0};
  std::thread analyst([&] {
    Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const Key app = rng.NextBounded(kApps);
      Value sum = 0;
      std::size_t slots = 0;
      map.Scan(SlotKey(app, 0), SlotKey(app, kMetricSlots - 1),
               [&](Key, Value v) {
                 sum += v;
                 ++slots;
               });
      const std::uint64_t deviation =
          sum > kBudgetPerApp ? sum - kBudgetPerApp : kBudgetPerApp - sum;
      // Atomicity bound: at most one in-flight transfer can straddle the
      // snapshot, so the deviation never exceeds one transfer (8).
      if (deviation > 8) {
        std::printf("CONSISTENCY VIOLATION: app %lld sum %lld (slots %zu)\n",
                    static_cast<long long>(app), static_cast<long long>(sum),
                    slots);
        std::exit(1);
      }
      std::uint64_t seen = max_observed_deviation.load();
      while (deviation > seen &&
             !max_observed_deviation.compare_exchange_weak(seen, deviation)) {
      }
      reports.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& thread : ingesters) thread.join();
  analyst.join();

  std::printf("dashboard ran %.1fs: %llu transfers ingested, %llu atomic "
              "reports served, max aggregate deviation %llu (bound 8)\n",
              seconds,
              static_cast<unsigned long long>(ingested.load()),
              static_cast<unsigned long long>(reports.load()),
              static_cast<unsigned long long>(max_observed_deviation.load()));
  std::printf("map: %zu keys in %zu chunks, %zu bytes\n", map.Size(),
              map.ChunkCount(), map.MemoryFootprint());
  return 0;
}
