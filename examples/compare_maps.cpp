// Side-by-side comparison of every map in the repository on one workload —
// a miniature of the paper's Figure 4 mixed scenario, driven through the
// uniform IOrderedMap interface and the synchrobench-like harness.
//
//   $ ./build/examples/compare_maps [dataset_size]
//
// Expected shape (paper §6.2): KiWi leads scans by a wide margin while
// keeping puts competitive; the k-ary tree's scans suffer restarts; the
// skiplist's scans are fast but NOT atomic; SnapTree trades put throughput
// for snapshot iteration.
#include <cstdio>
#include <cstdlib>

#include "harness/driver.h"
#include "harness/workload.h"

using namespace kiwi;

int main(int argc, char** argv) {
  const std::uint64_t dataset =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const std::uint64_t key_range = dataset * 2;

  std::printf("mixed workload: 2 scan threads (4K ranges) + 2 put threads, "
              "%llu-key dataset\n\n",
              static_cast<unsigned long long>(dataset));
  std::printf("%-10s %15s %15s %12s %8s\n", "map", "scan keys/s", "put ops/s",
              "memory", "atomic");

  for (const api::MapKind kind :
       {api::MapKind::kKiWi, api::MapKind::kKaryTree, api::MapKind::kSkipList,
        api::MapKind::kSnapTree, api::MapKind::kLockedMap}) {
    auto map = api::MakeMap(kind);
    std::vector<harness::Role> roles{
        {"scan", 2, harness::WorkloadSpec::ScanOnly(key_range, 4096)},
        {"put", 2, harness::WorkloadSpec::PutOnly(key_range)}};
    harness::DriverOptions options = harness::DriverOptions::FromEnv();
    options.initial_size = dataset;
    options.measure_memory = true;
    const harness::RunResult result =
        harness::RunWorkload(*map, roles, options);
    std::printf("%-10s %15.0f %15.0f %9.2f MB %8s\n", map->Name().c_str(),
                result.Role("scan").KeysPerSec(),
                result.Role("put").OpsPerSec(),
                static_cast<double>(result.memory_bytes) / (1024.0 * 1024.0),
                map->Traits().atomic_scans ? "yes" : "NO");
  }
  std::printf("\n(skiplist scans are weakly consistent — fast but unusable "
              "for consistent analytics)\n");
  return 0;
}
