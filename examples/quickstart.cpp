// Quickstart: the KiWi map in five minutes.
//
//   $ ./build/examples/quickstart
//
// Covers the whole public API — Put/Get/Remove/Scan — then shows the one
// property that distinguishes KiWi from an ordinary concurrent map: scans
// are atomic snapshots even while writers are running.
#include <cstdio>
#include <thread>

#include "core/kiwi_map.h"

using kiwi::Key;
using kiwi::Value;
using kiwi::core::KiWiMap;

int main() {
  KiWiMap map;  // default config: 1024-cell chunks, paper's policy tuning

  // --- basic operations --------------------------------------------------
  map.Put(2021, 17);
  map.Put(2022, 23);
  map.Put(2023, 31);
  map.Put(2022, 24);  // overwrite
  map.Remove(2021);

  std::printf("get(2022) = %lld\n",
              static_cast<long long>(map.Get(2022).value_or(-1)));
  std::printf("get(2021) = %s (removed)\n",
              map.Get(2021).has_value() ? "present" : "absent");

  // --- range scans -------------------------------------------------------
  for (Key k = 0; k < 100; ++k) map.Put(k, k * k);
  std::printf("scan [10, 15]:");
  map.Scan(10, 15, [](Key k, Value v) {
    std::printf(" %lld->%lld", static_cast<long long>(k),
                static_cast<long long>(v));
  });
  std::printf("\n");

  // --- atomic scans under concurrent updates ------------------------------
  // A writer stamps keys 0..99 with a round number, in ascending order.
  // Because KiWi scans are linearizable snapshots, a scan can only ever see
  // two adjacent rounds: a prefix of round r and a suffix of r-1 — never a
  // mix from three rounds or an out-of-order interleaving.
  std::atomic<bool> stop{false};
  std::thread writer([&map, &stop] {
    for (Value round = 1; !stop.load(); ++round) {
      for (Key k = 0; k < 100; ++k) map.Put(k, round);
    }
  });

  std::size_t checked = 0;
  for (int i = 0; i < 1000; ++i) {
    Value low = -1, high = -1;
    map.Scan(0, 99, [&](Key, Value v) {
      if (high < 0) high = v;  // first (largest: writer sweeps ascending)
      low = v;                 // last
    });
    if (high - low > 1) {
      std::printf("TORN SNAPSHOT — this must never print\n");
      return 1;
    }
    ++checked;
  }
  stop.store(true);
  writer.join();
  std::printf("%zu concurrent scans, every one an atomic snapshot\n",
              checked);

  // --- introspection -------------------------------------------------------
  const kiwi::core::KiWiStats stats = map.Stats();
  std::printf("size=%zu chunks=%zu rebalances=%llu footprint=%zu bytes\n",
              map.Size(), map.ChunkCount(),
              static_cast<unsigned long long>(stats.rebalances),
              map.MemoryFootprint());
  return 0;
}
