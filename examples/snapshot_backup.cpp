// Consistent online backup — showcases the Snapshot view extension: a
// backup thread dumps the entire map at one read point, in several separate
// range reads with pauses in between, while writers keep mutating.  The
// dump is verified to be internally consistent (one linearization point)
// and the writers are verified to have run meanwhile (the backup blocked
// nobody).
//
//   $ ./build/examples/snapshot_backup
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/kiwi_map.h"

using kiwi::Key;
using kiwi::Value;
using kiwi::Xoshiro256;
using kiwi::core::KiWiMap;

namespace {
constexpr Key kKeys = 100'000;
constexpr Key kShards = 10;  // backup in 10 separate range reads
}  // namespace

int main() {
  KiWiMap map;
  // Every key starts at generation 0; writers bump whole-map generations in
  // ascending key order, so any consistent cut shows at most two adjacent
  // generations (prefix g, suffix g-1).
  for (Key k = 0; k < kKeys; ++k) map.Put(k, 0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};
  std::thread writer([&] {
    for (Value generation = 1; !stop.load(std::memory_order_acquire);
         ++generation) {
      for (Key k = 0; k < kKeys; ++k) {
        map.Put(k, generation);
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Wait for some churn, then back up shard by shard at ONE read point.
  while (writes.load(std::memory_order_relaxed) < kKeys / 2) {
    std::this_thread::yield();
  }
  std::vector<KiWiMap::Entry> backup;
  backup.reserve(kKeys);
  const std::uint64_t writes_before = writes.load();
  {
    KiWiMap::Snapshot snapshot(map);
    for (Key shard = 0; shard < kShards; ++shard) {
      const Key from = shard * (kKeys / kShards);
      const Key to = from + kKeys / kShards - 1;
      snapshot.Scan(from, to,
                    [&](Key k, Value v) { backup.emplace_back(k, v); });
      // Dawdle between shards — real backups write to disk here.
      std::this_thread::yield();
    }
    std::printf("backup of %zu keys at read point %llu (in %lld shards)\n",
                backup.size(),
                static_cast<unsigned long long>(snapshot.ReadPoint()),
                static_cast<long long>(kShards));
  }
  const std::uint64_t writes_during = writes.load() - writes_before;
  stop.store(true, std::memory_order_release);
  writer.join();

  // Verify: complete, ordered, and cut at a single linearization point.
  bool consistent = backup.size() == static_cast<std::size_t>(kKeys);
  Value previous = consistent ? backup.front().second : 0;
  for (std::size_t i = 0; consistent && i < backup.size(); ++i) {
    if (backup[i].first != static_cast<Key>(i)) consistent = false;
    if (backup[i].second > previous) consistent = false;  // generation rose
    previous = backup[i].second;
  }
  if (consistent && !backup.empty()) {
    consistent = backup.front().second - backup.back().second <= 1;
  }
  std::printf("writer made %llu puts during the backup — %s\n",
              static_cast<unsigned long long>(writes_during),
              writes_during > 0 ? "backup blocked nothing"
                                : "(writer got no cpu time)");
  std::printf("backup consistency: %s\n",
              consistent ? "OK — single linearization point across shards"
                         : "FAILED");
  return consistent ? 0 : 1;
}
