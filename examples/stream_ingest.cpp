// Time-series stream ingestion — the paper's "ordered workload" (§6.2) as
// an application: sensors append monotonically increasing timestamp keys
// (the insertion order that collapses unbalanced trees) while a dashboard
// thread keeps running sliding-window range queries over the freshest data.
//
// Demonstrates two KiWi properties at once:
//  * balanced behaviour under sequential insertion (splits keep access
//    logarithmic; the k-ary tree degenerates 730x here per the paper);
//  * wait-free windows: the tail scan never blocks or restarts no matter
//    how hot the ingest side runs.
//
//   $ ./build/examples/stream_ingest [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/kiwi_map.h"

using kiwi::Key;
using kiwi::Value;
using kiwi::core::KiWiMap;

namespace {

// key = timestamp_tick * kSensors + sensor_id: global order is time order,
// and each tick's readings are adjacent.
constexpr Key kSensors = 8;

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  KiWiMap map;

  std::atomic<bool> stop{false};
  std::atomic<Key> latest_tick{0};

  // One ingest thread per sensor, all appending at the head of time.
  std::vector<std::thread> sensors;
  std::atomic<std::uint64_t> samples{0};
  for (Key sensor = 0; sensor < kSensors; ++sensor) {
    sensors.emplace_back([&, sensor] {
      for (Key tick = 0; !stop.load(std::memory_order_acquire); ++tick) {
        // A fake reading: sensor id + tick-derived signal.
        map.Put(tick * kSensors + sensor,
                static_cast<Value>(sensor * 1000 + tick % 997));
        samples.fetch_add(1, std::memory_order_relaxed);
        // Publish progress (any sensor's tick is a fine watermark).
        if (sensor == 0) latest_tick.store(tick, std::memory_order_release);
      }
    });
  }

  // Dashboard: every pass, atomically read the last 256 ticks and compute
  // per-sensor sample counts + a checksum; a torn read would show a tick
  // with some sensors at one time base and others at a different one.
  std::uint64_t windows = 0;
  std::uint64_t window_samples = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    const Key tick = latest_tick.load(std::memory_order_acquire);
    if (tick < 300) continue;
    const Key window_from = (tick - 256) * kSensors;
    const Key window_to = tick * kSensors - 1;
    std::size_t count = 0;
    map.Scan(window_from, window_to, [&](Key, Value) { ++count; });
    window_samples += count;
    ++windows;
  }
  stop.store(true, std::memory_order_release);
  for (auto& sensor : sensors) sensor.join();

  std::printf("ingested %llu samples from %lld sensors (monotonic keys)\n",
              static_cast<unsigned long long>(samples.load()),
              static_cast<long long>(kSensors));
  std::printf("served %llu sliding windows (%.0f samples avg)\n",
              static_cast<unsigned long long>(windows),
              windows > 0 ? static_cast<double>(window_samples) / windows : 0);
  const kiwi::core::KiWiStats stats = map.Stats();
  std::printf("chunks=%zu rebalances(splits)=%llu — ordered insertion kept "
              "balanced\n",
              map.ChunkCount(),
              static_cast<unsigned long long>(stats.rebalances));
  return 0;
}
