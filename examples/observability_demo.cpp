// Observability demo: run a mixed workload against one KiWiMap, then print
// everything the map can report about itself.
//
//   $ ./build/examples/observability_demo
//
// Four writer threads overwrite a 200k-key space (one in eight operations a
// remove), two reader threads issue point gets, one analytics thread runs
// range scans, and one thread holds a Snapshot view open for the second
// half of the run (watch `snapshot_pins` and the version spread it causes).
// The final output is KiWiMap::DebugReport() in both renderings:
//
//   - ToText(): the human-readable block explained in docs/OBSERVABILITY.md
//   - ToJson(): the same data as one line of JSON (the schema the benches'
//     `obsjson,...` rows and scripts/render_results.py consume)
//
// With KIWI_TRACE_DUMP=<file> set, the flight recorder's merged rings are
// additionally exported as Perfetto-loadable JSON after the workload stops
// (summarize with scripts/trace_summary.py, or load in ui.perfetto.dev).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/kiwi_map.h"
#include "obs/trace.h"

using kiwi::Key;
using kiwi::Value;
using kiwi::core::KiWiMap;

namespace {

constexpr Key kKeyRange = 200'000;
constexpr auto kRunTime = std::chrono::milliseconds(400);

}  // namespace

int main() {
  KiWiMap map;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers: uniform overwrites, 1-in-8 removes.
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&map, &stop, w] {
      kiwi::Xoshiro256 rng(100 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(rng.NextBounded(kKeyRange));
        if (rng.NextBounded(8) == 0) {
          map.Remove(key);
        } else {
          map.Put(key, key + 1);
        }
      }
    });
  }

  // Readers: point gets.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&map, &stop, r] {
      kiwi::Xoshiro256 rng(200 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        map.Get(static_cast<Key>(rng.NextBounded(kKeyRange)));
      }
    });
  }

  // Analytics: 4k-key range scans.
  threads.emplace_back([&map, &stop] {
    kiwi::Xoshiro256 rng(300);
    std::vector<KiWiMap::Entry> out;
    while (!stop.load(std::memory_order_relaxed)) {
      const Key from = static_cast<Key>(rng.NextBounded(kKeyRange - 4096));
      map.Scan(from, from + 4095, out);
    }
  });

  // A consistent view held open across many queries for the second half of
  // the run: its pinned read point shows up in the `snapshot_pins` gauge
  // and forces rebalances to retain versions it may still read.
  threads.emplace_back([&map, &stop] {
    std::this_thread::sleep_for(kRunTime / 2);
    KiWiMap::Snapshot view(map);
    kiwi::Xoshiro256 rng(400);
    // The final report is taken while this view is open: snapshot_pins=1.
    while (!stop.load(std::memory_order_relaxed)) {
      view.Get(static_cast<Key>(rng.NextBounded(kKeyRange)));
    }
  });

  std::this_thread::sleep_for(kRunTime);

  // Report while the workload is still running — the numbers below are a
  // live snapshot, which is exactly how a production operator would read
  // them.  (Counters are monotone; gauges are instantaneous.)
  const kiwi::obs::DebugReport report = map.DebugReport();
  stop.store(true);
  for (std::thread& t : threads) t.join();

  std::printf("%s\n", report.ToText().c_str());
  std::printf("one-line JSON (same data, machine-readable):\n%s\n",
              report.ToJson().c_str());

#if KIWI_TRACE_ENABLED
  if (const char* path = std::getenv("KIWI_TRACE_DUMP");
      path != nullptr && *path != '\0') {
    // All workers joined above, so the export is exact.
    if (kiwi::obs::trace::DumpTraceToFile(path)) {
      std::printf("flight recorder trace written to %s "
                  "(load in ui.perfetto.dev)\n", path);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", path);
      return 1;
    }
  }
#endif
  return 0;
}
