#!/usr/bin/env python3
"""Markdown link-and-anchor checker for the repo docs.

Walks every *.md at the repo root and under docs/, and verifies:

  * relative links point at files that exist (`[x](docs/INGEST.md)`,
    `[y](../DESIGN.md#anchor)`), resolved from the linking file's dir;
  * fragment links (`#heading`) — standalone or on a relative link —
    name a real heading, using GitHub's slug rules (lowercase, spaces
    to '-', punctuation dropped, duplicate slugs suffixed -1, -2, ...);
  * inline file references in backticks that look like repo paths
    (`docs/FOO.md`, `src/core/kiwi_map.h`, `scripts/x.py`) exist —
    this is what catches doc drift when a file is renamed.

http(s)/mailto links are skipped (no network in CI).  Pure standard
library.  Exit 0 = clean, 1 = problems (each printed as file:line).

    python3 scripts/check_docs.py [--root .]
"""
import argparse
import os
import re
import sys

# [text](target) — excludes images' leading '!' capture since the target
# rules are identical anyway.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
# `path/to/file.ext` in backticks: at least one '/', a known source-ish
# extension, and no shell-y characters that mark it as a command.
BACKTICK_PATH_RE = re.compile(
    r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\."
    r"(?:md|h|cpp|c|py|yml|yaml|json|txt|cmake|sh))`")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Paths referenced with globs/placeholders or generated at runtime.
GENERATED_HINTS = ("*", "<", "$", "build/", "BENCH_ci.json",
                   "bench_output.txt", "kiwi_trace.json")


def github_slug(text, taken):
    """GitHub heading-anchor slug: strip formatting, lowercase,
    spaces -> '-', drop everything but word chars and hyphens,
    dedup with -1/-2 suffixes."""
    text = re.sub(r"`([^`]*)`", r"\1", text)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_~]", "", text)                 # emphasis markers
    slug = text.strip().lower().replace(" ", "-")
    slug = re.sub(r"[^\wÀ-￿-]", "", slug)
    base = slug
    n = 0
    while slug in taken:
        n += 1
        slug = f"{base}-{n}"
    taken.add(slug)
    return slug


def headings_of(path, cache):
    if path not in cache:
        slugs = set()
        taken = set()
        in_fence = False
        try:
            with open(path, encoding="utf-8") as f:
                for line in f:
                    if CODE_FENCE_RE.match(line):
                        in_fence = not in_fence
                        continue
                    if in_fence:
                        continue
                    m = HEADING_RE.match(line)
                    if m:
                        slugs.add(github_slug(m.group(2), taken))
        except OSError:
            pass
        cache[path] = slugs
    return cache[path]


def check_file(md_path, root, heading_cache):
    problems = []
    md_dir = os.path.dirname(md_path)
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue

            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_SCHEMES):
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(
                        os.path.join(md_dir, path_part))
                    if not os.path.exists(resolved):
                        problems.append(
                            (lineno, f"broken link: {target}"))
                        continue
                    anchor_file = resolved
                else:
                    anchor_file = md_path  # '#fragment' in same file
                if fragment and anchor_file.endswith(".md"):
                    if fragment.lower() not in headings_of(
                            anchor_file, heading_cache):
                        problems.append(
                            (lineno, f"broken anchor: {target}"))

            for ref in BACKTICK_PATH_RE.findall(line):
                if any(hint in ref for hint in GENERATED_HINTS):
                    continue
                # Resolve repo-root-relative first (the common doc
                # idiom), then relative to the file.
                if not (os.path.exists(os.path.join(root, ref))
                        or os.path.exists(os.path.join(md_dir, ref))):
                    problems.append(
                        (lineno, f"referenced file missing: {ref}"))
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    md_files = []
    for entry in sorted(os.listdir(root)):
        if entry.endswith(".md"):
            md_files.append(os.path.join(root, entry))
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for entry in sorted(os.listdir(docs_dir)):
            if entry.endswith(".md"):
                md_files.append(os.path.join(docs_dir, entry))

    heading_cache = {}
    failed = False
    for md in md_files:
        problems = check_file(md, root, heading_cache)
        rel = os.path.relpath(md, root)
        for lineno, message in problems:
            print(f"{rel}:{lineno}: {message}")
            failed = True
    checked = len(md_files)
    if failed:
        print(f"check_docs: problems found across {checked} files")
        return 1
    print(f"check_docs: {checked} markdown files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
