#!/usr/bin/env python3
"""CI bench smoke: run the fast benches, emit BENCH_ci.json, gate regressions.

Runs micro_ops (kiwi series only), fig3_basic, and fig_ingest at a
deliberately small scale, collects the kiwi numbers into one JSON artifact
(throughputs plus the fig_ingest batch/put speed-up ratios), and —
when a checked-in baseline exists — fails if any metric regressed beyond
the tolerance (default 25%, override with BENCH_SMOKE_TOLERANCE).

    python3 scripts/bench_smoke.py --build build --out BENCH_ci.json \
        [--baseline bench/baseline_ci.json] [--check]

The baseline stores the *expected* throughput of each metric on a CI
runner; the tolerance absorbs runner noise.  Metrics present in the run
but absent from the baseline are reported, not gated, so adding a bench
never breaks CI retroactively.  Regenerate the baseline by copying a
trusted run's BENCH_ci.json over bench/baseline_ci.json.

Pure standard library; no dependencies.
"""
import argparse
import json
import os
import subprocess
import sys

# Small-scale knobs: the point is a regression *ratio*, not a publishable
# number, so keep CI wall-clock in seconds.
SMOKE_ENV = {
    "KIWI_BENCH_SIZE": "20000",
    "KIWI_BENCH_WARMUP_MS": "100",
    "KIWI_BENCH_ITER_MS": "300",
    "KIWI_BENCH_ITERS": "2",
    # obsjson rows feed the artifact's "obs" section (retry/lag trajectory).
    "KIWI_BENCH_OBS": "1",
}

# Contention counters surfaced per bench run in the artifact's "obs"
# section.  Trajectory only — never gated: retry counts vary wildly with
# runner load, so they are recorded for trend reading, not thresholds.
OBS_RETRY_FIELDS = (
    "put_link_retries",
    "ppa_publish_fails",
    "engage_cas_fails",
    "freeze_cas_retries",
    "splice_retries",
    "index_cas_retries",
)


def collect_obs(stdout, obs):
    """Fold `obsjson,<figure>,<series>,<json>` rows into {key: columns}.

    A figure emits one row per (series, run); later runs of the same key
    overwrite earlier ones, so each key holds the final run's numbers."""
    for line in stdout.splitlines():
        if not line.startswith("obsjson,"):
            continue
        try:
            _, figure, series, payload = line.split(",", 3)
            report = json.loads(payload)
        except ValueError:
            continue
        counters = report.get("counters", {})
        gauges = report.get("gauges", {})
        columns = {f: counters.get(f, 0) for f in OBS_RETRY_FIELDS}
        columns["retries_total"] = sum(columns.values())
        columns["put_restarts"] = counters.get("put_restarts", 0)
        columns["ebr_epoch_lag"] = gauges.get("ebr_epoch_lag", 0)
        columns["ebr_pending_bytes"] = gauges.get("ebr_pending_bytes", 0)
        obs[f"{figure}/{series}"] = columns


def run_micro_ops(build_dir):
    """micro_ops kiwi series -> {name: ops_per_second} (higher is better)."""
    out_path = "micro_ops_ci.json"
    cmd = [
        os.path.join(build_dir, "bench", "micro_ops"),
        "--benchmark_filter=kKiWi",
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    env = dict(os.environ, **SMOKE_ENV)
    subprocess.run(cmd, check=True, env=env)
    with open(out_path) as f:
        report = json.load(f)
    metrics = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # real_time is ns/op (benchmark's default unit here); invert so
        # every metric in the artifact is higher-is-better.
        ns = bench["real_time"]
        if ns > 0:
            metrics[f"micro_ops/{bench['name']}"] = 1e9 / ns
    return metrics


def run_micro_ops_bytes(build_dir):
    """micro_ops_bytes (byte-key map) -> {name: ops_per_second}.

    The byte layout's arena hot path regresses independently of the
    fixed-width map (prefix-tie memcmp, arena claims, compaction), so it
    gets its own gated metrics namespace."""
    out_path = "micro_ops_bytes_ci.json"
    cmd = [
        os.path.join(build_dir, "bench", "micro_ops_bytes"),
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    env = dict(os.environ, **SMOKE_ENV)
    subprocess.run(cmd, check=True, env=env)
    with open(out_path) as f:
        report = json.load(f)
    metrics = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ns = bench["real_time"]
        if ns > 0:
            metrics[f"micro_ops_bytes/{bench['name']}"] = 1e9 / ns
    return metrics


def run_fig3(build_dir, obs):
    """fig3_basic kiwi rows -> {name: Mkeys_per_second}."""
    cmd = [
        os.path.join(build_dir, "bench", "fig3_basic"),
        "--maps=kiwi",
        "--threads=1,2",
    ]
    env = dict(os.environ, **SMOKE_ENV)
    result = subprocess.run(cmd, check=True, env=env,
                            capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    collect_obs(result.stdout, obs)
    metrics = {}
    for line in result.stdout.splitlines():
        parts = line.split(",")
        if len(parts) == 6 and parts[0] == "csv":
            _, figure, series, x, y, _unit = parts
            metrics[f"{figure}/{series}@{x}"] = float(y)
    return metrics


def run_fig_ingest(build_dir, obs):
    """fig_ingest kiwi rows -> Mkeys/s plus the batch/put speed-up ratios.

    The batch_over_put_presorted ratio is the PutBatch acceptance gate: the
    bulk-build path must stay a multiple (>=2x) of per-op Put, not a
    percentage (docs/INGEST.md)."""
    cmd = [
        os.path.join(build_dir, "bench", "fig_ingest"),
        "--maps=kiwi",
        "--threads=1,2",
    ]
    env = dict(os.environ, **SMOKE_ENV)
    result = subprocess.run(cmd, check=True, env=env,
                            capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    collect_obs(result.stdout, obs)
    metrics = {}
    for line in result.stdout.splitlines():
        parts = line.split(",")
        if len(parts) == 6 and parts[0] == "csv":
            _, figure, series, x, y, _unit = parts
            metrics[f"{figure}/{series}@{x}"] = float(y)
    return metrics


def check(metrics, baseline_path, tolerance):
    with open(baseline_path) as f:
        baseline = json.load(f).get("metrics", {})
    failures = []
    for name, expected in sorted(baseline.items()):
        actual = metrics.get(name)
        if actual is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        floor = expected * (1.0 - tolerance)
        verdict = "OK" if actual >= floor else "REGRESSED"
        print(f"  {verdict:9s} {name}: {actual:.3g} vs baseline {expected:.3g}"
              f" (floor {floor:.3g})")
        if actual < floor:
            failures.append(
                f"{name}: {actual:.3g} < {floor:.3g}"
                f" (baseline {expected:.3g} - {tolerance:.0%})")
    for name in sorted(set(metrics) - set(baseline)):
        print(f"  NEW       {name}: {metrics[name]:.3g} (not gated)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build")
    parser.add_argument("--out", default="BENCH_ci.json")
    parser.add_argument("--baseline", default="bench/baseline_ci.json")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the baseline")
    args = parser.parse_args()
    tolerance = float(os.environ.get("BENCH_SMOKE_TOLERANCE", "0.25"))

    metrics = {}
    obs = {}
    metrics.update(run_micro_ops(args.build))
    metrics.update(run_micro_ops_bytes(args.build))
    metrics.update(run_fig3(args.build, obs))
    metrics.update(run_fig_ingest(args.build, obs))

    artifact = {
        "bench_smoke": 1,
        "env": SMOKE_ENV,
        "tolerance": tolerance,
        "metrics": metrics,
        # Contention/reclamation trajectory columns (never gated).
        "obs": obs,
    }
    with open(args.out, "w") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} ({len(metrics)} metrics, {len(obs)} obs rows)")

    if args.check:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; skipping the gate")
            return 0
        failures = check(metrics, args.baseline, tolerance)
        if failures:
            print("bench smoke FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("bench smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
