#!/usr/bin/env python3
"""kiwi_top: live terminal viewer for the KiWi metrics-pump JSONL stream.

Tails the JSONL telemetry a KiWiMap's metrics pump emits (one JSON object
per line, marked by "kiwi_metrics": 1; see docs/OBSERVABILITY.md) and
renders a refreshing dashboard: operation rates, contention (retry) rates,
EBR health, and the chunk fill-factor histogram.

    KIWI_METRICS=1s build/bench/fig4_mixed --maps=kiwi | scripts/kiwi_top.py
    KIWI_METRICS=250ms:/tmp/kiwi.jsonl build/bench/micro_ops &
    scripts/kiwi_top.py -f /tmp/kiwi.jsonl

Input comes from stdin (pipe mode) or a file (-f follows it, tail -F
style).  Lines that are not kiwi_metrics objects — bench CSV rows, notes —
are ignored, so piping a whole bench's stdout through is fine.

Renders with curses when stdout is a tty, falling back to plain-text
dashboards (one block per sample) otherwise or with --plain.  Pure
standard library; no dependencies.
"""
import argparse
import json
import os
import sys
import time

# Counter fields summed into the "retries/s" contention figure (matches
# ObsDigest in src/harness/metrics.cpp).
RETRY_FIELDS = (
    "put_link_retries",
    "ppa_publish_fails",
    "engage_cas_fails",
    "freeze_cas_retries",
    "splice_retries",
    "index_cas_retries",
)

OP_FIELDS = ("puts", "removes", "gets", "scans", "rebalances")

FILL_BAR_WIDTH = 30


def parse_sample(line):
    """The kiwi_metrics dict for a JSONL line, or None for foreign lines."""
    line = line.strip()
    if not line.startswith("{"):
        return None
    try:
        obj = json.loads(line)
    except ValueError:
        return None
    if not isinstance(obj, dict) or obj.get("kiwi_metrics") != 1:
        return None
    return obj


def iter_lines(args):
    """Yield input lines from stdin or a (followed) file."""
    if args.file is None:
        for line in sys.stdin:
            yield line
        return
    with open(args.file, "r") as handle:
        while True:
            line = handle.readline()
            if line:
                yield line
            elif args.follow:
                time.sleep(0.1)
            else:
                return


def fmt_rate(value):
    if value >= 1e6:
        return "%.2fM/s" % (value / 1e6)
    if value >= 1e3:
        return "%.1fk/s" % (value / 1e3)
    return "%.1f/s" % value


def fmt_bytes(value):
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return "%.1f%s" % (value, unit)
        value /= 1024.0
    return "?"


def render_rows(sample):
    """The dashboard as a list of text rows (shared by both frontends)."""
    rates = sample.get("rates", {})
    gauges = sample.get("gauges", {})
    census = sample.get("census", {})
    rows = []
    rows.append(
        "kiwi_top — pump %s seq %s  uptime %.1fs  interval %.2fs%s"
        % (
            sample.get("pump", "?"),
            sample.get("seq", "?"),
            sample.get("uptime_s", 0.0),
            sample.get("interval_s", 0.0),
            "" if sample.get("stats_enabled", True) else "  [KIWI_STATS=OFF]",
        )
    )
    rows.append("")
    ops = "  ".join(
        "%s %s" % (name, fmt_rate(rates.get(name, 0.0))) for name in OP_FIELDS
    )
    rows.append("ops:      " + ops)
    retry_total = sum(rates.get(name, 0.0) for name in RETRY_FIELDS)
    top = sorted(
        ((rates.get(name, 0.0), name) for name in RETRY_FIELDS), reverse=True
    )[:3]
    detail = "  ".join("%s %s" % (name, fmt_rate(rate)) for rate, name in top)
    rows.append("retries:  total %s  (%s)" % (fmt_rate(retry_total), detail))
    rows.append(
        "ebr:      epoch %s  lag %s  pending %s (%s)"
        % (
            gauges.get("ebr_epoch", 0),
            gauges.get("ebr_epoch_lag", 0),
            gauges.get("ebr_pending", 0),
            fmt_bytes(float(gauges.get("ebr_pending_bytes", 0))),
        )
    )
    rows.append(
        "memory:   %s  chunks %s  avg_fill %.2f  engaged %s"
        % (
            fmt_bytes(float(gauges.get("memory_bytes", 0))),
            gauges.get("chunks", 0),
            gauges.get("avg_fill", 0.0),
            census.get("engaged", 0),
        )
    )
    rows.append("")
    rows.append("chunk fill-factor histogram (deciles):")
    hist = census.get("fill_hist", [])
    peak = max(hist) if hist else 0
    for i, count in enumerate(hist):
        width = int(round(FILL_BAR_WIDTH * count / peak)) if peak else 0
        rows.append(
            "  %3d-%3d%% %-*s %d"
            % (i * 10, (i + 1) * 10, FILL_BAR_WIDTH, "#" * width, count)
        )
    return rows


def run_plain(args):
    seen = 0
    try:
        for line in iter_lines(args):
            sample = parse_sample(line)
            if sample is None:
                continue
            seen += 1
            print("\n".join(render_rows(sample)))
            print("-" * 60)
            sys.stdout.flush()
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe: a clean exit, not an
        # error.  Unhook stdout so the interpreter's flush doesn't re-raise.
        sys.stdout = open(os.devnull, "w")
    except KeyboardInterrupt:
        pass
    return 0 if seen else 1


def run_curses(args):
    import curses

    def loop(screen):
        curses.use_default_colors()
        screen.nodelay(False)
        for line in iter_lines(args):
            sample = parse_sample(line)
            if sample is None:
                continue
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, row in enumerate(render_rows(sample)):
                if y >= max_y:
                    break
                screen.addnstr(y, 0, row, max_x - 1)
            screen.refresh()

    try:
        curses.wrapper(loop)
    except KeyboardInterrupt:
        pass
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-f",
        "--file",
        default=None,
        help="JSONL file to tail (default: read stdin)",
    )
    parser.add_argument(
        "--no-follow",
        dest="follow",
        action="store_false",
        help="with -f: stop at EOF instead of waiting for more samples",
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="print one text block per sample instead of the curses UI",
    )
    args = parser.parse_args()

    use_curses = not args.plain and sys.stdout.isatty()
    if use_curses:
        try:
            return run_curses(args)
        except ImportError:
            pass  # no curses on this platform: fall through
    return run_plain(args)


if __name__ == "__main__":
    sys.exit(main())
