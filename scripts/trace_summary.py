#!/usr/bin/env python3
"""Summarize a KiWi flight-recorder trace (Chrome trace-event JSON).

The flight recorder (src/obs/trace.h) exports per-thread event rings as
Perfetto-loadable JSON via DumpTrace() / --trace=<file> / KIWI_TRACE_DUMP.
This script answers the first questions an operator asks of such a trace
without opening a UI:

    python3 scripts/trace_summary.py kiwi_trace.json [--top N]

  * span of the capture and overall events/sec
  * event counts by kind
  * the top N rebalance spans by duration, with their stage events

Exits non-zero if the file is not a valid trace (used as a CI smoke check).
Pure standard library; no dependencies.
"""
import argparse
import json
import sys
from collections import Counter


def load_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SystemExit(f"{path}: no traceEvents — not a flight-recorder dump")
    for required in ("name", "ph", "ts", "tid"):
        if required not in events[0]:
            raise SystemExit(f"{path}: events lack '{required}' field")
    return events


def rebalance_spans(events):
    """Pair B/E 'rebalance' events per tid; the export guarantees balance."""
    spans = []
    open_spans = {}  # tid -> stack of (begin event, stage list)
    for e in events:
        tid = e["tid"]
        ev = e.get("args", {}).get("ev", "")
        if e["ph"] == "B" and e["name"] == "rebalance":
            open_spans.setdefault(tid, []).append((e, []))
        elif e["ph"] == "i" and ev.startswith("reb_") and open_spans.get(tid):
            open_spans[tid][-1][1].append(e)
        elif e["ph"] == "E" and e["name"] == "rebalance":
            stack = open_spans.get(tid)
            if not stack:
                raise SystemExit("unbalanced rebalance E event — export bug")
            begin, stages = stack.pop()
            spans.append({
                "tid": tid,
                "start_us": begin["ts"],
                "duration_us": e["ts"] - begin["ts"],
                "ro": next((s["args"].get("a0") for s in stages
                            if s["args"].get("ev") == "reb_engage"), None),
                "stages": [s["args"]["ev"] for s in stages],
                "outcome": e.get("args", {}).get("a1"),
            })
    return spans


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file (DumpTrace output)")
    parser.add_argument("--top", type=int, default=10,
                        help="rebalance spans to list (default 10)")
    args = parser.parse_args()

    events = load_trace(args.trace)
    ts = [e["ts"] for e in events]
    window_s = (max(ts) - min(ts)) / 1e6 if len(ts) > 1 else 0.0
    rate = len(events) / window_s if window_s > 0 else float("nan")
    print(f"{args.trace}: {len(events)} events over {window_s * 1e3:.2f} ms "
          f"({rate:,.0f} recorded events/sec)")

    counts = Counter(e.get("args", {}).get("ev", e["name"]) for e in events)
    print("\nevents by kind:")
    for name, n in counts.most_common():
        print(f"  {name:<20} {n}")

    spans = rebalance_spans(events)
    if not spans:
        print("\nno complete rebalance spans in this window")
        return
    spans.sort(key=lambda s: s["duration_us"], reverse=True)
    durations = [s["duration_us"] for s in spans]
    print(f"\n{len(spans)} rebalance spans; "
          f"mean {sum(durations) / len(durations):.1f} us, "
          f"max {durations[0]:.1f} us")
    print(f"\ntop {min(args.top, len(spans))} rebalance spans by duration:")
    print(f"  {'duration_us':>12} {'tid':>4} {'ro':<16} outcome stages")
    for s in spans[:args.top]:
        # outcome a1: bit0 = splice win, bit1 = consensus win
        try:
            bits = int(str(s["outcome"]), 0)
            outcome = "winner" if bits & 1 else "helper"
        except (TypeError, ValueError):
            outcome = "?"
        print(f"  {s['duration_us']:>12.1f} {s['tid']:>4} "
              f"{str(s['ro']):<16} {outcome:<7} {','.join(s['stages'])}")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
