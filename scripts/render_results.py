#!/usr/bin/env python3
"""Render the benches' CSV rows as ASCII charts (and obs reports as tables).

Every bench binary prints machine-readable rows of the form

    csv,<figure>,<series>,<x>,<y>,<unit>

alongside its human-readable notes.  This script groups them by figure and
draws one horizontal-bar chart per figure, so a full sweep can be eyeballed
without any plotting stack:

    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 scripts/render_results.py bench_output.txt

When a bench is run with --obs (or KIWI_BENCH_OBS=1) it additionally prints
one KiWiMap::DebugReport per run as

    obsjson,<figure>,<series>,<one-line JSON>

(the schema is documented in docs/OBSERVABILITY.md).  Those rows are
rendered as per-figure latency/counter tables after the charts.

Pure standard library; no dependencies.
"""
import json
import sys
from collections import defaultdict


BAR_WIDTH = 44

# Key counters worth showing per run; anything else stays in the JSON.
OBS_COUNTERS = (
    "puts", "gets", "scans", "rebalances", "puts_helped", "put_restarts",
)
OBS_GAUGES = ("chunks", "batched_ratio", "ebr_pending")


def parse(lines):
    """csv rows -> (figure -> series -> [(x, y)], figure -> unit);
    obsjson rows -> figure -> [(series, report dict)]."""
    figures = defaultdict(lambda: defaultdict(list))
    units = {}
    reports = defaultdict(list)
    for line in lines:
        line = line.strip()
        if line.startswith("obsjson,"):
            parts = line.split(",", 2)
            if len(parts) != 3:
                continue
            figure_and_series = parts[1], parts[2]
            # The series itself may contain commas (e.g. "kiwi@a,d:16"), so
            # split the payload off the *last* field by finding the JSON
            # object start instead.
            payload_at = line.find(",{")
            if payload_at < 0:
                continue
            prefix = line[:payload_at].split(",", 2)
            if len(prefix) != 3:
                continue
            _, figure, series = prefix
            try:
                report = json.loads(line[payload_at + 1:])
            except json.JSONDecodeError:
                continue
            if "kiwi_debug_report" in report:
                reports[figure].append((series, report))
            continue
        if not line.startswith("csv,"):
            continue
        parts = line.split(",")
        if len(parts) != 6:
            continue
        _, figure, series, x_text, y_text, unit = parts
        try:
            x_value = float(x_text)
            y_value = float(y_text)
        except ValueError:
            continue
        figures[figure][series].append((x_value, y_value))
        units[figure] = unit
    return figures, units, reports


def format_x(x_value):
    if x_value == int(x_value):
        value = int(x_value)
        if value >= 1024 and value % 1024 == 0:
            return f"{value // 1024}K"
        return str(value)
    return f"{x_value:g}"


def render_figure(name, series_map, unit):
    print(f"\n=== {name}  [{unit}] ===")
    peak = max(
        (y for points in series_map.values() for _, y in points), default=0.0
    )
    if peak <= 0:
        peak = 1.0
    for series in sorted(series_map):
        points = sorted(series_map[series])
        print(f"  {series}")
        for x_value, y_value in points:
            bar = "#" * max(1, int(BAR_WIDTH * y_value / peak))
            print(f"    {format_x(x_value):>8} | {bar:<{BAR_WIDTH}} {y_value:g}")


def format_count(value):
    if value >= 10_000_000:
        return f"{value / 1e6:.0f}M"
    if value >= 10_000:
        return f"{value / 1e3:.0f}K"
    return str(value)


def render_reports(name, rows):
    """Latency percentiles and headline counters for one figure's runs."""
    print(f"\n=== {name}  [observability] ===")
    print(f"  {'series':<28} {'metric':<18} {'count':>7} "
          f"{'p50':>7} {'p99':>7} {'p999':>8} {'max':>9}  (ns)")
    for series, report in rows:
        latency = report.get("latency_ns", {})
        first = True
        for metric, summary in latency.items():
            if not summary.get("count"):
                continue
            label = series if first else ""
            first = False
            print(f"  {label:<28} {metric:<18} "
                  f"{format_count(summary['count']):>7} "
                  f"{summary['p50']:>7} {summary['p99']:>7} "
                  f"{summary['p999']:>8} {summary['max']:>9}")
        counters = report.get("counters", {})
        gauges = report.get("gauges", {})
        notes = [f"{key}={format_count(counters[key])}"
                 for key in OBS_COUNTERS if counters.get(key)]
        notes += [f"{key}={gauges[key]:g}" if isinstance(gauges.get(key), float)
                  else f"{key}={format_count(gauges[key])}"
                  for key in OBS_GAUGES if gauges.get(key)]
        if first:  # stats compiled out: no latency rows at all
            print(f"  {series:<28} (stats disabled: KIWI_STATS=OFF build)")
        if notes:
            print(f"  {'':<28} {'; '.join(notes)}")


def main(argv):
    if len(argv) > 1 and argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()
    figures, units, reports = parse(lines)
    if not figures and not reports:
        print("no csv rows found (expected lines like csv,fig3get,kiwi,4,5.2,Mkeys/s)")
        return 1
    for name in sorted(figures):
        render_figure(name, figures[name], units.get(name, "?"))
    for name in sorted(reports):
        render_reports(name, reports[name])
    print(f"\n{sum(len(s) for s in figures.values())} series across "
          f"{len(figures)} figures; "
          f"{sum(len(r) for r in reports.values())} obs reports.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
