#!/usr/bin/env python3
"""Render the benches' CSV rows as ASCII charts.

Every bench binary prints machine-readable rows of the form

    csv,<figure>,<series>,<x>,<y>,<unit>

alongside its human-readable notes.  This script groups them by figure and
draws one horizontal-bar chart per figure, so a full sweep can be eyeballed
without any plotting stack:

    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 scripts/render_results.py bench_output.txt

Pure standard library; no dependencies.
"""
import sys
from collections import defaultdict


BAR_WIDTH = 44


def parse(lines):
    """figure -> series -> list of (x, y); plus figure -> unit."""
    figures = defaultdict(lambda: defaultdict(list))
    units = {}
    for line in lines:
        line = line.strip()
        if not line.startswith("csv,"):
            continue
        parts = line.split(",")
        if len(parts) != 6:
            continue
        _, figure, series, x_text, y_text, unit = parts
        try:
            x_value = float(x_text)
            y_value = float(y_text)
        except ValueError:
            continue
        figures[figure][series].append((x_value, y_value))
        units[figure] = unit
    return figures, units


def format_x(x_value):
    if x_value == int(x_value):
        value = int(x_value)
        if value >= 1024 and value % 1024 == 0:
            return f"{value // 1024}K"
        return str(value)
    return f"{x_value:g}"


def render_figure(name, series_map, unit):
    print(f"\n=== {name}  [{unit}] ===")
    peak = max(
        (y for points in series_map.values() for _, y in points), default=0.0
    )
    if peak <= 0:
        peak = 1.0
    for series in sorted(series_map):
        points = sorted(series_map[series])
        print(f"  {series}")
        for x_value, y_value in points:
            bar = "#" * max(1, int(BAR_WIDTH * y_value / peak))
            print(f"    {format_x(x_value):>8} | {bar:<{BAR_WIDTH}} {y_value:g}")


def main(argv):
    if len(argv) > 1 and argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()
    figures, units = parse(lines)
    if not figures:
        print("no csv rows found (expected lines like csv,fig3get,kiwi,4,5.2,Mkeys/s)")
        return 1
    for name in sorted(figures):
        render_figure(name, figures[name], units.get(name, "?"))
    print(f"\n{sum(len(s) for s in figures.values())} series across "
          f"{len(figures)} figures.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
