// Table 1: "Comparison of concurrent data structures implementing scans."
// Regenerated from the compile-time capability traits each implementation
// declares, plus runtime probes where a property is directly observable
// (atomicity of scans, conflict restarts).
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_common.h"

namespace {

using namespace kiwi;

const char* Tick(bool yes) { return yes ? "yes" : " - "; }

// Runtime probe: run a sweep writer (all keys stamped round-by-round in
// ascending order) against scans; a torn scan (value increasing along
// ascending keys, or spread > 1) disproves atomicity.
bool ProbeScanAtomicity(api::IOrderedMap& map, int scan_attempts) {
  constexpr Key kKeys = 96;
  for (Key k = 0; k < kKeys; ++k) map.Put(k, 0);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    for (Value round = 1; !stop.load(std::memory_order_acquire); ++round) {
      for (Key k = 0; k < kKeys; ++k) map.Put(k, round);
    }
  });
  std::vector<api::IOrderedMap::Entry> out;
  for (int i = 0; i < scan_attempts && !torn.load(); ++i) {
    map.Scan(0, kKeys - 1, out);
    Value previous = out.empty() ? 0 : out.front().second;
    for (const auto& [key, value] : out) {
      if (value > previous ||
          (!out.empty() && out.front().second - out.back().second > 1)) {
        torn.store(true);
        break;
      }
      previous = value;
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  return !torn.load();
}

}  // namespace

int main(int argc, char** argv) {
  auto config = kiwi::bench::ParseArgs(argc, argv);
  harness::Note("Table 1: capability matrix (declared traits + runtime "
                "atomicity probe)");
  std::printf("%-10s %-7s %-9s %-8s %-10s %-9s %-9s %-12s\n", "map",
              "atomic", "multiple", "partial", "wait-free", "balanced",
              "fast-puts", "probe-atomic");
  for (const api::MapKind kind : config.maps) {
    auto map = api::MakeMap(kind);
    const api::MapTraits traits = map->Traits();
    const bool probed = ProbeScanAtomicity(*map, 400);
    std::printf("%-10s %-7s %-9s %-8s %-10s %-9s %-9s %-12s\n",
                map->Name().c_str(), Tick(traits.atomic_scans),
                Tick(traits.multiple_scans), Tick(traits.partial_scans),
                Tick(traits.wait_free_scans), Tick(traits.balanced),
                Tick(traits.fast_puts),
                probed ? "no-tear-seen" : "TORN");
    kiwi::harness::EmitCsv("table1", map->Name(),
                           static_cast<double>(traits.atomic_scans),
                           static_cast<double>(probed), "bool");
  }
  harness::Note("note: the skiplist's iterator is weakly consistent; the "
                "probe may or may not catch a torn scan in a short run — "
                "its declared trait (non-atomic) is the ground truth.");
  return 0;
}
