// Single-threaded byte-map operation latencies via google-benchmark: put,
// get, remove, scan over KiWiByteMap with 16- and 64-byte keys and
// mixed-length values.  The byte-layout companion to micro_ops.cpp — a
// regression microbench for the arena hot path, not a paper figure.
//
// Keys are fixed-width ("k:" + zero-padded decimal id + 'x' padding), so
// for small ids the first 8 bytes collide across most keys and comparisons
// routinely fall through the cell's prefix to the arena memcmp — the
// byte layout's distinctive cost, deliberately kept on the measured path.
// Values cycle through five lengths (0..120 bytes) so arena claims and
// rebalance compaction see realistic size variance rather than one stride.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/byte_map.h"
#include "common/random.h"

using namespace kiwi;

namespace {

constexpr std::int64_t kPrefill = 20000;
constexpr std::uint64_t kKeyRange = 2 * kPrefill;

// Mixed value lengths: empty, small, one cache line, a couple, a few.
constexpr std::size_t kValueLens[] = {0, 8, 24, 56, 120};

std::string MakeKey(std::uint64_t id, std::size_t key_len) {
  char digits[24];
  std::snprintf(digits, sizeof digits, "k:%012llu",
                static_cast<unsigned long long>(id));
  std::string key(digits);
  key.resize(key_len, 'x');
  return key;
}

std::string MakeValue(std::uint64_t id) {
  return std::string(kValueLens[id % (sizeof kValueLens / sizeof *kValueLens)],
                     static_cast<char>('a' + id % 26));
}

// One shared key/value pool per key length: key construction is not what
// the bench measures, so it stays out of the timed loop.
struct Corpus {
  std::vector<std::string> keys;
  std::vector<std::string> values;
};

const Corpus& PoolFor(std::size_t key_len) {
  static Corpus pools[2];
  Corpus& pool = pools[key_len == 16 ? 0 : 1];
  if (pool.keys.empty()) {
    pool.keys.reserve(kKeyRange);
    pool.values.reserve(kKeyRange);
    for (std::uint64_t id = 0; id < kKeyRange; ++id) {
      pool.keys.push_back(MakeKey(id, key_len));
      pool.values.push_back(MakeValue(id));
    }
  }
  return pool;
}

core::KiWiConfig ConfigFor(std::size_t key_len) {
  core::KiWiConfig config;
  // Size the arena near the mean entry (key + ~42B mean value) so neither
  // the cell array nor the arena strands the other (api/byte_map.h).
  config.bytes.arena_bytes_per_cell = static_cast<std::uint32_t>(key_len + 64);
  return config;
}

void Prefill(api::KiWiByteMap& map, const Corpus& pool, Xoshiro256& rng) {
  for (std::int64_t i = 0; i < kPrefill; ++i) {
    const std::uint64_t id = rng.NextBounded(kKeyRange);
    map.Put(pool.keys[id], pool.values[id]);
  }
}

void BM_Put(benchmark::State& state) {
  const std::size_t key_len = static_cast<std::size_t>(state.range(0));
  const Corpus& pool = PoolFor(key_len);
  api::KiWiByteMap map(ConfigFor(key_len));
  Xoshiro256 rng(1);
  Prefill(map, pool, rng);
  for (auto _ : state) {
    const std::uint64_t id = rng.NextBounded(kKeyRange);
    map.Put(pool.keys[id], pool.values[id]);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Get(benchmark::State& state) {
  const std::size_t key_len = static_cast<std::size_t>(state.range(0));
  const Corpus& pool = PoolFor(key_len);
  api::KiWiByteMap map(ConfigFor(key_len));
  Xoshiro256 rng(2);
  Prefill(map, pool, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Get(pool.keys[rng.NextBounded(kKeyRange)]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Remove(benchmark::State& state) {
  const std::size_t key_len = static_cast<std::size_t>(state.range(0));
  const Corpus& pool = PoolFor(key_len);
  api::KiWiByteMap map(ConfigFor(key_len));
  Xoshiro256 rng(3);
  Prefill(map, pool, rng);
  for (auto _ : state) {
    const std::uint64_t id = rng.NextBounded(kKeyRange);
    map.Remove(pool.keys[id]);
    map.Put(pool.keys[id], pool.values[id]);  // keep the dataset size stable
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Scan(benchmark::State& state) {
  const std::size_t key_len = static_cast<std::size_t>(state.range(0));
  const std::uint64_t range = static_cast<std::uint64_t>(state.range(1));
  const Corpus& pool = PoolFor(key_len);
  api::KiWiByteMap map(ConfigFor(key_len));
  Xoshiro256 rng(4);
  Prefill(map, pool, rng);
  std::uint64_t keys = 0;
  const auto yield = [&keys](std::string_view, std::string_view) { ++keys; };
  for (auto _ : state) {
    const std::uint64_t from = rng.NextBounded(kKeyRange - range);
    map.Scan(pool.keys[from], pool.keys[from + range - 1], yield);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys));
}

}  // namespace

// Names parallel micro_ops ("put/kKiWi" there, "put/bytes/16" here) so
// bench_smoke folds both into one metrics namespace.
BENCHMARK(BM_Put)->Name("put/bytes")->Arg(16)->Arg(64);
BENCHMARK(BM_Get)->Name("get/bytes")->Arg(16)->Arg(64);
BENCHMARK(BM_Remove)->Name("remove/bytes")->Arg(16)->Arg(64);
BENCHMARK(BM_Scan)->Name("scan/bytes")->Args({16, 64})->Args({64, 64});

BENCHMARK_MAIN();
