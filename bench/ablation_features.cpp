// Ablation: KiWi design-choice toggles.
//  * put piggybacking on rebalance (implemented; the paper's own evaluation
//    leaves it off and restarts puts, §6.1) — measures what it buys under
//    rebalance-heavy load;
//  * engagement width (merge aggressiveness) — 1 disables merging
//    (trigger-chunk-only rebalance, the strawman §3.3.1 argues against)
//    and is expected to leave more, sparser chunks behind.
#include "bench_common.h"
#include "core/kiwi_map.h"

using namespace kiwi;

namespace {

void RunConfig(const bench::BenchConfig& config, const std::string& label,
               const core::KiWiConfig& kiwi_config) {
  auto map = api::MakeMap(api::MapKind::kKiWi, kiwi_config);
  const std::uint64_t threads = config.threads.back();
  std::vector<harness::Role> roles{
      {"put", threads, harness::WorkloadSpec::PutOnly(config.KeyRange())}};
  harness::DriverOptions options = config.driver;
  options.initial_size = config.dataset_size;
  const harness::RunResult result = harness::RunWorkload(*map, roles, options);
  auto& kiwi_map =
      static_cast<api::MapAdapter<core::KiWiMap>&>(*map).Underlying();
  const core::KiWiStats stats = kiwi_map.Stats();
  const double put_mops = result.Role("put").OpsPerSec() / 1e6;
  harness::EmitCsv("ablation_features", label, 0, put_mops, "Mops/s");
  harness::Note("  " + label + ": put=" + harness::FormatMps(put_mops * 1e6) +
                " rebalances=" + std::to_string(stats.rebalances) +
                " restarts=" + std::to_string(stats.put_restarts) +
                " piggybacked=" + std::to_string(stats.puts_piggybacked) +
                " chunks=" + std::to_string(kiwi_map.ChunkCount()));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "ablation_features");

  core::KiWiConfig base;
  base.chunk_capacity = 256;  // rebalance-heavy regime

  harness::Note("put piggybacking (off = paper's evaluated configuration)");
  {
    core::KiWiConfig off = base;
    off.enable_put_piggyback = false;
    RunConfig(config, "piggyback_off", off);
    core::KiWiConfig on = base;
    on.enable_put_piggyback = true;
    RunConfig(config, "piggyback_on", on);
  }

  harness::Note("rebalance engagement width (1 = no merging)");
  for (const std::uint32_t width : {1u, 2u, 8u}) {
    core::KiWiConfig cfg = base;
    cfg.max_engaged_chunks = width;
    RunConfig(config, "engage_width_" + std::to_string(width), cfg);
  }
  return 0;
}
