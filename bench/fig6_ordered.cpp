// §6.2 "Ordered workload": a monotonically increasing key stream.
// The paper reports KiWi sustaining ~its random-workload put rate while the
// unbalanced k-ary tree collapses by ~730x (13.6K vs 9.98M ops/s).
// This bench reproduces the ratio: ordered-insert put throughput for every
// map, plus the same map under random keys for reference, and the k-ary
// tree's resulting depth.
#include "baselines/kary/kary_tree.h"

#include "bench_common.h"

using namespace kiwi;

namespace {

double OrderedPutThroughput(api::IOrderedMap& map, std::uint64_t threads,
                            std::uint64_t prefill,
                            const harness::DriverOptions& base,
                            bool ordered) {
  harness::WorkloadSpec spec =
      ordered ? harness::WorkloadSpec::OrderedPuts()
              : harness::WorkloadSpec::PutOnly(1u << 20);
  if (ordered) {
    // Establish the sequential-insertion history first (the paper's 5s
    // iterations accumulate it during the run): keys just below the
    // measured stream, in ascending order.
    for (std::uint64_t i = 0; i < prefill; ++i) {
      map.Put(-static_cast<Key>(prefill) + static_cast<Key>(i),
              static_cast<Value>(i));
    }
  }
  std::vector<harness::Role> roles{{"put", threads, spec}};
  harness::DriverOptions options = base;
  options.initial_size = 0;  // ordered prefill handled above
  const harness::RunResult result = harness::RunWorkload(map, roles, options);
  return result.Role("put").OpsPerSec();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "fig6");
  const std::uint64_t threads = config.threads.back();
  harness::Note("Ordered workload (§6.2), " + std::to_string(threads) +
                " put threads, monotonically increasing keys");

  double kiwi_ordered = 0;
  double kary_ordered = 0;
  for (const api::MapKind kind : config.maps) {
    auto ordered_map = api::MakeMap(kind);
    const double ordered =
        OrderedPutThroughput(*ordered_map, threads, config.dataset_size,
                             config.driver, /*ordered=*/true);
    auto random_map = api::MakeMap(kind);
    const double random =
        OrderedPutThroughput(*random_map, threads, config.dataset_size,
                             config.driver, /*ordered=*/false);
    harness::EmitCsv("fig6", std::string(api::KindName(kind)) + "_ordered",
                     static_cast<double>(threads), ordered / 1e6, "Mops/s");
    harness::EmitCsv("fig6", std::string(api::KindName(kind)) + "_random",
                     static_cast<double>(threads), random / 1e6, "Mops/s");
    harness::Note("  " + std::string(api::KindName(kind)) + ": ordered " +
                  harness::FormatMps(ordered) + " vs random " +
                  harness::FormatMps(random) + " (" +
                  std::to_string(random > 0 ? ordered / random : 0) +
                  "x of random)");
    bench::EmitObsReport(config, "fig6",
                         std::string(api::KindName(kind)) + "@ordered",
                         *ordered_map);
    if (kind == api::MapKind::kKiWi) kiwi_ordered = ordered;
    if (kind == api::MapKind::kKaryTree) kary_ordered = ordered;
  }
  if (kiwi_ordered > 0 && kary_ordered > 0) {
    harness::Note("KiWi/k-ary ordered-put ratio: " +
                  std::to_string(kiwi_ordered / kary_ordered) +
                  "x (paper: ~730x at 32 threads / full 5s iterations)");
    harness::EmitCsv("fig6", "kiwi_over_kary", static_cast<double>(threads),
                     kiwi_ordered / kary_ordered, "ratio");
  }
  // Structural evidence for the collapse: tree depth after ordered inserts.
  {
    baselines::KaryTree tree(64);
    for (Key k = 0; k < 200000; ++k) tree.Put(k, k);
    harness::Note("k-ary depth after 200k ordered inserts: " +
                  std::to_string(tree.Depth()) +
                  " (random-order depth is ~2-3 at k=64)");
    harness::EmitCsv("fig6", "kary_depth_ordered", 200000,
                     static_cast<double>(tree.Depth()), "levels");
  }
  return 0;
}
