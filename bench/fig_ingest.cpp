// Burst ingest: PutBatch vs per-op Put (docs/INGEST.md).
//
// Real-time analytics pipelines deliver data in bursts — a network read or
// file chunk yields thousands of pairs at once, frequently already sorted
// (time-keyed streams, LSM flushes, partitioned loaders).  This bench
// measures that shape: each writer thread ingests its partition of the
// keyspace in bursts of --batch (default 4096) entries, either by looping
// Put per entry or by handing the whole burst to PutBatch.
//
// Series (x = writer threads, y = Mkeys/s):
//   kiwi_put_presorted    per-op Put, each burst ascending   (baseline)
//   kiwi_batch_presorted  PutBatch, ascending bursts         (bulk-build path)
//   kiwi_put_random       per-op Put, uniform random keys
//   kiwi_batch_random     PutBatch, random bursts            (run-split path)
//   skiplist_put_presorted / skiplist_batch_presorted        (reference;
//       skiplist has no native batch, so batch == loop over Put)
//   batch_over_put_presorted / batch_over_put_random         speed-up ratios
//
// Expected shape: batch_over_put_presorted is a multiple (>= 2x — CI gates
// on this via scripts/bench_smoke.py), because presorted bursts take the
// bulk path: one chunk build amortized over a whole run instead of one
// version-CAS + list-link per key.  Random bursts gain less (runs are
// short), but still save on locate/check overhead.
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace kiwi;

namespace {

using Entry = api::IOrderedMap::Entry;

// One thread's burst sequence.  Presorted: bursts tile an ascending,
// per-thread-disjoint key partition (thread t owns [t*N, (t+1)*N)).
// Random: uniform keys over the whole 2N range, duplicates allowed.
std::vector<std::vector<Entry>> MakeBursts(std::uint64_t thread,
                                           std::uint64_t burst,
                                           std::uint64_t bursts_per_thread,
                                           bool presorted,
                                           std::uint64_t key_range) {
  std::vector<std::vector<Entry>> out(bursts_per_thread);
  std::mt19937_64 rng(0x516E57 + thread);
  std::uniform_int_distribution<Key> dist(1, static_cast<Key>(key_range));
  Key next = static_cast<Key>(thread * burst * bursts_per_thread) + 1;
  for (std::uint64_t b = 0; b < bursts_per_thread; ++b) {
    out[b].reserve(burst);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const Key key = presorted ? next++ : dist(rng);
      out[b].emplace_back(key, static_cast<Value>(key));
    }
  }
  return out;
}

// Ingest every burst on `threads` writers; returns keys/sec.  Fresh map per
// call (burst ingest is a fill, not a steady state — reusing a full map
// would measure overwrite, not ingest).
double IngestThroughput(api::IOrderedMap& map, std::uint64_t threads,
                        std::uint64_t burst, std::uint64_t bursts_per_thread,
                        bool presorted, bool use_batch,
                        std::uint64_t key_range) {
  std::vector<std::vector<std::vector<Entry>>> inputs;
  inputs.reserve(threads);
  for (std::uint64_t t = 0; t < threads; ++t) {
    inputs.push_back(
        MakeBursts(t, burst, bursts_per_thread, presorted, key_range));
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint64_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (const std::vector<Entry>& b : inputs[t]) {
        if (use_batch) {
          map.PutBatch(b);
        } else {
          for (const Entry& e : b) map.Put(e.first, e.second);
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const double total_keys =
      static_cast<double>(threads * burst * bursts_per_thread);
  return elapsed.count() > 0 ? total_keys / elapsed.count() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "fig_ingest");
  const std::uint64_t burst = bench::EnvOrU64("KIWI_BENCH_BATCH", 4096);
  // dataset_size keys per thread per measurement, in bursts.
  const std::uint64_t bursts_per_thread =
      (config.dataset_size + burst - 1) / burst;
  harness::Note("Burst ingest, burst=" + std::to_string(burst) + " (" +
                std::to_string(bursts_per_thread) +
                " bursts/thread), PutBatch vs per-op Put");

  for (const std::uint64_t threads : config.threads) {
    double kiwi_put_sorted = 0, kiwi_batch_sorted = 0;
    double kiwi_put_random = 0, kiwi_batch_random = 0;
    for (const api::MapKind kind : config.maps) {
      // k-ary collapses under ordered insertion (fig6 covers that story);
      // snaptree/ctrie add nothing here — keep the default run tight.
      if (kind != api::MapKind::kKiWi && kind != api::MapKind::kSkipList) {
        continue;
      }
      const std::string name(api::KindName(kind));
      for (const bool presorted : {true, false}) {
        const std::string order = presorted ? "presorted" : "random";
        double per_op = 0, batched = 0;
        for (const bool use_batch : {false, true}) {
          auto map = api::MakeMap(kind);
          const double keys_per_sec = IngestThroughput(
              *map, threads, burst, bursts_per_thread, presorted, use_batch,
              config.KeyRange());
          (use_batch ? batched : per_op) = keys_per_sec;
          harness::EmitCsv("fig_ingest",
                           name + (use_batch ? "_batch_" : "_put_") + order,
                           static_cast<double>(threads), keys_per_sec / 1e6,
                           "Mkeys/s");
          if (use_batch) {
            bench::EmitObsReport(config, "fig_ingest",
                                 name + "_batch_" + order + "@" +
                                     std::to_string(threads),
                                 *map);
          }
        }
        harness::Note("  " + name + " " + order + " @" +
                      std::to_string(threads) + "t: put " +
                      harness::FormatMps(per_op) + " vs batch " +
                      harness::FormatMps(batched) + " (" +
                      std::to_string(per_op > 0 ? batched / per_op : 0) +
                      "x)");
        if (kind == api::MapKind::kKiWi) {
          if (presorted) {
            kiwi_put_sorted = per_op;
            kiwi_batch_sorted = batched;
          } else {
            kiwi_put_random = per_op;
            kiwi_batch_random = batched;
          }
        }
      }
    }
    if (kiwi_put_sorted > 0) {
      harness::EmitCsv("fig_ingest", "batch_over_put_presorted",
                       static_cast<double>(threads),
                       kiwi_batch_sorted / kiwi_put_sorted, "ratio");
    }
    if (kiwi_put_random > 0) {
      harness::EmitCsv("fig_ingest", "batch_over_put_random",
                       static_cast<double>(threads),
                       kiwi_batch_random / kiwi_put_random, "ratio");
    }
  }
  return 0;
}
