// Shared plumbing for the figure benches: CLI parsing, scaled-down default
// sizes (env-overridable to paper scale), and the standard competitor set.
//
// Scaling: the paper ran 20s warmup + 10 x 5s iterations on 32 cores with
// 1M/10M-key datasets.  Defaults here are sized so the *entire* bench suite
// (`for b in build/bench/*; do $b; done`) completes in minutes on a small
// host; set these to reproduce at paper scale:
//
//   KIWI_BENCH_SIZE=1000000  KIWI_BENCH_WARMUP_MS=20000
//   KIWI_BENCH_ITER_MS=5000  KIWI_BENCH_ITERS=10
//   KIWI_BENCH_THREADS=1,2,4,8,16,32
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/map_interface.h"
#include "harness/driver.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "obs/trace.h"

namespace kiwi::bench {

struct BenchConfig {
  /// The paper's benchmarked competitor set (§6.1).  The Ctrie analogue is
  /// built and tested but, as in the paper, not benchmarked by default
  /// (SnapTree was shown to outperform it); opt in with --maps=...,ctrie.
  std::vector<api::MapKind> maps = {
      api::MapKind::kKiWi, api::MapKind::kKaryTree, api::MapKind::kSkipList,
      api::MapKind::kSnapTree};
  std::vector<std::uint64_t> threads = {1, 2, 4};
  std::uint64_t dataset_size = 50'000;   // paper: 1M (10M for 4(c,f))
  harness::DriverOptions driver;
  std::string panel;  // free-form selector (fig4)
  /// --obs / KIWI_BENCH_OBS=1: after each KiWi run, print the map's
  /// DebugReport as an `obsjson,<figure>,<series>,<json>` row (rendered by
  /// scripts/render_results.py; schema in docs/OBSERVABILITY.md).
  bool obs = false;
  /// --trace=<file> / KIWI_BENCH_TRACE=1: dump the flight recorder to a
  /// Perfetto-loadable JSON file after each run (the driver performs the
  /// dump; later runs overwrite, so the file holds the final run's tail)
  /// and install the crash post-mortem handler for the bench's lifetime.
  std::string trace_path;

  std::uint64_t KeyRange() const { return dataset_size * 2; }
};

inline std::uint64_t EnvOrU64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  return (raw != nullptr && *raw != '\0') ? std::strtoull(raw, nullptr, 10)
                                          : fallback;
}

/// Parse common flags: --maps=a,b --threads=1,2 --size=N --panel=x.
inline BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  config.dataset_size = EnvOrU64("KIWI_BENCH_SIZE", config.dataset_size);
  if (const char* env = std::getenv("KIWI_BENCH_THREADS")) {
    harness::ParseUintList(env, &config.threads);
  }
  config.obs = EnvOrU64("KIWI_BENCH_OBS", 0) != 0;
  if (const char* env = std::getenv("KIWI_BENCH_TRACE");
      env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    config.trace_path = std::strcmp(env, "1") == 0 ? "kiwi_trace.json" : env;
  }
  config.driver = harness::DriverOptions::FromEnv();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* value = value_of("--maps=")) {
      config.maps.clear();
      std::string token;
      for (const char* c = value;; ++c) {
        if (*c == ',' || *c == '\0') {
          api::MapKind kind;
          if (!api::ParseMapKind(token, &kind)) {
            std::fprintf(stderr, "unknown map '%s'\n", token.c_str());
            std::exit(2);
          }
          config.maps.push_back(kind);
          token.clear();
          if (*c == '\0') break;
        } else {
          token.push_back(*c);
        }
      }
    } else if (const char* value = value_of("--threads=")) {
      if (!harness::ParseUintList(value, &config.threads)) std::exit(2);
    } else if (const char* value = value_of("--size=")) {
      config.dataset_size = std::strtoull(value, nullptr, 10);
    } else if (const char* value = value_of("--panel=")) {
      config.panel = value;
    } else if (arg == "--obs") {
      config.obs = true;
    } else if (const char* value = value_of("--trace=")) {
      config.trace_path = value;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "flags: --maps=kiwi,kary,skiplist,snaptree --threads=1,2,4 "
          "--size=N --panel=X --obs --trace=<file>\nenv: KIWI_BENCH_SIZE, "
          "KIWI_BENCH_THREADS, KIWI_BENCH_WARMUP_MS, KIWI_BENCH_ITER_MS, "
          "KIWI_BENCH_ITERS, KIWI_BENCH_OBS, KIWI_BENCH_TRACE,\n     "
          "KIWI_METRICS=<interval>[:<jsonl>] (continuous telemetry, e.g. "
          "KIWI_METRICS=1s | scripts/kiwi_top.py), KIWI_METRICS_PROM=<file>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
#if KIWI_TRACE_ENABLED
  if (!config.trace_path.empty()) {
    // The driver reads this env var after every run and dumps there; the
    // crash handler gives any bench failure a flight-recorder post-mortem.
    setenv("KIWI_BENCH_TRACE", config.trace_path.c_str(), 1);
    obs::trace::InstallCrashHandler();
  }
#else
  if (!config.trace_path.empty()) {
    std::fprintf(stderr,
                 "--trace ignored: built with KIWI_TRACE=OFF or "
                 "KIWI_STATS=OFF\n");
  }
#endif
  return config;
}

/// If `map` is a KiWi instance and --obs is on, emit its DebugReport as one
/// machine-readable row:  obsjson,<figure>,<series>,<one-line JSON>.
/// scripts/render_results.py turns these into per-series latency tables.
/// The row is digested from the map's StatsRegistry by harness::EmitObsJson
/// — the single code path for observability reporting.
inline void EmitObsReport(const BenchConfig& config, const std::string& figure,
                          const std::string& series, api::IOrderedMap& map) {
  if (!config.obs) return;
  harness::EmitObsJson(figure, series, map);
}

inline void DescribeEnvironment(const BenchConfig& config,
                                const char* figure) {
  harness::Note(std::string(figure) + ": dataset=" +
                std::to_string(config.dataset_size) +
                " warmup_ms=" + std::to_string(config.driver.warmup_ms) +
                " iter_ms=" + std::to_string(config.driver.iteration_ms) +
                " iters=" + std::to_string(config.driver.iterations) +
                " hw_threads=" +
                std::to_string(std::thread::hardware_concurrency()));
}

}  // namespace kiwi::bench
