// Ablation: KiWi chunk capacity.  The paper fixes it at 1024 (§6.1); this
// sweep shows the tradeoff that choice sits on — small chunks rebalance
// constantly (put-path churn), huge chunks slow in-chunk search and scans'
// per-chunk merge.
#include "bench_common.h"
#include "core/kiwi_map.h"

using namespace kiwi;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "ablation_chunk_size");
  const std::uint64_t threads = config.threads.back();
  std::vector<std::uint64_t> capacities{64, 256, 1024, 4096};
  if (const char* env = std::getenv("KIWI_BENCH_CAPACITIES")) {
    harness::ParseUintList(env, &capacities);
  }
  harness::Note("chunk-capacity sweep, mixed workload (45% put, 45% get, "
                "10% scan of 1024), " + std::to_string(threads) + " threads");
  for (const std::uint64_t capacity : capacities) {
    core::KiWiConfig kiwi_config;
    kiwi_config.chunk_capacity = static_cast<std::uint32_t>(capacity);
    auto map = api::MakeMap(api::MapKind::kKiWi, kiwi_config);
    harness::WorkloadSpec spec;
    spec.put_fraction = 0.45;
    spec.get_fraction = 0.45;
    spec.scan_fraction = 0.10;
    spec.key_range = config.KeyRange();
    spec.scan_size = 1024;
    std::vector<harness::Role> roles{{"mixed", threads, spec}};
    harness::DriverOptions options = config.driver;
    options.initial_size = config.dataset_size;
    const harness::RunResult result = harness::RunWorkload(*map, roles, options);
    const harness::RoleResult& role = result.Role("mixed");
    auto& kiwi_map =
        static_cast<api::MapAdapter<core::KiWiMap>&>(*map).Underlying();
    const core::KiWiStats stats = kiwi_map.Stats();
    harness::EmitCsv("ablation_chunk_size", "mixed",
                     static_cast<double>(capacity), role.KeysPerSec() / 1e6,
                     "Mkeys/s");
    harness::Note("  capacity=" + std::to_string(capacity) + " -> " +
                  harness::FormatMps(role.KeysPerSec()) + ", rebalances=" +
                  std::to_string(stats.rebalances) + ", chunks=" +
                  std::to_string(kiwi_map.ChunkCount()));
  }
  return 0;
}
