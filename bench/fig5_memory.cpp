// Figure 5: RAM use with parallel scans (32-key ranges) and background
// puts, 1M-scale dataset.  The paper samples the JVM's memory-in-use right
// after a full GC; the native analogue drains deferred reclamation
// (EBR retire lists) and reads each structure's self-reported footprint.
#include "bench_common.h"

using namespace kiwi;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "fig5");
  const std::uint64_t scan_size = bench::EnvOrU64("KIWI_BENCH_SCAN_SIZE", 32);
  harness::Note("Figure 5: memory footprint, " + std::to_string(scan_size) +
                "-key scans with background puts");
  for (const api::MapKind kind : config.maps) {
    for (const std::uint64_t scan_threads : config.threads) {
      auto map = api::MakeMap(kind);
      std::vector<harness::Role> roles{
          {"scan", scan_threads,
           harness::WorkloadSpec::ScanOnly(config.KeyRange(), scan_size)},
          {"put", scan_threads,
           harness::WorkloadSpec::PutOnly(config.KeyRange())}};
      harness::DriverOptions options = config.driver;
      options.initial_size = config.dataset_size;
      options.measure_memory = true;
      const harness::RunResult result =
          harness::RunWorkload(*map, roles, options);
      const double mb =
          static_cast<double>(result.memory_bytes) / (1024.0 * 1024.0);
      harness::EmitCsv("fig5", map->Name(),
                       static_cast<double>(scan_threads), mb, "MB");
      harness::Note("  " + map->Name() + " scan_threads=" +
                    std::to_string(scan_threads) + " -> " +
                    harness::FormatMb(result.memory_bytes));
      // KiWi recycles chunk slabs through its SlabPool; split the pool's
      // view into live (handed-out) vs pooled (idle recycled stock) so the
      // post-drain footprint above is attributable.  Pooled bytes are NOT
      // part of the fig5 metric — they are reusable stock, the analogue of
      // a JVM's free heap after GC.
      if (auto* kiwi_adapter =
              dynamic_cast<api::MapAdapter<core::KiWiMap>*>(map.get())) {
        const reclaim::SlabPool::Stats pool =
            kiwi_adapter->Underlying().Pool().GetStats();
        const double live_mb =
            static_cast<double>(pool.live_bytes) / (1024.0 * 1024.0);
        const double pooled_mb =
            static_cast<double>(pool.pooled_bytes) / (1024.0 * 1024.0);
        harness::EmitCsv("fig5_pool_live", map->Name(),
                         static_cast<double>(scan_threads), live_mb, "MB");
        harness::EmitCsv("fig5_pool_idle", map->Name(),
                         static_cast<double>(scan_threads), pooled_mb, "MB");
        harness::Note("    pool: live=" + harness::FormatMb(pool.live_bytes) +
                      " idle=" + harness::FormatMb(pool.pooled_bytes) +
                      " hits=" + std::to_string(pool.hits) +
                      " misses=" + std::to_string(pool.misses));
      }
      bench::EmitObsReport(config, "fig5",
                           map->Name() + "@" + std::to_string(scan_threads),
                           *map);
    }
  }
  harness::Note("note: footprints are structure-reported live bytes after "
                "draining deferred reclamation (the paper's post-GC "
                "JVM metric analogue)");
  return 0;
}
