// Figure 5: RAM use with parallel scans (32-key ranges) and background
// puts, 1M-scale dataset.  The paper samples the JVM's memory-in-use right
// after a full GC; the native analogue drains deferred reclamation
// (EBR retire lists) and reads each structure's self-reported footprint.
#include "bench_common.h"

using namespace kiwi;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "fig5");
  const std::uint64_t scan_size = bench::EnvOrU64("KIWI_BENCH_SCAN_SIZE", 32);
  harness::Note("Figure 5: memory footprint, " + std::to_string(scan_size) +
                "-key scans with background puts");
  for (const api::MapKind kind : config.maps) {
    for (const std::uint64_t scan_threads : config.threads) {
      auto map = api::MakeMap(kind);
      std::vector<harness::Role> roles{
          {"scan", scan_threads,
           harness::WorkloadSpec::ScanOnly(config.KeyRange(), scan_size)},
          {"put", scan_threads,
           harness::WorkloadSpec::PutOnly(config.KeyRange())}};
      harness::DriverOptions options = config.driver;
      options.initial_size = config.dataset_size;
      options.measure_memory = true;
      const harness::RunResult result =
          harness::RunWorkload(*map, roles, options);
      const double mb =
          static_cast<double>(result.memory_bytes) / (1024.0 * 1024.0);
      harness::EmitCsv("fig5", map->Name(),
                       static_cast<double>(scan_threads), mb, "MB");
      harness::Note("  " + map->Name() + " scan_threads=" +
                    std::to_string(scan_threads) + " -> " +
                    harness::FormatMb(result.memory_bytes));
      bench::EmitObsReport(config, "fig5",
                           map->Name() + "@" + std::to_string(scan_threads),
                           *map);
    }
  }
  harness::Note("note: footprints are structure-reported live bytes after "
                "draining deferred reclamation (the paper's post-GC "
                "JVM metric analogue)");
  return 0;
}
