// Figure 3: throughput scalability under uniform workloads.
//   (a) get-only: uniform random reads
//   (b) put-only: half inserts/updates, half deletes
//   (c) scan-only: 32K-key ranges from random lower bounds
// One series per map, x = worker threads, y = Mkeys/sec (matching the
// paper's axes).  Run a single panel with --panel=get|put|scan.
#include "bench_common.h"

using namespace kiwi;

namespace {

void RunPanel(const bench::BenchConfig& config, const std::string& op) {
  const std::uint64_t scan_size =
      bench::EnvOrU64("KIWI_BENCH_SCAN_SIZE", 32 * 1024);
  harness::Note("Figure 3(" + op + ")");
  for (const api::MapKind kind : config.maps) {
    for (const std::uint64_t threads : config.threads) {
      auto map = api::MakeMap(kind);
      harness::WorkloadSpec spec;
      if (op == "get") {
        spec = harness::WorkloadSpec::GetOnly(config.KeyRange());
      } else if (op == "put") {
        spec = harness::WorkloadSpec::PutOnly(config.KeyRange());
      } else {
        spec = harness::WorkloadSpec::ScanOnly(config.KeyRange(), scan_size);
      }
      std::vector<harness::Role> roles{{op, threads, spec}};
      harness::DriverOptions options = config.driver;
      options.initial_size = config.dataset_size;
      const harness::RunResult result =
          harness::RunWorkload(*map, roles, options);
      const harness::RoleResult& role = result.Role(op);
      harness::EmitCsv("fig3" + op, map->Name(),
                       static_cast<double>(threads), role.KeysPerSec() / 1e6,
                       "Mkeys/s");
      harness::Note("  " + map->Name() + " threads=" +
                    std::to_string(threads) + " -> " +
                    harness::FormatMps(role.KeysPerSec()) + " (" +
                    std::to_string(role.ops) + " ops)");
      bench::EmitObsReport(config, "fig3" + op,
                           map->Name() + "@" + std::to_string(threads), *map);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "fig3");
  if (config.panel.empty() || config.panel == "get") RunPanel(config, "get");
  if (config.panel.empty() || config.panel == "put") RunPanel(config, "put");
  if (config.panel.empty() || config.panel == "scan") {
    RunPanel(config, "scan");
  }
  return 0;
}
