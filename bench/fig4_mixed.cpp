// Figure 4: the paper's headline scenario — analytics scans concurrent with
// real-time puts.  Half the threads scan, half put (PutOnly mix).
//
//   (a) scan throughput vs #scan threads, 32K ranges, 1M-scale dataset
//   (b) scan throughput vs range size (2..128K), 16 threads, 1M-scale
//   (c) like (b) on the 10M-scale dataset
//   (d) put throughput vs #put threads, parallel 32K scans, 1M-scale
//   (e) put throughput vs range size, 16 threads, 1M-scale
//   (f) like (e) on the 10M-scale dataset
//
// Dataset sizes scale from --size / KIWI_BENCH_SIZE (default 50k ~ "1M",
// 10x that ~ "10M").  Select one panel with --panel=a..f.
#include "bench_common.h"

using namespace kiwi;

namespace {

struct MixedResult {
  double scan_mkeys;
  double put_mops;
};

MixedResult RunMixed(const bench::BenchConfig& config, api::MapKind kind,
                     std::uint64_t dataset, std::uint64_t scan_threads,
                     std::uint64_t put_threads, std::uint64_t scan_size,
                     const std::string& obs_series) {
  auto map = api::MakeMap(kind);
  const std::uint64_t key_range = dataset * 2;
  std::vector<harness::Role> roles{
      {"scan", scan_threads,
       harness::WorkloadSpec::ScanOnly(key_range, scan_size)},
      {"put", put_threads, harness::WorkloadSpec::PutOnly(key_range)}};
  harness::DriverOptions options = config.driver;
  options.initial_size = dataset;
  const harness::RunResult result = harness::RunWorkload(*map, roles, options);
  bench::EmitObsReport(config, "fig4", obs_series, *map);
  return MixedResult{result.Role("scan").KeysPerSec() / 1e6,
                     result.Role("put").OpsPerSec() / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "fig4");
  const std::uint64_t small = config.dataset_size;       // "1M" analogue
  const std::uint64_t large = config.dataset_size * 10;  // "10M" analogue
  const std::uint64_t default_scan = std::min<std::uint64_t>(
      bench::EnvOrU64("KIWI_BENCH_SCAN_SIZE", 32 * 1024), small);
  // Range-size sweep: the paper uses 2..128K; scale the upper sizes to the
  // dataset so short runs stay short.
  std::vector<std::uint64_t> ranges;
  for (std::uint64_t r = 2; r <= 128 * 1024 && r <= 2 * small; r *= 8) {
    ranges.push_back(r);
  }
  const std::uint64_t sweep_threads =
      bench::EnvOrU64("KIWI_BENCH_MIXED_THREADS", 8);  // paper: 16

  const auto want = [&](const char* panel) {
    return config.panel.empty() || config.panel == panel;
  };

  for (const api::MapKind kind : config.maps) {
    const std::string name = api::KindName(kind);
    if (want("a") || want("d")) {
      for (const std::uint64_t threads : config.threads) {
        const MixedResult r =
            RunMixed(config, kind, small, threads, threads, default_scan,
                     name + "@a,d:" + std::to_string(threads));
        harness::EmitCsv("fig4a", name, static_cast<double>(threads),
                         r.scan_mkeys, "Mkeys/s");
        harness::EmitCsv("fig4d", name, static_cast<double>(threads),
                         r.put_mops, "Mops/s");
        harness::Note("  a/d " + name + " threads=" +
                      std::to_string(threads) + " scan=" +
                      harness::FormatMps(r.scan_mkeys * 1e6) + " put=" +
                      harness::FormatMps(r.put_mops * 1e6));
      }
    }
    if (want("b") || want("e")) {
      for (const std::uint64_t range : ranges) {
        const MixedResult r =
            RunMixed(config, kind, small, sweep_threads / 2,
                     sweep_threads / 2, range,
                     name + "@b,e:" + std::to_string(range));
        harness::EmitCsv("fig4b", name, static_cast<double>(range),
                         r.scan_mkeys, "Mkeys/s");
        harness::EmitCsv("fig4e", name, static_cast<double>(range),
                         r.put_mops, "Mops/s");
        harness::Note("  b/e " + name + " range=" + std::to_string(range) +
                      " scan=" + harness::FormatMps(r.scan_mkeys * 1e6) +
                      " put=" + harness::FormatMps(r.put_mops * 1e6));
      }
    }
    if (want("c") || want("f")) {
      for (const std::uint64_t range : ranges) {
        const MixedResult r =
            RunMixed(config, kind, large, sweep_threads / 2,
                     sweep_threads / 2, range,
                     name + "@c,f:" + std::to_string(range));
        harness::EmitCsv("fig4c", name, static_cast<double>(range),
                         r.scan_mkeys, "Mkeys/s");
        harness::EmitCsv("fig4f", name, static_cast<double>(range),
                         r.put_mops, "Mops/s");
        harness::Note("  c/f " + name + " range=" + std::to_string(range) +
                      " scan=" + harness::FormatMps(r.scan_mkeys * 1e6) +
                      " put=" + harness::FormatMps(r.put_mops * 1e6));
      }
    }
  }
  return 0;
}
