// Single-threaded operation latencies via google-benchmark: put, get, scan
// for each structure.  Not a paper figure — a regression microbench that
// keeps the per-op costs honest while the figure benches track shapes.
#include <benchmark/benchmark.h>

#include "api/map_interface.h"
#include "common/random.h"
#include "harness/metrics.h"

using namespace kiwi;

namespace {

constexpr std::int64_t kPrefill = 20000;
constexpr std::uint64_t kKeyRange = 2 * kPrefill;

template <api::MapKind kKind>
void BM_Put(benchmark::State& state) {
  auto map = api::MakeMap(kKind);
  harness::StartEnvMetricsPump(*map);  // KIWI_METRICS opt-in, no-op unset
  Xoshiro256 rng(1);
  for (std::int64_t i = 0; i < kPrefill; ++i) {
    map->Put(static_cast<Key>(rng.NextBounded(kKeyRange)), i);
  }
  for (auto _ : state) {
    map->Put(static_cast<Key>(rng.NextBounded(kKeyRange)), 7);
  }
  state.SetItemsProcessed(state.iterations());
}

template <api::MapKind kKind>
void BM_Get(benchmark::State& state) {
  auto map = api::MakeMap(kKind);
  harness::StartEnvMetricsPump(*map);
  Xoshiro256 rng(2);
  for (std::int64_t i = 0; i < kPrefill; ++i) {
    map->Put(static_cast<Key>(rng.NextBounded(kKeyRange)), i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map->Get(static_cast<Key>(rng.NextBounded(kKeyRange))));
  }
  state.SetItemsProcessed(state.iterations());
}

template <api::MapKind kKind>
void BM_Scan(benchmark::State& state) {
  const std::uint64_t range = state.range(0);
  auto map = api::MakeMap(kKind);
  harness::StartEnvMetricsPump(*map);
  Xoshiro256 rng(3);
  for (std::int64_t i = 0; i < kPrefill; ++i) {
    map->Put(static_cast<Key>(rng.NextBounded(kKeyRange)), i);
  }
  std::vector<api::IOrderedMap::Entry> out;
  std::uint64_t keys = 0;
  for (auto _ : state) {
    const Key from = static_cast<Key>(rng.NextBounded(kKeyRange - range));
    keys += map->Scan(from, from + static_cast<Key>(range) - 1, out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys));
}

template <api::MapKind kKind>
void BM_Remove(benchmark::State& state) {
  auto map = api::MakeMap(kKind);
  harness::StartEnvMetricsPump(*map);
  Xoshiro256 rng(4);
  for (std::int64_t i = 0; i < kPrefill; ++i) {
    map->Put(static_cast<Key>(rng.NextBounded(kKeyRange)), i);
  }
  for (auto _ : state) {
    const Key key = static_cast<Key>(rng.NextBounded(kKeyRange));
    map->Remove(key);
    map->Put(key, 1);  // keep the dataset size stable
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

#define KIWI_MICRO(kind)                                             \
  BENCHMARK(BM_Put<api::MapKind::kind>)->Name("put/" #kind);         \
  BENCHMARK(BM_Get<api::MapKind::kind>)->Name("get/" #kind);         \
  BENCHMARK(BM_Remove<api::MapKind::kind>)->Name("remove/" #kind);   \
  BENCHMARK(BM_Scan<api::MapKind::kind>)                             \
      ->Name("scan/" #kind)                                          \
      ->Arg(64)                                                      \
      ->Arg(4096)

KIWI_MICRO(kKiWi);
KIWI_MICRO(kSkipList);
KIWI_MICRO(kKaryTree);
KIWI_MICRO(kSnapTree);

BENCHMARK_MAIN();
