// Ablation: rebalance-policy tuning (§6.1 fixes probability 0.15 and
// batched-prefix threshold 0.625; §3.3.1 motivates both).  Sweeps the
// trigger probability and the prefix-ratio threshold under a put-heavy
// load and reports throughput plus rebalance counts, showing the
// staggering effect probabilistic triggering buys.
#include "bench_common.h"
#include "core/kiwi_map.h"

using namespace kiwi;

namespace {

void RunOne(const bench::BenchConfig& config, double probability,
            double ratio) {
  core::KiWiConfig kiwi_config;
  kiwi_config.rebalance_probability = probability;
  kiwi_config.batched_prefix_min_ratio = ratio;
  kiwi_config.chunk_capacity = 256;  // smaller chunks: policy fires often
  auto map = api::MakeMap(api::MapKind::kKiWi, kiwi_config);
  const std::uint64_t threads = config.threads.back();
  std::vector<harness::Role> roles{
      {"put", threads, harness::WorkloadSpec::PutOnly(config.KeyRange())},
      {"scan", 1,
       harness::WorkloadSpec::ScanOnly(config.KeyRange(), 4096)}};
  harness::DriverOptions options = config.driver;
  options.initial_size = config.dataset_size;
  const harness::RunResult result = harness::RunWorkload(*map, roles, options);
  auto& kiwi_map =
      static_cast<api::MapAdapter<core::KiWiMap>&>(*map).Underlying();
  const core::KiWiStats stats = kiwi_map.Stats();
  const double put_mops = result.Role("put").OpsPerSec() / 1e6;
  const double scan_mkeys = result.Role("scan").KeysPerSec() / 1e6;
  char label[64];
  std::snprintf(label, sizeof(label), "p%.2f_r%.3f", probability, ratio);
  harness::EmitCsv("ablation_policy", std::string("put_") + label, 0,
                   put_mops, "Mops/s");
  harness::EmitCsv("ablation_policy", std::string("scan_") + label, 0,
                   scan_mkeys, "Mkeys/s");
  harness::Note("  prob=" + std::to_string(probability) + " ratio=" +
                std::to_string(ratio) + " put=" +
                harness::FormatMps(put_mops * 1e6) + " scan=" +
                harness::FormatMps(scan_mkeys * 1e6) + " rebalances=" +
                std::to_string(stats.rebalances) + " restarts=" +
                std::to_string(stats.put_restarts));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "ablation_policy");
  harness::Note("rebalance-probability sweep at the paper's ratio 0.625");
  for (const double probability : {0.02, 0.15, 0.5, 1.0}) {
    RunOne(config, probability, 0.625);
  }
  harness::Note("batched-prefix-ratio sweep at the paper's probability 0.15");
  for (const double ratio : {0.25, 0.625, 0.9}) {
    RunOne(config, 0.15, ratio);
  }
  return 0;
}
