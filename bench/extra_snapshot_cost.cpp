// Extra (related-work quantification, not a paper figure): what "partial
// snapshots cannot be obtained" costs.  Small range queries against
// structures whose snapshots are full-map (the Ctrie analogue) vs. partial
// (KiWi, SnapTree analogue), across dataset sizes: the full-snapshot
// structure's per-query cost scales with MAP size instead of RANGE size,
// which is the reason the paper's related work dismisses it for range
// queries (§2).
#include "bench_common.h"

using namespace kiwi;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  bench::DescribeEnvironment(config, "extra_snapshot_cost");
  const std::uint64_t range = 128;  // small range: worst case for full walks
  harness::Note("128-key range queries, 1 scan thread + 1 put thread, "
                "growing dataset: partial-snapshot structures stay flat, "
                "full-snapshot ones degrade linearly");
  for (const std::uint64_t size :
       {config.dataset_size / 10, config.dataset_size,
        config.dataset_size * 4}) {
    for (const api::MapKind kind :
         {api::MapKind::kKiWi, api::MapKind::kSnapTree,
          api::MapKind::kCtrie}) {
      auto map = api::MakeMap(kind);
      std::vector<harness::Role> roles{
          {"scan", 1, harness::WorkloadSpec::ScanOnly(size * 2, range)},
          {"put", 1, harness::WorkloadSpec::PutOnly(size * 2)}};
      harness::DriverOptions options = config.driver;
      options.initial_size = size;
      const harness::RunResult result =
          harness::RunWorkload(*map, roles, options);
      const double scans_per_sec = result.Role("scan").OpsPerSec();
      harness::EmitCsv("extra_snapshot_cost", map->Name(),
                       static_cast<double>(size), scans_per_sec, "scans/s");
      harness::Note("  " + map->Name() + " dataset=" + std::to_string(size) +
                    " -> " + std::to_string(scans_per_sec) +
                    " range-queries/s");
    }
  }
  return 0;
}
